//! Run the whole imputer zoo on one dataset and print a Table-III-style
//! comparison (RMSE on held-out observed cells, wall-clock time).
//!
//! ```sh
//! cargo run --release --example method_comparison
//! ```

use scis_data::metrics::make_holdout;
use scis_data::normalize::MinMaxScaler;
use scis_data::CovidRecipe;
use scis_imputers::boost::BoostImputer;
use scis_imputers::datawig::DataWigImputer;
use scis_imputers::eddi::EddiImputer;
use scis_imputers::hivae::HivaeImputer;
use scis_imputers::knn::KnnImputer;
use scis_imputers::mean::{MeanImputer, MedianImputer};
use scis_imputers::mice::MiceImputer;
use scis_imputers::midae::MidaeImputer;
use scis_imputers::missforest::MissForestImputer;
use scis_imputers::rrsi::RrsiImputer;
use scis_imputers::vaei::VaeImputer;
use scis_imputers::{GainImputer, GinnImputer, Imputer, TrainConfig};
use scis_tensor::Rng64;
use std::time::Instant;

fn main() {
    let mut rng = Rng64::seed_from_u64(99);
    let inst = CovidRecipe::Trial.generate(0.25, 99);
    let (norm, _) = MinMaxScaler::fit_transform_dataset(&inst.dataset);
    // the paper's protocol: hide 20% of observed cells as ground truth
    let (train_ds, holdout) = make_holdout(&norm, 0.2, &mut rng);
    println!(
        "Trial-shaped dataset: {} x {}, {:.1}% missing after holdout, {} eval cells\n",
        train_ds.n_samples(),
        train_ds.n_features(),
        train_ds.missing_rate() * 100.0,
        holdout.len()
    );

    let train = TrainConfig::default().epochs(40);
    let mut methods: Vec<Box<dyn Imputer>> = vec![
        Box::new(MeanImputer),
        Box::new(MedianImputer),
        Box::new(KnnImputer::default()),
        Box::new(MiceImputer::default()),
        Box::new(MissForestImputer {
            n_trees: 30,
            ..MissForestImputer::default()
        }),
        Box::new(BoostImputer::default()),
        Box::new(DataWigImputer {
            config: train,
            ..DataWigImputer::default()
        }),
        Box::new(RrsiImputer {
            config: train,
            ..RrsiImputer::default()
        }),
        Box::new(MidaeImputer {
            config: train,
            ..MidaeImputer::default()
        }),
        Box::new(VaeImputer {
            config: train,
            ..VaeImputer::default()
        }),
        Box::new(EddiImputer {
            config: train,
            ..EddiImputer::default()
        }),
        Box::new(HivaeImputer {
            config: train,
            ..HivaeImputer::default()
        }),
        Box::new(GainImputer::new(train)),
        Box::new(GinnImputer::new(train)),
    ];

    println!("{:<10} {:>8} {:>10}", "Method", "RMSE", "Time (s)");
    println!("{}", "-".repeat(32));
    for m in &mut methods {
        let mut run_rng = rng.fork();
        let t = Instant::now();
        let imputed = m.impute(&train_ds, &mut run_rng);
        let secs = t.elapsed().as_secs_f64();
        println!(
            "{:<10} {:>8.4} {:>10.2}",
            m.name(),
            holdout.rmse(&imputed),
            secs
        );
    }
}
