//! Quickstart: impute a small incomplete table with SCIS-GAIN.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use scis_data::metrics::rmse_vs_ground_truth;
use scis_data::missing::inject_mcar;
use scis_data::normalize::MinMaxScaler;
use scis_data::synth::{generate, SynthConfig};
use scis_repro::prelude::*;

fn main() {
    let mut rng = Rng64::seed_from_u64(2024);

    // 1. Build a 2,000 x 8 correlated table and drop 30% of its cells MCAR.
    let synth = generate(
        &SynthConfig {
            n_samples: 2_000,
            n_features: 8,
            latent_dim: 3,
            ..Default::default()
        },
        &mut rng,
    );
    let ds = inject_mcar(&synth.complete, 0.3, &mut rng);
    println!(
        "dataset: {} samples x {} features, {:.1}% missing",
        ds.n_samples(),
        ds.n_features(),
        ds.missing_rate() * 100.0
    );

    // 2. Normalize to [0,1] (the paper's protocol; fitted on observed cells).
    let (norm, scaler) = MinMaxScaler::fit_transform_dataset(&ds);
    let gt_norm = scaler.transform(&synth.complete);

    // 3. Run Algorithm 1: DIM-train GAIN on an initial sample, let SSE pick
    //    the minimum training size, retrain if needed, impute everything.
    //    ExecPolicy::Auto fans the kernels out over SCIS_THREADS (or the
    //    machine's cores) with bit-identical results to serial execution.
    let config = ScisConfig::default().exec(ExecPolicy::Auto);
    let mut gain = GainImputer::new(config.dim.train);
    let outcome = Scis::new(config)
        .try_run(&mut gain, &norm, 200, &mut rng)
        .expect("pipeline run");

    println!(
        "SCIS: n* = {} of {} rows (R_t = {:.2}%), init {:.2}s + SSE {:.2}s + retrain {:.2}s",
        outcome.n_star,
        outcome.n_total,
        outcome.training_sample_rate() * 100.0,
        outcome.initial_train_time.as_secs_f64(),
        outcome.sse_time.as_secs_f64(),
        outcome.retrain_time.as_secs_f64(),
    );

    let rmse = rmse_vs_ground_truth(&norm, &gt_norm, &outcome.imputed);
    println!("SCIS-GAIN RMSE over missing cells: {:.4}", rmse);

    // 4. Compare against the mean-imputation floor.
    let mut mean = scis_imputers::mean::MeanImputer;
    let mean_rmse = rmse_vs_ground_truth(&norm, &gt_norm, &mean.impute(&norm, &mut rng));
    println!("Mean-imputation RMSE:              {:.4}", mean_rmse);

    // 5. Denormalize the imputed matrix back to the original scale.
    let imputed_original_scale = scaler.inverse_transform(&outcome.imputed);
    println!(
        "first imputed row (original scale): {:?}",
        &imputed_original_scale.row(0)[..4.min(imputed_original_scale.cols())]
    );
}
