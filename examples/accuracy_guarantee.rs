//! The SSE accuracy guarantee in action: sweep the user-tolerated error
//! bound ε and watch the minimum sample size n* (and hence training cost)
//! respond — the paper's Figure 3 scenario as a runnable demo.
//!
//! ```sh
//! cargo run --release --example accuracy_guarantee
//! ```

use scis_data::metrics::rmse_vs_ground_truth;
use scis_data::normalize::MinMaxScaler;
use scis_data::CovidRecipe;
use scis_repro::prelude::*;

fn main() {
    let inst = CovidRecipe::Emergency.generate(0.5, 5);
    let (norm, scaler) = MinMaxScaler::fit_transform_dataset(&inst.dataset);
    let gt_norm = scaler.transform(&inst.ground_truth);
    println!(
        "Emergency-shaped dataset: {} x {}, {:.1}% missing, n0 = {}\n",
        norm.n_samples(),
        norm.n_features(),
        norm.missing_rate() * 100.0,
        inst.n0
    );

    println!(
        "{:>8} {:>8} {:>9} {:>9} {:>10}",
        "epsilon", "n*", "R_t (%)", "RMSE", "time (s)"
    );
    println!("{}", "-".repeat(50));
    for &eps in &[0.001, 0.003, 0.005, 0.007, 0.009] {
        let config = ScisConfig::default()
            .dim(DimConfig::default().train(TrainConfig::default().epochs(30)))
            .epsilon(eps);
        let mut rng = Rng64::seed_from_u64(17);
        let mut gain = GainImputer::new(config.dim.train);
        let t = std::time::Instant::now();
        let outcome = Scis::new(config)
            .try_run(&mut gain, &norm, inst.n0, &mut rng)
            .expect("pipeline run");
        let rmse = rmse_vs_ground_truth(&norm, &gt_norm, &outcome.imputed);
        println!(
            "{:>8.3} {:>8} {:>9.2} {:>9.4} {:>10.2}",
            eps,
            outcome.n_star,
            outcome.training_sample_rate() * 100.0,
            rmse,
            t.elapsed().as_secs_f64()
        );
    }
    println!(
        "\nSmaller ε (stricter guarantee) should demand a larger n* — more\n\
         training samples and time — while RMSE tightens toward the\n\
         full-data model's accuracy."
    );
}
