//! The paper's headline scenario: SCIS-GAIN vs plain GAIN on a large
//! COVID-shaped dataset — same accuracy band, a fraction of the training
//! samples and time.
//!
//! ```sh
//! cargo run --release --example covid_scale            # Response @ 1/16
//! SCALE=0.25 RECIPE=weather cargo run --release --example covid_scale
//! ```

use scis_data::metrics::rmse_vs_ground_truth;
use scis_data::normalize::MinMaxScaler;
use scis_data::CovidRecipe;
use scis_repro::prelude::*;
use std::time::Instant;

fn main() {
    let recipe = match std::env::var("RECIPE").as_deref() {
        Ok("trial") => CovidRecipe::Trial,
        Ok("emergency") => CovidRecipe::Emergency,
        Ok("search") => CovidRecipe::Search,
        Ok("weather") => CovidRecipe::Weather,
        Ok("surveil") => CovidRecipe::Surveil,
        _ => CovidRecipe::Response,
    };
    let scale: f64 = std::env::var("SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.0625);

    println!(
        "recipe {} at scale {} (paper shape: {} x {} @ {:.1}% missing)",
        recipe.name(),
        scale,
        recipe.full_samples(),
        recipe.features(),
        recipe.missing_rate() * 100.0
    );
    let inst = recipe.generate(scale, 7);
    let (norm, scaler) = MinMaxScaler::fit_transform_dataset(&inst.dataset);
    let gt_norm = scaler.transform(&inst.ground_truth);
    println!("generated {} rows; n0 = {}", norm.n_samples(), inst.n0);

    // a shared, shorter schedule so the demo finishes in minutes
    let train = TrainConfig::default().epochs(30);

    // --- plain GAIN on the full dataset ---
    let mut rng = Rng64::seed_from_u64(1);
    let t = Instant::now();
    let mut gain = GainImputer::new(train);
    let gain_out = gain.impute(&norm, &mut rng);
    let gain_time = t.elapsed();
    let gain_rmse = rmse_vs_ground_truth(&norm, &gt_norm, &gain_out);
    println!(
        "GAIN      : RMSE {:.4}  time {:>8.2}s  R_t 100%",
        gain_rmse,
        gain_time.as_secs_f64()
    );

    // --- SCIS-GAIN ---
    let mut rng = Rng64::seed_from_u64(1);
    let config = ScisConfig::default().dim(DimConfig::default().train(train));
    let t = Instant::now();
    let mut gain2 = GainImputer::new(train);
    let outcome = Scis::new(config)
        .try_run(&mut gain2, &norm, inst.n0, &mut rng)
        .expect("pipeline run");
    let scis_time = t.elapsed();
    let scis_rmse = rmse_vs_ground_truth(&norm, &gt_norm, &outcome.imputed);
    println!(
        "SCIS-GAIN : RMSE {:.4}  time {:>8.2}s  R_t {:.2}%  (SSE {:.2}s)",
        scis_rmse,
        scis_time.as_secs_f64(),
        outcome.training_sample_rate() * 100.0,
        outcome.sse_time.as_secs_f64()
    );
    println!(
        "speedup {:.1}x with {:.2}% of the training samples",
        gain_time.as_secs_f64() / scis_time.as_secs_f64().max(1e-9),
        outcome.training_sample_rate() * 100.0
    );
}
