//! Load generator for `scis serve`: hammers an in-process server with
//! concurrent clients over real sockets and commits p50/p99 latency and
//! throughput to `BENCH_serve.json`.
//!
//! Every request must eventually succeed — `503` answers are retried after
//! the advertised `Retry-After` backoff (scaled down for bench pacing) and
//! counted, so the headline numbers include backpressure. A request that
//! never succeeds fails the run.
//!
//! Knobs (environment):
//! * `SERVE_BENCH_CLIENTS`  — concurrent client threads (default 64)
//! * `SERVE_BENCH_REQUESTS` — requests per client (default 32)
//! * `SERVE_BENCH_ROWS`     — rows per request (default 4)
//! * `SERVE_BENCH_COLS`     — model width (default 8)
//! * `SERVE_BENCH_BUNDLE`   — serve this bundle file instead of a synthetic one
//! * `SERVE_BENCH_EXEC`     — ExecPolicy (`serial`, `auto`, or a thread count)
//! * `SERVE_BENCH_OUT`      — output path (default `BENCH_serve.json`)

use scis_serve::bundle::{ColumnMeta, ModelBundle};
use scis_serve::client;
use scis_serve::server::{Server, ServerConfig};
use scis_telemetry::{json_f64, Telemetry};
use std::time::{Duration, Instant};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// An untrained generator is latency-equivalent to a trained one — the
/// forward pass does the same arithmetic either way — so the bench does
/// not pay for a training run unless pointed at a real bundle.
fn synthetic_bundle(d: usize) -> ModelBundle {
    use scis_imputers::{AdversarialImputer, GainImputer, TrainConfig};
    let mut rng = scis_tensor::Rng64::seed_from_u64(97);
    let mut gain = GainImputer::new(TrainConfig::fast_test());
    gain.init_networks(d, &mut rng);
    let spec = gain.generator_spec();
    let generator = gain.generator_mut().clone();
    let values = scis_tensor::Matrix::from_fn(64, d, |i, j| (i as f64).sin() + j as f64);
    let scaler = scis_data::normalize::MinMaxScaler::fit(&values);
    let columns = (0..d)
        .map(|j| ColumnMeta {
            name: format!("f{}", j),
            kind: scis_data::dataset::ColumnKind::Continuous,
            mean: j as f64 * 0.5,
        })
        .collect();
    ModelBundle::new(
        generator,
        spec,
        scaler,
        columns,
        scis_core::dim::AccelConfig::default(),
    )
    .expect("synthetic bundle is well-formed")
}

fn request_body(cols: usize, rows: usize, salt: usize) -> String {
    let mut body = String::from("{\"rows\":[");
    for i in 0..rows {
        if i > 0 {
            body.push(',');
        }
        body.push('[');
        for j in 0..cols {
            if j > 0 {
                body.push(',');
            }
            if (i + j + salt).is_multiple_of(3) {
                body.push_str("null");
            } else {
                body.push_str(&json_f64((salt + i) as f64 * 0.01 + j as f64));
            }
        }
        body.push(']');
    }
    body.push_str("]}");
    body
}

fn main() {
    let clients = env_usize("SERVE_BENCH_CLIENTS", 64);
    let requests = env_usize("SERVE_BENCH_REQUESTS", 32);
    let rows_per_request = env_usize("SERVE_BENCH_ROWS", 4);
    let out_path =
        std::env::var("SERVE_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    let exec = std::env::var("SERVE_BENCH_EXEC")
        .ok()
        .map(|s| scis_tensor::ExecPolicy::parse(&s).expect("SERVE_BENCH_EXEC"))
        .unwrap_or(scis_tensor::ExecPolicy::Auto);

    let bundle = match std::env::var("SERVE_BENCH_BUNDLE") {
        Ok(path) => ModelBundle::load(std::path::Path::new(&path)).unwrap_or_else(|e| {
            eprintln!("serve_bench: cannot load bundle {}: {}", path, e);
            std::process::exit(1);
        }),
        Err(_) => synthetic_bundle(env_usize("SERVE_BENCH_COLS", 8)),
    };
    let cols = bundle.n_features();

    let cfg = ServerConfig {
        exec,
        ..ServerConfig::default()
    };
    let telemetry = Telemetry::collecting();
    let mut server = Server::start(bundle, cfg, telemetry).expect("bind bench server");
    let addr = server.local_addr();
    eprintln!(
        "serve_bench: {} clients x {} requests x {} rows against {} ({} cols)",
        clients, requests, rows_per_request, addr, cols
    );

    // scrape /metricsz concurrently with the load: the exposition endpoint
    // must stay cheap while the server is saturated, and its latency is a
    // headline number of the bench
    let scrape_done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = {
        let done = scrape_done.clone();
        std::thread::spawn(move || {
            let mut scrape_us: Vec<u64> = Vec::new();
            loop {
                let start = Instant::now();
                let resp =
                    client::request(addr, "GET", "/metricsz", None).expect("metricsz scrape io");
                assert_eq!(resp.status, 200, "metricsz must answer under load");
                assert!(
                    resp.body.contains("# TYPE scis_serve_requests counter"),
                    "metricsz exposition lost its counters under load"
                );
                scrape_us.push(start.elapsed().as_micros() as u64);
                if done.load(std::sync::atomic::Ordering::SeqCst) {
                    return scrape_us;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };

    let wall_start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut latencies_us = Vec::with_capacity(requests);
                let mut retried = 0u64;
                for r in 0..requests {
                    let body = request_body(cols, rows_per_request, c * 1000 + r);
                    let start = Instant::now();
                    loop {
                        let resp = client::request(addr, "POST", "/impute", Some(&body))
                            .expect("bench request io");
                        match resp.status {
                            200 => break,
                            503 => {
                                retried += 1;
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            other => panic!("unexpected status {}: {}", other, resp.body),
                        }
                    }
                    latencies_us.push(start.elapsed().as_micros() as u64);
                }
                (latencies_us, retried)
            })
        })
        .collect();

    let mut latencies = Vec::with_capacity(clients * requests);
    let mut retried_503 = 0u64;
    for w in workers {
        let (lat, retried) = w.join().expect("bench worker");
        latencies.extend(lat);
        retried_503 += retried;
    }
    let wall_secs = wall_start.elapsed().as_secs_f64();
    scrape_done.store(true, std::sync::atomic::Ordering::SeqCst);
    let mut scrape_us = scraper.join().expect("metricsz scraper");
    server.shutdown();

    latencies.sort_unstable();
    let quantile = |q: f64| -> u64 {
        let idx = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[idx - 1]
    };
    let total_requests = latencies.len();
    let total_rows = total_requests * rows_per_request;
    let mean_us = latencies.iter().sum::<u64>() as f64 / total_requests as f64;
    scrape_us.sort_unstable();
    let scrape_quantile = |q: f64| -> u64 {
        let idx = ((q * scrape_us.len() as f64).ceil() as usize).clamp(1, scrape_us.len());
        scrape_us[idx - 1]
    };
    let scrape_mean_us = scrape_us.iter().sum::<u64>() as f64 / scrape_us.len().max(1) as f64;

    let report = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"scis-serve-bench-v2\",\n",
            "  \"clients\": {},\n",
            "  \"requests_per_client\": {},\n",
            "  \"rows_per_request\": {},\n",
            "  \"columns\": {},\n",
            "  \"total_requests\": {},\n",
            "  \"total_rows\": {},\n",
            "  \"retried_503\": {},\n",
            "  \"dropped_requests\": 0,\n",
            "  \"wall_secs\": {},\n",
            "  \"rows_per_sec\": {},\n",
            "  \"requests_per_sec\": {},\n",
            "  \"latency_micros\": {{ \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {} }},\n",
            "  \"metricsz_scrapes\": {},\n",
            "  \"metricsz_scrape_micros\": {{ \"mean\": {}, \"p50\": {}, \"p99\": {}, \"max\": {} }}\n",
            "}}\n"
        ),
        clients,
        requests,
        rows_per_request,
        cols,
        total_requests,
        total_rows,
        retried_503,
        json_f64(wall_secs),
        json_f64(total_rows as f64 / wall_secs),
        json_f64(total_requests as f64 / wall_secs),
        json_f64(mean_us),
        quantile(0.50),
        quantile(0.90),
        quantile(0.99),
        latencies.last().copied().unwrap_or(0),
        scrape_us.len(),
        json_f64(scrape_mean_us),
        scrape_quantile(0.50),
        scrape_quantile(0.99),
        scrape_us.last().copied().unwrap_or(0),
    );
    scis_nn::write_atomic(std::path::Path::new(&out_path), report.as_bytes())
        .expect("write bench report");
    eprintln!(
        "serve_bench: {} requests, p50 {}us p99 {}us, {:.0} rows/sec, {} metricsz scrapes \
         (p50 {}us) -> {}",
        total_requests,
        quantile(0.50),
        quantile(0.99),
        total_rows as f64 / wall_secs,
        scrape_us.len(),
        scrape_quantile(0.50),
        out_path
    );
}
