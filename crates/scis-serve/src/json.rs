//! Minimal dependency-free JSON: a recursive-descent parser plus the value
//! model the HTTP API works with.
//!
//! The workspace already *writes* JSON by hand everywhere (run reports,
//! bench files, flight-recorder events); serving is the first subsystem
//! that must *read* it. The parser accepts the full JSON grammar with two
//! pragmatic limits: nesting depth is capped (stack safety on adversarial
//! bodies) and numbers are parsed with Rust's correctly-rounded
//! `str::parse::<f64>`, so a value printed with
//! [`scis_telemetry::json_f64`] round-trips bit-exactly.

use std::fmt;

/// Maximum nesting depth accepted by [`parse`].
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved, lookups linear.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// True when this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {:?}", b as char))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(format!("expected {:?}", lit))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => self.err(format!("unexpected byte {:?}", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            Ok(_) => self.err("number out of f64 range"),
            Err(_) => self.err(format!("bad number {:?}", text)),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(JsonError {
                        offset: self.pos,
                        message: "unterminated escape".into(),
                    })?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex {
                                Some(cp) => {
                                    self.pos += 4;
                                    // surrogate pairs are replaced, not joined —
                                    // column names never need astral codepoints
                                    out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        other => {
                            return self.err(format!("bad escape \\{}", other as char));
                        }
                    }
                }
                Some(c) if c < 0x20 => return self.err("control character in string"),
                Some(_) => {
                    // copy the full UTF-8 scalar starting here
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError {
                            offset: self.pos,
                            message: "invalid utf-8".into(),
                        })?
                        .chars()
                        .next()
                        .unwrap();
                    out.push(s);
                    self.pos += s.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing data after document");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        let v = parse(r#"{"rows": [[1, null, 3.5]], "n": 2}"#).unwrap();
        let rows = v.get("rows").unwrap().as_arr().unwrap();
        let row = rows[0].as_arr().unwrap();
        assert_eq!(row[0].as_f64(), Some(1.0));
        assert!(row[1].is_null());
        assert_eq!(row[2].as_f64(), Some(3.5));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn numbers_roundtrip_bit_exactly_through_json_f64() {
        for v in [
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            5e-324,
            1.234_567_890_123_456_7e300,
            -0.0,
            0.1 + 0.2,
        ] {
            let text = scis_telemetry::json_f64(v);
            let parsed = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "value {}", v);
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nulll",
            "1 2",
            "\"unterminated",
            "[1, 2",
            "{\"a\" 1}",
            "NaN",
        ] {
            assert!(parse(bad).is_err(), "accepted {:?}", bad);
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(8) + &"]".repeat(8);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn unicode_escapes_and_utf8_pass_through() {
        assert_eq!(parse("\"\\u0041é\"").unwrap(), Json::Str("Aé".into()));
    }
}
