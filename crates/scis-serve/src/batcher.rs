//! Request coalescing: many concurrent clients, one generator.
//!
//! Clients submit jobs into a *bounded* queue ([`std::sync::mpsc::sync_channel`]);
//! a single batcher thread drains it, coalescing queued jobs into one
//! policy-aware generator forward pass per flush. A flush happens when the
//! accumulated batch reaches `max_batch_rows` or when `flush_micros` has
//! elapsed since the first queued job — whichever comes first — so a lone
//! request never waits longer than the flush deadline and a burst amortizes
//! into one GEMM.
//!
//! Backpressure is the queue bound: when it is full, [`Batcher::submit`]
//! fails immediately with [`SubmitError::QueueFull`] and the HTTP layer
//! answers `503` + `Retry-After` instead of queueing unboundedly. If the
//! batcher thread is gone (panic, shutdown), submissions fail with
//! [`SubmitError::Unavailable`] and the server drops to the column-mean
//! ladder.

use crate::service::{ImputeResult, ImputeRow, ImputeService};
use scis_telemetry::{Counter, Hist, Telemetry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Batching knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Bound on queued jobs (requests, not rows). Full queue → 503.
    pub queue_cap: usize,
    /// Flush when the coalesced batch reaches this many rows.
    pub max_batch_rows: usize,
    /// Flush when the oldest queued job has waited this long (µs).
    pub flush_micros: u64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            queue_cap: 128,
            max_batch_rows: 256,
            flush_micros: 500,
        }
    }
}

struct Job {
    rows: Vec<ImputeRow>,
    enqueued: Instant,
    /// Per-request trace id, carried through the batcher so the reply can
    /// attribute the coalesced batch back to the originating request.
    trace_id: Arc<str>,
    reply: SyncSender<BatchedReply>,
}

/// What the batcher sends back per job: the job's slice of the coalesced
/// result, the trace id the job carried (round-tripped so the HTTP layer
/// echoes an id that demonstrably survived the queue), and the size of the
/// generator batch this request rode in — the coalescing fact the access
/// log records per request.
#[derive(Debug)]
pub struct BatchedReply {
    /// This job's rows, sliced back out of the coalesced forward pass.
    pub result: ImputeResult,
    /// The trace id submitted with the job.
    pub trace_id: Arc<str>,
    /// Total rows in the coalesced batch the job was served from.
    pub batch_rows: u64,
}

/// Why a submission was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — back off and retry.
    QueueFull,
    /// The batcher thread is no longer running.
    Unavailable,
}

/// Handle to the batcher thread.
pub struct Batcher {
    tx: SyncSender<Job>,
    alive: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl Batcher {
    /// Spawns the batcher thread owning `service`.
    pub fn spawn(service: ImputeService, cfg: BatchConfig, telemetry: Telemetry) -> Batcher {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(cfg.queue_cap.max(1));
        let alive = Arc::new(AtomicBool::new(true));
        let alive_thread = alive.clone();
        let join = std::thread::Builder::new()
            .name("scis-serve-batcher".into())
            .spawn(move || {
                run_loop(service, cfg, telemetry, rx);
                alive_thread.store(false, Ordering::SeqCst);
            })
            .expect("spawn batcher thread");
        Batcher {
            tx,
            alive,
            join: Some(join),
        }
    }

    /// True while the batcher thread is draining the queue.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Submits validated rows under a trace id; returns the channel the
    /// result arrives on.
    pub fn submit(
        &self,
        rows: Vec<ImputeRow>,
        trace_id: Arc<str>,
    ) -> Result<Receiver<BatchedReply>, SubmitError> {
        if !self.is_alive() {
            return Err(SubmitError::Unavailable);
        }
        // rendezvous reply channel: the batcher's send never blocks because
        // the submitting thread is already waiting on recv
        let (reply, result_rx) = std::sync::mpsc::sync_channel(1);
        let job = Job {
            rows,
            enqueued: Instant::now(),
            trace_id,
            reply,
        };
        match self.tx.try_send(job) {
            Ok(()) => Ok(result_rx),
            Err(TrySendError::Full(_)) => Err(SubmitError::QueueFull),
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::Unavailable),
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        // the recv loop ends when every sender is gone; self.tx outlives
        // drop's body, so swap in a disconnected stand-in first, then join
        // so queued jobs are answered before the process moves on
        if let Some(join) = self.join.take() {
            let (dead, _) = std::sync::mpsc::sync_channel(1);
            self.tx = dead;
            let _ = join.join();
        }
    }
}

fn run_loop(mut service: ImputeService, cfg: BatchConfig, telemetry: Telemetry, rx: Receiver<Job>) {
    let flush = Duration::from_micros(cfg.flush_micros);
    loop {
        // block for the first job of the batch
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return, // all senders gone
        };
        let mut jobs = vec![first];
        let mut n_rows = jobs[0].rows.len();
        let deadline = Instant::now() + flush;
        // coalesce until the batch is full or the flush deadline passes
        while n_rows < cfg.max_batch_rows {
            let now = Instant::now();
            let Some(left) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                break;
            };
            match rx.recv_timeout(left) {
                Ok(job) => {
                    n_rows += job.rows.len();
                    jobs.push(job);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        // one forward pass over every coalesced row
        let all_rows: Vec<ImputeRow> = jobs.iter().flat_map(|j| j.rows.iter().cloned()).collect();
        let result = service.impute_rows(&all_rows);
        telemetry.incr(Counter::ServeBatches);
        telemetry.record_hist(Hist::ServeBatchRows, all_rows.len() as u64);

        // split the batch result back per job, preserving order
        let mut offset = 0;
        for job in jobs {
            let take = job.rows.len();
            let slice = ImputeResult {
                rows: result.rows[offset..offset + take].to_vec(),
                degraded: result.degraded,
            };
            offset += take;
            telemetry.record_hist_duration(Hist::ServeRequestNanos, job.enqueued.elapsed());
            // a vanished client (timed out, disconnected) is not an error
            let _ = job.reply.send(BatchedReply {
                result: slice,
                trace_id: job.trace_id,
                batch_rows: all_rows.len() as u64,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{ColumnMeta, ModelBundle};
    use scis_core::dim::AccelConfig;
    use scis_data::dataset::ColumnKind;
    use scis_data::normalize::MinMaxScaler;
    use scis_imputers::{AdversarialImputer, GainImputer, TrainConfig};
    use scis_tensor::{ExecPolicy, Matrix, Rng64};

    fn bundle(d: usize) -> ModelBundle {
        let mut rng = Rng64::seed_from_u64(21);
        let mut gain = GainImputer::new(TrainConfig::fast_test());
        gain.init_networks(d, &mut rng);
        let spec = gain.generator_spec();
        let generator = gain.generator_mut().clone();
        let values = Matrix::from_fn(30, d, |i, j| i as f64 * 0.1 + j as f64);
        let scaler = MinMaxScaler::fit(&values);
        let columns = (0..d)
            .map(|j| ColumnMeta {
                name: format!("c{}", j),
                kind: ColumnKind::Continuous,
                mean: j as f64,
            })
            .collect();
        ModelBundle::new(generator, spec, scaler, columns, AccelConfig::default()).unwrap()
    }

    fn service(d: usize) -> crate::service::ImputeService {
        crate::service::ImputeService::new(
            bundle(d),
            ExecPolicy::Serial,
            scis_telemetry::Telemetry::off(),
        )
    }

    #[test]
    fn coalesced_results_match_direct_service_bitwise() {
        let d = 3;
        let mut direct = service(d);
        let tel = scis_telemetry::Telemetry::collecting();
        let batcher = Batcher::spawn(service(d), BatchConfig::default(), tel.clone());
        let rows: Vec<ImputeRow> = (0..10)
            .map(|i| vec![Some(i as f64), None, Some(0.25)])
            .collect();
        let expected = direct.impute_rows(&rows);
        let handles: Vec<_> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let trace: Arc<str> = format!("trace-{}", i).into();
                (
                    trace.clone(),
                    batcher.submit(vec![r.clone()], trace).unwrap(),
                )
            })
            .collect();
        for (i, (trace, rx)) in handles.into_iter().enumerate() {
            let got = rx.recv().unwrap();
            // the trace id round-trips through the queue with its job
            assert_eq!(got.trace_id, trace);
            assert!(got.batch_rows >= 1);
            for j in 0..d {
                assert_eq!(
                    got.result.rows[0][j].to_bits(),
                    expected.rows[i][j].to_bits(),
                    "row {} col {}",
                    i,
                    j
                );
            }
        }
        assert!(tel.counter(Counter::ServeBatches) >= 1);
        drop(batcher);
    }

    #[test]
    fn full_queue_reports_backpressure() {
        // a 1-slot queue with a very long flush window: the first job parks
        // the batcher in its coalescing wait, the second fills the queue,
        // the third must bounce
        let cfg = BatchConfig {
            queue_cap: 1,
            max_batch_rows: 1024,
            flush_micros: 200_000,
        };
        let batcher = Batcher::spawn(service(2), cfg, scis_telemetry::Telemetry::off());
        let trace: Arc<str> = "t".into();
        let row: ImputeRow = vec![Some(1.0), None];
        let _first = batcher.submit(vec![row.clone()], trace.clone()).unwrap();
        // give the batcher a moment to pull the first job into its batch
        std::thread::sleep(Duration::from_millis(20));
        let _second = batcher.submit(vec![row.clone()], trace.clone()).unwrap();
        let mut saw_full = false;
        for _ in 0..50 {
            match batcher.submit(vec![row.clone()], trace.clone()) {
                Err(SubmitError::QueueFull) => {
                    saw_full = true;
                    break;
                }
                Ok(_) => continue,
                Err(e) => panic!("unexpected {:?}", e),
            }
        }
        assert!(saw_full, "bounded queue never reported backpressure");
        drop(batcher);
    }

    #[test]
    fn shutdown_answers_queued_jobs() {
        let batcher = Batcher::spawn(
            service(2),
            BatchConfig::default(),
            scis_telemetry::Telemetry::off(),
        );
        let rx = batcher
            .submit(vec![vec![None, Some(2.0)]], "t".into())
            .unwrap();
        drop(batcher); // joins the thread
        let out = rx.recv().expect("queued job must still be answered");
        assert_eq!(out.result.rows[0][1], 2.0);
    }
}
