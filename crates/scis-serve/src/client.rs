//! A minimal blocking HTTP client — just enough to exercise the server
//! from tests, CI smoke jobs, and the `serve_bench` load generator without
//! pulling in a dependency. One request per connection, mirroring the
//! server's `Connection: close` behavior.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A parsed response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body as UTF-8 text.
    pub body: String,
}

impl HttpResponse {
    /// First header with this name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request and reads the full response (the server closes the
/// connection after answering).
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<HttpResponse> {
    request_with_headers(addr, method, path, body, &[])
}

/// [`request`] with extra request headers (`("X-Scis-Trace-Id", "abc")`
/// style pairs), for exercising header-sensitive server paths.
pub fn request_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    headers: &[(&str, &str)],
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    let extra: String = headers
        .iter()
        .map(|(n, v)| format!("{}: {}\r\n", n, v))
        .collect();
    let raw = format!(
        "{} {} HTTP/1.1\r\nHost: {}\r\n{}Content-Length: {}\r\nContent-Type: application/json\r\n\r\n{}",
        method,
        path,
        addr,
        extra,
        body.len(),
        body
    );
    stream.write_all(raw.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    parse_response(&response)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad http response"))
}

fn parse_response(raw: &str) -> Option<HttpResponse> {
    let (head, body) = raw.split_once("\r\n\r\n")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
        .collect();
    Some(HttpResponse {
        status,
        headers,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_canned_response() {
        let raw =
            "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 2\r\n\r\n{}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 503);
        assert_eq!(r.header("retry-after"), Some("1"));
        assert_eq!(r.body, "{}");
        assert!(parse_response("garbage").is_none());
    }
}
