//! Online imputation serving for the SCIS pipeline.
//!
//! The batch CLI trains a GAIN generator and applies it to one file; this
//! crate closes the train-once/apply-many loop the paper's scalability
//! story implies. A trained generator plus everything needed to reproduce
//! its preprocessing is captured in a [`ModelBundle`] artifact; `scis
//! serve` loads it behind a dependency-free HTTP/1.1 server that answers
//! JSON impute requests for single rows or micro-batches.
//!
//! Three properties carry over from the batch pipeline and are enforced by
//! tests here:
//!
//! * **bit-identity** — a row's response is bit-identical whether it is
//!   served alone, coalesced with strangers into a batch, or computed by a
//!   direct in-process generator forward, at any
//!   [`ExecPolicy`](scis_tensor::ExecPolicy);
//! * **bounded memory** — concurrency is absorbed by a *bounded* queue; a
//!   full queue answers `503` + `Retry-After` instead of growing a backlog;
//! * **graceful degradation** — a poisoned generator or dead batcher drops
//!   the response to training-time column means and marks it with
//!   `X-Scis-Degraded: 1`, mirroring the batch CLI's exit-code-2 contract.
//!
//! Module map: [`bundle`] (artifact format), [`service`] (the impute
//! math), [`batcher`] (request coalescing), [`http`]/[`server`] (the wire
//! front end), [`client`] (test/bench client), [`json`] (request parsing).

#![warn(missing_docs)]

pub mod batcher;
pub mod bundle;
pub mod client;
pub mod http;
pub mod json;
pub mod server;
pub mod service;

pub use batcher::{BatchConfig, BatchedReply, Batcher, SubmitError};
pub use bundle::{BundleError, ColumnMeta, ModelBundle};
pub use client::{request, HttpResponse};
pub use server::{Server, ServerConfig};
pub use service::{ImputeResult, ImputeRow, ImputeService, ServeError};
