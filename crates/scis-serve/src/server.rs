//! The HTTP front end: accept loop, routing, and the degradation ladder.
//!
//! One thread accepts connections, one short-lived thread handles each
//! connection, and one batcher thread owns the generator. The ladder, top
//! to bottom:
//!
//! 1. healthy — requests coalesce through the [`Batcher`] into policy-aware
//!    generator forwards;
//! 2. saturated — the bounded queue is full, the server answers `503` with
//!    `Retry-After` instead of building an unbounded backlog;
//! 3. degraded — the batcher is gone (or the generator emitted non-finite
//!    values), missing cells are filled with training-time column means and
//!    the response carries `X-Scis-Degraded: 1` — the serving analogue of
//!    the batch CLI's exit-code-2 semantics.

use crate::batcher::{BatchConfig, Batcher, SubmitError};
use crate::bundle::ModelBundle;
use crate::http::{read_request, write_response, write_response_typed, HttpError, Request};
use crate::json::{self, Json};
use crate::service::{ImputeResult, ImputeRow, ImputeService};
use scis_telemetry::{
    json_f64, render_prometheus, Counter, Hist, HistSnapshot, RateWindow, Telemetry,
};
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server knobs. `addr` may use port 0 for an ephemeral port;
/// [`Server::local_addr`] reports what was actually bound.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Execution policy for generator forwards (bit-identical at any).
    pub exec: scis_tensor::ExecPolicy,
    /// Batching knobs.
    pub batch: BatchConfig,
    /// Cap on request body bytes; larger bodies get `413`.
    pub max_body_bytes: usize,
    /// Cap on rows in one request; more gets `400`.
    pub max_request_rows: usize,
    /// Cap on concurrently handled connections; beyond it, `503`.
    pub max_connections: usize,
    /// Opt-in JSONL access log: one line per handled request (trace id,
    /// method, path, status, rows, latency, degraded flag), appended
    /// whole-line-at-a-time so concurrent writers interleave at line
    /// granularity only.
    pub access_log: Option<std::path::PathBuf>,
    /// Seed for the server-minted trace-id stream (16 hex chars per id).
    pub trace_seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            exec: scis_tensor::ExecPolicy::Auto,
            batch: BatchConfig::default(),
            max_body_bytes: 1 << 20,
            max_request_rows: 1024,
            max_connections: 256,
            access_log: None,
            trace_seed: 0x5c15_1d50,
        }
    }
}

struct Shared {
    batcher: Batcher,
    telemetry: Telemetry,
    columns: usize,
    fallback: Vec<f64>,
    started: Instant,
    stop: AtomicBool,
    active: AtomicUsize,
    /// Requests per second over the trailing window (off when telemetry is).
    req_rate: RateWindow,
    /// Imputed rows per second over the trailing window.
    row_rate: RateWindow,
    /// Seeded stream behind server-minted trace ids.
    trace_rng: Mutex<scis_tensor::Rng64>,
    /// Open access-log sink; one `write_all` per line keeps appends atomic
    /// at line granularity (the checkpoint-I/O append discipline).
    access_log: Option<Mutex<std::fs::File>>,
    cfg: ServerConfig,
}

/// A running server. Dropping it (or calling [`Server::shutdown`]) stops
/// the accept loop, drains in-flight connections, and joins the batcher.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    accept_join: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr` and starts serving `bundle`.
    pub fn start(
        bundle: ModelBundle,
        cfg: ServerConfig,
        telemetry: Telemetry,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let columns = bundle.n_features();
        let fallback = bundle.fallback_row();
        let service = ImputeService::new(bundle, cfg.exec, telemetry.clone());
        let batcher = Batcher::spawn(service, cfg.batch, telemetry.clone());
        let access_log = match &cfg.access_log {
            Some(path) => Some(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            )),
            None => None,
        };
        // rate windows share telemetry's off-is-free contract: a server run
        // with a disabled collector allocates no rate cells either
        let (req_rate, row_rate) = if telemetry.is_enabled() {
            (RateWindow::collecting(), RateWindow::collecting())
        } else {
            (RateWindow::off(), RateWindow::off())
        };
        let shared = Arc::new(Shared {
            batcher,
            telemetry,
            columns,
            fallback,
            started: Instant::now(),
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            req_rate,
            row_rate,
            trace_rng: Mutex::new(scis_tensor::Rng64::seed_from_u64(cfg.trace_seed)),
            access_log,
            cfg,
        });
        let accept_shared = shared.clone();
        let accept_join = std::thread::Builder::new()
            .name("scis-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server {
            shared,
            local_addr,
            accept_join: Some(accept_join),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Stops accepting, waits for in-flight handlers, joins the accept
    /// thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // unblock the accept loop with a throwaway connection
        let _ = TcpStream::connect(self.local_addr);
        if let Some(join) = self.accept_join.take() {
            let _ = join.join();
        }
        // bounded wait for handler threads to finish their last response
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.shared.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let mut stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        if shared.active.load(Ordering::SeqCst) >= shared.cfg.max_connections {
            shared.telemetry.incr(Counter::ServeRejected);
            let _ = write_response(
                &mut stream,
                503,
                &["Retry-After: 1".to_string()],
                "{\"error\":\"connection limit reached\"}",
            );
            continue;
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        let handler_shared = shared.clone();
        let spawned = std::thread::Builder::new()
            .name("scis-serve-conn".into())
            .spawn(move || {
                handle_connection(&mut stream, &handler_shared);
                handler_shared.active.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            shared.active.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// What one handled request resolved to — the facts the access log records.
#[derive(Debug, Clone, Copy)]
struct ReqOutcome {
    status: u16,
    rows: u64,
    batch_rows: u64,
    degraded: bool,
}

impl ReqOutcome {
    fn status(status: u16) -> Self {
        ReqOutcome {
            status,
            rows: 0,
            batch_rows: 0,
            degraded: false,
        }
    }
}

/// Mints the next server-assigned trace id: 16 hex chars from the seeded
/// per-server `Rng64` stream.
fn next_trace_id(shared: &Shared) -> String {
    let mut rng = shared
        .trace_rng
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    format!("{:016x}", rng.next_u64())
}

/// Appends one JSONL access-log line. The whole line goes out in a single
/// `write_all` under the sink mutex, so lines never interleave; a failed
/// write is dropped rather than failing the request it describes.
fn access_log_line(
    shared: &Shared,
    trace_id: &str,
    method: &str,
    path: &str,
    outcome: ReqOutcome,
    started: Instant,
) {
    let Some(log) = &shared.access_log else {
        return;
    };
    let ts_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let line = format!(
        "{{\"ts_ms\":{},\"trace_id\":\"{}\",\"method\":\"{}\",\"path\":\"{}\",\"status\":{},\"rows\":{},\"batch_rows\":{},\"latency_ns\":{},\"degraded\":{}}}\n",
        ts_ms,
        trace_id,
        scis_telemetry::json_escape(method),
        scis_telemetry::json_escape(path),
        outcome.status,
        outcome.rows,
        outcome.batch_rows,
        started.elapsed().as_nanos().min(u64::MAX as u128),
        outcome.degraded,
    );
    let mut sink = log
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = sink.write_all(line.as_bytes());
}

fn handle_connection(stream: &mut TcpStream, shared: &Shared) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let request = match read_request(stream, shared.cfg.max_body_bytes) {
        Ok(r) => r,
        Err(HttpError::Io(_)) => return, // client vanished; nothing to answer
        Err(e) => {
            shared.telemetry.incr(Counter::ServeErrors);
            // unparseable requests still get a minted trace id, so the 4xx
            // a client sees can be matched to its access-log line
            let trace_id = next_trace_id(shared);
            let trace_header = format!("X-Scis-Trace-Id: {}", trace_id);
            let (status, body) = match e {
                HttpError::Malformed(m) => (
                    400,
                    format!("{{\"error\":{}}}", scis_telemetry::json_escape(&m)),
                ),
                HttpError::BodyTooLarge { declared, cap } => (
                    413,
                    format!(
                        "{{\"error\":\"body of {} bytes exceeds cap {}\"}}",
                        declared, cap
                    ),
                ),
                HttpError::Io(_) => unreachable!("handled above"),
            };
            let _ = write_response(stream, status, std::slice::from_ref(&trace_header), &body);
            access_log_line(
                shared,
                &trace_id,
                "-",
                "-",
                ReqOutcome::status(status),
                started,
            );
            return;
        }
    };
    shared.telemetry.incr(Counter::ServeRequests);
    shared.req_rate.record(1);
    // client-supplied ids pass through (already validated by the parser);
    // otherwise the server mints one from its seeded stream
    let trace_id = match &request.trace_id {
        Some(id) => id.clone(),
        None => next_trace_id(shared),
    };
    let trace_header = format!("X-Scis-Trace-Id: {}", trace_id);
    let outcome = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let body = format!(
                "{{\"status\":\"ok\",\"batcher_alive\":{},\"columns\":{}}}",
                shared.batcher.is_alive(),
                shared.columns
            );
            let _ = write_response(stream, 200, std::slice::from_ref(&trace_header), &body);
            ReqOutcome::status(200)
        }
        ("GET", "/statz") => {
            let body = statz_json(shared);
            let _ = write_response(stream, 200, std::slice::from_ref(&trace_header), &body);
            ReqOutcome::status(200)
        }
        ("GET", "/metricsz") => {
            let body = metricsz_text(shared);
            let _ = write_response_typed(
                stream,
                200,
                "text/plain; version=0.0.4",
                std::slice::from_ref(&trace_header),
                &body,
            );
            ReqOutcome::status(200)
        }
        ("POST", "/impute") => handle_impute(stream, shared, &request, &trace_id),
        (_, "/healthz" | "/statz" | "/metricsz" | "/impute") => {
            shared.telemetry.incr(Counter::ServeErrors);
            let _ = write_response(
                stream,
                405,
                std::slice::from_ref(&trace_header),
                "{\"error\":\"method not allowed\"}",
            );
            ReqOutcome::status(405)
        }
        _ => {
            shared.telemetry.incr(Counter::ServeErrors);
            let _ = write_response(
                stream,
                404,
                std::slice::from_ref(&trace_header),
                "{\"error\":\"no such route\"}",
            );
            ReqOutcome::status(404)
        }
    };
    access_log_line(
        shared,
        &trace_id,
        &request.method,
        &request.path,
        outcome,
        started,
    );
}

fn handle_impute(
    stream: &mut TcpStream,
    shared: &Shared,
    request: &Request,
    trace_id: &str,
) -> ReqOutcome {
    let trace_header = format!("X-Scis-Trace-Id: {}", trace_id);
    let rows = match parse_impute_body(&request.body, shared.columns, shared.cfg.max_request_rows) {
        Ok(rows) => rows,
        Err(message) => {
            shared.telemetry.incr(Counter::ServeErrors);
            let body = format!("{{\"error\":{}}}", scis_telemetry::json_escape(&message));
            let _ = write_response(stream, 400, std::slice::from_ref(&trace_header), &body);
            return ReqOutcome::status(400);
        }
    };
    let n_rows = rows.len() as u64;
    shared.telemetry.add(Counter::ServeRows, n_rows);
    shared.row_rate.record(n_rows);

    let mut echo_id = trace_id.to_string();
    let (result, batch_rows) = match shared.batcher.submit(rows.clone(), Arc::from(trace_id)) {
        Ok(reply) => match reply.recv() {
            // the reply carries the id back out of the queue: the echoed
            // header is the one that rode through the batcher with the job
            Ok(r) => {
                echo_id = r.trace_id.to_string();
                (r.result, r.batch_rows)
            }
            // the batcher died while holding our job: bottom ladder rung
            Err(_) => (mean_fallback(shared, &rows), 0),
        },
        Err(SubmitError::QueueFull) => {
            shared.telemetry.incr(Counter::ServeRejected);
            let _ = write_response(
                stream,
                503,
                &["Retry-After: 1".to_string(), trace_header],
                "{\"error\":\"impute queue full, retry\"}",
            );
            return ReqOutcome {
                status: 503,
                rows: n_rows,
                batch_rows: 0,
                degraded: false,
            };
        }
        Err(SubmitError::Unavailable) => (mean_fallback(shared, &rows), 0),
    };

    let mut body = String::from("{\"rows\":[");
    for (i, row) in result.rows.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push('[');
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                body.push(',');
            }
            body.push_str(&json_f64(*v));
        }
        body.push(']');
    }
    body.push_str(&format!("],\"degraded\":{}}}", result.degraded));
    let mut headers = vec![format!("X-Scis-Trace-Id: {}", echo_id)];
    if result.degraded {
        headers.push("X-Scis-Degraded: 1".to_string());
    }
    let _ = write_response(stream, 200, &headers, &body);
    ReqOutcome {
        status: 200,
        rows: n_rows,
        batch_rows,
        degraded: result.degraded,
    }
}

fn mean_fallback(shared: &Shared, rows: &[ImputeRow]) -> ImputeResult {
    shared.telemetry.incr(Counter::ServeDegraded);
    let filled = rows
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .map(|(j, cell)| cell.unwrap_or(shared.fallback[j]))
                .collect()
        })
        .collect();
    ImputeResult {
        rows: filled,
        degraded: true,
    }
}

/// Parses a request body into rows. Accepts `{"row": [...]}` for one row
/// or `{"rows": [[...], ...]}` for a micro-batch; `null` marks a missing
/// cell. Width and row-count violations are typed messages for the `400`.
fn parse_impute_body(
    body: &[u8],
    columns: usize,
    max_rows: usize,
) -> Result<Vec<ImputeRow>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let row_arrays: Vec<&Json> = if let Some(rows) = doc.get("rows") {
        rows.as_arr()
            .ok_or_else(|| "\"rows\" must be an array of arrays".to_string())?
            .iter()
            .collect()
    } else if let Some(row) = doc.get("row") {
        vec![row]
    } else {
        return Err("body must carry \"row\" or \"rows\"".to_string());
    };
    if row_arrays.is_empty() {
        return Err("no rows to impute".to_string());
    }
    if row_arrays.len() > max_rows {
        return Err(format!(
            "{} rows exceeds the per-request cap of {}",
            row_arrays.len(),
            max_rows
        ));
    }
    let mut rows = Vec::with_capacity(row_arrays.len());
    for (i, row_json) in row_arrays.iter().enumerate() {
        let cells = row_json
            .as_arr()
            .ok_or_else(|| format!("row {} is not an array", i))?;
        if cells.len() != columns {
            return Err(format!(
                "row {} width {} does not match the model's {} columns",
                i,
                cells.len(),
                columns
            ));
        }
        let mut row: ImputeRow = Vec::with_capacity(columns);
        for (j, cell) in cells.iter().enumerate() {
            match cell {
                Json::Null => row.push(None),
                Json::Num(v) => row.push(Some(*v)),
                _ => return Err(format!("row {} column {} must be a number or null", i, j)),
            }
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Upper bound of the histogram bucket holding the `q`-quantile
/// observation. Power-of-two buckets make this an upper envelope, which is
/// the honest direction for latency reporting.
pub fn hist_quantile(h: &HistSnapshot, q: f64) -> u64 {
    if h.count == 0 {
        return 0;
    }
    let target = ((q * h.count as f64).ceil() as u64).clamp(1, h.count);
    let mut seen = 0u64;
    for (_, hi, c) in h.nonzero_buckets() {
        seen += c;
        if seen >= target {
            return hi;
        }
    }
    0
}

fn statz_json(shared: &Shared) -> String {
    let t = &shared.telemetry;
    let latency = t.hist(Hist::ServeRequestNanos);
    let batch_rows = t.hist(Hist::ServeBatchRows);
    let mean_ns = if latency.count > 0 {
        latency.sum as f64 / latency.count as f64
    } else {
        0.0
    };
    let mean_rows = if batch_rows.count > 0 {
        batch_rows.sum as f64 / batch_rows.count as f64
    } else {
        0.0
    };
    let mut counters = String::new();
    for c in [
        Counter::ServeRequests,
        Counter::ServeRows,
        Counter::ServeBatches,
        Counter::ServeRejected,
        Counter::ServeErrors,
        Counter::ServeDegraded,
    ] {
        if !counters.is_empty() {
            counters.push(',');
        }
        counters.push_str(&format!("\"{}\":{}", c.name(), t.counter(c)));
    }
    // v2 = v1 + quantile_kind disclosure + rate-window gauges; every v1
    // field is unchanged (README documents the migration)
    format!(
        concat!(
            "{{\"schema\":\"scis-serve-statz-v2\",",
            "\"quantile_kind\":\"bucket_upper_bound\",",
            "\"uptime_secs\":{},",
            "\"columns\":{},",
            "\"batcher_alive\":{},",
            "\"active_connections\":{},",
            "\"requests_per_sec\":{},",
            "\"rows_per_sec\":{},",
            "\"counters\":{{{}}},",
            "\"request_latency_ns\":{{\"count\":{},\"mean\":{},\"p50\":{},\"p99\":{}}},",
            "\"batch_rows\":{{\"count\":{},\"mean\":{},\"p50\":{},\"p99\":{}}}}}"
        ),
        json_f64(shared.started.elapsed().as_secs_f64()),
        shared.columns,
        shared.batcher.is_alive(),
        shared.active.load(Ordering::SeqCst),
        json_f64(shared.req_rate.per_sec()),
        json_f64(shared.row_rate.per_sec()),
        counters,
        latency.count,
        json_f64(mean_ns),
        hist_quantile(&latency, 0.50),
        hist_quantile(&latency, 0.99),
        batch_rows.count,
        json_f64(mean_rows),
        hist_quantile(&batch_rows, 0.50),
        hist_quantile(&batch_rows, 0.99),
    )
}

/// The `/metricsz` body: the full telemetry slab in Prometheus text format
/// plus the serving layer's trailing-window throughput gauges.
fn metricsz_text(shared: &Shared) -> String {
    let mut out = render_prometheus(&shared.telemetry.snapshot());
    out.push_str(&format!(
        concat!(
            "# TYPE scis_serve_requests_per_sec gauge\n",
            "scis_serve_requests_per_sec {}\n",
            "# TYPE scis_serve_rows_per_sec gauge\n",
            "scis_serve_rows_per_sec {}\n"
        ),
        shared.req_rate.per_sec(),
        shared.row_rate.per_sec()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scis_telemetry::hist_bucket;

    #[test]
    fn hist_quantile_walks_buckets() {
        let mut h = HistSnapshot::empty();
        // 90 observations of ~100, 10 of ~100000
        h.buckets[hist_bucket(100)] = 90;
        h.buckets[hist_bucket(100_000)] = 10;
        h.count = 100;
        h.sum = 90 * 100 + 10 * 100_000;
        let p50 = hist_quantile(&h, 0.50);
        let p99 = hist_quantile(&h, 0.99);
        assert!((100..256).contains(&p50), "p50 = {}", p50);
        assert!(p99 >= 100_000, "p99 = {}", p99);
        assert_eq!(hist_quantile(&HistSnapshot::empty(), 0.5), 0);
    }

    #[test]
    fn parse_impute_body_shapes() {
        let rows = parse_impute_body(br#"{"row": [1, null, 2.5]}"#, 3, 16).unwrap();
        assert_eq!(rows, vec![vec![Some(1.0), None, Some(2.5)]]);
        let rows = parse_impute_body(br#"{"rows": [[1, 2], [null, 4]]}"#, 2, 16).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec![None, Some(4.0)]);
    }

    #[test]
    fn parse_impute_body_typed_errors() {
        let err = parse_impute_body(br#"{"row": [1, 2]}"#, 3, 16).unwrap_err();
        assert!(err.contains("width 2"), "{}", err);
        assert!(err.contains("3 columns"), "{}", err);
        assert!(parse_impute_body(b"not json", 3, 16).is_err());
        assert!(parse_impute_body(br#"{"rows": []}"#, 3, 16).is_err());
        assert!(parse_impute_body(br#"{"other": 1}"#, 3, 16).is_err());
        assert!(parse_impute_body(br#"{"rows": [[1,2],[1,2],[1,2]]}"#, 2, 2)
            .unwrap_err()
            .contains("cap"),);
        assert!(parse_impute_body(br#"{"row": [1, "x", 3]}"#, 3, 16).is_err());
    }
}
