//! A deliberately small HTTP/1.1 subset over [`std::net::TcpStream`]:
//! enough to parse one request (request line, headers, `Content-Length`
//! body) and write one response, connection-close semantics. No chunked
//! encoding, no pipelining, no TLS — clients that need more sit behind a
//! reverse proxy, exactly like every other single-binary model server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased).
    pub method: String,
    /// Path component, query string stripped.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Client-supplied `X-Scis-Trace-Id`, when present and well-formed
    /// (1–64 characters of `[A-Za-z0-9_-]`); anything else is ignored and
    /// the server mints its own id.
    pub trace_id: Option<String>,
}

/// Whether a client-supplied trace id is safe to echo into headers and the
/// access log: 1–64 chars, alphanumerics plus `-` and `_` only.
fn valid_trace_id(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Malformed request line or headers → 400.
    Malformed(String),
    /// Body exceeds the configured cap → 413.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Server's cap.
        cap: usize,
    },
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io: {}", e),
            HttpError::Malformed(m) => write!(f, "malformed request: {}", m),
            HttpError::BodyTooLarge { declared, cap } => {
                write!(f, "body of {} bytes exceeds cap {}", declared, cap)
            }
        }
    }
}

/// Reads one request from the stream. `max_body` caps `Content-Length`.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported version {:?}",
            version
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length: Option<usize> = None;
    let mut trace_id: Option<String> = None;
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-headers".into()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let v = value.trim();
                // Strict canonical decimal only. `usize::from_str` would
                // accept a leading `+` ("+4"), and lenient parses of forms
                // like "1e3" or "0x10" are classic request-smuggling fodder
                // when a proxy and this server disagree on the body length.
                if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(HttpError::Malformed("bad content-length".into()));
                }
                let parsed: usize = v
                    .parse()
                    .map_err(|_| HttpError::Malformed("content-length overflow".into()))?;
                // duplicate headers must agree, else the framing is ambiguous
                if content_length.is_some_and(|prev| prev != parsed) {
                    return Err(HttpError::Malformed(
                        "conflicting content-length headers".into(),
                    ));
                }
                content_length = Some(parsed);
            } else if name.eq_ignore_ascii_case("x-scis-trace-id") {
                let v = value.trim();
                if valid_trace_id(v) {
                    trace_id = Some(v.to_string());
                }
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            cap: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        body,
        trace_id,
    })
}

/// Human phrase for the status codes this server emits.
pub fn status_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a JSON response with `Connection: close` and optional extra
/// headers (already formatted as `Name: value`).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[String],
    body: &str,
) -> std::io::Result<()> {
    write_response_typed(stream, status, "application/json", extra_headers, body)
}

/// Like [`write_response`] with an explicit `Content-Type` (the `/metricsz`
/// exposition is `text/plain`, everything else JSON).
pub fn write_response_typed(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[String],
    body: &str,
) -> std::io::Result<()> {
    let mut out = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status,
        status_phrase(status),
        content_type,
        body.len()
    );
    for h in extra_headers {
        out.push_str(h);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    out.push_str(body);
    stream.write_all(out.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &str, max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn, max_body);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req = roundtrip(
            "POST /impute?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/impute");
        assert_eq!(req.body, b"body");
        assert_eq!(req.trace_id, None);
    }

    #[test]
    fn captures_well_formed_trace_ids_only() {
        let req = roundtrip(
            "GET /healthz HTTP/1.1\r\nX-Scis-Trace-Id: abc-123_XYZ\r\n\r\n",
            1024,
        )
        .unwrap();
        assert_eq!(req.trace_id.as_deref(), Some("abc-123_XYZ"));
        // header name matching is case-insensitive, value is trimmed
        let req = roundtrip(
            "GET / HTTP/1.1\r\nx-scis-trace-id:  deadbeef \r\n\r\n",
            1024,
        )
        .unwrap();
        assert_eq!(req.trace_id.as_deref(), Some("deadbeef"));
        // ids that could corrupt headers or the JSONL log are discarded,
        // not echoed (the server mints a fresh one instead)
        for bad in ["", "has space", "quote\"", "semi;colon", &"x".repeat(65)] {
            let raw = format!("GET / HTTP/1.1\r\nX-Scis-Trace-Id: {}\r\n\r\n", bad);
            let req = roundtrip(&raw, 1024).unwrap();
            assert_eq!(req.trace_id, None, "trace id {:?} must be dropped", bad);
        }
    }

    #[test]
    fn rejects_oversized_bodies() {
        let err = roundtrip("POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n", 16).unwrap_err();
        assert!(matches!(
            err,
            HttpError::BodyTooLarge {
                declared: 999,
                cap: 16
            }
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            roundtrip("NONSENSE\r\n\r\n", 16),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_non_canonical_content_length() {
        // regression: `usize::from_str` accepts a leading `+`, so "+4" used
        // to slip through and desynchronize the framing vs. any proxy that
        // rejects it; same for hex/exponent spellings and the empty value
        for bad in ["+4", "-4", " ", "", "1e3", "0x10", "4 bytes", "4,0"] {
            let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\nbody", bad);
            assert!(
                matches!(roundtrip(&raw, 1024), Err(HttpError::Malformed(_))),
                "Content-Length {:?} must be rejected",
                bad
            );
        }
    }

    #[test]
    fn rejects_overflowing_content_length() {
        // all-digits but larger than usize::MAX: overflow, not panic/wrap
        let raw = "POST / HTTP/1.1\r\nContent-Length: 99999999999999999999999999\r\n\r\n";
        assert!(matches!(roundtrip(raw, 1024), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn conflicting_duplicate_content_lengths_are_rejected() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 2\r\n\r\nbody";
        assert!(matches!(roundtrip(raw, 1024), Err(HttpError::Malformed(_))));
        // agreeing duplicates keep unambiguous framing and stay accepted
        let raw = "POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody";
        assert_eq!(roundtrip(raw, 1024).unwrap().body, b"body");
    }
}
