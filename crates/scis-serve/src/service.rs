//! The serving-side impute engine: bundle in, filled rows out.
//!
//! [`ImputeService::impute_rows`] reproduces the batch CLI's math exactly —
//! normalize with the bundle's scaler, run the generator's deterministic
//! reconstruction (eval mode, noise pinned at
//! [`GainImputer::DET_NOISE`]), inverse-transform — with one serving
//! refinement: observed cells pass through *bit-exactly* (they never round
//!-trip the scaler). Because every dense layer computes each output row
//! from its input row alone, a row's response is bit-identical whether it
//! was served alone or coalesced into a batch with strangers, at any
//! [`ExecPolicy`].

use crate::bundle::{BundleError, ModelBundle};
use scis_imputers::GainImputer;
use scis_nn::{Mlp, Mode};
use scis_telemetry::Telemetry;
use scis_tensor::{ExecPolicy, Matrix, Rng64};

/// One request row: `None` marks a missing cell.
pub type ImputeRow = Vec<Option<f64>>;

/// Why a request could not be served. Maps to HTTP status codes at the
/// server layer (400 for the first two, 500 for `Internal`).
#[derive(Debug)]
pub enum ServeError {
    /// Row width does not match the bundle schema.
    WidthMismatch {
        /// Columns the model was trained on.
        expected: usize,
        /// Columns the request row carried.
        got: usize,
    },
    /// Request was structurally invalid (bad JSON, non-finite observed
    /// value, empty row set).
    BadRequest(String),
    /// The serving pipeline itself failed (batcher gone, channel closed).
    Internal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::WidthMismatch { expected, got } => write!(
                f,
                "row width {} does not match the model's {} columns",
                got, expected
            ),
            ServeError::BadRequest(m) => write!(f, "bad request: {}", m),
            ServeError::Internal(m) => write!(f, "internal: {}", m),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<BundleError> for ServeError {
    fn from(e: BundleError) -> Self {
        match e {
            BundleError::SchemaMismatch { expected, got } => {
                ServeError::WidthMismatch { expected, got }
            }
            other => ServeError::Internal(other.to_string()),
        }
    }
}

/// The result of imputing a set of rows.
#[derive(Debug, Clone)]
pub struct ImputeResult {
    /// Fully observed output rows, original units.
    pub rows: Vec<Vec<f64>>,
    /// True when any row was answered by the column-mean degradation
    /// ladder instead of the generator.
    pub degraded: bool,
}

/// A loaded bundle ready to answer impute requests.
pub struct ImputeService {
    columns: usize,
    mins: Vec<f64>,
    spans: Vec<f64>,
    fallback: Vec<f64>,
    generator: Mlp,
    telemetry: Telemetry,
}

impl ImputeService {
    /// Builds a service from a loaded bundle. The generator runs under
    /// `exec` (results are bit-identical at any policy) and reports
    /// forward-pass counts through `telemetry`.
    pub fn new(bundle: ModelBundle, exec: ExecPolicy, telemetry: Telemetry) -> Self {
        let mut generator = bundle.generator.clone();
        generator.set_exec(exec);
        // honor the training-time compute mode recorded in the bundle
        generator.set_precision(bundle.accel.precision());
        generator.set_telemetry(telemetry.clone());
        Self {
            columns: bundle.n_features(),
            mins: bundle.scaler.mins().to_vec(),
            spans: bundle.scaler.spans().to_vec(),
            fallback: bundle.fallback_row(),
            generator,
            telemetry,
        }
    }

    /// Number of data columns the service imputes.
    pub fn n_features(&self) -> usize {
        self.columns
    }

    /// Validates one request row: width and observed-value finiteness.
    pub fn validate_row(&self, row: &ImputeRow) -> Result<(), ServeError> {
        if row.len() != self.columns {
            return Err(ServeError::WidthMismatch {
                expected: self.columns,
                got: row.len(),
            });
        }
        for (j, cell) in row.iter().enumerate() {
            if let Some(v) = cell {
                if !v.is_finite() {
                    return Err(ServeError::BadRequest(format!(
                        "non-finite observed value in column {}",
                        j
                    )));
                }
            }
        }
        Ok(())
    }

    /// Imputes a batch of validated rows in one generator forward pass.
    ///
    /// Observed cells pass through bit-exactly; missing cells are the
    /// generator's output mapped back to original units. Rows whose
    /// generator output contains a non-finite value fall back to the
    /// bundle's column means (degradation ladder) and flip `degraded`.
    pub fn impute_rows(&mut self, rows: &[ImputeRow]) -> ImputeResult {
        let n = rows.len();
        let d = self.columns;
        debug_assert!(rows.iter().all(|r| r.len() == d));
        // normalized x (missing → 0.0) and mask, exactly as the batch
        // pipeline builds them from `values_filled(0.0)` / `dense_mask()`
        let x = Matrix::from_fn(n, d, |i, j| match rows[i][j] {
            Some(v) => (v - self.mins[j]) / self.spans[j],
            None => 0.0,
        });
        let mask = Matrix::from_fn(n, d, |i, j| if rows[i][j].is_some() { 1.0 } else { 0.0 });
        let noise = Matrix::full(n, d, GainImputer::DET_NOISE);
        let x_tilde = mask
            .hadamard(&x)
            .add(&mask.map(|m| 1.0 - m).hadamard(&noise));
        let g_in = x_tilde.hcat(&mask);
        let mut throwaway = Rng64::seed_from_u64(0);
        let xbar = self.generator.forward(&g_in, Mode::Eval, &mut throwaway);

        let mut degraded = false;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let row_finite = xbar.row(i).iter().all(|v| v.is_finite());
            if !row_finite {
                degraded = true;
                self.telemetry.incr(scis_telemetry::Counter::ServeDegraded);
            }
            let mut filled = Vec::with_capacity(d);
            for j in 0..d {
                filled.push(match rows[i][j] {
                    // observed cells never round-trip the scaler
                    Some(v) => v,
                    None if row_finite => xbar[(i, j)] * self.spans[j] + self.mins[j],
                    None => self.fallback[j],
                });
            }
            out.push(filled);
        }
        ImputeResult {
            rows: out,
            degraded,
        }
    }

    /// The degradation ladder's bottom rung: fill missing cells with the
    /// bundle's column means, no generator involved. Used when the batcher
    /// is unavailable so the service can still answer.
    pub fn impute_rows_mean(&self, rows: &[ImputeRow]) -> ImputeResult {
        let rows = rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(j, cell)| cell.unwrap_or(self.fallback[j]))
                    .collect()
            })
            .collect();
        ImputeResult {
            rows,
            degraded: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::ColumnMeta;
    use scis_core::dim::AccelConfig;
    use scis_data::dataset::ColumnKind;
    use scis_data::normalize::MinMaxScaler;
    use scis_imputers::{AdversarialImputer, TrainConfig};

    fn service(d: usize) -> (ImputeService, ModelBundle) {
        let mut rng = Rng64::seed_from_u64(11);
        let mut gain = GainImputer::new(TrainConfig::fast_test());
        gain.init_networks(d, &mut rng);
        let spec = gain.generator_spec();
        let generator = gain.generator_mut().clone();
        let values = Matrix::from_fn(30, d, |i, j| i as f64 * 0.1 + j as f64);
        let scaler = MinMaxScaler::fit(&values);
        let columns = (0..d)
            .map(|j| ColumnMeta {
                name: format!("c{}", j),
                kind: ColumnKind::Continuous,
                mean: 1.0 + j as f64,
            })
            .collect();
        let bundle =
            ModelBundle::new(generator, spec, scaler, columns, AccelConfig::default()).unwrap();
        (
            ImputeService::new(bundle.clone(), ExecPolicy::Serial, Telemetry::off()),
            bundle,
        )
    }

    #[test]
    fn observed_cells_pass_through_bit_exactly() {
        let (mut svc, _) = service(3);
        let v = 0.1 + 0.2; // not exactly representable as 0.3
        let rows = vec![vec![Some(v), None, Some(2.75)]];
        let out = svc.impute_rows(&rows);
        assert_eq!(out.rows[0][0].to_bits(), v.to_bits());
        assert_eq!(out.rows[0][2].to_bits(), 2.75f64.to_bits());
        assert!(out.rows[0][1].is_finite());
        assert!(!out.degraded);
    }

    #[test]
    fn batched_rows_match_singleton_rows_bitwise() {
        let (mut svc, _) = service(4);
        let rows: Vec<ImputeRow> = (0..16)
            .map(|i| {
                (0..4)
                    .map(|j| {
                        if (i + j) % 3 == 0 {
                            None
                        } else {
                            Some(i as f64 * 0.3 + j as f64)
                        }
                    })
                    .collect()
            })
            .collect();
        let batched = svc.impute_rows(&rows);
        for (i, row) in rows.iter().enumerate() {
            let single = svc.impute_rows(std::slice::from_ref(row));
            for j in 0..4 {
                assert_eq!(
                    single.rows[0][j].to_bits(),
                    batched.rows[i][j].to_bits(),
                    "row {} col {}",
                    i,
                    j
                );
            }
        }
    }

    #[test]
    fn exec_policy_does_not_change_results() {
        let (mut serial, bundle) = service(4);
        let mut par = ImputeService::new(bundle, ExecPolicy::threads(4), Telemetry::off());
        let rows: Vec<ImputeRow> = (0..8)
            .map(|i| vec![Some(i as f64), None, Some(0.5), None])
            .collect();
        let a = serial.impute_rows(&rows);
        let b = par.impute_rows(&rows);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            for (va, vb) in ra.iter().zip(rb) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }

    #[test]
    fn wrong_width_row_is_rejected_typed() {
        let (svc, _) = service(3);
        match svc.validate_row(&vec![Some(1.0); 2]) {
            Err(ServeError::WidthMismatch {
                expected: 3,
                got: 2,
            }) => {}
            other => panic!("expected WidthMismatch, got {:?}", other.is_ok()),
        }
        assert!(svc.validate_row(&vec![Some(1.0), None, Some(2.0)]).is_ok());
    }

    #[test]
    fn non_finite_observed_value_is_rejected() {
        let (svc, _) = service(2);
        assert!(matches!(
            svc.validate_row(&vec![Some(f64::NAN), None]),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn poisoned_generator_degrades_to_column_means() {
        let (_, bundle) = service(2);
        let mut poisoned = bundle;
        let n = poisoned.generator.num_params();
        poisoned.generator.set_param_vector(&vec![f64::NAN; n]);
        let tel = Telemetry::collecting();
        let mut svc = ImputeService::new(poisoned, ExecPolicy::Serial, tel.clone());
        let out = svc.impute_rows(&[vec![Some(7.0), None]]);
        assert!(out.degraded);
        assert_eq!(out.rows[0][0], 7.0, "observed still passes through");
        assert_eq!(out.rows[0][1], 2.0, "missing takes the column mean");
        assert_eq!(tel.counter(scis_telemetry::Counter::ServeDegraded), 1);
    }

    #[test]
    fn mean_ladder_fills_all_missing() {
        let (svc, _) = service(3);
        let out = svc.impute_rows_mean(&[vec![None, Some(5.0), None]]);
        assert!(out.degraded);
        assert_eq!(out.rows[0], vec![1.0, 5.0, 3.0]);
    }
}
