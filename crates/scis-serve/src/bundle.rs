//! The `ModelBundle` artifact: everything serving needs in one checksummed
//! file.
//!
//! Training (`scis train --save-model`) writes a bundle; `scis impute
//! --model` and `scis serve --model` load it. A bundle carries the trained
//! generator (embedded in the [`scis_nn::mlp_to_string`] v2 format, its own
//! checksum included), the [`MinMaxScaler`] fitted on the training input,
//! per-column metadata (name, kind, observed mean in original units — the
//! degradation ladder's fallback values), and the [`AccelConfig`] the model
//! was trained under (provenance; serving itself only runs generator
//! forwards).
//!
//! Format (line-oriented, versioned, FNV-1a-64 whole-file checksum,
//! atomic writes — same discipline as the checkpoint and model formats):
//!
//! ```text
//! scis-bundle v1
//! columns <d>
//! col <kind> <min_hex> <span_hex> <mean_hex> <name>   × d
//! accel <warm_start> <decomposed_cost> <eps_scale_cold> <f32_compute>
//! generator <n_lines>
//! <embedded scis-mlp v2 text>
//! checksum <fnv1a64 of everything above, hex>
//! ```

use scis_core::dim::AccelConfig;
use scis_data::dataset::ColumnKind;
use scis_data::normalize::MinMaxScaler;
use scis_nn::serialize::ModelIoError;
use scis_nn::{fnv1a64, mlp_from_str, mlp_to_string, write_atomic, Mlp, MlpSpec};
use std::path::Path;

/// Errors from bundle load/save — always typed, never a panic: a malformed
/// or mismatched bundle must map to a clean CLI exit / HTTP error.
#[derive(Debug)]
pub enum BundleError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file.
    Format {
        /// 1-based line number (0 when unknown).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The whole-file checksum does not match — truncation or bit-rot.
    Checksum {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the contents as read.
        actual: u64,
    },
    /// The embedded generator section failed to parse.
    Model(ModelIoError),
    /// The bundle's column count does not match the data it is asked to
    /// impute (wrong-width request row, wrong-schema CSV, or a generator
    /// whose input width disagrees with the recorded columns).
    SchemaMismatch {
        /// Columns the bundle was trained on.
        expected: usize,
        /// Columns the caller presented.
        got: usize,
    },
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::Io(e) => write!(f, "io error: {}", e),
            BundleError::Format { line, message } => write!(f, "line {}: {}", line, message),
            BundleError::Checksum { expected, actual } => write!(
                f,
                "bundle checksum mismatch: file records {:016x}, contents hash to {:016x}",
                expected, actual
            ),
            BundleError::Model(e) => write!(f, "embedded generator: {}", e),
            BundleError::SchemaMismatch { expected, got } => write!(
                f,
                "schema mismatch: bundle has {} columns, request has {}",
                expected, got
            ),
        }
    }
}

impl std::error::Error for BundleError {}

impl From<std::io::Error> for BundleError {
    fn from(e: std::io::Error) -> Self {
        BundleError::Io(e)
    }
}

impl From<ModelIoError> for BundleError {
    fn from(e: ModelIoError) -> Self {
        BundleError::Model(e)
    }
}

/// Per-column serving metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMeta {
    /// Column name (CSV header cell; `c<j>` when the source had none).
    pub name: String,
    /// Continuous or ordinal-coded categorical.
    pub kind: ColumnKind,
    /// Mean of the observed cells in *original* units — the value the
    /// column-mean degradation ladder serves. NaN when the training input
    /// had no observed cells in this column.
    pub mean: f64,
}

/// A trained model plus everything needed to serve it.
#[derive(Clone)]
pub struct ModelBundle {
    /// Per-column metadata, one entry per data column.
    pub columns: Vec<ColumnMeta>,
    /// The min–max scaler fitted on the training input.
    pub scaler: MinMaxScaler,
    /// Acceleration settings the model was trained under (provenance).
    pub accel: AccelConfig,
    /// The trained generator network (normalized `[0,1]` domain).
    pub generator: Mlp,
    /// The generator's architecture descriptor.
    pub spec: MlpSpec,
}

fn kind_name(k: &ColumnKind) -> String {
    match k {
        ColumnKind::Continuous => "cont".into(),
        ColumnKind::Categorical { levels } => format!("cat:{}", levels),
    }
}

fn kind_from(s: &str, line: usize) -> Result<ColumnKind, BundleError> {
    if s == "cont" {
        return Ok(ColumnKind::Continuous);
    }
    if let Some(levels) = s.strip_prefix("cat:").and_then(|v| v.parse().ok()) {
        return Ok(ColumnKind::Categorical { levels });
    }
    Err(BundleError::Format {
        line,
        message: format!("unknown column kind {:?}", s),
    })
}

fn parse_hex_f64(s: &str, line: usize, what: &str) -> Result<f64, BundleError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| BundleError::Format {
            line,
            message: format!("bad {} hex {:?}", what, s),
        })
}

impl ModelBundle {
    /// Assembles a bundle, checking internal consistency: the generator
    /// input width must be the `2·d` GAIN encoding of `columns.len()`, and
    /// the scaler must cover the same columns.
    pub fn new(
        generator: Mlp,
        spec: MlpSpec,
        scaler: MinMaxScaler,
        columns: Vec<ColumnMeta>,
        accel: AccelConfig,
    ) -> Result<Self, BundleError> {
        let d = columns.len();
        if spec.in_dim != 2 * d {
            return Err(BundleError::SchemaMismatch {
                expected: d,
                got: spec.in_dim / 2,
            });
        }
        if scaler.n_cols() != d {
            return Err(BundleError::SchemaMismatch {
                expected: d,
                got: scaler.n_cols(),
            });
        }
        Ok(Self {
            columns,
            scaler,
            accel,
            generator,
            spec,
        })
    }

    /// Number of data columns the bundle imputes.
    pub fn n_features(&self) -> usize {
        self.columns.len()
    }

    /// Rejects rows of the wrong width with a typed error (HTTP 400 / CLI
    /// exit 1 at the call sites — never a panic).
    pub fn validate_width(&self, got: usize) -> Result<(), BundleError> {
        if got != self.n_features() {
            return Err(BundleError::SchemaMismatch {
                expected: self.n_features(),
                got,
            });
        }
        Ok(())
    }

    /// Renders the bundle to its v1 text format (trailing checksum line).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut body = String::new();
        let _ = writeln!(body, "scis-bundle v1");
        let _ = writeln!(body, "columns {}", self.columns.len());
        for (j, col) in self.columns.iter().enumerate() {
            // names are free text at end of line; newlines cannot survive a
            // line format, so they are replaced on write
            let name = col.name.replace(['\n', '\r'], " ");
            let _ = writeln!(
                body,
                "col {} {:016x} {:016x} {:016x} {}",
                kind_name(&col.kind),
                self.scaler.mins()[j].to_bits(),
                self.scaler.spans()[j].to_bits(),
                col.mean.to_bits(),
                name
            );
        }
        let _ = writeln!(
            body,
            "accel {} {} {} {}",
            self.accel.warm_start as u8,
            self.accel.decomposed_cost as u8,
            self.accel.eps_scale_cold as u8,
            self.accel.f32_compute as u8
        );
        let generator = mlp_to_string(&self.generator, &self.spec);
        let _ = writeln!(body, "generator {}", generator.lines().count());
        body.push_str(&generator);
        let _ = writeln!(body, "checksum {:016x}", fnv1a64(body.as_bytes()));
        body
    }

    /// Saves the bundle atomically (temp file → fsync → rename).
    pub fn save(&self, path: &Path) -> Result<(), BundleError> {
        write_atomic(path, self.to_text().as_bytes())?;
        Ok(())
    }

    /// Loads a bundle from `path`; see [`ModelBundle::from_text`].
    pub fn load(path: &Path) -> Result<Self, BundleError> {
        let content = std::fs::read_to_string(path)?;
        Self::from_text(&content)
    }

    /// Parses a bundle, verifying the whole-file checksum, the embedded
    /// generator's own checksum, and cross-section column-count
    /// consistency. Truncated, corrupted, or internally inconsistent
    /// bundles are typed errors.
    pub fn from_text(content: &str) -> Result<Self, BundleError> {
        let lines: Vec<&str> = content.lines().collect();
        let mut idx = 0usize;
        let mut next = |expect: &str| -> Result<(usize, &str), BundleError> {
            match lines.get(idx) {
                Some(l) => {
                    idx += 1;
                    Ok((idx, l))
                }
                None => Err(BundleError::Format {
                    line: lines.len(),
                    message: format!("unexpected end of file (expected {})", expect),
                }),
            }
        };

        let (l1, header) = next("header")?;
        match header.trim() {
            "scis-bundle v1" => {}
            other if other.starts_with("scis-bundle ") => {
                return Err(BundleError::Format {
                    line: l1,
                    message: format!(
                        "unsupported bundle version {:?} (this build reads v1)",
                        other.trim_start_matches("scis-bundle ")
                    ),
                });
            }
            _ => {
                return Err(BundleError::Format {
                    line: l1,
                    message: "bad header".into(),
                });
            }
        }

        let (l2, cols_line) = next("columns <d>")?;
        let d: usize = cols_line
            .strip_prefix("columns ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or(BundleError::Format {
                line: l2,
                message: "expected `columns <d>`".into(),
            })?;
        if d == 0 {
            return Err(BundleError::Format {
                line: l2,
                message: "bundle has zero columns".into(),
            });
        }

        let mut columns = Vec::with_capacity(d);
        let mut mins = Vec::with_capacity(d);
        let mut spans = Vec::with_capacity(d);
        for _ in 0..d {
            let (ln, line) = next("col")?;
            let rest = line.strip_prefix("col ").ok_or(BundleError::Format {
                line: ln,
                message: format!("expected `col …`, got {:?}", line),
            })?;
            let mut fields = rest.splitn(5, ' ');
            let kind = kind_from(
                fields.next().ok_or(BundleError::Format {
                    line: ln,
                    message: "missing column kind".into(),
                })?,
                ln,
            )?;
            let mut hex = |what: &str| -> Result<f64, BundleError> {
                let field = fields.next().ok_or(BundleError::Format {
                    line: ln,
                    message: format!("missing {}", what),
                })?;
                parse_hex_f64(field, ln, what)
            };
            let min = hex("min")?;
            let span = hex("span")?;
            let mean = hex("mean")?;
            let name = fields.next().unwrap_or("").to_string();
            columns.push(ColumnMeta { name, kind, mean });
            mins.push(min);
            spans.push(span);
        }

        let (la, accel_line) = next("accel")?;
        let accel_fields: Vec<&str> = accel_line
            .strip_prefix("accel ")
            .map(|r| r.split_whitespace().collect())
            .unwrap_or_default();
        let flag = |i: usize| -> Result<bool, BundleError> {
            match accel_fields.get(i) {
                Some(&"0") => Ok(false),
                Some(&"1") => Ok(true),
                _ => Err(BundleError::Format {
                    line: la,
                    message: "expected `accel <0|1> <0|1> <0|1> [<0|1>]`".into(),
                }),
            }
        };
        // 3 fields = legacy bundles from before the f32 compute mode
        if accel_fields.len() != 3 && accel_fields.len() != 4 {
            return Err(BundleError::Format {
                line: la,
                message: "expected `accel <0|1> <0|1> <0|1> [<0|1>]`".into(),
            });
        }
        let accel = AccelConfig::default()
            .warm_start(flag(0)?)
            .decomposed_cost(flag(1)?)
            .eps_scale_cold(flag(2)?)
            .f32_compute(if accel_fields.len() == 4 {
                flag(3)?
            } else {
                false
            });

        let (lg, gen_line) = next("generator <n>")?;
        let n_gen_lines: usize = gen_line
            .strip_prefix("generator ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or(BundleError::Format {
                line: lg,
                message: "expected `generator <n_lines>`".into(),
            })?;
        let mut generator_text = String::new();
        for _ in 0..n_gen_lines {
            let (_, line) = next("generator body")?;
            generator_text.push_str(line);
            generator_text.push('\n');
        }

        let (lc, ck_line) = next("checksum")?;
        let expected = ck_line
            .strip_prefix("checksum ")
            .and_then(|v| u64::from_str_radix(v.trim(), 16).ok())
            .ok_or(BundleError::Format {
                line: lc,
                message: "expected `checksum <hex>`".into(),
            })?;
        let hashed: String = lines[..lc - 1].iter().map(|l| format!("{}\n", l)).collect();
        let actual = fnv1a64(hashed.as_bytes());
        if actual != expected {
            return Err(BundleError::Checksum { expected, actual });
        }

        let (generator, spec) = mlp_from_str(&generator_text)?;
        let scaler = MinMaxScaler::from_params(mins, spans)
            .map_err(|message| BundleError::Format { line: 0, message })?;
        Self::new(generator, spec, scaler, columns, accel)
    }

    /// Column means in original units — the degradation ladder's fallback
    /// row (non-finite means degrade further to 0.0 so a malformed bundle
    /// can still answer).
    pub fn fallback_row(&self) -> Vec<f64> {
        self.columns
            .iter()
            .map(|c| if c.mean.is_finite() { c.mean } else { 0.0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scis_imputers::{AdversarialImputer, GainImputer, TrainConfig};
    use scis_tensor::{Matrix, Rng64};

    fn sample_bundle(d: usize) -> ModelBundle {
        let mut rng = Rng64::seed_from_u64(9);
        let mut gain = GainImputer::new(TrainConfig::fast_test());
        gain.init_networks(d, &mut rng);
        let spec = gain.generator_spec();
        let generator = gain.generator_mut().clone();
        let values = Matrix::from_fn(20, d, |i, j| (i + j) as f64);
        let scaler = MinMaxScaler::fit(&values);
        let columns = (0..d)
            .map(|j| ColumnMeta {
                name: format!("col {}", j),
                kind: ColumnKind::Continuous,
                mean: j as f64 + 0.5,
            })
            .collect();
        ModelBundle::new(generator, spec, scaler, columns, AccelConfig::all()).unwrap()
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let b = sample_bundle(4);
        let text = b.to_text();
        let loaded = ModelBundle::from_text(&text).unwrap();
        assert_eq!(loaded.columns, b.columns);
        assert_eq!(loaded.scaler.mins(), b.scaler.mins());
        assert_eq!(loaded.scaler.spans(), b.scaler.spans());
        assert_eq!(loaded.spec, b.spec);
        assert_eq!(loaded.accel.warm_start, b.accel.warm_start);
        let mut a = loaded.generator.clone();
        let mut bg = b.generator.clone();
        assert_eq!(a.param_vector(), bg.param_vector());
    }

    #[test]
    fn truncated_bundle_is_a_typed_error() {
        let b = sample_bundle(3);
        let text = b.to_text();
        // cut mid generator section: structure breaks or checksum fails,
        // either way a typed error, never a panic
        for frac in [4, 2, 3] {
            let cut = &text[..text.len() / frac];
            match ModelBundle::from_text(cut) {
                Err(
                    BundleError::Format { .. }
                    | BundleError::Checksum { .. }
                    | BundleError::Model(_),
                ) => {}
                Err(other) => panic!("unexpected error kind: {}", other),
                Ok(_) => panic!("truncated bundle loaded"),
            }
        }
    }

    #[test]
    fn bitrot_is_caught_by_the_whole_file_checksum() {
        let b = sample_bundle(3);
        let text = b.to_text();
        // flip a hex digit in a col line (outside the generator's own
        // checksummed section)
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let col_line = lines.iter().position(|l| l.starts_with("col ")).unwrap();
        lines[col_line] = lines[col_line].replacen('0', "1", 1);
        let tampered = lines.join("\n") + "\n";
        assert!(matches!(
            ModelBundle::from_text(&tampered),
            Err(BundleError::Checksum { .. })
        ));
    }

    #[test]
    fn wrong_width_is_a_typed_schema_error() {
        let b = sample_bundle(4);
        assert!(b.validate_width(4).is_ok());
        match b.validate_width(3) {
            Err(BundleError::SchemaMismatch {
                expected: 4,
                got: 3,
            }) => {}
            other => panic!("expected SchemaMismatch, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn column_names_with_spaces_survive() {
        let b = sample_bundle(2);
        let loaded = ModelBundle::from_text(&b.to_text()).unwrap();
        assert_eq!(loaded.columns[1].name, "col 1");
    }

    #[test]
    fn version_skew_is_rejected_by_name() {
        match ModelBundle::from_text("scis-bundle v9\ncolumns 1\n") {
            Err(BundleError::Format { message, .. }) => {
                assert!(message.contains("v9"), "{}", message)
            }
            other => panic!("expected Format error, got ok={}", other.is_ok()),
        }
    }

    #[test]
    fn nan_mean_survives_roundtrip_and_fallback_degrades_to_zero() {
        let mut b = sample_bundle(2);
        b.columns[0].mean = f64::NAN;
        let loaded = ModelBundle::from_text(&b.to_text()).unwrap();
        assert!(loaded.columns[0].mean.is_nan());
        assert_eq!(loaded.fallback_row(), vec![0.0, 1.5]);
    }
}
