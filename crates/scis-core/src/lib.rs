#![warn(missing_docs)]

//! `scis-core` — the paper's contribution: the SCIS scalable imputation
//! system for differentiable generative adversarial imputation models.
//!
//! SCIS wraps any [`scis_imputers::AdversarialImputer`] (GAIN, GINN) and
//! accelerates it under an accuracy guarantee:
//!
//! * [`dim`] — *Differentiable Imputation Modeling*: retrains the wrapped
//!   model's generator under the masking Sinkhorn divergence of
//!   [`scis_ot`], optionally through an adversarially-trained critic
//!   embedding (the "discriminator maximizes the MS divergence" game of
//!   §IV.B).
//! * [`sse`] — *Sample Size Estimation*: Theorem 1's parameter posterior
//!   `θ̂_n | θ0 ~ N(θ0, η H⁻¹)`, Proposition 2's Hoeffding-corrected
//!   Monte-Carlo acceptance rule, and the binary search for the minimum
//!   sample size `n*`.
//! * [`pipeline`] — Algorithm 1 end to end, with the timing/sample-rate
//!   accounting the paper's tables report.
//!
//! ```no_run
//! use scis_core::pipeline::{Scis, ScisConfig};
//! use scis_data::CovidRecipe;
//! use scis_imputers::{GainImputer, TrainConfig};
//! use scis_tensor::Rng64;
//!
//! let inst = CovidRecipe::Trial.generate(0.05, 7);
//! let mut rng = Rng64::seed_from_u64(7);
//! let mut gain = GainImputer::new(TrainConfig::default());
//! let outcome = Scis::new(ScisConfig::default()).try_run(&mut gain, &inst.dataset, inst.n0, &mut rng).unwrap();
//! println!("n* = {} (R_t = {:.2}%)", outcome.n_star, outcome.training_sample_rate() * 100.0);
//! ```

pub mod checkpoint;
pub mod dim;
pub mod error;
pub mod guard;
pub mod heartbeat;
pub mod pipeline;
pub mod report;
pub mod sse;

pub use checkpoint::{latest_checkpoint, CheckpointPolicy, TrainCheckpoint};
#[allow(deprecated)]
pub use dim::train_dim;
pub use dim::{
    train_dim_cached, train_dim_guarded, train_dim_resumable, train_dim_telemetered, try_train_dim,
    AccelConfig, DimConfig, DimReport, TrainHooks,
};
pub use error::{FailureReason, ScisError, TrainPhase, TrainingError, POST_MORTEM_TAIL};
pub use guard::{GuardConfig, GuardStats, TrainingGuard};
pub use heartbeat::{HeartbeatHook, Progress};
pub use pipeline::{RunAnomalies, Scis, ScisConfig, ScisOutcome, StreamOutcome};
pub use report::{
    CounterValue, HistogramReport, PhaseTiming, RunReport, SeriesReport, RUN_REPORT_SCHEMA_VERSION,
};
pub use sse::{SseConfig, SseProbe, SseResult};
