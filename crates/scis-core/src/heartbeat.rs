//! Training heartbeat: a JSONL progress stream for long runs.
//!
//! [`HeartbeatHook`] is the observability sibling of
//! [`RunDeadline`](crate::guard::RunDeadline): a cloneable handle polled
//! cooperatively at epoch, batch, and shard boundaries. An `off` hook is a
//! single `Option` branch on the hot path; an attached hook appends one
//! JSON line per emission to its writer — machine-tailable progress
//! (`scis train --progress -`) without a terminal UI.
//!
//! **Determinism contract** — the hook only ever *reads* the wall clock
//! and process stats, and only to decide whether and what to emit; nothing
//! it computes flows back into the model, the RNG streams, or telemetry.
//! The imputed output of a run is bit-identical with the hook attached or
//! absent (enforced by `tests/heartbeat.rs`).
//!
//! Emission is gated by a wall-clock interval: `interval = 0` (the
//! default) emits at every *coarse* boundary (epoch end, shard imputed)
//! and stays silent at fine-grained batch boundaries; a positive interval
//! additionally surfaces mid-epoch progress once the interval has elapsed,
//! while coarse boundaries inside the window are skipped — long quiet
//! phases and chatty tiny epochs both stay readable.

use scis_telemetry::{json_escape, json_f64};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A progress snapshot handed to the hook at a boundary. All fields are
/// computed by the caller from state it already tracks — building one
/// never touches the clock or the RNG.
#[derive(Debug, Clone, Copy)]
pub struct Progress<'a> {
    /// Pipeline phase name (`initial`, `calibration`, `retrain`, `impute`).
    pub phase: &'a str,
    /// Completed epochs in this phase (rolled-back attempts don't count).
    pub epoch: u64,
    /// Configured epochs for this phase.
    pub epochs: u64,
    /// Shards finished (streamed impute; 0 during training).
    pub shard: u64,
    /// Total shards (streamed impute; 0 during training).
    pub shards: u64,
    /// Rows processed so far in this phase.
    pub rows_done: u64,
    /// Total rows this phase will process (0 when unknown).
    pub rows_total: u64,
    /// Guard rollbacks so far in the run.
    pub rollbacks: u64,
    /// Warm-start hit rate of the last completed epoch (0 when unknown).
    pub warm_hit_rate: f64,
}

struct HeartbeatInner {
    writer: Mutex<Box<dyn Write + Send>>,
    interval: Duration,
    start: Instant,
    /// Nanos-since-start of the last emission, `u64::MAX` = never.
    last_emit: AtomicU64,
    seq: AtomicU64,
    /// Instant + rows_done of the previous emission, for the rows/s rate.
    prev: Mutex<Option<(Instant, u64)>>,
}

/// Cloneable handle to the heartbeat stream. `off` handles are free;
/// attached handles share one writer across every clone (the pipeline, the
/// trainer, and the streamed impute loop all hold clones).
#[derive(Clone, Default)]
pub struct HeartbeatHook(Option<Arc<HeartbeatInner>>);

impl std::fmt::Debug for HeartbeatHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => write!(f, "HeartbeatHook::off"),
            Some(inner) => write!(f, "HeartbeatHook(interval={:?})", inner.interval),
        }
    }
}

impl HeartbeatHook {
    /// A disabled hook: polling is one `Option` branch, no allocation.
    pub fn off() -> Self {
        HeartbeatHook(None)
    }

    /// Attaches a JSONL writer. `interval` gates emission (see module
    /// docs); `Duration::ZERO` emits at every coarse boundary.
    pub fn to_writer(writer: Box<dyn Write + Send>, interval: Duration) -> Self {
        HeartbeatHook(Some(Arc::new(HeartbeatInner {
            writer: Mutex::new(writer),
            interval,
            start: Instant::now(),
            last_emit: AtomicU64::new(u64::MAX),
            seq: AtomicU64::new(0),
            prev: Mutex::new(None),
        })))
    }

    /// True when a writer is attached.
    pub fn is_some(&self) -> bool {
        self.0.is_some()
    }

    /// Coarse boundary (epoch end, shard imputed): emits unless a positive
    /// interval is configured and has not elapsed since the last emission.
    pub fn poll(&self, p: &Progress<'_>) {
        let Some(inner) = &self.0 else { return };
        let now = Instant::now();
        if inner.interval > Duration::ZERO && !due(inner, now) {
            return;
        }
        emit(inner, now, p);
    }

    /// Fine boundary (batch end): emits only when a positive interval is
    /// configured *and* has elapsed — `interval = 0` keeps batch
    /// boundaries silent so tiny-epoch runs emit one line per epoch.
    pub fn poll_fine(&self, p: &Progress<'_>) {
        let Some(inner) = &self.0 else { return };
        if inner.interval.is_zero() {
            return;
        }
        let now = Instant::now();
        if due(inner, now) {
            emit(inner, now, p);
        }
    }
}

fn due(inner: &HeartbeatInner, now: Instant) -> bool {
    let last = inner.last_emit.load(Ordering::Acquire);
    if last == u64::MAX {
        return true;
    }
    let now_ns = now.duration_since(inner.start).as_nanos() as u64;
    now_ns.saturating_sub(last) >= inner.interval.as_nanos() as u64
}

fn emit(inner: &HeartbeatInner, now: Instant, p: &Progress<'_>) {
    let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
    let elapsed = now.duration_since(inner.start).as_secs_f64();
    // rows/s over the window since the previous emission — a recent-rate
    // gauge, not a lifetime average, so stalls show up immediately
    let rows_per_sec = {
        let mut prev = inner.prev.lock().unwrap_or_else(|p| p.into_inner());
        let rate = match *prev {
            Some((t, rows)) => {
                let dt = now.duration_since(t).as_secs_f64();
                if dt > 0.0 && p.rows_done >= rows {
                    (p.rows_done - rows) as f64 / dt
                } else {
                    0.0
                }
            }
            None => {
                if elapsed > 0.0 {
                    p.rows_done as f64 / elapsed
                } else {
                    0.0
                }
            }
        };
        *prev = Some((now, p.rows_done));
        rate
    };
    let eta_secs = if p.rows_total > p.rows_done && rows_per_sec > 0.0 {
        (p.rows_total - p.rows_done) as f64 / rows_per_sec
    } else {
        0.0
    };
    let line = format!(
        concat!(
            "{{\"type\":\"heartbeat\",\"seq\":{},\"phase\":\"{}\",",
            "\"epoch\":{},\"epochs\":{},\"shard\":{},\"shards\":{},",
            "\"rows_done\":{},\"rows_total\":{},\"rows_per_sec\":{},",
            "\"eta_secs\":{},\"elapsed_secs\":{},\"peak_rss_bytes\":{},",
            "\"rollbacks\":{},\"warm_hit_rate\":{}}}\n"
        ),
        seq,
        json_escape(p.phase),
        p.epoch,
        p.epochs,
        p.shard,
        p.shards,
        p.rows_done,
        p.rows_total,
        json_f64(rows_per_sec),
        json_f64(eta_secs),
        json_f64(elapsed),
        peak_rss_bytes(),
        p.rollbacks,
        json_f64(p.warm_hit_rate),
    );
    inner.last_emit.store(
        now.duration_since(inner.start).as_nanos() as u64,
        Ordering::Release,
    );
    // a full disk or closed pipe must not kill a healthy run: drop the line
    let mut w = inner.writer.lock().unwrap_or_else(|p| p.into_inner());
    let _ = w.write_all(line.as_bytes());
    let _ = w.flush();
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`; 0 when
/// the proc filesystem is unavailable).
pub fn peak_rss_bytes() -> u64 {
    let Ok(text) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer pushing into a shared buffer so tests can inspect lines.
    #[derive(Clone, Default)]
    pub(crate) struct SharedBuf(pub(crate) Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn progress(epoch: u64, rows_done: u64) -> Progress<'static> {
        Progress {
            phase: "initial",
            epoch,
            epochs: 4,
            shard: 0,
            shards: 0,
            rows_done,
            rows_total: 400,
            rollbacks: 1,
            warm_hit_rate: 0.5,
        }
    }

    #[test]
    fn off_hook_is_silent_and_cheap() {
        let hook = HeartbeatHook::off();
        assert!(!hook.is_some());
        hook.poll(&progress(1, 100));
        hook.poll_fine(&progress(1, 100));
    }

    #[test]
    fn zero_interval_emits_every_coarse_boundary_only() {
        let buf = SharedBuf::default();
        let hook = HeartbeatHook::to_writer(Box::new(buf.clone()), Duration::ZERO);
        for e in 1..=3 {
            hook.poll_fine(&progress(e, e * 100)); // silent at interval 0
            hook.poll(&progress(e, e * 100));
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "one line per coarse boundary:\n{text}");
        for (i, line) in lines.iter().enumerate() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains(&format!("\"seq\":{}", i)));
            assert!(line.contains("\"type\":\"heartbeat\""));
            assert!(line.contains("\"phase\":\"initial\""));
            assert!(line.contains("\"epochs\":4"));
            assert!(line.contains("\"rows_total\":400"));
            assert!(line.contains("\"rollbacks\":1"));
        }
        assert!(lines[2].contains("\"epoch\":3"));
    }

    #[test]
    fn positive_interval_gates_both_granularities() {
        let buf = SharedBuf::default();
        let hook = HeartbeatHook::to_writer(
            Box::new(buf.clone()),
            Duration::from_secs(3600), // nothing after the first is due
        );
        hook.poll(&progress(1, 100)); // first poll is always due
        for e in 2..=5 {
            hook.poll(&progress(e, e * 100));
            hook.poll_fine(&progress(e, e * 100));
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1, "interval must gate:\n{text}");
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        // this test suite runs on Linux; a zero here means the parser broke
        assert!(peak_rss_bytes() > 0);
    }
}
