//! Crash-safe training checkpoints (DESIGN.md §14).
//!
//! A [`TrainCheckpoint`] captures everything the DIM train loop needs to
//! continue bit-exactly from an epoch boundary: generator (and
//! discriminator) weights, Adam moments, the RNG stream position, the
//! [`TrainingGuard`](crate::guard::TrainingGuard) best-snapshot/backoff
//! state, and the recovery accounting. Files are versioned, checksummed
//! (FNV-1a 64) and written atomically (temp file → fsync → rename) through
//! the same machinery as the model format in `scis-nn`, so a crash mid-save
//! never corrupts the latest checkpoint on disk.
//!
//! Format (line-oriented, all `f64` values as IEEE-754 bit patterns in hex):
//!
//! ```text
//! scis-ckpt v1
//! phase <initial|calibration|retrain>
//! epoch <next epoch to run>
//! rng <s0> <s1> <s2> <s3> <spare|->
//! adam <lr> <beta1> <beta2> <eps> <t>
//! vec adam_m <count>     (then one hex f64 per line; same for the rest)
//! vec adam_v <count>
//! vec gen <count>
//! disc <0|1>
//! vec disc <count>       (only when disc = 1)
//! guard <best_loss> <lr> <retries>
//! vec guard_best <count>
//! stats <nan_batches_skipped> <rollbacks> <lr_backoffs>
//! solve <solves> <iterations> <converged> <escalations> <unconverged> <warm_starts> <iters_saved>
//! checksum <fnv1a64 of everything above, hex>
//! ```

use crate::error::TrainPhase;
use crate::guard::GuardStats;
use scis_nn::serialize::ModelIoError;
use scis_nn::{fnv1a64, write_atomic, AdamState};
use scis_ot::SolveStats;
use scis_tensor::rng::RngState;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Full training state at an epoch boundary; see the module docs for the
/// on-disk format and DESIGN.md §14 for the resume determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// Training phase this checkpoint belongs to.
    pub phase: TrainPhase,
    /// Next epoch to run when resuming (epochs `0..epoch` are complete).
    pub epoch: usize,
    /// RNG stream position at the epoch boundary.
    pub rng: RngState,
    /// Generator Adam optimizer state (moments + step count).
    pub adam: AdamState,
    /// Flat generator parameters.
    pub gen_params: Vec<f64>,
    /// Flat discriminator parameters, when the imputer keeps one.
    pub disc_params: Option<Vec<f64>>,
    /// Guard best-snapshot parameters.
    pub guard_best_params: Vec<f64>,
    /// Loss of the guard's best snapshot (`+inf` before any accept).
    pub guard_best_loss: f64,
    /// Guard learning rate (after any backoffs).
    pub guard_lr: f64,
    /// Guard recovery attempts consumed.
    pub guard_retries: usize,
    /// Recovery accounting accumulated so far in this phase. The per-solve
    /// iteration scratch (`solve_iters`) is telemetry-only and is not
    /// persisted; it restarts empty on resume.
    pub stats: GuardStats,
}

fn phase_from(name: &str, line: usize) -> Result<TrainPhase, ModelIoError> {
    Ok(match name {
        "initial" => TrainPhase::Initial,
        "calibration" => TrainPhase::Calibration,
        "retrain" => TrainPhase::Retrain,
        other => {
            return Err(ModelIoError::Format {
                line,
                message: format!("unknown training phase {:?}", other),
            })
        }
    })
}

fn push_vec(body: &mut String, name: &str, values: &[f64]) {
    let _ = writeln!(body, "vec {} {}", name, values.len());
    for v in values {
        let _ = writeln!(body, "{:016x}", v.to_bits());
    }
}

fn format_err(line: usize, message: impl Into<String>) -> ModelIoError {
    ModelIoError::Format {
        line,
        message: message.into(),
    }
}

type LineIter<'a> = std::iter::Enumerate<std::str::Lines<'a>>;

fn next_line<'a>(lines: &mut LineIter<'a>, expect: &str) -> Result<(usize, &'a str), ModelIoError> {
    match lines.next() {
        Some((i, l)) => Ok((i + 1, l)),
        None => Err(format_err(
            0,
            format!("unexpected end of file (expected {})", expect),
        )),
    }
}

fn parse_u64_hex(tok: &str, ln: usize) -> Result<u64, ModelIoError> {
    u64::from_str_radix(tok, 16).map_err(|_| format_err(ln, "bad hex value"))
}

fn parse_f64_hex(tok: &str, ln: usize) -> Result<f64, ModelIoError> {
    Ok(f64::from_bits(parse_u64_hex(tok, ln)?))
}

fn parse_usize(tok: &str, ln: usize) -> Result<usize, ModelIoError> {
    tok.parse().map_err(|_| format_err(ln, "bad integer"))
}

fn read_vec(lines: &mut LineIter<'_>, name: &str) -> Result<Vec<f64>, ModelIoError> {
    let (ln, line) = next_line(lines, name)?;
    let count = match line.split_whitespace().collect::<Vec<_>>().as_slice() {
        ["vec", n, count] if *n == name => parse_usize(count, ln)?,
        _ => return Err(format_err(ln, format!("expected `vec {} <count>`", name))),
    };
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let (ln, line) = next_line(lines, "vector entry")?;
        out.push(parse_f64_hex(line.trim(), ln)?);
    }
    Ok(out)
}

impl TrainCheckpoint {
    /// Serializes the checkpoint to its on-disk text form (with trailing
    /// checksum line).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = String::new();
        let _ = writeln!(body, "scis-ckpt v1");
        let _ = writeln!(body, "phase {}", self.phase.name());
        let _ = writeln!(body, "epoch {}", self.epoch);
        let spare = match self.rng.spare_normal {
            Some(v) => format!("{:016x}", v.to_bits()),
            None => "-".to_string(),
        };
        let _ = writeln!(
            body,
            "rng {:016x} {:016x} {:016x} {:016x} {}",
            self.rng.s[0], self.rng.s[1], self.rng.s[2], self.rng.s[3], spare
        );
        let _ = writeln!(
            body,
            "adam {:016x} {:016x} {:016x} {:016x} {}",
            self.adam.lr.to_bits(),
            self.adam.beta1.to_bits(),
            self.adam.beta2.to_bits(),
            self.adam.eps.to_bits(),
            self.adam.t
        );
        push_vec(&mut body, "adam_m", &self.adam.m);
        push_vec(&mut body, "adam_v", &self.adam.v);
        push_vec(&mut body, "gen", &self.gen_params);
        match &self.disc_params {
            Some(d) => {
                let _ = writeln!(body, "disc 1");
                push_vec(&mut body, "disc", d);
            }
            None => {
                let _ = writeln!(body, "disc 0");
            }
        }
        let _ = writeln!(
            body,
            "guard {:016x} {:016x} {}",
            self.guard_best_loss.to_bits(),
            self.guard_lr.to_bits(),
            self.guard_retries
        );
        push_vec(&mut body, "guard_best", &self.guard_best_params);
        let _ = writeln!(
            body,
            "stats {} {} {}",
            self.stats.nan_batches_skipped, self.stats.rollbacks, self.stats.lr_backoffs
        );
        let s = &self.stats.sinkhorn;
        let _ = writeln!(
            body,
            "solve {} {} {} {} {} {} {}",
            s.solves,
            s.iterations,
            s.converged,
            s.escalations,
            s.unconverged,
            s.warm_starts,
            s.iters_saved
        );
        let _ = writeln!(body, "checksum {:016x}", fnv1a64(body.as_bytes()));
        body.into_bytes()
    }

    /// Writes the checkpoint atomically (temp file → fsync → rename).
    pub fn save(&self, path: &Path) -> Result<(), ModelIoError> {
        write_atomic(path, &self.to_bytes())?;
        Ok(())
    }

    /// Loads and verifies a checkpoint: version check, structural parse,
    /// and checksum verification. Every corruption mode surfaces as a typed
    /// [`ModelIoError`]; this never panics on bad input.
    pub fn load(path: &Path) -> Result<Self, ModelIoError> {
        let content = std::fs::read_to_string(path)?;
        let mut lines = content.lines().enumerate();

        let (l1, header) = next_line(&mut lines, "header")?;
        match header.trim() {
            "scis-ckpt v1" => {}
            other if other.starts_with("scis-ckpt ") => {
                return Err(format_err(
                    l1,
                    format!(
                        "unsupported checkpoint version {:?} (this build reads v1)",
                        other.trim_start_matches("scis-ckpt ")
                    ),
                ));
            }
            _ => return Err(format_err(l1, "bad header")),
        }

        let (ln, line) = next_line(&mut lines, "phase")?;
        let phase = match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["phase", name] => phase_from(name, ln)?,
            _ => return Err(format_err(ln, "expected `phase <name>`")),
        };
        let (ln, line) = next_line(&mut lines, "epoch")?;
        let epoch = match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["epoch", n] => parse_usize(n, ln)?,
            _ => return Err(format_err(ln, "expected `epoch <n>`")),
        };
        let (ln, line) = next_line(&mut lines, "rng")?;
        let rng = match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["rng", s0, s1, s2, s3, spare] => RngState {
                s: [
                    parse_u64_hex(s0, ln)?,
                    parse_u64_hex(s1, ln)?,
                    parse_u64_hex(s2, ln)?,
                    parse_u64_hex(s3, ln)?,
                ],
                spare_normal: if *spare == "-" {
                    None
                } else {
                    Some(parse_f64_hex(spare, ln)?)
                },
            },
            _ => return Err(format_err(ln, "expected `rng <s0> <s1> <s2> <s3> <spare>`")),
        };
        let (ln, line) = next_line(&mut lines, "adam")?;
        let (lr, beta1, beta2, eps, t) =
            match line.split_whitespace().collect::<Vec<_>>().as_slice() {
                ["adam", lr, b1, b2, eps, t] => (
                    parse_f64_hex(lr, ln)?,
                    parse_f64_hex(b1, ln)?,
                    parse_f64_hex(b2, ln)?,
                    parse_f64_hex(eps, ln)?,
                    t.parse::<u64>().map_err(|_| format_err(ln, "bad adam t"))?,
                ),
                _ => return Err(format_err(ln, "expected `adam <lr> <b1> <b2> <eps> <t>`")),
            };

        let m = read_vec(&mut lines, "adam_m")?;
        let v = read_vec(&mut lines, "adam_v")?;
        let gen_params = read_vec(&mut lines, "gen")?;
        let (ln, line) = next_line(&mut lines, "disc")?;
        let disc_params = match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["disc", "1"] => Some(read_vec(&mut lines, "disc")?),
            ["disc", "0"] => None,
            _ => return Err(format_err(ln, "expected `disc <0|1>`")),
        };
        let (ln, line) = next_line(&mut lines, "guard")?;
        let (guard_best_loss, guard_lr, guard_retries) =
            match line.split_whitespace().collect::<Vec<_>>().as_slice() {
                ["guard", loss, lr, retries] => (
                    parse_f64_hex(loss, ln)?,
                    parse_f64_hex(lr, ln)?,
                    parse_usize(retries, ln)?,
                ),
                _ => return Err(format_err(ln, "expected `guard <loss> <lr> <retries>`")),
            };
        let guard_best_params = read_vec(&mut lines, "guard_best")?;
        let (ln, line) = next_line(&mut lines, "stats")?;
        let mut stats = GuardStats::default();
        match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["stats", nan, rb, lb] => {
                stats.nan_batches_skipped = parse_usize(nan, ln)?;
                stats.rollbacks = parse_usize(rb, ln)?;
                stats.lr_backoffs = parse_usize(lb, ln)?;
            }
            _ => {
                return Err(format_err(
                    ln,
                    "expected `stats <nan> <rollbacks> <backoffs>`",
                ))
            }
        }
        let (ln, line) = next_line(&mut lines, "solve")?;
        match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["solve", so, it, co, es, un, ws, is] => {
                stats.sinkhorn = SolveStats {
                    solves: parse_usize(so, ln)?,
                    iterations: parse_usize(it, ln)?,
                    converged: parse_usize(co, ln)?,
                    escalations: parse_usize(es, ln)?,
                    unconverged: parse_usize(un, ln)?,
                    warm_starts: parse_usize(ws, ln)?,
                    iters_saved: parse_usize(is, ln)?,
                    ..SolveStats::default()
                };
            }
            _ => return Err(format_err(ln, "expected `solve <7 counters>`")),
        }

        let (ln, line) = next_line(&mut lines, "checksum")?;
        let expected = line
            .strip_prefix("checksum ")
            .and_then(|v| u64::from_str_radix(v.trim(), 16).ok())
            .ok_or_else(|| format_err(ln, "expected `checksum <hex>`"))?;
        let body: String = content
            .lines()
            .take(ln - 1)
            .map(|l| format!("{}\n", l))
            .collect();
        let actual = fnv1a64(body.as_bytes());
        if actual != expected {
            return Err(ModelIoError::Checksum { expected, actual });
        }

        Ok(TrainCheckpoint {
            phase,
            epoch,
            rng,
            adam: AdamState {
                lr,
                beta1,
                beta2,
                eps,
                t,
                m,
                v,
            },
            gen_params,
            disc_params,
            guard_best_params,
            guard_best_loss,
            guard_lr,
            guard_retries,
            stats,
        })
    }
}

/// Where and how often periodic checkpoints are written.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Directory receiving checkpoint files (created on first write).
    pub dir: PathBuf,
    /// Write a checkpoint every `every` epochs (≥ 1).
    pub every: usize,
    /// Rotating retention: keep the last `keep` periodic checkpoints per
    /// phase (≥ 1); older ones are deleted after a successful write.
    pub keep: usize,
}

impl CheckpointPolicy {
    /// A policy writing to `dir` every epoch, keeping the last 3.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            every: 1,
            keep: 3,
        }
    }

    /// Fluent setter for [`CheckpointPolicy::every`] (clamped to ≥ 1).
    pub fn every(mut self, every: usize) -> Self {
        self.every = every.max(1);
        self
    }

    /// Fluent setter for [`CheckpointPolicy::keep`] (clamped to ≥ 1).
    pub fn keep(mut self, keep: usize) -> Self {
        self.keep = keep.max(1);
        self
    }

    fn periodic_name(phase: TrainPhase, epoch: usize) -> String {
        format!("ckpt-{}-e{:05}.ckpt", phase.name(), epoch)
    }

    fn emergency_name(phase: TrainPhase) -> String {
        format!("ckpt-{}-emergency.ckpt", phase.name())
    }

    /// Writes a periodic checkpoint and rotates old ones (keep-last-K per
    /// phase). Returns the path written.
    pub fn write_periodic(&self, ckpt: &TrainCheckpoint) -> Result<PathBuf, ModelIoError> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.dir.join(Self::periodic_name(ckpt.phase, ckpt.epoch));
        ckpt.save(&path)?;
        self.rotate(ckpt.phase);
        Ok(path)
    }

    /// Writes an emergency checkpoint (training failure or deadline expiry)
    /// at a fixed per-phase name, outside the rotation. Returns the path.
    pub fn write_emergency(&self, ckpt: &TrainCheckpoint) -> Result<PathBuf, ModelIoError> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.dir.join(Self::emergency_name(ckpt.phase));
        ckpt.save(&path)?;
        Ok(path)
    }

    /// Best-effort deletion of periodic checkpoints beyond `keep` for one
    /// phase (newest — highest epoch — retained).
    fn rotate(&self, phase: TrainPhase) {
        let prefix = format!("ckpt-{}-e", phase.name());
        let mut files: Vec<(usize, PathBuf)> = match std::fs::read_dir(&self.dir) {
            Ok(rd) => rd
                .filter_map(|e| e.ok())
                .filter_map(|e| {
                    let name = e.file_name().to_string_lossy().to_string();
                    let epoch = name
                        .strip_prefix(&prefix)?
                        .strip_suffix(".ckpt")?
                        .parse::<usize>()
                        .ok()?;
                    Some((epoch, e.path()))
                })
                .collect(),
            Err(_) => return,
        };
        files.sort_by_key(|(epoch, _)| *epoch);
        if files.len() > self.keep {
            let n_drop = files.len() - self.keep;
            for (_, path) in files.into_iter().take(n_drop) {
                std::fs::remove_file(path).ok();
            }
        }
    }
}

/// Finds the most advanced *loadable* checkpoint in `dir`: later phases win
/// over earlier ones, higher epochs win within a phase, and a phase's
/// emergency checkpoint (written last, at failure or deadline expiry) wins
/// over its periodic ones. Candidates that fail [`TrainCheckpoint::load`]
/// (truncated writes, checksum mismatches) are skipped rather than returned,
/// so a corrupt emergency file never shadows a valid periodic checkpoint.
/// Returns `None` when the directory has no loadable checkpoints.
pub fn latest_checkpoint(dir: &Path) -> Option<PathBuf> {
    let phases = [
        TrainPhase::Initial,
        TrainPhase::Calibration,
        TrainPhase::Retrain,
    ];
    let mut candidates: Vec<((u8, usize), PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir).ok()?.filter_map(|e| e.ok()) {
        let name = entry.file_name().to_string_lossy().to_string();
        for phase in phases {
            let rank = if name == CheckpointPolicy::emergency_name(phase) {
                Some((phase.code(), usize::MAX))
            } else {
                name.strip_prefix(&format!("ckpt-{}-e", phase.name()))
                    .and_then(|r| r.strip_suffix(".ckpt"))
                    .and_then(|r| r.parse::<usize>().ok())
                    .map(|epoch| (phase.code(), epoch))
            };
            if let Some(rank) = rank {
                candidates.push((rank, entry.path()));
            }
        }
    }
    candidates.sort_by(|(a, _), (b, _)| b.cmp(a));
    candidates
        .into_iter()
        .find(|(_, path)| TrainCheckpoint::load(path).is_ok())
        .map(|(_, path)| path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("scis_ckpt_{}_{}", std::process::id(), name));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn sample_ckpt() -> TrainCheckpoint {
        TrainCheckpoint {
            phase: TrainPhase::Initial,
            epoch: 7,
            rng: RngState {
                s: [1, u64::MAX, 0xDEAD_BEEF, 42],
                spare_normal: Some(-0.0),
            },
            adam: AdamState {
                lr: 0.005,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                t: 910,
                m: vec![0.1, -0.2, 5e-324],
                v: vec![0.0, 1e300, 1.0 / 3.0],
            },
            gen_params: vec![1.5, -2.5, 0.25],
            disc_params: Some(vec![7.0, 8.0]),
            guard_best_params: vec![1.5, -2.5, 0.125],
            guard_best_loss: 0.75,
            guard_lr: 0.0025,
            guard_retries: 1,
            stats: GuardStats {
                nan_batches_skipped: 2,
                rollbacks: 1,
                lr_backoffs: 1,
                sinkhorn: SolveStats {
                    solves: 30,
                    iterations: 900,
                    converged: 29,
                    escalations: 1,
                    unconverged: 1,
                    warm_starts: 10,
                    iters_saved: 50,
                    ..SolveStats::default()
                },
            },
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("a.ckpt");
        let ckpt = sample_ckpt();
        ckpt.save(&path).unwrap();
        let loaded = TrainCheckpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        // PartialEq on f64 treats -0.0 == 0.0; pin the bits too
        assert_eq!(
            loaded.rng.spare_normal.unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(loaded.adam.m[2].to_bits(), 5e-324f64.to_bits());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn infinite_best_loss_survives() {
        let dir = tmp_dir("inf");
        let path = dir.join("a.ckpt");
        let mut ckpt = sample_ckpt();
        ckpt.guard_best_loss = f64::INFINITY;
        ckpt.disc_params = None;
        ckpt.rng.spare_normal = None;
        ckpt.save(&path).unwrap();
        let loaded = TrainCheckpoint::load(&path).unwrap();
        assert!(loaded.guard_best_loss.is_infinite());
        assert!(loaded.disc_params.is_none());
        assert!(loaded.rng.spare_normal.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_checkpoint_fails_cleanly() {
        let dir = tmp_dir("trunc");
        let path = dir.join("a.ckpt");
        sample_ckpt().save(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &content[..content.len() / 2]).unwrap();
        assert!(matches!(
            TrainCheckpoint::load(&path),
            Err(ModelIoError::Format { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_checkpoint_fails_checksum() {
        let dir = tmp_dir("bitrot");
        let path = dir.join("a.ckpt");
        sample_ckpt().save(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = content.lines().map(String::from).collect();
        // flip a digit in a vector entry; structure stays parseable
        let idx = lines.iter().position(|l| l.starts_with("vec gen")).unwrap() + 1;
        let mut flipped = lines[idx].clone();
        let last = flipped.pop().unwrap();
        flipped.push(if last == '0' { '1' } else { '0' });
        lines[idx] = flipped;
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        assert!(matches!(
            TrainCheckpoint::load(&path),
            Err(ModelIoError::Checksum { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_skew_is_rejected() {
        let dir = tmp_dir("skew");
        let path = dir.join("a.ckpt");
        std::fs::write(&path, "scis-ckpt v99\nphase initial\n").unwrap();
        match TrainCheckpoint::load(&path) {
            Err(ModelIoError::Format { message, .. }) => {
                assert!(message.contains("v99"), "{}", message);
            }
            other => panic!("expected Format error, got ok={}", other.is_ok()),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_keeps_last_k() {
        let dir = tmp_dir("rotate");
        let policy = CheckpointPolicy::new(&dir).keep(2);
        let mut ckpt = sample_ckpt();
        for epoch in 1..=5 {
            ckpt.epoch = epoch;
            policy.write_periodic(&ckpt).unwrap();
        }
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().to_string())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec!["ckpt-initial-e00004.ckpt", "ckpt-initial-e00005.ckpt"]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn latest_prefers_later_phase_then_epoch_then_emergency() {
        let dir = tmp_dir("latest");
        let policy = CheckpointPolicy::new(&dir);
        let mut ckpt = sample_ckpt();
        ckpt.epoch = 3;
        policy.write_periodic(&ckpt).unwrap();
        ckpt.epoch = 9;
        policy.write_periodic(&ckpt).unwrap();
        let latest = latest_checkpoint(&dir).unwrap();
        assert!(latest.ends_with("ckpt-initial-e00009.ckpt"));
        // emergency in the same phase wins
        policy.write_emergency(&ckpt).unwrap();
        let latest = latest_checkpoint(&dir).unwrap();
        assert!(latest.ends_with("ckpt-initial-emergency.ckpt"));
        // a later phase wins over everything in an earlier one
        ckpt.phase = TrainPhase::Retrain;
        ckpt.epoch = 1;
        policy.write_periodic(&ckpt).unwrap();
        let latest = latest_checkpoint(&dir).unwrap();
        assert!(latest.ends_with("ckpt-retrain-e00001.ckpt"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_has_no_latest() {
        let dir = tmp_dir("empty");
        assert!(latest_checkpoint(&dir).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_emergency_does_not_shadow_valid_periodic() {
        let dir = tmp_dir("corrupt_shadow");
        let policy = CheckpointPolicy::new(&dir);
        let mut ckpt = sample_ckpt();
        ckpt.epoch = 7;
        policy.write_periodic(&ckpt).unwrap();
        // a truncated emergency checkpoint outranks the periodic one by name,
        // but must be skipped because it fails to load
        let emergency = dir.join(CheckpointPolicy::emergency_name(TrainPhase::Initial));
        let full = ckpt.to_bytes();
        std::fs::write(&emergency, &full[..full.len() / 2]).unwrap();
        assert!(TrainCheckpoint::load(&emergency).is_err());
        let latest = latest_checkpoint(&dir).unwrap();
        assert!(latest.ends_with("ckpt-initial-e00007.ckpt"));
        // once every candidate is corrupt there is no latest checkpoint
        std::fs::write(dir.join("ckpt-initial-e00007.ckpt"), b"scis-ckpt v1\n").unwrap();
        assert!(latest_checkpoint(&dir).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
