//! Structured run reports — the user-facing surface of the telemetry layer.
//!
//! A [`RunReport`] condenses one [`crate::pipeline::Scis::try_run`] into a
//! schema-stable record: the Algorithm-1 sizes (`N`, `n0`, `n*`), per-phase
//! wall-clock spans, the full counter snapshot, the SSE binary-search trace,
//! and the anomaly summary of the fault-tolerant runtime. It serializes to
//! JSON without any external dependency ([`RunReport::to_json`]) so the CLI
//! `--trace-json` flag and the bench harness can persist it directly.
//!
//! Determinism contract: everything except the `secs` timing fields is
//! reproducible bit-for-bit for a fixed seed and configuration, independent
//! of the execution policy (DESIGN.md §11).

use crate::pipeline::RunAnomalies;
use crate::sse::SseProbe;
use scis_telemetry::{json_escape, json_f64, Snapshot};

/// Schema version stamped into every JSON report. Bump on breaking changes
/// to the field layout.
///
/// v1 → v2: adds the flight-recorder sections — `histograms` (power-of-two
/// bucket histograms as `[lo, hi, count]` triples), `series` (per-epoch
/// metric series keyed by slot name), and `events_recorded` (total typed
/// events captured). All v1 fields are unchanged; v1 consumers that ignore
/// unknown keys keep working after updating their `schema_version` pin.
///
/// v2 → v3: adds `deadline_exceeded` (true when a `--deadline-secs` run
/// deadline expired and the pipeline finished early with the best model so
/// far). Earlier fields are unchanged.
pub const RUN_REPORT_SCHEMA_VERSION: u32 = 3;

/// Wall-clock aggregate of one pipeline phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Stable snake_case phase name (the [`scis_telemetry::SpanKind`] name).
    pub name: &'static str,
    /// Number of timed observations of this phase.
    pub count: u64,
    /// Total seconds across observations.
    pub secs: f64,
}

/// One monotonic counter value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterValue {
    /// Stable snake_case counter name (the [`scis_telemetry::Counter`] name).
    pub name: &'static str,
    /// Final value at the end of the run.
    pub value: u64,
}

/// One power-of-two histogram, in the compact non-empty-bucket form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramReport {
    /// Stable snake_case histogram name (the [`scis_telemetry::Hist`] name).
    pub name: &'static str,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Non-empty buckets as `(lo, hi, count)` with inclusive value bounds.
    pub buckets: Vec<(u64, u64, u64)>,
}

/// One per-epoch metric series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesReport {
    /// Stable snake_case series name (the [`scis_telemetry::Series`] name).
    pub name: &'static str,
    /// Recorded values, in epoch (or probe) order.
    pub values: Vec<f64>,
}

/// Structured summary of one pipeline run (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Schema version ([`RUN_REPORT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Dataset size `N`.
    pub n_total: usize,
    /// Initial sample size `n0`.
    pub n0: usize,
    /// Estimated minimum sample size `n*`.
    pub n_star: usize,
    /// Total wall-clock of the run, seconds.
    pub total_secs: f64,
    /// Per-phase wall-clock aggregates, in span-slot order. Empty when the
    /// run was executed with a disabled collector.
    pub phases: Vec<PhaseTiming>,
    /// Final counter values, in counter-slot order. Empty when the run was
    /// executed with a disabled collector.
    pub counters: Vec<CounterValue>,
    /// Power-of-two histograms, in hist-slot order (schema v2). Empty when
    /// the run was executed with a disabled collector.
    pub histograms: Vec<HistogramReport>,
    /// Per-epoch metric series, in series-slot order (schema v2). Empty when
    /// the run was executed with a disabled collector.
    pub series: Vec<SeriesReport>,
    /// Total typed events recorded into the flight recorder (schema v2).
    pub events_recorded: u64,
    /// The SSE binary-search trace (every distinct probed size, in order).
    pub sse_trace: Vec<SseProbe>,
    /// True when no recovery machinery fired.
    pub clean: bool,
    /// True when output quality is degraded (mean fallback, kept `M0` after
    /// a failed retrain, or patched non-finite cells).
    pub degraded: bool,
    /// True when the run deadline expired and the pipeline finished early
    /// with the best model trained so far (schema v3). Not counted as
    /// degradation.
    pub deadline_exceeded: bool,
    /// Human-readable recovery notes, in order of occurrence.
    pub notes: Vec<String>,
}

impl RunReport {
    /// Assembles a report from the pipeline's accounting. `snapshot` should
    /// be taken at the end of the run; from a disabled collector it yields
    /// empty `phases`/`counters` (the structural fields are always filled).
    pub fn assemble(
        snapshot: &Snapshot,
        n_total: usize,
        n0: usize,
        n_star: usize,
        total_secs: f64,
        sse_trace: Vec<SseProbe>,
        anomalies: &RunAnomalies,
    ) -> Self {
        let (phases, counters, histograms, series, events_recorded) = if snapshot.is_empty() {
            (Vec::new(), Vec::new(), Vec::new(), Vec::new(), 0)
        } else {
            (
                snapshot
                    .spans()
                    .map(|(name, s)| PhaseTiming {
                        name,
                        count: s.count,
                        secs: s.secs,
                    })
                    .collect(),
                snapshot
                    .counters()
                    .map(|(name, value)| CounterValue { name, value })
                    .collect(),
                snapshot
                    .hists()
                    .map(|(name, h)| HistogramReport {
                        name,
                        count: h.count,
                        sum: h.sum,
                        buckets: h.nonzero_buckets().collect(),
                    })
                    .collect(),
                snapshot
                    .series_iter()
                    .map(|(name, values)| SeriesReport {
                        name,
                        values: values.to_vec(),
                    })
                    .collect(),
                snapshot.events_recorded(),
            )
        };
        Self {
            schema_version: RUN_REPORT_SCHEMA_VERSION,
            n_total,
            n0,
            n_star,
            total_secs,
            phases,
            counters,
            histograms,
            series,
            events_recorded,
            sse_trace,
            clean: anomalies.is_clean(),
            degraded: anomalies.is_degraded(),
            deadline_exceeded: anomalies.deadline_exceeded,
            notes: anomalies.notes.clone(),
        }
    }

    /// Looks up a counter value by its snake_case name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a metric series by its snake_case name.
    pub fn series(&self, name: &str) -> Option<&[f64]> {
        self.series
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.values.as_slice())
    }

    /// Looks up a histogram by its snake_case name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramReport> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders the phase timings as a text tree (the `--profile` output).
    /// The hierarchy mirrors the span nesting in `Scis::try_run`: the SSE
    /// calibration span runs inside the SSE span, everything else is a
    /// top-level phase in pipeline order.
    pub fn render_profile(&self) -> String {
        // (phase, children) — static because the pipeline's nesting is fixed
        const TREE: &[(&str, &[&str])] = &[
            ("validate", &[]),
            ("train_initial", &[]),
            ("sse", &["calibration"]),
            ("retrain", &[]),
            ("impute", &[]),
        ];
        let timing = |name: &str| {
            self.phases
                .iter()
                .find(|p| p.name == name)
                .map(|p| (p.count, p.secs))
                .unwrap_or((0, 0.0))
        };
        let mut out = format!("run profile (total {:.3}s)\n", self.total_secs);
        let n_roots = TREE.len();
        for (ri, (root, children)) in TREE.iter().enumerate() {
            let (count, secs) = timing(root);
            let last_root = ri + 1 == n_roots;
            let branch = if last_root { "└─" } else { "├─" };
            out.push_str(&format!("{branch} {root:<13} {secs:>9.3}s  ×{count}\n"));
            let stem = if last_root { "   " } else { "│  " };
            for (ci, child) in children.iter().enumerate() {
                let (ccount, csecs) = timing(child);
                let cbranch = if ci + 1 == children.len() {
                    "└─"
                } else {
                    "├─"
                };
                out.push_str(&format!(
                    "{stem}{cbranch} {child:<11} {csecs:>9.3}s  ×{ccount}\n"
                ));
            }
        }
        if self.events_recorded > 0 {
            out.push_str(&format!("events recorded: {}\n", self.events_recorded));
        }
        out
    }

    /// Serializes the report as a self-contained JSON object (no external
    /// dependencies; counters are an object keyed by counter name).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        out.push_str(&format!("\"schema_version\":{}", self.schema_version));
        out.push_str(&format!(",\"n_total\":{}", self.n_total));
        out.push_str(&format!(",\"n0\":{}", self.n0));
        out.push_str(&format!(",\"n_star\":{}", self.n_star));
        out.push_str(&format!(",\"total_secs\":{}", json_f64(self.total_secs)));

        out.push_str(",\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"count\":{},\"secs\":{}}}",
                json_escape(p.name),
                p.count,
                json_f64(p.secs)
            ));
        }
        out.push(']');

        out.push_str(",\"counters\":{");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(c.name), c.value));
        }
        out.push('}');

        out.push_str(",\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
                json_escape(h.name),
                h.count,
                h.sum
            ));
            for (j, (lo, hi, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{},{},{}]", lo, hi, c));
            }
            out.push_str("]}");
        }
        out.push('}');

        out.push_str(",\"series\":{");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":[", json_escape(s.name)));
            for (j, v) in s.values.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_f64(*v));
            }
            out.push(']');
        }
        out.push('}');

        out.push_str(&format!(",\"events_recorded\":{}", self.events_recorded));

        out.push_str(",\"sse_trace\":[");
        for (i, p) in self.sse_trace.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"n\":{},\"prob\":{},\"accepted\":{}}}",
                p.n,
                json_f64(p.prob),
                p.accepted
            ));
        }
        out.push(']');

        out.push_str(&format!(",\"clean\":{}", self.clean));
        out.push_str(&format!(",\"degraded\":{}", self.degraded));
        out.push_str(&format!(
            ",\"deadline_exceeded\":{}",
            self.deadline_exceeded
        ));

        out.push_str(",\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", json_escape(n)));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scis_telemetry::{Counter, SpanKind, Telemetry};

    fn sample_report() -> RunReport {
        let tel = Telemetry::collecting();
        tel.add(Counter::SinkhornSolves, 12);
        tel.add(Counter::SinkhornIterations, 480);
        tel.record_span(SpanKind::TrainInitial, std::time::Duration::from_millis(25));
        tel.record_hist(scis_telemetry::Hist::SinkhornSolveIters, 40);
        tel.record_hist(scis_telemetry::Hist::SinkhornSolveIters, 41);
        tel.push_series(scis_telemetry::Series::DimLoss, 0.5);
        tel.push_series(scis_telemetry::Series::DimLoss, 0.25);
        tel.record_event(scis_telemetry::Event::CacheInvalidation);
        let anomalies = RunAnomalies {
            notes: vec!["retrain err; keeping \"M0\"".into()],
            retrain_failed: true,
            ..Default::default()
        };
        RunReport::assemble(
            &tel.snapshot(),
            600,
            100,
            250,
            1.25,
            vec![
                SseProbe {
                    n: 100,
                    prob: 0.2,
                    accepted: false,
                },
                SseProbe {
                    n: 600,
                    prob: 1.0,
                    accepted: true,
                },
            ],
            &anomalies,
        )
    }

    #[test]
    fn assemble_fills_all_sections() {
        let r = sample_report();
        assert_eq!(r.schema_version, RUN_REPORT_SCHEMA_VERSION);
        assert_eq!(r.counters.len(), Counter::ALL.len());
        assert_eq!(r.phases.len(), SpanKind::ALL.len());
        assert_eq!(r.counter("sinkhorn_iterations"), Some(480));
        assert_eq!(r.counter("no_such_counter"), None);
        assert!(!r.clean);
        assert!(r.degraded);
        assert_eq!(r.sse_trace.len(), 2);
        // v2 flight-recorder sections
        assert_eq!(r.histograms.len(), scis_telemetry::Hist::ALL.len());
        let h = r.histogram("sinkhorn_solve_iters").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 81);
        assert_eq!(h.buckets, vec![(32, 63, 2)]);
        assert_eq!(r.series("dim_loss"), Some(&[0.5, 0.25][..]));
        assert!(r.series("no_such_series").is_none());
        assert_eq!(r.events_recorded, 1);
    }

    #[test]
    fn disabled_collector_yields_structural_fields_only() {
        let r = RunReport::assemble(
            &Telemetry::off().snapshot(),
            10,
            2,
            2,
            0.1,
            Vec::new(),
            &RunAnomalies::default(),
        );
        assert!(r.phases.is_empty());
        assert!(r.counters.is_empty());
        assert!(r.histograms.is_empty());
        assert!(r.series.is_empty());
        assert_eq!(r.events_recorded, 0);
        assert!(r.clean);
        assert!(!r.degraded);
        assert!(!r.deadline_exceeded);
        assert_eq!(r.n_total, 10);
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let r = sample_report();
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"schema_version\":3"));
        assert!(j.contains("\"deadline_exceeded\":false"));
        assert!(j.contains("\"n_star\":250"));
        assert!(j.contains("\"sinkhorn_solves\":12"));
        assert!(j.contains("\"train_initial\""));
        assert!(j.contains("{\"n\":100,\"prob\":0.2,\"accepted\":false}"));
        // v2 sections
        assert!(
            j.contains("\"sinkhorn_solve_iters\":{\"count\":2,\"sum\":81,\"buckets\":[[32,63,2]]}")
        );
        assert!(j.contains("\"dim_loss\":[0.5,0.25]"));
        assert!(j.contains("\"events_recorded\":1"));
        // the quote inside the note must be escaped
        assert!(j.contains("keeping \\\"M0\\\""));
        // crude structural balance check — every brace/bracket closes
        let opens = j.matches('{').count();
        let closes = j.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn profile_tree_nests_calibration_under_sse() {
        let r = sample_report();
        let p = r.render_profile();
        let lines: Vec<&str> = p.lines().collect();
        assert!(lines[0].starts_with("run profile"));
        let sse_idx = lines.iter().position(|l| l.contains("sse")).unwrap();
        assert!(
            lines[sse_idx + 1].contains("calibration"),
            "calibration must sit under sse:\n{p}"
        );
        assert!(lines[sse_idx + 1].starts_with("│") || lines[sse_idx + 1].starts_with(" "));
        for phase in ["validate", "train_initial", "retrain", "impute"] {
            assert!(p.contains(phase), "missing {phase} in\n{p}");
        }
        assert!(p.contains("events recorded: 1"));
    }

    #[test]
    fn non_finite_secs_serialize_as_null() {
        let mut r = sample_report();
        r.total_secs = f64::NAN;
        assert!(r.to_json().contains("\"total_secs\":null"));
    }
}
