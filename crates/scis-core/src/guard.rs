//! Numeric guards for DIM training: checkpoint/rollback with learning-rate
//! backoff.
//!
//! Adversarial imputation training can destabilize — a bad batch drives the
//! generator into a region where the Sinkhorn cost matrix overflows, losses
//! go NaN, and every later epoch trains on garbage. The guarded trainer
//! ([`crate::dim::train_dim_guarded`]) defends in three rings:
//!
//! 1. **Batch ring** — a batch whose reconstruction, loss, or gradient is
//!    non-finite is *skipped* (counted in
//!    [`GuardStats::nan_batches_skipped`]), not applied.
//! 2. **Epoch ring** — an epoch whose gradient norm exceeds
//!    [`GuardConfig::max_grad_norm`], whose mean loss is non-finite, or
//!    whose batches were all skipped triggers a **rollback**: the generator
//!    is restored to the best (lowest finite-loss) snapshot and the
//!    learning rate is multiplied by [`GuardConfig::lr_backoff`].
//! 3. **Run ring** — after [`GuardConfig::max_retries`] rollbacks (or once
//!    the learning rate would fall below [`GuardConfig::min_lr`]) the run
//!    surfaces a structured [`crate::error::TrainingError`], leaving the
//!    generator on its best snapshot so callers can degrade gracefully.
//!
//! Sinkhorn non-convergence is escalated separately through
//! [`EscalationPolicy`] (more annealing stages + a larger iteration budget)
//! and accounted in [`GuardStats::sinkhorn`].

use scis_ot::{EscalationPolicy, SolveStats};

/// Knobs of the training guard. `Copy` so it can live inside
/// [`crate::pipeline::ScisConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Rollback + LR-backoff attempts before surfacing a
    /// [`crate::error::TrainingError`].
    pub max_retries: usize,
    /// Learning-rate multiplier applied at each rollback.
    pub lr_backoff: f64,
    /// Give up once a backoff would push the learning rate below this.
    pub min_lr: f64,
    /// Generator gradient-norm ceiling; beyond it the epoch is declared
    /// exploded. Generous by design — it catches overflow spirals, not
    /// ordinary large steps.
    pub max_grad_norm: f64,
    /// Retry policy for non-converged Sinkhorn solves inside the loss.
    pub sinkhorn_escalation: EscalationPolicy,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            max_retries: 3,
            lr_backoff: 0.5,
            min_lr: 1e-7,
            max_grad_norm: 1e8,
            sinkhorn_escalation: EscalationPolicy::default(),
        }
    }
}

impl GuardConfig {
    /// Fluent setter for [`GuardConfig::max_retries`].
    pub fn max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Fluent setter for [`GuardConfig::lr_backoff`].
    pub fn lr_backoff(mut self, lr_backoff: f64) -> Self {
        self.lr_backoff = lr_backoff;
        self
    }

    /// Fluent setter for [`GuardConfig::min_lr`].
    pub fn min_lr(mut self, min_lr: f64) -> Self {
        self.min_lr = min_lr;
        self
    }

    /// Fluent setter for [`GuardConfig::max_grad_norm`].
    pub fn max_grad_norm(mut self, max_grad_norm: f64) -> Self {
        self.max_grad_norm = max_grad_norm;
        self
    }

    /// Fluent setter for [`GuardConfig::sinkhorn_escalation`].
    pub fn sinkhorn_escalation(mut self, policy: EscalationPolicy) -> Self {
        self.sinkhorn_escalation = policy;
        self
    }
}

/// Recovery accounting of one guarded training run, merged upward into the
/// pipeline's [`crate::pipeline::RunAnomalies`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Batches skipped because reconstruction, loss, or gradient was
    /// non-finite (or the Sinkhorn solve rejected its inputs).
    pub nan_batches_skipped: usize,
    /// Epoch rollbacks to the best parameter snapshot.
    pub rollbacks: usize,
    /// Learning-rate backoffs applied (one per rollback that retried).
    pub lr_backoffs: usize,
    /// Sinkhorn escalation accounting across all solves.
    pub sinkhorn: SolveStats,
}

impl GuardStats {
    /// Accumulates another stats record into this one.
    pub fn absorb(&mut self, other: GuardStats) {
        self.nan_batches_skipped += other.nan_batches_skipped;
        self.rollbacks += other.rollbacks;
        self.lr_backoffs += other.lr_backoffs;
        self.sinkhorn.absorb(other.sinkhorn);
    }

    /// True when no recovery machinery fired. The always-on solve counters
    /// inside [`GuardStats::sinkhorn`] (`solves`/`iterations`/`converged`)
    /// are telemetry, not anomalies, and do not count against cleanliness.
    pub fn is_clean(&self) -> bool {
        self.nan_batches_skipped == 0
            && self.rollbacks == 0
            && self.lr_backoffs == 0
            && self.sinkhorn.is_clean()
    }
}

/// The epoch-level checkpoint: best (lowest finite-loss) generator
/// parameters seen so far, starting from the entry parameters.
#[derive(Debug, Clone)]
pub struct TrainingGuard {
    cfg: GuardConfig,
    best_params: Vec<f64>,
    best_loss: f64,
    lr: f64,
    retries: usize,
}

/// What the guard decided about a finished (or aborted) epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardVerdict {
    /// Epoch accepted; training continues.
    Accept,
    /// Epoch rejected; the caller must restore [`TrainingGuard::best_params`]
    /// and rebuild its optimizer at the new [`TrainingGuard::lr`].
    Rollback,
    /// Retry budget exhausted; the caller must restore the best snapshot
    /// and surface a [`crate::error::TrainingError`].
    GiveUp,
}

impl TrainingGuard {
    /// Starts a guard at the entry parameters and learning rate.
    pub fn new(cfg: GuardConfig, entry_params: Vec<f64>, lr: f64) -> Self {
        Self {
            cfg,
            best_params: entry_params,
            best_loss: f64::INFINITY,
            lr,
            retries: 0,
        }
    }

    /// Rebuilds a guard from checkpointed state (resume path). The fields
    /// mirror the accessors; a restored guard behaves exactly as if it had
    /// reached this state through `accept_epoch`/`reject_epoch`.
    pub fn restore(
        cfg: GuardConfig,
        best_params: Vec<f64>,
        best_loss: f64,
        lr: f64,
        retries: usize,
    ) -> Self {
        Self {
            cfg,
            best_params,
            best_loss,
            lr,
            retries,
        }
    }

    /// The best snapshot to restore on rollback.
    pub fn best_params(&self) -> &[f64] {
        &self.best_params
    }

    /// The loss of the best snapshot (`+inf` until an epoch is accepted).
    pub fn best_loss(&self) -> f64 {
        self.best_loss
    }

    /// The current (possibly backed-off) learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Recovery attempts consumed so far.
    pub fn retries(&self) -> usize {
        self.retries
    }

    /// Records a *successful* epoch: snapshots the parameters when the loss
    /// is the best seen.
    pub fn accept_epoch(&mut self, loss: f64, params: &[f64]) {
        if loss.is_finite() && loss <= self.best_loss {
            self.best_loss = loss;
            self.best_params.clear();
            self.best_params.extend_from_slice(params);
        }
    }

    /// Records a *failed* epoch: decides between another rollback (backing
    /// off the learning rate) and giving up.
    pub fn reject_epoch(&mut self) -> GuardVerdict {
        self.retries += 1;
        let next_lr = self.lr * self.cfg.lr_backoff;
        if self.retries > self.cfg.max_retries || next_lr < self.cfg.min_lr {
            return GuardVerdict::GiveUp;
        }
        self.lr = next_lr;
        GuardVerdict::Rollback
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_keeps_best_by_loss() {
        let mut g = TrainingGuard::new(GuardConfig::default(), vec![0.0; 3], 0.01);
        g.accept_epoch(1.0, &[1.0, 1.0, 1.0]);
        g.accept_epoch(0.5, &[2.0, 2.0, 2.0]);
        g.accept_epoch(0.9, &[3.0, 3.0, 3.0]); // worse — not snapshotted
        assert_eq!(g.best_params(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn non_finite_loss_never_becomes_best() {
        let mut g = TrainingGuard::new(GuardConfig::default(), vec![7.0], 0.01);
        g.accept_epoch(f64::NAN, &[9.0]);
        assert_eq!(g.best_params(), &[7.0]);
    }

    #[test]
    fn rollback_backs_off_lr_until_budget_exhausted() {
        let cfg = GuardConfig {
            max_retries: 2,
            lr_backoff: 0.5,
            ..Default::default()
        };
        let mut g = TrainingGuard::new(cfg, vec![], 0.01);
        assert_eq!(g.reject_epoch(), GuardVerdict::Rollback);
        assert!((g.lr() - 0.005).abs() < 1e-15);
        assert_eq!(g.reject_epoch(), GuardVerdict::Rollback);
        assert!((g.lr() - 0.0025).abs() < 1e-15);
        assert_eq!(g.reject_epoch(), GuardVerdict::GiveUp);
    }

    #[test]
    fn min_lr_floor_forces_give_up() {
        let cfg = GuardConfig {
            max_retries: 100,
            min_lr: 1e-3,
            ..Default::default()
        };
        let mut g = TrainingGuard::new(cfg, vec![], 1.5e-3);
        // 1.5e-3 * 0.5 < 1e-3 → immediate give-up
        assert_eq!(g.reject_epoch(), GuardVerdict::GiveUp);
    }

    #[test]
    fn stats_absorb_adds_counters() {
        let mut a = GuardStats {
            nan_batches_skipped: 1,
            rollbacks: 2,
            ..Default::default()
        };
        let b = GuardStats {
            nan_batches_skipped: 3,
            lr_backoffs: 1,
            ..Default::default()
        };
        a.absorb(b);
        assert_eq!(a.nan_batches_skipped, 4);
        assert_eq!(a.rollbacks, 2);
        assert_eq!(a.lr_backoffs, 1);
        assert!(!a.is_clean());
        assert!(GuardStats::default().is_clean());
    }

    #[test]
    fn healthy_solve_counters_do_not_taint_cleanliness() {
        let healthy = GuardStats {
            sinkhorn: SolveStats {
                solves: 120,
                iterations: 4800,
                converged: 120,
                warm_starts: 40,
                iters_saved: 900,
                ..SolveStats::default()
            },
            ..Default::default()
        };
        assert!(healthy.is_clean(), "telemetry counters are not anomalies");
        let escalated = GuardStats {
            sinkhorn: SolveStats {
                escalations: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(!escalated.is_clean());
    }
}
