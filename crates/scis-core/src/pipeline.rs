//! Algorithm 1 — the SCIS procedure end to end.
//!
//! ```text
//! 1: sample validation Xv (Nv) and initial X0 (n0)
//! 2: DIM-train the initial model M0 on X0
//! 3: SSE → minimum size n*
//! 4: if n* = n0 → M* = M0
//! 5: else DIM-retrain on a size-n* sample X*
//! 6-7: X̄ = M*(X); X̂ = M ⊙ X + (1−M) ⊙ X̄
//! ```

use crate::dim::{train_dim, DimConfig};
use crate::sse::{fisher_diagonal, model_distance, SseConfig, SseEstimator, SseResult};
use scis_data::split::{sample_initial_split, sample_training_set};
use scis_data::Dataset;
use scis_imputers::traits::impute_with_generator;
use scis_imputers::AdversarialImputer;
use scis_ot::SinkhornOptions;
use scis_tensor::{Matrix, Rng64};
use std::time::{Duration, Instant};

/// Full SCIS configuration: DIM + SSE knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScisConfig {
    /// DIM (MS-divergence training) settings.
    pub dim: DimConfig,
    /// SSE (sample-size estimation) settings.
    pub sse: SseConfig,
}

/// Everything Algorithm 1 returns, plus the accounting the paper's tables
/// need (training time split by phase, training sample rate `R_t`).
#[derive(Debug, Clone)]
pub struct ScisOutcome {
    /// The imputed matrix `X̂` over the *full* dataset.
    pub imputed: Matrix,
    /// The estimated minimum sample size `n*`.
    pub n_star: usize,
    /// Dataset size `N`.
    pub n_total: usize,
    /// The initial sample size `n0` used.
    pub n0: usize,
    /// SSE details.
    pub sse: SseResult,
    /// Wall-clock spent training `M0`.
    pub initial_train_time: Duration,
    /// Wall-clock spent in SSE.
    pub sse_time: Duration,
    /// Wall-clock spent retraining on `X*` (zero when `n* = n0`).
    pub retrain_time: Duration,
    /// Total wall-clock of the run.
    pub total_time: Duration,
}

impl ScisOutcome {
    /// `R_t = n*/N` — the paper's training sample rate.
    pub fn training_sample_rate(&self) -> f64 {
        self.n_star as f64 / self.n_total.max(1) as f64
    }

    /// Fraction of the total time spent inside SSE (reported in Figure 2).
    pub fn sse_time_fraction(&self) -> f64 {
        let t = self.total_time.as_secs_f64();
        if t > 0.0 {
            self.sse_time.as_secs_f64() / t
        } else {
            0.0
        }
    }
}

/// The SCIS system.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scis {
    config: ScisConfig,
}

impl Scis {
    /// Creates a SCIS instance with the given configuration.
    pub fn new(config: ScisConfig) -> Self {
        Self { config }
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &ScisConfig {
        &self.config
    }

    /// Runs Algorithm 1 on `ds` with initial sample size `n0`
    /// (`Nv = n0`, as in the paper's experiments).
    ///
    /// # Panics
    /// Panics if `2·n0` exceeds the dataset size.
    pub fn run(
        &self,
        imp: &mut dyn AdversarialImputer,
        ds: &Dataset,
        n0: usize,
        rng: &mut Rng64,
    ) -> ScisOutcome {
        let t_start = Instant::now();
        let n_total = ds.n_samples();
        let n_v = n0; // paper §VI: Nv = n0
        assert!(
            n_v + n0 <= n_total,
            "Scis::run: Nv + n0 = {} exceeds N = {}",
            n_v + n0,
            n_total
        );

        // line 1: sample validation + initial sets
        let split = sample_initial_split(ds, n_v, n0, rng);

        // line 2: DIM-train M0 on X0. The init seed is remembered so the
        // calibration sibling (below) starts from *identical* weights —
        // Theorem 1 models sampling noise around one optimum, not
        // re-initialization noise.
        let init_seed = rng.next_u64();
        let t0 = Instant::now();
        imp.init_networks(ds.n_features(), &mut Rng64::seed_from_u64(init_seed));
        let _report = train_dim(imp, &split.initial, &self.config.dim, rng);
        let initial_train_time = t0.elapsed();

        // line 3: SSE
        let t1 = Instant::now();
        let sinkhorn = SinkhornOptions {
            lambda: estimate_sse_lambda(&self.config.dim, &split.initial, imp, rng),
            max_iters: self.config.dim.max_sinkhorn_iters,
            tol: 1e-8,
        };
        let batch = self.config.dim.train.batch_size;
        let fisher = fisher_diagonal(imp, &split.initial, &sinkhorn, batch, rng);
        let mut estimator = SseEstimator::new(
            imp,
            &fisher,
            n0,
            n_total,
            ds.n_features(),
            self.config.sse,
            rng,
        );
        if self.config.sse.calibrate {
            // anchor Theorem 1's hidden constant: train a sibling model on a
            // second size-n0 sample and match the Monte-Carlo prediction to
            // the *observed* model-to-model difference (module docs of
            // `sse`). θ0 is restored afterwards.
            let theta0 = imp.generator_mut().param_vector();
            let sibling_set = sample_training_set(ds, n0, rng);
            imp.init_networks(ds.n_features(), &mut Rng64::seed_from_u64(init_seed));
            let _ = train_dim(imp, &sibling_set, &self.config.dim, rng);
            let theta_sibling = imp.generator_mut().param_vector();
            imp.generator_mut().set_param_vector(&theta0);
            let d_obs = model_distance(imp, &split.validation, &theta0, &theta_sibling);
            let d_ref = estimator.reference_mc_distance(imp, &split.validation);
            if d_obs > 1e-12 && d_ref > 1e-12 {
                estimator.set_calibration(d_obs / d_ref);
            }
        }
        let sse = estimator.estimate(imp, &split.validation);
        let sse_time = t1.elapsed();

        // lines 4-5: retrain on X* when n* > n0 (warm start from θ0)
        let retrain_time = if sse.n_star > n0 {
            let t2 = Instant::now();
            let x_star = sample_training_set(ds, sse.n_star, rng);
            let _ = train_dim(imp, &x_star, &self.config.dim, rng);
            t2.elapsed()
        } else {
            Duration::ZERO
        };

        // lines 6-7: impute the full dataset
        let imputed = impute_with_generator(imp, ds, rng);

        ScisOutcome {
            imputed,
            n_star: sse.n_star,
            n_total,
            n0,
            sse,
            initial_train_time,
            sse_time,
            retrain_time,
            total_time: t_start.elapsed(),
        }
    }
}

/// Resolves the DIM λ on a representative batch so SSE's Fisher pass uses
/// the same regularization scale the training saw.
fn estimate_sse_lambda(
    dim: &DimConfig,
    initial: &Dataset,
    imp: &mut dyn AdversarialImputer,
    rng: &mut Rng64,
) -> f64 {
    let n = initial.n_samples();
    let bs = dim.train.batch_size.min(n).max(2);
    let idx: Vec<usize> = (0..bs).collect();
    let xb = initial.values_filled(0.0).select_rows(&idx);
    let mb = initial.dense_mask().select_rows(&idx);
    let g_in = imp.generator_input(&xb, &mb, rng);
    let generator = imp.generator_mut();
    let xbar = generator.forward(&g_in, scis_nn::Mode::Eval, rng);
    let cost = scis_ot::masked_sq_cost(&xbar, &mb, &xb, &mb);
    dim.resolve_lambda(&cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::{GenerativeLoss, LambdaMode};
    use scis_data::metrics::rmse_vs_ground_truth;
    use scis_data::missing::inject_mcar;
    use scis_imputers::{GainImputer, Imputer, TrainConfig};

    fn correlated_table(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut m = Matrix::zeros(n, 4);
        for i in 0..n {
            let t = rng.uniform();
            m[(i, 0)] = t;
            m[(i, 1)] = (0.8 * t + 0.1 + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
            m[(i, 2)] = (1.0 - t + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
            m[(i, 3)] = (0.5 * t + 0.25 + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
        }
        m
    }

    fn fast_config() -> ScisConfig {
        ScisConfig {
            dim: DimConfig {
                train: TrainConfig {
                    epochs: 25,
                    batch_size: 64,
                    learning_rate: 0.005,
                    dropout: 0.0,
                },
                lambda: LambdaMode::Relative(0.1),
                max_sinkhorn_iters: 150,
                alpha: 10.0,
                critic: None,
                loss: GenerativeLoss::MaskedSinkhorn,
            },
            sse: SseConfig { epsilon: 0.02, ..Default::default() },
        }
    }

    #[test]
    fn algorithm1_end_to_end_produces_valid_imputation() {
        let complete = correlated_table(600, 1);
        let mut rng = Rng64::seed_from_u64(2);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let mut gain = GainImputer::new(fast_config().dim.train);
        let outcome = Scis::new(fast_config()).run(&mut gain, &ds, 100, &mut rng);

        assert_eq!(outcome.imputed.shape(), (600, 4));
        assert!(!outcome.imputed.has_nan());
        // observed cells pass through exactly
        for (i, j, v) in ds.observed_cells() {
            assert_eq!(outcome.imputed[(i, j)], v);
        }
        assert!((100..=600).contains(&outcome.n_star));
        assert!(outcome.training_sample_rate() <= 1.0);
        assert!(outcome.total_time >= outcome.sse_time);
    }

    #[test]
    fn scis_gain_beats_mean_imputation() {
        let complete = correlated_table(600, 3);
        let mut rng = Rng64::seed_from_u64(4);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let mut gain = GainImputer::new(fast_config().dim.train);
        let outcome = Scis::new(fast_config()).run(&mut gain, &ds, 100, &mut rng);
        let e = rmse_vs_ground_truth(&ds, &complete, &outcome.imputed);
        let mut mean = scis_imputers::mean::MeanImputer;
        let e_mean = rmse_vs_ground_truth(&ds, &complete, &mean.impute(&ds, &mut rng));
        assert!(e < e_mean, "scis-gain {} vs mean {}", e, e_mean);
    }

    #[test]
    fn loose_epsilon_keeps_n0_and_skips_retraining() {
        let complete = correlated_table(500, 5);
        let mut rng = Rng64::seed_from_u64(6);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let mut cfg = fast_config();
        cfg.sse.epsilon = 100.0;
        let mut gain = GainImputer::new(cfg.dim.train);
        let outcome = Scis::new(cfg).run(&mut gain, &ds, 80, &mut rng);
        assert_eq!(outcome.n_star, 80);
        assert_eq!(outcome.retrain_time, Duration::ZERO);
    }

    #[test]
    fn sse_time_fraction_is_sane() {
        let complete = correlated_table(400, 7);
        let mut rng = Rng64::seed_from_u64(8);
        let ds = inject_mcar(&complete, 0.2, &mut rng);
        let mut gain = GainImputer::new(fast_config().dim.train);
        let outcome = Scis::new(fast_config()).run(&mut gain, &ds, 80, &mut rng);
        let f = outcome.sse_time_fraction();
        assert!((0.0..=1.0).contains(&f), "fraction {}", f);
    }

    #[test]
    #[should_panic(expected = "exceeds N")]
    fn rejects_oversized_n0() {
        let complete = correlated_table(100, 9);
        let mut rng = Rng64::seed_from_u64(10);
        let ds = inject_mcar(&complete, 0.2, &mut rng);
        let mut gain = GainImputer::new(fast_config().dim.train);
        let _ = Scis::new(fast_config()).run(&mut gain, &ds, 80, &mut rng);
    }
}
