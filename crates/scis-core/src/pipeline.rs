//! Algorithm 1 — the SCIS procedure end to end.
//!
//! ```text
//! 1: sample validation Xv (Nv) and initial X0 (n0)
//! 2: DIM-train the initial model M0 on X0
//! 3: SSE → minimum size n*
//! 4: if n* = n0 → M* = M0
//! 5: else DIM-retrain on a size-n* sample X*
//! 6-7: X̄ = M*(X); X̂ = M ⊙ X + (1−M) ⊙ X̄
//! ```

use crate::checkpoint::{CheckpointPolicy, TrainCheckpoint};
use crate::dim::{train_dim_resumable, AccelConfig, DimConfig, TrainHooks};
use crate::error::{ScisError, TrainPhase, POST_MORTEM_TAIL};
use crate::guard::{GuardConfig, GuardStats};
use crate::heartbeat::{HeartbeatHook, Progress};
use crate::report::RunReport;
use crate::sse::{fisher_diagonal_cached, model_distance, SseConfig, SseEstimator, SseResult};
use scis_data::shard::{observed_column_means, RowSource, ShardSink};
use scis_data::split::{
    sample_initial_split, sample_initial_split_source, sample_training_set,
    sample_training_set_source,
};
use scis_data::validate::validate_source;
use scis_data::Dataset;
use scis_imputers::traits::impute_with_generator;
use scis_imputers::{AdversarialImputer, Imputer};
use scis_ot::{DualCache, SinkhornOptions};
use scis_telemetry::{Event, RecordedEvent, SpanKind, Telemetry};
use scis_tensor::{ExecPolicy, Matrix, Rng64, RunDeadline};
use std::time::{Duration, Instant};

/// Full SCIS configuration: DIM + SSE + fault-tolerance knobs.
///
/// Builds fluently from the defaults:
///
/// ```
/// use scis_core::pipeline::ScisConfig;
/// use scis_tensor::ExecPolicy;
///
/// let cfg = ScisConfig::default()
///     .exec(ExecPolicy::threads(8))
///     .lambda(130.0)
///     .epsilon(0.005);
/// assert_eq!(cfg.exec, ExecPolicy::threads(8));
/// assert_eq!(cfg.dim.exec, ExecPolicy::threads(8));
/// assert_eq!(cfg.sse.zeta_lambda, 130.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ScisConfig {
    /// DIM (MS-divergence training) settings.
    pub dim: DimConfig,
    /// SSE (sample-size estimation) settings.
    pub sse: SseConfig,
    /// Training-guard settings (rollback, LR backoff, Sinkhorn escalation).
    pub guard: GuardConfig,
    /// Execution policy for the whole pipeline. Kept in sync with
    /// [`DimConfig::exec`] and [`SseConfig::exec`] by [`ScisConfig::exec`];
    /// set the nested fields directly to give the phases different
    /// policies.
    pub exec: ExecPolicy,
}

impl ScisConfig {
    /// Fluent setter for [`ScisConfig::dim`].
    pub fn dim(mut self, dim: DimConfig) -> Self {
        self.dim = dim;
        self
    }

    /// Fluent setter for [`ScisConfig::sse`].
    pub fn sse(mut self, sse: SseConfig) -> Self {
        self.sse = sse;
        self
    }

    /// Fluent setter for [`ScisConfig::guard`].
    pub fn guard(mut self, guard: GuardConfig) -> Self {
        self.guard = guard;
        self
    }

    /// Sets the execution policy for every phase of the pipeline (DIM
    /// training, Sinkhorn solves, and the SSE Monte-Carlo fan-out).
    pub fn exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self.dim.exec = exec;
        self.sse.exec = exec;
        self
    }

    /// Convenience for the paper's absolute λ: sets
    /// [`SseConfig::zeta_lambda`] (default 130).
    pub fn lambda(mut self, zeta_lambda: f64) -> Self {
        self.sse.zeta_lambda = zeta_lambda;
        self
    }

    /// Convenience for the user-tolerated error bound ε: sets
    /// [`SseConfig::epsilon`] (default 0.001).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.sse.epsilon = epsilon;
        self
    }

    /// Sets the hot-path acceleration flags ([`AccelConfig`]) for every
    /// training phase and the SSE Fisher probe. All flags default to off,
    /// which keeps the pipeline bit-identical to the unaccelerated
    /// historical path.
    pub fn accel(mut self, accel: AccelConfig) -> Self {
        self.dim.accel = accel;
        self
    }
}

/// Everything the fault-tolerant runtime caught and recovered from during
/// one run. A clean run has all counters zero, all lists empty, and both
/// flags false.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunAnomalies {
    /// Training batches dropped for non-finite values.
    pub nan_batches_skipped: usize,
    /// Epoch rollbacks to a parameter snapshot.
    pub rollbacks: usize,
    /// Learning-rate backoffs applied.
    pub lr_backoffs: usize,
    /// Sinkhorn solves that needed ε-scaling escalation.
    pub sinkhorn_escalations: usize,
    /// Sinkhorn solves left unconverged even after escalation.
    pub sinkhorn_unconverged: usize,
    /// Columns with zero observed cells (from `Dataset::validate`).
    pub all_missing_columns: Vec<usize>,
    /// Columns whose observed cells are constant.
    pub constant_columns: Vec<usize>,
    /// Initial DIM training failed terminally → the whole output fell back
    /// to mean imputation.
    pub mean_fallback: bool,
    /// SSE calibration sibling failed → raw (uncalibrated) SSE was used.
    pub calibration_skipped: bool,
    /// Retraining on `X*` failed → the initial model `M0` was kept.
    pub retrain_failed: bool,
    /// Non-finite imputed cells patched from the mean imputer at the end.
    pub non_finite_cells_patched: usize,
    /// The run deadline expired: later phases were skipped and the output
    /// comes from the best model trained before the cut. Not counted as
    /// *degraded* — the model is healthy, just trained for less long.
    pub deadline_exceeded: bool,
    /// Human-readable recovery notes, in order of occurrence.
    pub notes: Vec<String>,
}

impl RunAnomalies {
    /// True when the run needed no recovery at all.
    pub fn is_clean(&self) -> bool {
        self.nan_batches_skipped == 0
            && self.rollbacks == 0
            && self.lr_backoffs == 0
            && self.sinkhorn_escalations == 0
            && self.sinkhorn_unconverged == 0
            && self.all_missing_columns.is_empty()
            && self.constant_columns.is_empty()
            && !self.mean_fallback
            && !self.calibration_skipped
            && !self.retrain_failed
            && self.non_finite_cells_patched == 0
            && !self.deadline_exceeded
    }

    /// Whether the output quality is degraded (not just recovered): the
    /// run fell back to mean imputation, kept `M0` after a failed retrain,
    /// or had to patch non-finite cells.
    pub fn is_degraded(&self) -> bool {
        self.mean_fallback || self.retrain_failed || self.non_finite_cells_patched > 0
    }

    /// Folds a guarded-training stats record into the counters.
    pub fn absorb_guard(&mut self, stats: &GuardStats) {
        self.nan_batches_skipped += stats.nan_batches_skipped;
        self.rollbacks += stats.rollbacks;
        self.lr_backoffs += stats.lr_backoffs;
        self.sinkhorn_escalations += stats.sinkhorn.escalations;
        self.sinkhorn_unconverged += stats.sinkhorn.unconverged;
    }
}

/// Everything Algorithm 1 returns, plus the accounting the paper's tables
/// need (training time split by phase, training sample rate `R_t`).
#[derive(Debug, Clone)]
pub struct ScisOutcome {
    /// The imputed matrix `X̂` over the *full* dataset.
    pub imputed: Matrix,
    /// The estimated minimum sample size `n*`.
    pub n_star: usize,
    /// Dataset size `N`.
    pub n_total: usize,
    /// The initial sample size `n0` used.
    pub n0: usize,
    /// SSE details.
    pub sse: SseResult,
    /// Wall-clock spent training `M0`.
    pub initial_train_time: Duration,
    /// Wall-clock spent in SSE.
    pub sse_time: Duration,
    /// Wall-clock spent retraining on `X*` (zero when `n* = n0`).
    pub retrain_time: Duration,
    /// Total wall-clock of the run.
    pub total_time: Duration,
    /// Everything the fault-tolerant runtime caught and recovered from.
    pub anomalies: RunAnomalies,
    /// Structured run report (sizes, phase timings, counter snapshot, SSE
    /// trace). Phase/counter sections are empty unless the run was started
    /// with [`Scis::telemetry`] set to a collecting handle.
    pub report: RunReport,
    /// The last [`POST_MORTEM_TAIL`] flight-recorder events, captured only
    /// when the run degraded ([`RunAnomalies::is_degraded`]) or the run
    /// deadline expired, and telemetry was collecting. Clean runs (and
    /// telemetry-off runs) leave it empty.
    pub flight_tail: Vec<RecordedEvent>,
}

impl ScisOutcome {
    /// `R_t = n*/N` — the paper's training sample rate.
    pub fn training_sample_rate(&self) -> f64 {
        self.n_star as f64 / self.n_total.max(1) as f64
    }

    /// Fraction of the total time spent inside SSE (reported in Figure 2).
    pub fn sse_time_fraction(&self) -> f64 {
        let t = self.total_time.as_secs_f64();
        if t > 0.0 {
            self.sse_time.as_secs_f64() / t
        } else {
            0.0
        }
    }
}

/// Everything Algorithm 1 returns when run over a sharded source — the
/// streamed sibling of [`ScisOutcome`]. The imputed matrix itself is never
/// held whole: output rows went to the run's [`ShardSink`] shard by shard,
/// and [`StreamOutcome::rows_written`] records how many.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Rows pushed to the sink (always the source's row count on success).
    pub rows_written: usize,
    /// The estimated minimum sample size `n*`.
    pub n_star: usize,
    /// Dataset size `N`.
    pub n_total: usize,
    /// The initial sample size `n0` used.
    pub n0: usize,
    /// SSE details.
    pub sse: SseResult,
    /// Wall-clock spent training `M0`.
    pub initial_train_time: Duration,
    /// Wall-clock spent in SSE.
    pub sse_time: Duration,
    /// Wall-clock spent retraining on `X*` (zero when `n* = n0`).
    pub retrain_time: Duration,
    /// Total wall-clock of the run.
    pub total_time: Duration,
    /// Everything the fault-tolerant runtime caught and recovered from.
    pub anomalies: RunAnomalies,
    /// Structured run report (see [`ScisOutcome::report`]).
    pub report: RunReport,
    /// Post-mortem flight-recorder tail (see [`ScisOutcome::flight_tail`]).
    pub flight_tail: Vec<RecordedEvent>,
}

impl StreamOutcome {
    /// `R_t = n*/N` — the paper's training sample rate.
    pub fn training_sample_rate(&self) -> f64 {
        self.n_star as f64 / self.n_total.max(1) as f64
    }
}

/// The SCIS system.
#[derive(Debug, Clone, Default)]
pub struct Scis {
    config: ScisConfig,
    telemetry: Telemetry,
    checkpoint: Option<CheckpointPolicy>,
    deadline: RunDeadline,
    resume: Option<TrainCheckpoint>,
    heartbeat: HeartbeatHook,
}

impl Scis {
    /// Creates a SCIS instance with the given configuration (telemetry
    /// disabled — recording costs nothing until a collector is attached).
    pub fn new(config: ScisConfig) -> Self {
        Self {
            config,
            telemetry: Telemetry::off(),
            checkpoint: None,
            deadline: RunDeadline::none(),
            resume: None,
            heartbeat: HeartbeatHook::off(),
        }
    }

    /// Enables crash-safe checkpointing: every training phase writes
    /// epoch-boundary checkpoints under `policy`, plus an emergency
    /// checkpoint on terminal training failure or deadline expiry
    /// (DESIGN.md §14).
    pub fn checkpoints(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Attaches a run deadline. It is polled cooperatively (epoch, batch,
    /// Sinkhorn-sweep, and SSE-probe boundaries); on expiry the run skips
    /// the remaining phases, writes an emergency checkpoint (when
    /// [`Scis::checkpoints`] is active), and finishes gracefully with the
    /// best model so far, flagging [`RunAnomalies::deadline_exceeded`].
    pub fn deadline(mut self, deadline: RunDeadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Resumes a previous run from `ckpt`. The pipeline replays
    /// deterministically from the start (so the same seed must be used);
    /// phases before the checkpoint's recompute bit-exactly, and the
    /// checkpointed phase fast-forwards to the saved epoch. The final
    /// imputation is bit-identical to the uninterrupted run's.
    pub fn resume_from(mut self, ckpt: TrainCheckpoint) -> Self {
        self.resume = Some(ckpt);
        self
    }

    /// Attaches a heartbeat progress stream: every training phase and the
    /// final imputation pass emit JSONL progress records to the hook's
    /// writer (DESIGN.md §18). Pure observability — the hook only reads
    /// the wall clock to pace emission, so the run's imputed output is
    /// bit-identical with or without it.
    pub fn heartbeat(mut self, hook: HeartbeatHook) -> Self {
        self.heartbeat = hook;
        self
    }

    /// Attaches a telemetry collector: phase spans, solve/batch counters,
    /// and guard events of the next run are recorded on it, and the run's
    /// [`ScisOutcome::report`] carries the full snapshot. Recording never
    /// perturbs the imputation output or the RNG streams.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &ScisConfig {
        &self.config
    }

    /// Runs Algorithm 1 on `ds` with initial sample size `n0`
    /// (`Nv = n0`, as in the paper's experiments).
    ///
    /// Thin wrapper over [`Scis::try_run`] keeping the legacy panic
    /// contract.
    ///
    /// # Panics
    /// Panics on any [`ScisError`] — in particular when `2·n0` exceeds the
    /// dataset size.
    #[deprecated(
        since = "0.1.0",
        note = "use `Scis::try_run` and handle the typed `ScisError` instead of panicking"
    )]
    pub fn run(
        &self,
        imp: &mut dyn AdversarialImputer,
        ds: &Dataset,
        n0: usize,
        rng: &mut Rng64,
    ) -> ScisOutcome {
        self.try_run(imp, ds, n0, rng)
            .unwrap_or_else(|e| panic!("Scis::run: {e}"))
    }

    /// Fault-tolerant Algorithm 1: validates inputs up front, trains every
    /// DIM phase under the [`crate::guard`] runtime, escalates non-converged
    /// Sinkhorn solves, and degrades gracefully instead of returning NaN:
    ///
    /// * terminal failure of the *initial* training falls back to mean
    ///   imputation (`anomalies.mean_fallback`);
    /// * a failed calibration sibling skips calibration
    ///   (`anomalies.calibration_skipped`);
    /// * a failed retrain keeps the initial model `M0`
    ///   (`anomalies.retrain_failed`);
    /// * any non-finite cell left in the final output is patched from the
    ///   mean imputer (`anomalies.non_finite_cells_patched`).
    ///
    /// `Err` is reserved for states with no useful output at all: bad data,
    /// bad configuration, an oversized `n0`.
    pub fn try_run(
        &self,
        imp: &mut dyn AdversarialImputer,
        ds: &Dataset,
        n0: usize,
        rng: &mut Rng64,
    ) -> Result<ScisOutcome, ScisError> {
        let t_start = Instant::now();
        let tel = self.telemetry.clone();
        // forward the collector into the model so forward/backward passes
        // are counted (no-op for an `off` handle)
        imp.set_telemetry(tel.clone());
        let n_total = ds.n_samples();
        let n_v = n0; // paper §VI: Nv = n0
        let span_validate = tel.span(SpanKind::Validate);
        let data_report = ds.validate()?;
        if n_v + n0 > n_total {
            return Err(ScisError::OversizedInitialSample {
                requested: n_v + n0,
                n_total,
            });
        }
        if n0 == 0 {
            return Err(ScisError::InvalidConfig {
                message: "initial sample size n0 must be at least 1".into(),
            });
        }
        if self.config.dim.train.epochs == 0 {
            return Err(ScisError::InvalidConfig {
                message: "dim.train.epochs must be at least 1".into(),
            });
        }
        let mut anomalies = RunAnomalies {
            all_missing_columns: data_report.all_missing_columns,
            constant_columns: data_report.constant_columns,
            ..Default::default()
        };
        let guard = &self.config.guard;
        let hooks = TrainHooks {
            checkpoint: self.checkpoint.as_ref(),
            resume: self.resume.as_ref(),
            deadline: self.deadline.clone(),
            heartbeat: self.heartbeat.clone(),
        };

        // line 1: sample validation + initial sets
        let split = sample_initial_split(ds, n_v, n0, rng);
        drop(span_validate);

        // line 2: DIM-train M0 on X0. The init seed is remembered so the
        // calibration sibling (below) starts from *identical* weights —
        // Theorem 1 models sampling noise around one optimum, not
        // re-initialization noise.
        let init_seed = rng.next_u64();
        let t0 = Instant::now();
        let span_initial = tel.span(SpanKind::TrainInitial);
        imp.init_networks(ds.n_features(), &mut Rng64::seed_from_u64(init_seed));
        let mut guard_stats = GuardStats::default();
        // Each training phase gets its *own* dual cache: entries are keyed
        // by dataset-local row index, and the phases train on different row
        // sets (X0, the sibling sample, X*), so sharing would alias
        // unrelated rows. The initial-phase cache is reused read-only by
        // the SSE Fisher probe, which iterates the same X0 rows.
        let phase_cache = |accel: AccelConfig| {
            if accel.warm_start {
                DualCache::enabled()
            } else {
                DualCache::off()
            }
        };
        let initial_cache = phase_cache(self.config.dim.accel);
        let initial = train_dim_resumable(
            imp,
            &split.initial,
            &self.config.dim,
            guard,
            TrainPhase::Initial,
            &mut guard_stats,
            &tel,
            &initial_cache,
            &hooks,
            rng,
        );
        drop(span_initial);
        let initial_train_time = t0.elapsed();
        anomalies.absorb_guard(&guard_stats);
        if let Err(e) = initial {
            // graceful degradation: the adversarial model is unusable, but
            // mean imputation always produces a finite answer
            anomalies.mean_fallback = true;
            anomalies
                .notes
                .push(format!("initial {e}; fell back to mean imputation"));
            tel.record_event(Event::Degraded {
                reason: "mean_fallback",
            });
            let flight_tail = tel.event_tail(POST_MORTEM_TAIL);
            let imputed = scis_imputers::mean::MeanImputer.impute(ds, rng);
            let total_time = t_start.elapsed();
            let report = RunReport::assemble(
                &tel.snapshot(),
                n_total,
                n0,
                n0,
                total_time.as_secs_f64(),
                Vec::new(),
                &anomalies,
            );
            return Ok(ScisOutcome {
                imputed,
                n_star: n0,
                n_total,
                n0,
                sse: SseResult::skipped(n0),
                initial_train_time,
                sse_time: Duration::ZERO,
                retrain_time: Duration::ZERO,
                total_time,
                anomalies,
                report,
                flight_tail,
            });
        }

        // line 3: SSE (skipped entirely when the deadline already expired
        // during initial training — n* falls back to n0 and the run
        // finishes with M0)
        let t1 = Instant::now();
        let (sse, sse_time) = if self.deadline.expired() {
            (SseResult::skipped(n0), Duration::ZERO)
        } else {
            let span_sse = tel.span(SpanKind::Sse);
            let sinkhorn = SinkhornOptions {
                lambda: estimate_sse_lambda(&self.config.dim, &split.initial, imp, rng),
                max_iters: self.config.dim.max_sinkhorn_iters,
                tol: 1e-8,
                exec: self.config.dim.exec,
                deadline: self.deadline.clone(),
                precision: self.config.dim.accel.precision(),
            };
            let batch = self.config.dim.train.batch_size;
            // read-only reuse of the initial-phase duals: the Fisher probe
            // iterates the same X0 rows, and warm-starting its solves from the
            // converged training potentials saves iterations without writing
            // probe-state duals back into the cache
            let fisher = fisher_diagonal_cached(
                imp,
                &split.initial,
                &sinkhorn,
                batch,
                &guard.sinkhorn_escalation,
                &tel,
                &initial_cache,
                self.config.dim.accel,
                rng,
            );
            let mut estimator = SseEstimator::new(
                imp,
                &fisher,
                n0,
                n_total,
                ds.n_features(),
                self.config.sse,
                rng,
            );
            estimator.set_telemetry(tel.clone());
            estimator.set_deadline(self.deadline.clone());
            if self.config.sse.calibrate && !self.deadline.expired() {
                let _span_cal = tel.span(SpanKind::Calibration);
                // anchor Theorem 1's hidden constant: train a sibling model on a
                // second size-n0 sample and match the Monte-Carlo prediction to
                // the *observed* model-to-model difference (module docs of
                // `sse`). θ0 is restored afterwards.
                let theta0 = imp.generator_mut().param_vector();
                let sibling_set = sample_training_set(ds, n0, rng);
                imp.init_networks(ds.n_features(), &mut Rng64::seed_from_u64(init_seed));
                let mut sibling_stats = GuardStats::default();
                let sibling = train_dim_resumable(
                    imp,
                    &sibling_set,
                    &self.config.dim,
                    guard,
                    TrainPhase::Calibration,
                    &mut sibling_stats,
                    &tel,
                    &phase_cache(self.config.dim.accel),
                    &hooks,
                    rng,
                );
                anomalies.absorb_guard(&sibling_stats);
                match sibling {
                    Ok(_) => {
                        let theta_sibling = imp.generator_mut().param_vector();
                        imp.generator_mut().set_param_vector(&theta0);
                        let d_obs = model_distance(imp, &split.validation, &theta0, &theta_sibling);
                        let d_ref = estimator.reference_mc_distance(imp, &split.validation);
                        if d_obs > 1e-12 && d_ref > 1e-12 {
                            estimator.set_calibration(d_obs / d_ref);
                        }
                    }
                    Err(e) => {
                        // SSE still works uncalibrated (Theorem 1's raw
                        // constant); restore θ0 and carry on
                        imp.generator_mut().set_param_vector(&theta0);
                        anomalies.calibration_skipped = true;
                        anomalies
                            .notes
                            .push(format!("calibration {e}; using uncalibrated SSE"));
                        tel.record_event(Event::Degraded {
                            reason: "calibration_skipped",
                        });
                    }
                }
            }
            let sse = estimator.estimate(imp, &split.validation);
            drop(span_sse);
            (sse, t1.elapsed())
        };

        // lines 4-5: retrain on X* when n* > n0 (warm start from θ0);
        // skipped when the deadline has expired — M0 is the best we have
        let retrain_time = if sse.n_star > n0 && !self.deadline.expired() {
            let t2 = Instant::now();
            let _span_retrain = tel.span(SpanKind::Retrain);
            let x_star = sample_training_set(ds, sse.n_star, rng);
            let mut retrain_stats = GuardStats::default();
            let retrain = train_dim_resumable(
                imp,
                &x_star,
                &self.config.dim,
                guard,
                TrainPhase::Retrain,
                &mut retrain_stats,
                &tel,
                &phase_cache(self.config.dim.accel),
                &hooks,
                rng,
            );
            anomalies.absorb_guard(&retrain_stats);
            if let Err(e) = retrain {
                // the guarded trainer already restored its best snapshot
                // (at worst the warm-start θ0 = M0) — keep it
                anomalies.retrain_failed = true;
                anomalies
                    .notes
                    .push(format!("retrain {e}; keeping the initial model M0"));
                tel.record_event(Event::Degraded {
                    reason: "retrain_failed",
                });
            }
            t2.elapsed()
        } else {
            Duration::ZERO
        };

        // lines 6-7: impute the full dataset
        let span_impute = tel.span(SpanKind::Impute);
        let mut imputed = impute_with_generator(imp, ds, rng);
        let bad_cells = imputed.as_slice().iter().filter(|v| !v.is_finite()).count();
        if bad_cells > 0 {
            // last ring of defense: never hand back NaN — patch from the
            // mean imputer (observed cells are untouched; they were
            // validated finite and pass through the Eq.-1 merge)
            let fallback = scis_imputers::mean::MeanImputer.impute(ds, rng);
            imputed = Matrix::from_fn(imputed.rows(), imputed.cols(), |i, j| {
                let v = imputed[(i, j)];
                if v.is_finite() {
                    v
                } else {
                    fallback[(i, j)]
                }
            });
            anomalies.non_finite_cells_patched = bad_cells;
            anomalies.notes.push(format!(
                "patched {bad_cells} non-finite imputed cells from the mean imputer"
            ));
            tel.record_event(Event::Degraded {
                reason: "non_finite_cells_patched",
            });
        }
        drop(span_impute);
        self.heartbeat.poll(&Progress {
            phase: "impute",
            epoch: 0,
            epochs: 0,
            shard: 1,
            shards: 1,
            rows_done: n_total as u64,
            rows_total: n_total as u64,
            rollbacks: anomalies.rollbacks as u64,
            warm_hit_rate: 0.0,
        });

        if self.deadline.is_some() && self.deadline.expired() {
            anomalies.deadline_exceeded = true;
            anomalies
                .notes
                .push("run deadline expired; finished with the best model so far".into());
            // the trainer records DeadlineHit when it observes the expiry;
            // this covers a deadline that tripped between phases (the latch
            // guarantees exactly one event per run)
            if self.deadline.newly_expired() {
                tel.record_event(Event::DeadlineHit {
                    phase: "pipeline",
                    epoch: 0,
                });
            }
        }

        let total_time = t_start.elapsed();
        let flight_tail = if anomalies.is_degraded() || anomalies.deadline_exceeded {
            tel.event_tail(POST_MORTEM_TAIL)
        } else {
            Vec::new()
        };
        let report = RunReport::assemble(
            &tel.snapshot(),
            n_total,
            n0,
            sse.n_star,
            total_time.as_secs_f64(),
            sse.trace.clone(),
            &anomalies,
        );
        Ok(ScisOutcome {
            imputed,
            n_star: sse.n_star,
            n_total,
            n0,
            sse,
            initial_train_time,
            sse_time,
            retrain_time,
            total_time,
            anomalies,
            report,
            flight_tail,
        })
    }

    /// [`Scis::try_run`] over a sharded [`RowSource`]: the same Algorithm 1,
    /// never holding more than one shard of the full dataset (plus the
    /// size-`n0`/`n*` training sets) in memory at a time.
    ///
    /// Phase by phase:
    /// * validation runs as a one-pass shard fold ([`validate_source`]);
    /// * the validation/initial split and every later training-set draw
    ///   sample row ids through the *same* seeded `Rng64` calls as the
    ///   in-memory path, then gather rows shard by shard;
    /// * DIM training, calibration, SSE, and retraining operate on those
    ///   gathered in-memory sets exactly as `try_run` does;
    /// * the final imputation is a shard-wise pass writing finished rows to
    ///   `sink` incrementally (non-finite cells are patched from streamed
    ///   column means, mirroring the in-memory mean-imputer patch).
    ///
    /// For the same seed, the rows pushed to `sink` are bit-identical to
    /// `try_run`'s [`ScisOutcome::imputed`] whenever the imputer's
    /// reconstruction is row-independent (true for GAIN — verified by the
    /// shard-stream integration tests at every thread count). The source
    /// must keep the dataset invariant that missing cells hold NaN.
    pub fn try_run_streamed(
        &self,
        imp: &mut dyn AdversarialImputer,
        src: &dyn RowSource,
        n0: usize,
        rng: &mut Rng64,
        sink: &mut dyn ShardSink,
    ) -> Result<StreamOutcome, ScisError> {
        let t_start = Instant::now();
        let tel = self.telemetry.clone();
        imp.set_telemetry(tel.clone());
        let n_total = src.n_rows();
        let n_v = n0; // paper §VI: Nv = n0
        let span_validate = tel.span(SpanKind::Validate);
        let data_report = validate_source(src)?;
        if n_v + n0 > n_total {
            return Err(ScisError::OversizedInitialSample {
                requested: n_v + n0,
                n_total,
            });
        }
        if n0 == 0 {
            return Err(ScisError::InvalidConfig {
                message: "initial sample size n0 must be at least 1".into(),
            });
        }
        if self.config.dim.train.epochs == 0 {
            return Err(ScisError::InvalidConfig {
                message: "dim.train.epochs must be at least 1".into(),
            });
        }
        let mut anomalies = RunAnomalies {
            all_missing_columns: data_report.all_missing_columns,
            constant_columns: data_report.constant_columns,
            ..Default::default()
        };
        let guard = &self.config.guard;
        let hooks = TrainHooks {
            checkpoint: self.checkpoint.as_ref(),
            resume: self.resume.as_ref(),
            deadline: self.deadline.clone(),
            heartbeat: self.heartbeat.clone(),
        };

        // line 1: sample validation + initial sets (same rng draws as the
        // in-memory path, rows gathered shard by shard)
        let split = sample_initial_split_source(src, n_v, n0, rng)?;
        drop(span_validate);

        // line 2: DIM-train M0 on X0 (identical to `try_run` — the gathered
        // initial set is bit-equal to the in-memory `select_rows` result)
        let init_seed = rng.next_u64();
        let t0 = Instant::now();
        let span_initial = tel.span(SpanKind::TrainInitial);
        imp.init_networks(src.n_cols(), &mut Rng64::seed_from_u64(init_seed));
        let mut guard_stats = GuardStats::default();
        let phase_cache = |accel: AccelConfig| {
            if accel.warm_start {
                DualCache::enabled()
            } else {
                DualCache::off()
            }
        };
        let initial_cache = phase_cache(self.config.dim.accel);
        let initial = train_dim_resumable(
            imp,
            &split.initial,
            &self.config.dim,
            guard,
            TrainPhase::Initial,
            &mut guard_stats,
            &tel,
            &initial_cache,
            &hooks,
            rng,
        );
        drop(span_initial);
        let initial_train_time = t0.elapsed();
        anomalies.absorb_guard(&guard_stats);
        if let Err(e) = initial {
            // graceful degradation, streamed: fill missing cells from the
            // one-pass column means (bit-equal to `MeanImputer::impute` on
            // the materialized dataset) and push shard by shard
            anomalies.mean_fallback = true;
            anomalies
                .notes
                .push(format!("initial {e}; fell back to mean imputation"));
            tel.record_event(Event::Degraded {
                reason: "mean_fallback",
            });
            let flight_tail = tel.event_tail(POST_MORTEM_TAIL);
            let means = observed_column_means(src)?;
            let mut rows_written = 0usize;
            for k in 0..src.n_shards() {
                let shard = src.load_shard(k)?;
                let block = Matrix::from_fn(shard.n_samples(), src.n_cols(), |i, j| {
                    let v = shard.values[(i, j)];
                    if v.is_nan() {
                        means[j]
                    } else {
                        v
                    }
                });
                rows_written += block.rows();
                sink.push_rows(&block)?;
            }
            let total_time = t_start.elapsed();
            let report = RunReport::assemble(
                &tel.snapshot(),
                n_total,
                n0,
                n0,
                total_time.as_secs_f64(),
                Vec::new(),
                &anomalies,
            );
            return Ok(StreamOutcome {
                rows_written,
                n_star: n0,
                n_total,
                n0,
                sse: SseResult::skipped(n0),
                initial_train_time,
                sse_time: Duration::ZERO,
                retrain_time: Duration::ZERO,
                total_time,
                anomalies,
                report,
                flight_tail,
            });
        }

        // line 3: SSE — operates on n0, N, the validation set, and the
        // initial set only; none of them require the full matrix
        let t1 = Instant::now();
        let (sse, sse_time) = if self.deadline.expired() {
            (SseResult::skipped(n0), Duration::ZERO)
        } else {
            let span_sse = tel.span(SpanKind::Sse);
            let sinkhorn = SinkhornOptions {
                lambda: estimate_sse_lambda(&self.config.dim, &split.initial, imp, rng),
                max_iters: self.config.dim.max_sinkhorn_iters,
                tol: 1e-8,
                exec: self.config.dim.exec,
                deadline: self.deadline.clone(),
                precision: self.config.dim.accel.precision(),
            };
            let batch = self.config.dim.train.batch_size;
            let fisher = fisher_diagonal_cached(
                imp,
                &split.initial,
                &sinkhorn,
                batch,
                &guard.sinkhorn_escalation,
                &tel,
                &initial_cache,
                self.config.dim.accel,
                rng,
            );
            let mut estimator = SseEstimator::new(
                imp,
                &fisher,
                n0,
                n_total,
                src.n_cols(),
                self.config.sse,
                rng,
            );
            estimator.set_telemetry(tel.clone());
            estimator.set_deadline(self.deadline.clone());
            if self.config.sse.calibrate && !self.deadline.expired() {
                let _span_cal = tel.span(SpanKind::Calibration);
                let theta0 = imp.generator_mut().param_vector();
                let sibling_set = sample_training_set_source(src, n0, rng)?;
                imp.init_networks(src.n_cols(), &mut Rng64::seed_from_u64(init_seed));
                let mut sibling_stats = GuardStats::default();
                let sibling = train_dim_resumable(
                    imp,
                    &sibling_set,
                    &self.config.dim,
                    guard,
                    TrainPhase::Calibration,
                    &mut sibling_stats,
                    &tel,
                    &phase_cache(self.config.dim.accel),
                    &hooks,
                    rng,
                );
                anomalies.absorb_guard(&sibling_stats);
                match sibling {
                    Ok(_) => {
                        let theta_sibling = imp.generator_mut().param_vector();
                        imp.generator_mut().set_param_vector(&theta0);
                        let d_obs = model_distance(imp, &split.validation, &theta0, &theta_sibling);
                        let d_ref = estimator.reference_mc_distance(imp, &split.validation);
                        if d_obs > 1e-12 && d_ref > 1e-12 {
                            estimator.set_calibration(d_obs / d_ref);
                        }
                    }
                    Err(e) => {
                        imp.generator_mut().set_param_vector(&theta0);
                        anomalies.calibration_skipped = true;
                        anomalies
                            .notes
                            .push(format!("calibration {e}; using uncalibrated SSE"));
                        tel.record_event(Event::Degraded {
                            reason: "calibration_skipped",
                        });
                    }
                }
            }
            let sse = estimator.estimate(imp, &split.validation);
            drop(span_sse);
            (sse, t1.elapsed())
        };

        // lines 4-5: retrain on X* when n* > n0 — X* is gathered shard by
        // shard; n* rows is the streamed pipeline's peak training set
        let retrain_time = if sse.n_star > n0 && !self.deadline.expired() {
            let t2 = Instant::now();
            let _span_retrain = tel.span(SpanKind::Retrain);
            let x_star = sample_training_set_source(src, sse.n_star, rng)?;
            let mut retrain_stats = GuardStats::default();
            let retrain = train_dim_resumable(
                imp,
                &x_star,
                &self.config.dim,
                guard,
                TrainPhase::Retrain,
                &mut retrain_stats,
                &tel,
                &phase_cache(self.config.dim.accel),
                &hooks,
                rng,
            );
            anomalies.absorb_guard(&retrain_stats);
            if let Err(e) = retrain {
                anomalies.retrain_failed = true;
                anomalies
                    .notes
                    .push(format!("retrain {e}; keeping the initial model M0"));
                tel.record_event(Event::Degraded {
                    reason: "retrain_failed",
                });
            }
            t2.elapsed()
        } else {
            Duration::ZERO
        };

        // lines 6-7: impute shard by shard, pushing finished rows to the
        // sink. `impute_with_generator` never consumes rng, and a
        // row-independent reconstruction makes per-shard output bit-equal
        // to the whole-matrix pass. Column means for the non-finite patch
        // are computed lazily — clean runs never pay the extra pass.
        let span_impute = tel.span(SpanKind::Impute);
        let mut bad_cells = 0usize;
        let mut means: Option<Vec<f64>> = None;
        let mut rows_written = 0usize;
        for k in 0..src.n_shards() {
            let shard = src.load_shard(k)?;
            let mut block = impute_with_generator(imp, &shard, rng);
            let shard_bad = block.as_slice().iter().filter(|v| !v.is_finite()).count();
            if shard_bad > 0 {
                bad_cells += shard_bad;
                if means.is_none() {
                    means = Some(observed_column_means(src)?);
                }
                let fills = means.as_ref().expect("means just computed");
                block = Matrix::from_fn(block.rows(), block.cols(), |i, j| {
                    let v = block[(i, j)];
                    if v.is_finite() {
                        v
                    } else {
                        fills[j]
                    }
                });
            }
            rows_written += block.rows();
            sink.push_rows(&block)?;
            // one heartbeat per imputed shard: the streamed pipeline's
            // natural unit of forward progress
            self.heartbeat.poll(&Progress {
                phase: "impute",
                epoch: 0,
                epochs: 0,
                shard: (k + 1) as u64,
                shards: src.n_shards() as u64,
                rows_done: rows_written as u64,
                rows_total: n_total as u64,
                rollbacks: anomalies.rollbacks as u64,
                warm_hit_rate: 0.0,
            });
        }
        if bad_cells > 0 {
            anomalies.non_finite_cells_patched = bad_cells;
            anomalies.notes.push(format!(
                "patched {bad_cells} non-finite imputed cells from the mean imputer"
            ));
            tel.record_event(Event::Degraded {
                reason: "non_finite_cells_patched",
            });
        }
        drop(span_impute);

        if self.deadline.is_some() && self.deadline.expired() {
            anomalies.deadline_exceeded = true;
            anomalies
                .notes
                .push("run deadline expired; finished with the best model so far".into());
            if self.deadline.newly_expired() {
                tel.record_event(Event::DeadlineHit {
                    phase: "pipeline",
                    epoch: 0,
                });
            }
        }

        let total_time = t_start.elapsed();
        let flight_tail = if anomalies.is_degraded() || anomalies.deadline_exceeded {
            tel.event_tail(POST_MORTEM_TAIL)
        } else {
            Vec::new()
        };
        let report = RunReport::assemble(
            &tel.snapshot(),
            n_total,
            n0,
            sse.n_star,
            total_time.as_secs_f64(),
            sse.trace.clone(),
            &anomalies,
        );
        Ok(StreamOutcome {
            rows_written,
            n_star: sse.n_star,
            n_total,
            n0,
            sse,
            initial_train_time,
            sse_time,
            retrain_time,
            total_time,
            anomalies,
            report,
            flight_tail,
        })
    }
}

/// Resolves the DIM λ on a representative batch so SSE's Fisher pass uses
/// the same regularization scale the training saw.
fn estimate_sse_lambda(
    dim: &DimConfig,
    initial: &Dataset,
    imp: &mut dyn AdversarialImputer,
    rng: &mut Rng64,
) -> f64 {
    let n = initial.n_samples();
    let bs = dim.train.batch_size.min(n).max(2);
    // a *random* batch, not rows 0..bs — the initial set is sampled but
    // callers may pass datasets with ordered structure (sorted CSVs), and
    // a prefix batch would bias the λ scale
    let idx = rng.sample_indices(n, bs.min(n));
    let xb = initial.values_filled(0.0).select_rows(&idx);
    let mb = initial.dense_mask().select_rows(&idx);
    let g_in = imp.generator_input(&xb, &mb, rng);
    let generator = imp.generator_mut();
    let xbar = generator.forward(&g_in, scis_nn::Mode::Eval, rng);
    let cost = scis_ot::masked_sq_cost_with(&xbar, &mb, &xb, &mb, dim.exec);
    dim.resolve_lambda(&cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::{GenerativeLoss, LambdaMode};
    use scis_data::metrics::rmse_vs_ground_truth;
    use scis_data::missing::inject_mcar;
    use scis_imputers::{GainImputer, Imputer, TrainConfig};

    fn correlated_table(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut m = Matrix::zeros(n, 4);
        for i in 0..n {
            let t = rng.uniform();
            m[(i, 0)] = t;
            m[(i, 1)] = (0.8 * t + 0.1 + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
            m[(i, 2)] = (1.0 - t + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
            m[(i, 3)] = (0.5 * t + 0.25 + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
        }
        m
    }

    fn fast_config() -> ScisConfig {
        ScisConfig {
            dim: DimConfig {
                train: TrainConfig {
                    epochs: 25,
                    batch_size: 64,
                    learning_rate: 0.005,
                    dropout: 0.0,
                },
                lambda: LambdaMode::Relative(0.1),
                max_sinkhorn_iters: 150,
                alpha: 10.0,
                critic: None,
                loss: GenerativeLoss::MaskedSinkhorn,
                ..Default::default()
            },
            sse: SseConfig {
                epsilon: 0.02,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn algorithm1_end_to_end_produces_valid_imputation() {
        let complete = correlated_table(600, 1);
        let mut rng = Rng64::seed_from_u64(2);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let mut gain = GainImputer::new(fast_config().dim.train);
        let outcome = Scis::new(fast_config())
            .try_run(&mut gain, &ds, 100, &mut rng)
            .expect("pipeline run");

        assert_eq!(outcome.imputed.shape(), (600, 4));
        assert!(!outcome.imputed.has_nan());
        // observed cells pass through exactly
        for (i, j, v) in ds.observed_cells() {
            assert_eq!(outcome.imputed[(i, j)], v);
        }
        assert!((100..=600).contains(&outcome.n_star));
        assert!(outcome.training_sample_rate() <= 1.0);
        assert!(outcome.total_time >= outcome.sse_time);
    }

    #[test]
    fn scis_gain_beats_mean_imputation() {
        let complete = correlated_table(600, 3);
        let mut rng = Rng64::seed_from_u64(4);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let mut gain = GainImputer::new(fast_config().dim.train);
        let outcome = Scis::new(fast_config())
            .try_run(&mut gain, &ds, 100, &mut rng)
            .expect("pipeline run");
        let e = rmse_vs_ground_truth(&ds, &complete, &outcome.imputed);
        let mut mean = scis_imputers::mean::MeanImputer;
        let e_mean = rmse_vs_ground_truth(&ds, &complete, &mean.impute(&ds, &mut rng));
        assert!(e < e_mean, "scis-gain {} vs mean {}", e, e_mean);
    }

    #[test]
    fn loose_epsilon_keeps_n0_and_skips_retraining() {
        let complete = correlated_table(500, 5);
        let mut rng = Rng64::seed_from_u64(6);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let mut cfg = fast_config();
        cfg.sse.epsilon = 100.0;
        let mut gain = GainImputer::new(cfg.dim.train);
        let outcome = Scis::new(cfg)
            .try_run(&mut gain, &ds, 80, &mut rng)
            .expect("pipeline run");
        assert_eq!(outcome.n_star, 80);
        assert_eq!(outcome.retrain_time, Duration::ZERO);
    }

    #[test]
    fn sse_time_fraction_is_sane() {
        let complete = correlated_table(400, 7);
        let mut rng = Rng64::seed_from_u64(8);
        let ds = inject_mcar(&complete, 0.2, &mut rng);
        let mut gain = GainImputer::new(fast_config().dim.train);
        let outcome = Scis::new(fast_config())
            .try_run(&mut gain, &ds, 80, &mut rng)
            .expect("pipeline run");
        let f = outcome.sse_time_fraction();
        assert!((0.0..=1.0).contains(&f), "fraction {}", f);
    }

    #[test]
    fn rejects_oversized_n0() {
        let complete = correlated_table(100, 9);
        let mut rng = Rng64::seed_from_u64(10);
        let ds = inject_mcar(&complete, 0.2, &mut rng);
        let mut gain = GainImputer::new(fast_config().dim.train);
        let err = Scis::new(fast_config())
            .try_run(&mut gain, &ds, 80, &mut rng)
            .unwrap_err();
        assert!(err.to_string().contains("exceeds N"), "{}", err);
    }
}
