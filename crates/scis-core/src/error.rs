//! The workspace-level error hierarchy for the fault-tolerant pipeline.
//!
//! [`ScisError`] wraps every lower-layer failure mode — bad data
//! ([`scis_data::DataError`]), CSV parsing, Sinkhorn input defects, model
//! serialization, linear algebra — plus the two failure modes that only
//! exist at the pipeline level: invalid configuration and a DIM training
//! run that stayed numerically broken after every recovery attempt
//! ([`TrainingError`]).
//!
//! [`crate::pipeline::Scis::try_run`] returns these instead of panicking;
//! the legacy `run` entry point keeps its panic contract by formatting the
//! error (which is why [`ScisError::OversizedInitialSample`] preserves the
//! historical `"exceeds N"` message).

use scis_telemetry::RecordedEvent;
use std::fmt;

/// How many trailing flight-recorder events a [`TrainingError`] (or a
/// degraded pipeline outcome) carries as its post-mortem.
pub const POST_MORTEM_TAIL: usize = 64;

/// Which DIM training phase of Algorithm 1 an error came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainPhase {
    /// Line 2: training `M0` on the initial sample `X0`.
    Initial,
    /// The SSE calibration sibling (trained on a second size-`n0` sample).
    Calibration,
    /// Line 5: retraining on the size-`n*` sample `X*`.
    Retrain,
}

impl TrainPhase {
    /// Stable snake_case slug used in flight-recorder events.
    pub fn name(self) -> &'static str {
        match self {
            TrainPhase::Initial => "initial",
            TrainPhase::Calibration => "calibration",
            TrainPhase::Retrain => "retrain",
        }
    }

    /// Numeric code for the `train_phase` metric series
    /// (0 = initial, 1 = calibration, 2 = retrain).
    pub fn code(self) -> u8 {
        match self {
            TrainPhase::Initial => 0,
            TrainPhase::Calibration => 1,
            TrainPhase::Retrain => 2,
        }
    }
}

impl fmt::Display for TrainPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainPhase::Initial => write!(f, "initial training"),
            TrainPhase::Calibration => write!(f, "SSE calibration training"),
            TrainPhase::Retrain => write!(f, "retraining"),
        }
    }
}

/// Why a guarded DIM epoch was declared broken.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureReason {
    /// The mean epoch loss came out NaN or infinite.
    NonFiniteLoss,
    /// The generator gradient norm exceeded the guard's ceiling (or was
    /// itself non-finite).
    ExplodingGradient {
        /// The offending gradient norm.
        norm: f64,
    },
    /// Every batch of the epoch was skipped as numerically poisoned.
    AllBatchesSkipped,
    /// A resume checkpoint did not match the network it was applied to
    /// (different architecture or dataset width).
    ResumeMismatch {
        /// Parameter count of the freshly initialized network.
        expected: usize,
        /// Parameter count recorded in the checkpoint.
        actual: usize,
    },
}

impl fmt::Display for FailureReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureReason::NonFiniteLoss => write!(f, "non-finite epoch loss"),
            FailureReason::ExplodingGradient { norm } => {
                write!(f, "exploding gradient (norm {norm:.3e})")
            }
            FailureReason::AllBatchesSkipped => {
                write!(f, "every batch was skipped as numerically poisoned")
            }
            FailureReason::ResumeMismatch { expected, actual } => {
                write!(
                    f,
                    "resume checkpoint does not fit this model: network has {expected} \
                     parameters, checkpoint records {actual}"
                )
            }
        }
    }
}

/// A DIM training run that exhausted its rollback/LR-backoff budget.
///
/// The generator is left holding the best (lowest finite-loss) parameter
/// snapshot seen before the failure, so callers can still degrade
/// gracefully.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingError {
    /// The training phase that failed.
    pub phase: TrainPhase,
    /// Epoch index (successful epochs completed) at the terminal failure.
    pub epoch: usize,
    /// Recovery attempts (rollback + LR backoff) consumed before giving up.
    pub retries: usize,
    /// The terminal failure.
    pub reason: FailureReason,
    /// The last [`POST_MORTEM_TAIL`] flight-recorder events before the
    /// failure (empty when telemetry was off — the recorder only observes).
    pub post_mortem: Vec<RecordedEvent>,
}

impl fmt::Display for TrainingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DIM {} failed at epoch {} after {} recovery attempts: {}",
            self.phase, self.epoch, self.retries, self.reason
        )
    }
}

impl std::error::Error for TrainingError {}

/// Any failure the SCIS pipeline can surface instead of panicking.
#[derive(Debug)]
pub enum ScisError {
    /// The input dataset is unusable (non-finite observed cells, empty).
    Data(scis_data::DataError),
    /// A configuration value makes the run meaningless.
    InvalidConfig {
        /// Human-readable description of the bad setting.
        message: String,
    },
    /// `Nv + n0` exceeds the dataset size (Algorithm 1 cannot sample
    /// disjoint validation and initial sets).
    OversizedInitialSample {
        /// `Nv + n0` requested.
        requested: usize,
        /// Dataset size `N`.
        n_total: usize,
    },
    /// DIM training stayed broken after every recovery attempt.
    Training(TrainingError),
    /// A Sinkhorn solve rejected its inputs.
    Sinkhorn(scis_ot::SinkhornError),
    /// Model checkpoint load/save failed.
    ModelIo(scis_nn::serialize::ModelIoError),
    /// CSV input could not be parsed.
    Csv(scis_data::csvio::CsvError),
    /// A linear-algebra kernel failed (singular / non-PD matrix).
    Linalg(scis_tensor::linalg::LinalgError),
    /// The out-of-core shard layer failed (torn/corrupt spill shard, bad
    /// manifest, io error, or a defect found by a streamed validate fold).
    Shard(scis_data::ShardError),
}

impl fmt::Display for ScisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScisError::Data(e) => write!(f, "invalid dataset: {e}"),
            ScisError::InvalidConfig { message } => {
                write!(f, "invalid configuration: {message}")
            }
            ScisError::OversizedInitialSample { requested, n_total } => {
                // keeps the legacy panic-message contract of `Scis::run`
                write!(f, "Nv + n0 = {requested} exceeds N = {n_total}")
            }
            ScisError::Training(e) => write!(f, "{e}"),
            ScisError::Sinkhorn(e) => write!(f, "sinkhorn: {e}"),
            ScisError::ModelIo(e) => write!(f, "model io: {e}"),
            ScisError::Csv(e) => write!(f, "csv: {e}"),
            ScisError::Linalg(e) => write!(f, "linalg: {e}"),
            ScisError::Shard(e) => write!(f, "shard: {e}"),
        }
    }
}

impl std::error::Error for ScisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScisError::Data(e) => Some(e),
            ScisError::Training(e) => Some(e),
            ScisError::Sinkhorn(e) => Some(e),
            ScisError::ModelIo(e) => Some(e),
            ScisError::Csv(e) => Some(e),
            ScisError::Linalg(e) => Some(e),
            ScisError::Shard(e) => Some(e),
            _ => None,
        }
    }
}

impl From<scis_data::DataError> for ScisError {
    fn from(e: scis_data::DataError) -> Self {
        ScisError::Data(e)
    }
}

impl From<TrainingError> for ScisError {
    fn from(e: TrainingError) -> Self {
        ScisError::Training(e)
    }
}

impl From<scis_ot::SinkhornError> for ScisError {
    fn from(e: scis_ot::SinkhornError) -> Self {
        ScisError::Sinkhorn(e)
    }
}

impl From<scis_nn::serialize::ModelIoError> for ScisError {
    fn from(e: scis_nn::serialize::ModelIoError) -> Self {
        ScisError::ModelIo(e)
    }
}

impl From<scis_data::csvio::CsvError> for ScisError {
    fn from(e: scis_data::csvio::CsvError) -> Self {
        ScisError::Csv(e)
    }
}

impl From<scis_tensor::linalg::LinalgError> for ScisError {
    fn from(e: scis_tensor::linalg::LinalgError) -> Self {
        ScisError::Linalg(e)
    }
}

impl From<scis_data::ShardError> for ScisError {
    fn from(e: scis_data::ShardError) -> Self {
        // a streamed fold finding a plain data defect is the same failure
        // as the in-memory validate finding it — unwrap to keep error
        // handling uniform across the two paths
        match e {
            scis_data::ShardError::Data(d) => ScisError::Data(d),
            other => ScisError::Shard(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversized_message_keeps_legacy_contract() {
        let e = ScisError::OversizedInitialSample {
            requested: 160,
            n_total: 100,
        };
        assert_eq!(e.to_string(), "Nv + n0 = 160 exceeds N = 100");
    }

    #[test]
    fn training_error_names_phase_and_reason() {
        let e = TrainingError {
            phase: TrainPhase::Retrain,
            epoch: 7,
            retries: 3,
            reason: FailureReason::NonFiniteLoss,
            post_mortem: Vec::new(),
        };
        let msg = e.to_string();
        assert!(msg.contains("retraining"), "{msg}");
        assert!(msg.contains("epoch 7"), "{msg}");
        assert!(msg.contains("non-finite"), "{msg}");
    }

    #[test]
    fn train_phase_slugs_and_codes_are_distinct() {
        let phases = [
            TrainPhase::Initial,
            TrainPhase::Calibration,
            TrainPhase::Retrain,
        ];
        let names: Vec<_> = phases.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["initial", "calibration", "retrain"]);
        let codes: Vec<_> = phases.iter().map(|p| p.code()).collect();
        assert_eq!(codes, vec![0, 1, 2]);
    }

    #[test]
    fn wrapped_errors_round_trip_through_from() {
        let e: ScisError = scis_data::DataError::Empty.into();
        assert!(matches!(e, ScisError::Data(_)));
        let e: ScisError = scis_tensor::linalg::LinalgError::Singular { pivot: 3 }.into();
        assert!(e.to_string().contains("singular"));
    }
}
