//! DIM — Differentiable Imputation Modeling (paper §IV).
//!
//! Converts a GAN-based imputer into a differentiable one by replacing its
//! JS-divergence adversarial loss with the masking Sinkhorn divergence:
//! per mini-batch, the generator reconstructs `X̄` and descends the gradient
//! of `L_s = S_m(X̄⊙M ‖ X⊙M) / (2n)` (Proposition 1), plus GAIN's
//! observed-cell reconstruction anchor `α·MSE(M⊙X, M⊙X̄)` which the wrapped
//! models already carry.
//!
//! Two variants of the adversarial game:
//! * **data-space** (default) — the MS divergence is computed directly on
//!   the masked batch; there is no discriminator at all. Stable, fast, and
//!   the configuration every table in the reproduction uses.
//! * **critic** — §IV.B's "discriminator maximizes the MS divergence"
//!   literally: a small embedding network `φ` defines the transport cost
//!   `‖φ(x̄ᵢ⊙mᵢ,mᵢ) − φ(xⱼ⊙mⱼ,mⱼ)‖²`; `φ` takes ascent steps on `S_m^φ`
//!   while the generator descends it. Costlier and noisier — kept as an
//!   ablation (see DESIGN.md §3 and the `dim_critic` bench).

use crate::checkpoint::{CheckpointPolicy, TrainCheckpoint};
use crate::error::{FailureReason, TrainPhase, TrainingError, POST_MORTEM_TAIL};
use crate::guard::{GuardConfig, GuardStats, GuardVerdict, TrainingGuard};
use scis_data::Dataset;
use scis_imputers::{AdversarialImputer, TrainConfig};
use scis_nn::loss::weighted_mse;
use scis_nn::{Activation, Adam, Mlp, Mode, Optimizer};
use scis_ot::grad::{cross_ot_grad, self_ot_grad};
use scis_ot::{
    masked_sq_cost_decomposed_p, masked_sq_cost_with, ms_loss_grad_accel, ms_loss_grad_tracked,
    sinkhorn_uniform, sliced_w2_loss_grad, AccelContext, DualCache, MaskedRows, SinkhornOptions,
    SlicedOptions, SolveStats,
};
use scis_telemetry::{Counter, Event, Hist, Series, Telemetry};
use scis_tensor::par::pairwise_sq_dists_exec;
use scis_tensor::{ExecPolicy, Matrix, Rng64, RunDeadline};

/// Mirrors one batch's Sinkhorn solve accounting into the telemetry
/// counters, the per-solve iteration histogram, and — when escalations
/// fired — the flight-recorder event stream (the cross-layer channel;
/// `GuardStats.sinkhorn` keeps the value-flow copy).
pub(crate) fn record_solve_stats(tel: &Telemetry, s: SolveStats) {
    tel.add(Counter::SinkhornSolves, s.solves as u64);
    tel.add(Counter::SinkhornIterations, s.iterations as u64);
    tel.add(Counter::SinkhornConverged, s.converged as u64);
    tel.add(Counter::SinkhornEscalations, s.escalations as u64);
    tel.add(Counter::SinkhornUnconverged, s.unconverged as u64);
    tel.add(Counter::WarmStartHits, s.warm_starts as u64);
    tel.add(Counter::ItersSaved, s.iters_saved as u64);
    for &iters in s.tracked_iters() {
        tel.record_hist(Hist::SinkhornSolveIters, iters as u64);
    }
    if s.escalations > 0 {
        tel.record_event(Event::SinkhornEscalation {
            count: s.escalations as u64,
        });
    }
}

/// Sinkhorn hot-path acceleration knobs. All off by default — the default
/// training path is bit-identical to the historical implementation; each
/// flag trades that strict identity for speed while preserving correctness
/// (results agree within the solver tolerance, and stay bit-identical across
/// thread counts for a fixed configuration).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccelConfig {
    /// Warm-start each batch's Sinkhorn solves from the previous epoch's
    /// dual potentials (row-keyed [`DualCache`]; invalidated on rollback).
    pub warm_start: bool,
    /// Build masked cost matrices with the decomposed GEMM kernel
    /// (`‖aᵢ‖² + ‖bⱼ‖² − 2·(AM)(BM)ᵀ`) instead of the scalar distance loop,
    /// caching the constant data side across epochs.
    pub decomposed_cost: bool,
    /// Anneal cold solves (first epoch, post-rollback) through ε-scaling.
    pub eps_scale_cold: bool,
    /// Run the compute hot loops (GEMM, Sinkhorn sweeps) with `f32` operand
    /// storage, `f64` accumulation, and the polynomial `fast_exp` — see
    /// `scis_tensor::Precision::F32`. Results differ from the default path
    /// by input rounding only, and stay bit-identical across thread counts
    /// for a fixed configuration.
    pub f32_compute: bool,
}

impl AccelConfig {
    /// Everything except `f32_compute` on — the full-precision accelerated
    /// configuration the bench suite has historically measured.
    pub fn all() -> Self {
        Self {
            warm_start: true,
            decomposed_cost: true,
            eps_scale_cold: true,
            f32_compute: false,
        }
    }

    /// Everything on, including the `f32` compute mode.
    pub fn all_f32() -> Self {
        Self {
            f32_compute: true,
            ..Self::all()
        }
    }

    /// Whether any acceleration is active (off → the historical hot path).
    pub fn any(&self) -> bool {
        self.warm_start || self.decomposed_cost || self.eps_scale_cold || self.f32_compute
    }

    /// Compute precision implied by the flags.
    pub fn precision(&self) -> scis_tensor::Precision {
        if self.f32_compute {
            scis_tensor::Precision::F32
        } else {
            scis_tensor::Precision::F64
        }
    }

    /// Fluent setter for [`AccelConfig::warm_start`].
    pub fn warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Fluent setter for [`AccelConfig::decomposed_cost`].
    pub fn decomposed_cost(mut self, on: bool) -> Self {
        self.decomposed_cost = on;
        self
    }

    /// Fluent setter for [`AccelConfig::eps_scale_cold`].
    pub fn eps_scale_cold(mut self, on: bool) -> Self {
        self.eps_scale_cold = on;
        self
    }

    /// Fluent setter for [`AccelConfig::f32_compute`].
    pub fn f32_compute(mut self, on: bool) -> Self {
        self.f32_compute = on;
        self
    }
}

/// How the Sinkhorn regularization λ is chosen per batch.
#[derive(Debug, Clone, Copy)]
pub enum LambdaMode {
    /// Fixed λ (the paper's experiments use 130 — diffuse-plan regime).
    Absolute(f64),
    /// λ = factor × mean entry of the batch cost matrix; adapts to the
    /// dataset's dimensionality and missing rate.
    Relative(f64),
}

/// Critic ("discriminator") settings for the adversarial MS game.
#[derive(Debug, Clone, Copy)]
pub struct CriticConfig {
    /// Embedding dimensionality of φ.
    pub embed_dim: usize,
    /// Hidden width of φ.
    pub hidden: usize,
    /// Critic learning rate.
    pub learning_rate: f64,
}

impl Default for CriticConfig {
    fn default() -> Self {
        Self {
            embed_dim: 16,
            hidden: 32,
            learning_rate: 1e-3,
        }
    }
}

/// Which distributional loss drives the generator (ablation knob; the
/// paper's DIM is the masking Sinkhorn divergence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GenerativeLoss {
    /// The paper's masking Sinkhorn divergence (Definitions 2–4).
    MaskedSinkhorn,
    /// Masked sliced-Wasserstein distance — solver-free alternative used
    /// by the `ablation_dim` bench to quantify what the transport plan
    /// buys.
    SlicedWasserstein {
        /// Number of random projections.
        n_projections: usize,
    },
}

/// DIM training configuration.
#[derive(Debug, Clone, Copy)]
pub struct DimConfig {
    /// Epoch/batch/learning-rate schedule (paper defaults).
    pub train: TrainConfig,
    /// λ selection; `Relative(0.1)` by default (DESIGN.md §6 explains the
    /// deviation from the paper's absolute 130).
    pub lambda: LambdaMode,
    /// Sinkhorn iteration caps.
    pub max_sinkhorn_iters: usize,
    /// Reconstruction anchor weight α (same role as GAIN's α).
    pub alpha: f64,
    /// Optional adversarial critic; `None` = data-space divergence.
    pub critic: Option<CriticConfig>,
    /// Distributional loss (ablation; default = the paper's MS divergence).
    pub loss: GenerativeLoss,
    /// Execution policy for the generator's matmuls, cost builds, and
    /// Sinkhorn sweeps. Bit-identical results under any policy.
    pub exec: ExecPolicy,
    /// Sinkhorn hot-path acceleration (warm-start dual cache, decomposed
    /// cost kernel, ε-scaled cold solves). Off by default.
    pub accel: AccelConfig,
}

impl Default for DimConfig {
    fn default() -> Self {
        Self {
            train: TrainConfig::default(),
            lambda: LambdaMode::Relative(0.1),
            max_sinkhorn_iters: 200,
            alpha: 10.0,
            critic: None,
            loss: GenerativeLoss::MaskedSinkhorn,
            exec: ExecPolicy::default(),
            accel: AccelConfig::default(),
        }
    }
}

impl DimConfig {
    /// Resolves λ for a concrete cost matrix.
    pub fn resolve_lambda(&self, cost: &Matrix) -> f64 {
        match self.lambda {
            LambdaMode::Absolute(l) => l,
            LambdaMode::Relative(f) => {
                let mean = cost.mean();
                (f * mean).max(1e-6)
            }
        }
    }

    fn sinkhorn_options(&self, lambda: f64) -> SinkhornOptions {
        // `DimConfig` is `Copy`, so the (non-`Copy`) run deadline is not
        // stored here — the train loop attaches it per solve via
        // `SinkhornOptions::deadline`.
        SinkhornOptions {
            lambda,
            max_iters: self.max_sinkhorn_iters,
            tol: 1e-8,
            exec: self.exec,
            deadline: scis_tensor::RunDeadline::none(),
            precision: self.accel.precision(),
        }
    }

    /// Fluent setter for [`DimConfig::train`].
    pub fn train(mut self, train: TrainConfig) -> Self {
        self.train = train;
        self
    }

    /// Fluent setter for [`DimConfig::lambda`].
    pub fn lambda(mut self, lambda: LambdaMode) -> Self {
        self.lambda = lambda;
        self
    }

    /// Fluent setter for [`DimConfig::max_sinkhorn_iters`].
    pub fn max_sinkhorn_iters(mut self, max_iters: usize) -> Self {
        self.max_sinkhorn_iters = max_iters;
        self
    }

    /// Fluent setter for [`DimConfig::alpha`].
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Fluent setter for [`DimConfig::critic`].
    pub fn critic(mut self, critic: Option<CriticConfig>) -> Self {
        self.critic = critic;
        self
    }

    /// Fluent setter for [`DimConfig::loss`].
    pub fn loss(mut self, loss: GenerativeLoss) -> Self {
        self.loss = loss;
        self
    }

    /// Fluent setter for [`DimConfig::exec`].
    pub fn exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Fluent setter for [`DimConfig::accel`].
    pub fn accel(mut self, accel: AccelConfig) -> Self {
        self.accel = accel;
        self
    }
}

/// Outcome of a DIM training run.
#[derive(Debug, Clone)]
pub struct DimReport {
    /// MS-divergence loss after each epoch (mean over batches).
    pub epoch_losses: Vec<f64>,
    /// The λ actually used on the last batch (diagnostics).
    pub last_lambda: f64,
    /// Wall-clock training duration.
    pub duration: std::time::Duration,
}

impl DimReport {
    /// Final epoch loss (NaN if training never ran).
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(f64::NAN)
    }
}

/// The critic network φ plus its optimizer.
struct Critic {
    net: Mlp,
    opt: Adam,
}

impl Critic {
    fn new(input_dim: usize, cfg: &CriticConfig, rng: &mut Rng64) -> Self {
        let net = Mlp::builder(input_dim)
            .dense(cfg.hidden, Activation::LeakyRelu)
            .dense(cfg.embed_dim, Activation::Identity)
            .build(rng);
        Self {
            net,
            opt: Adam::new(cfg.learning_rate),
        }
    }
}

/// Trains (or continues training) the generator of `imp` on `ds` under the
/// MS-divergence loss. Networks must already be initialized if you want a
/// warm start; otherwise they are initialized here.
///
/// Thin *panicking* wrapper over [`try_train_dim`], kept for callers that
/// have no recovery strategy (doctests, quick scripts). Everything else —
/// the pipeline, the CLI, the bench harness — goes through the fallible
/// path so a terminal [`TrainingError`] can degrade gracefully instead of
/// aborting the process.
#[deprecated(
    since = "0.1.0",
    note = "use `try_train_dim` and handle the typed `TrainingError` instead of panicking"
)]
pub fn train_dim(
    imp: &mut dyn AdversarialImputer,
    ds: &Dataset,
    cfg: &DimConfig,
    rng: &mut Rng64,
) -> DimReport {
    try_train_dim(imp, ds, cfg, rng).unwrap_or_else(|e| panic!("train_dim: {e}"))
}

/// Fallible [`train_dim`]: default guard, no telemetry, structured
/// [`TrainingError`] on terminal failure (the generator is left on its best
/// snapshot, so callers may still impute with it).
pub fn try_train_dim(
    imp: &mut dyn AdversarialImputer,
    ds: &Dataset,
    cfg: &DimConfig,
    rng: &mut Rng64,
) -> Result<DimReport, TrainingError> {
    let mut stats = GuardStats::default();
    train_dim_guarded(
        imp,
        ds,
        cfg,
        &GuardConfig::default(),
        TrainPhase::Initial,
        &mut stats,
        rng,
    )
}

fn all_finite(m: &Matrix) -> bool {
    m.as_slice().iter().all(|v| v.is_finite())
}

/// Fault-tolerant DIM training (see [`crate::guard`] module docs for the
/// three recovery rings).
///
/// On the healthy path this is *bit-identical* to the historical
/// `train_dim`: the guard only reads losses and parameters, never the RNG,
/// so seeds reproduce. Recovery accounting accumulates into `stats`;
/// a terminal failure returns a [`TrainingError`] with the generator left
/// on its best snapshot.
pub fn train_dim_guarded(
    imp: &mut dyn AdversarialImputer,
    ds: &Dataset,
    cfg: &DimConfig,
    guard_cfg: &GuardConfig,
    phase: TrainPhase,
    stats: &mut GuardStats,
    rng: &mut Rng64,
) -> Result<DimReport, TrainingError> {
    train_dim_telemetered(
        imp,
        ds,
        cfg,
        guard_cfg,
        phase,
        stats,
        &Telemetry::off(),
        rng,
    )
}

/// [`train_dim_guarded`] with a telemetry collector: epochs, applied and
/// skipped batches, guard events, and per-solve Sinkhorn accounting are
/// mirrored into `tel`. Recording is determinism-neutral — it never reads
/// the RNG or the numeric path, and every counted event happens at the same
/// logical point under any [`ExecPolicy`], so counter totals are
/// bit-identical between serial and threaded runs.
#[allow(clippy::too_many_arguments)]
pub fn train_dim_telemetered(
    imp: &mut dyn AdversarialImputer,
    ds: &Dataset,
    cfg: &DimConfig,
    guard_cfg: &GuardConfig,
    phase: TrainPhase,
    stats: &mut GuardStats,
    tel: &Telemetry,
    rng: &mut Rng64,
) -> Result<DimReport, TrainingError> {
    let cache = if cfg.accel.warm_start {
        DualCache::enabled()
    } else {
        DualCache::off()
    };
    train_dim_cached(imp, ds, cfg, guard_cfg, phase, stats, tel, &cache, rng)
}

/// [`train_dim_telemetered`] with an externally owned [`DualCache`], so the
/// pipeline can hand the warm training-phase cache to the SSE Monte-Carlo
/// fan-out for read-only reuse afterwards. The cache is invalidated here on
/// every guard rollback: after the parameters rewind, cached duals describe
/// a generator state that no longer exists.
#[allow(clippy::too_many_arguments)]
pub fn train_dim_cached(
    imp: &mut dyn AdversarialImputer,
    ds: &Dataset,
    cfg: &DimConfig,
    guard_cfg: &GuardConfig,
    phase: TrainPhase,
    stats: &mut GuardStats,
    tel: &Telemetry,
    cache: &DualCache,
    rng: &mut Rng64,
) -> Result<DimReport, TrainingError> {
    train_dim_resumable(
        imp,
        ds,
        cfg,
        guard_cfg,
        phase,
        stats,
        tel,
        cache,
        &TrainHooks::default(),
        rng,
    )
}

/// Robustness hooks for [`train_dim_resumable`]: periodic checkpointing,
/// resume-from-checkpoint, and a cooperative run deadline. The default
/// value disables all three, making the hot path identical to
/// [`train_dim_cached`].
#[derive(Debug, Clone, Default)]
pub struct TrainHooks<'a> {
    /// Write a [`TrainCheckpoint`] at epoch boundaries under this policy,
    /// plus an emergency checkpoint on terminal failure or deadline expiry.
    pub checkpoint: Option<&'a CheckpointPolicy>,
    /// Fast-forward to this checkpoint when its phase matches the phase
    /// being trained (phases before it replay normally; the deterministic
    /// replay regenerates their state bit-exactly).
    pub resume: Option<&'a TrainCheckpoint>,
    /// Cooperative cancellation, polled at epoch, batch, and Sinkhorn-sweep
    /// boundaries. On expiry training stops gracefully: the generator is
    /// rewound to the last completed epoch boundary (matching the emergency
    /// checkpoint written at the same moment) and a partial report returns.
    pub deadline: RunDeadline,
    /// JSONL progress stream, polled at the same epoch and batch
    /// boundaries as `deadline`. Read-only observability: emission never
    /// touches the RNG streams or the model, so the trained parameters are
    /// bit-identical with the hook attached or absent.
    pub heartbeat: crate::heartbeat::HeartbeatHook,
}

/// Snapshots the full train-loop state at an epoch boundary. Read-only —
/// never draws from the RNG — so capturing is determinism-neutral.
fn capture_boundary(
    imp: &mut dyn AdversarialImputer,
    phase: TrainPhase,
    epoch: usize,
    opt_g: &Adam,
    guard: &TrainingGuard,
    stats: &GuardStats,
    rng: &Rng64,
) -> TrainCheckpoint {
    TrainCheckpoint {
        phase,
        epoch,
        rng: rng.state(),
        adam: opt_g.state(),
        gen_params: imp.generator_mut().param_vector(),
        disc_params: imp.discriminator_mut().map(|d| d.param_vector()),
        guard_best_params: guard.best_params().to_vec(),
        guard_best_loss: guard.best_loss(),
        guard_lr: guard.lr(),
        guard_retries: guard.retries(),
        stats: *stats,
    }
}

/// Writes a checkpoint, mirroring the outcome into telemetry. IO failure is
/// counted ([`Counter::CheckpointFailures`]) but never aborts training — a
/// full disk must not kill an otherwise healthy run.
fn write_checkpoint(
    policy: &CheckpointPolicy,
    ckpt: &TrainCheckpoint,
    emergency: bool,
    tel: &Telemetry,
) {
    let outcome = if emergency {
        policy.write_emergency(ckpt)
    } else {
        policy.write_periodic(ckpt)
    };
    match outcome {
        Ok(_) => {
            tel.incr(Counter::CheckpointsWritten);
            tel.record_event(Event::Checkpoint {
                phase: ckpt.phase.name(),
                epoch: ckpt.epoch as u32,
                emergency,
            });
        }
        Err(_) => tel.incr(Counter::CheckpointFailures),
    }
}

/// [`train_dim_cached`] plus the crash-safety hooks of [`TrainHooks`]:
/// epoch-boundary checkpoints, resume fast-forward, and a cooperative run
/// deadline (DESIGN.md §14).
///
/// **Resume contract** — resuming a checkpoint written at epoch `k`
/// produces, for the remaining epochs, a parameter/RNG trajectory
/// bit-identical to the uninterrupted run's: setup replays the same RNG
/// draws as the original (network init, critic init), the checkpoint then
/// restores parameters, Adam moments, guard state, and finally the RNG
/// stream position, so epoch `k` onward recomputes the identical numbers.
/// The contract holds for the default configuration (no critic — a critic's
/// own optimizer state is not checkpointed).
#[allow(clippy::too_many_arguments)]
pub fn train_dim_resumable(
    imp: &mut dyn AdversarialImputer,
    ds: &Dataset,
    cfg: &DimConfig,
    guard_cfg: &GuardConfig,
    phase: TrainPhase,
    stats: &mut GuardStats,
    tel: &Telemetry,
    cache: &DualCache,
    hooks: &TrainHooks<'_>,
    rng: &mut Rng64,
) -> Result<DimReport, TrainingError> {
    let start = std::time::Instant::now();
    let d = ds.n_features();
    if !imp.is_initialized(d) {
        imp.init_networks(d, rng);
    }
    imp.generator_mut().set_exec(cfg.exec);
    imp.generator_mut().set_precision(cfg.accel.precision());
    let n = ds.n_samples();
    let x = ds.values_filled(0.0);
    let mask = ds.dense_mask();
    let mut opt_g = Adam::new(cfg.train.learning_rate);
    let mut critic = cfg.critic.as_ref().map(|c| {
        let mut critic = Critic::new(2 * d, c, rng);
        critic.net.set_exec(cfg.exec);
        critic.net.set_precision(cfg.accel.precision());
        critic
    });
    let bs = cfg.train.batch_size.min(n).max(2);
    // constant across epochs: only the generator side X̄ changes per batch,
    // so the data side's masked rows + row norms are gathered, not rebuilt
    let data_masked = cfg
        .accel
        .decomposed_cost
        .then(|| MaskedRows::new(&x, &mask));

    let mut guard = TrainingGuard::new(
        *guard_cfg,
        imp.generator_mut().param_vector(),
        cfg.train.learning_rate,
    );
    let mut epoch_losses = Vec::with_capacity(cfg.train.epochs);
    let mut last_lambda = f64::NAN;
    let mut epoch = 0usize;

    // --- resume fast-forward -------------------------------------------
    // Setup above consumed the same RNG draws as the original run; now
    // overwrite everything the checkpoint captured. The RNG restore comes
    // last so the stream continues exactly where the checkpoint cut it.
    if let Some(ckpt) = hooks.resume.filter(|c| c.phase == phase) {
        let expected = imp.generator_mut().param_vector().len();
        if ckpt.gen_params.len() != expected {
            return Err(TrainingError {
                phase,
                epoch: ckpt.epoch,
                retries: 0,
                reason: FailureReason::ResumeMismatch {
                    expected,
                    actual: ckpt.gen_params.len(),
                },
                post_mortem: tel.event_tail(POST_MORTEM_TAIL),
            });
        }
        imp.generator_mut().set_param_vector(&ckpt.gen_params);
        if let Some(saved) = &ckpt.disc_params {
            if let Some(disc) = imp.discriminator_mut() {
                if disc.param_vector().len() == saved.len() {
                    disc.set_param_vector(saved);
                }
            }
        }
        opt_g = Adam::from_state(&ckpt.adam);
        guard = TrainingGuard::restore(
            *guard_cfg,
            ckpt.guard_best_params.clone(),
            ckpt.guard_best_loss,
            ckpt.guard_lr,
            ckpt.guard_retries,
        );
        *stats = ckpt.stats;
        epoch = ckpt.epoch;
        *rng = Rng64::from_state(ckpt.rng);
    }

    // The last clean epoch-boundary snapshot: what periodic checkpoints
    // write, and what both the emergency checkpoint and the in-memory model
    // rewind to when the deadline trips mid-epoch (state past the boundary
    // may already be contaminated by deadline-shortened Sinkhorn solves).
    let hooks_active = hooks.checkpoint.is_some() || hooks.deadline.is_some();
    let mut boundary =
        hooks_active.then(|| capture_boundary(imp, phase, epoch, &opt_g, &guard, stats, rng));
    let mut deadline_stop = false;

    while epoch < cfg.train.epochs {
        if hooks.deadline.expired() {
            deadline_stop = true;
            break;
        }
        let epoch_t0 = tel.is_enabled().then(std::time::Instant::now);
        let order = rng.permutation(n);
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        let mut grad_norm_sum = 0.0;
        let mut epoch_sink = SolveStats::default();
        let mut failure: Option<FailureReason> = None;
        for (bi, chunk) in order.chunks(bs).enumerate() {
            if chunk.len() < 2 {
                continue;
            }
            if hooks.deadline.expired() {
                deadline_stop = true;
                break;
            }
            let batch_t0 = tel.is_enabled().then(std::time::Instant::now);
            let xb = x.select_rows(chunk);
            let mb = mask.select_rows(chunk);
            let g_in = imp.generator_input(&xb, &mb, rng);
            let generator = imp.generator_mut();
            let xbar = generator.forward(&g_in, Mode::Train, rng);
            if !all_finite(&xbar) {
                // a poisoned reconstruction would turn the cost matrix (and
                // the whole Sinkhorn plan) non-finite — drop the batch
                stats.nan_batches_skipped += 1;
                tel.incr(Counter::DimBatchesSkipped);
                tel.record_event(Event::BatchSkipped {
                    epoch: epoch as u32,
                    batch: bi as u32,
                });
                continue;
            }

            let step = match (critic.as_mut(), cfg.loss) {
                (None, GenerativeLoss::MaskedSinkhorn) => {
                    // the cross cost doubles as the λ-resolution input, so it
                    // is built once here and handed to the gradient pass
                    let data_batch = data_masked.as_ref().map(|d| d.select(chunk));
                    let cost = match &data_batch {
                        Some(db) => {
                            let gen_side = MaskedRows::new(&xbar, &mb);
                            masked_sq_cost_decomposed_p(
                                &gen_side,
                                db,
                                cfg.exec,
                                cfg.accel.precision(),
                            )
                        }
                        None => masked_sq_cost_with(&xbar, &mb, &xb, &mb, cfg.exec),
                    };
                    let lambda = cfg.resolve_lambda(&cost);
                    let opts = cfg
                        .sinkhorn_options(lambda)
                        .deadline(hooks.deadline.clone());
                    let result = if cfg.accel.any() {
                        let ctx = AccelContext {
                            cache,
                            rows: chunk,
                            data_side: data_batch.as_ref(),
                            decomposed_cost: cfg.accel.decomposed_cost,
                            eps_scale_cold: cfg.accel.eps_scale_cold,
                            store: true,
                        };
                        ms_loss_grad_accel(
                            &xbar,
                            &xb,
                            &mb,
                            &opts,
                            &guard_cfg.sinkhorn_escalation,
                            &ctx,
                            Some(cost),
                        )
                    } else {
                        ms_loss_grad_tracked(&xbar, &xb, &mb, &opts, &guard_cfg.sinkhorn_escalation)
                    };
                    match result {
                        Ok((loss, grad, solve_stats)) => {
                            stats.sinkhorn.absorb(solve_stats);
                            epoch_sink.absorb(solve_stats);
                            record_solve_stats(tel, solve_stats);
                            Some((loss, grad, lambda))
                        }
                        Err(_) => None,
                    }
                }
                (None, GenerativeLoss::SlicedWasserstein { n_projections }) => {
                    let opts = SlicedOptions {
                        n_projections,
                        seed: 0x51CE,
                    };
                    let (loss, grad) = sliced_w2_loss_grad(&xbar, &xb, &mb, &opts);
                    Some((loss, grad, f64::NAN))
                }
                (Some(c), _) => critic_step(c, &xbar, &xb, &mb, cfg, rng),
            };
            let Some((loss, mut grad_xbar, lambda)) = step else {
                stats.nan_batches_skipped += 1;
                tel.incr(Counter::DimBatchesSkipped);
                tel.record_event(Event::BatchSkipped {
                    epoch: epoch as u32,
                    batch: bi as u32,
                });
                continue;
            };
            if !loss.is_finite() || !all_finite(&grad_xbar) {
                stats.nan_batches_skipped += 1;
                tel.incr(Counter::DimBatchesSkipped);
                tel.record_event(Event::BatchSkipped {
                    epoch: epoch as u32,
                    batch: bi as u32,
                });
                continue;
            }
            // a solve that raced the deadline may have been truncated
            // mid-sweep — stop before applying a contaminated gradient
            if hooks.deadline.expired() {
                deadline_stop = true;
                break;
            }
            last_lambda = lambda;

            // reconstruction anchor on observed cells
            let (rec_loss, rec_grad) = weighted_mse(&xbar, &xb, &mb);
            grad_xbar.axpy(cfg.alpha, &rec_grad);
            let grad_norm = grad_xbar.frobenius_norm();
            if !grad_norm.is_finite() || grad_norm > guard_cfg.max_grad_norm {
                failure = Some(FailureReason::ExplodingGradient { norm: grad_norm });
                break;
            }

            let generator = imp.generator_mut();
            // re-forward so the generator's caches match this batch (the
            // critic path may have run other forwards in between)
            let _ = generator.forward(&g_in, Mode::Train, rng);
            generator.zero_grad();
            generator.backward(&grad_xbar);
            opt_g.step(generator);

            epoch_loss += loss + cfg.alpha * rec_loss;
            grad_norm_sum += grad_norm;
            batches += 1;
            tel.incr(Counter::DimBatches);
            if let Some(t0) = batch_t0 {
                tel.record_hist_duration(Hist::BatchStepNanos, t0.elapsed());
            }
            // fine-grained progress: silent unless a positive interval is
            // configured and due (module docs of `heartbeat`)
            hooks.heartbeat.poll_fine(&crate::heartbeat::Progress {
                phase: phase.name(),
                epoch: epoch as u64,
                epochs: cfg.train.epochs as u64,
                shard: 0,
                shards: 0,
                rows_done: (epoch * n + bi * bs + chunk.len()) as u64,
                rows_total: (cfg.train.epochs * n) as u64,
                rollbacks: stats.rollbacks as u64,
                warm_hit_rate: if epoch_sink.solves > 0 {
                    epoch_sink.warm_starts as f64 / epoch_sink.solves as f64
                } else {
                    0.0
                },
            });
        }

        if deadline_stop {
            break;
        }
        let mean_loss = epoch_loss / batches.max(1) as f64;
        if failure.is_none() && batches == 0 {
            failure = Some(FailureReason::AllBatchesSkipped);
        }
        if failure.is_none() && !mean_loss.is_finite() {
            failure = Some(FailureReason::NonFiniteLoss);
        }
        let rolled_back = failure.is_some();
        let mut lr_backed_off = false;
        let mut give_up: Option<FailureReason> = None;
        match failure {
            None => {
                epoch_losses.push(mean_loss);
                guard.accept_epoch(mean_loss, &imp.generator_mut().param_vector());
                tel.incr(Counter::DimEpochs);
            }
            Some(reason) => {
                imp.generator_mut().set_param_vector(guard.best_params());
                // parameters rewound → cached duals describe a dead
                // generator state; drop them so retries solve from cold
                cache.invalidate_all();
                stats.rollbacks += 1;
                tel.incr(Counter::GuardRollbacks);
                tel.record_event(Event::Rollback {
                    epoch: epoch as u32,
                    retries: stats.rollbacks as u32,
                });
                if cfg.accel.warm_start {
                    tel.record_event(Event::CacheInvalidation);
                }
                match guard.reject_epoch() {
                    GuardVerdict::GiveUp => give_up = Some(reason),
                    _ => {
                        // retry the epoch from the snapshot at a gentler LR
                        // (fresh optimizer: stale moments reference the
                        // pre-rollback trajectory)
                        stats.lr_backoffs += 1;
                        lr_backed_off = true;
                        tel.incr(Counter::GuardLrBackoffs);
                        opt_g = Adam::new(guard.lr());
                        tel.record_event(Event::LrBackoff {
                            epoch: epoch as u32,
                            lr: guard.lr(),
                        });
                    }
                }
            }
        }
        if tel.is_enabled() {
            // one entry per *attempted* epoch: rolled-back attempts are
            // flagged rather than dropped so a loss spike stays visible.
            // All values are deterministic — bit-identical per ExecPolicy.
            let mean_grad = grad_norm_sum / batches.max(1) as f64;
            let hit_rate = if epoch_sink.solves > 0 {
                epoch_sink.warm_starts as f64 / epoch_sink.solves as f64
            } else {
                0.0
            };
            tel.push_series(Series::DimLoss, mean_loss);
            tel.push_series(Series::GradNorm, mean_grad);
            tel.push_series(Series::LearningRate, guard.lr());
            tel.push_series(Series::SinkhornIters, epoch_sink.iterations as f64);
            tel.push_series(Series::WarmStartHitRate, hit_rate);
            tel.push_series(Series::ItersSaved, epoch_sink.iters_saved as f64);
            tel.push_series(Series::RollbackFlag, rolled_back as u64 as f64);
            tel.push_series(Series::LrBackoffFlag, lr_backed_off as u64 as f64);
            tel.push_series(Series::TrainPhase, phase.code() as f64);
            tel.record_event(Event::EpochEnd {
                phase: phase.name(),
                epoch: epoch as u32,
                loss: mean_loss,
                grad_norm: mean_grad,
                lr: guard.lr(),
                sinkhorn_iters: epoch_sink.iterations as u64,
                warm_hit_rate: hit_rate,
            });
            if let Some(t0) = epoch_t0 {
                tel.record_hist_duration(Hist::EpochWallNanos, t0.elapsed());
            }
        }
        if let Some(reason) = give_up {
            // leave a post-mortem checkpoint next to the structured error:
            // the last clean boundary, with the generator on its best
            // snapshot, is exactly the state a caller would resume from
            if let (Some(policy), Some(b)) = (hooks.checkpoint, &boundary) {
                write_checkpoint(policy, b, true, tel);
            }
            return Err(TrainingError {
                phase,
                epoch,
                retries: guard.retries() - 1,
                reason,
                post_mortem: tel.event_tail(POST_MORTEM_TAIL),
            });
        }
        if !rolled_back {
            epoch += 1;
        }
        // one heartbeat per attempted epoch (rolled-back attempts report
        // the unchanged completed-epoch count and the bumped rollback total)
        hooks.heartbeat.poll(&crate::heartbeat::Progress {
            phase: phase.name(),
            epoch: epoch as u64,
            epochs: cfg.train.epochs as u64,
            shard: 0,
            shards: 0,
            rows_done: (epoch * n) as u64,
            rows_total: (cfg.train.epochs * n) as u64,
            rollbacks: stats.rollbacks as u64,
            warm_hit_rate: if epoch_sink.solves > 0 {
                epoch_sink.warm_starts as f64 / epoch_sink.solves as f64
            } else {
                0.0
            },
        });
        if hooks_active {
            boundary = Some(capture_boundary(
                imp, phase, epoch, &opt_g, &guard, stats, rng,
            ));
            if !rolled_back {
                if let (Some(policy), Some(b)) = (hooks.checkpoint, &boundary) {
                    if epoch.is_multiple_of(policy.every) {
                        write_checkpoint(policy, b, false, tel);
                    }
                }
            }
        }
    }

    if deadline_stop {
        if hooks.deadline.newly_expired() {
            tel.record_event(Event::DeadlineHit {
                phase: phase.name(),
                epoch: epoch as u32,
            });
        }
        if let Some(b) = &boundary {
            // rewind to the last clean boundary so the in-memory model is
            // exactly the state the emergency checkpoint records
            imp.generator_mut().set_param_vector(&b.gen_params);
            if let Some(policy) = hooks.checkpoint {
                write_checkpoint(policy, b, true, tel);
            }
        }
    }

    Ok(DimReport {
        epoch_losses,
        last_lambda,
        duration: start.elapsed(),
    })
}

/// One critic-mode step: updates φ by ascent on `S_m^φ` and returns the
/// generator's loss value, the gradient w.r.t. `xbar`, and the λ used.
/// Returns `None` when the critic's embeddings are non-finite (a diverged
/// φ must not feed the Sinkhorn solver); the caller skips the batch.
fn critic_step(
    critic: &mut Critic,
    xbar: &Matrix,
    xb: &Matrix,
    mb: &Matrix,
    cfg: &DimConfig,
    rng: &mut Rng64,
) -> Option<(f64, Matrix, f64)> {
    let d = xb.cols();
    let in_a = xbar.hadamard(mb).hcat(mb);
    let in_b = xb.hadamard(mb).hcat(mb);
    let ea = critic.net.forward(&in_a, Mode::Eval, rng);
    let eb = critic.net.forward(&in_b, Mode::Eval, rng);
    if !all_finite(&ea) || !all_finite(&eb) {
        return None;
    }

    let cost_ab = pairwise_sq_dists_exec(&ea, &eb, cfg.exec);
    let lambda = cfg.resolve_lambda(&cost_ab);
    let opts = cfg.sinkhorn_options(lambda);
    let cross = sinkhorn_uniform(&cost_ab, &opts);
    let self_a = sinkhorn_uniform(&pairwise_sq_dists_exec(&ea, &ea, cfg.exec), &opts);
    let self_b = sinkhorn_uniform(&pairwise_sq_dists_exec(&eb, &eb, cfg.exec), &opts);
    let n = xb.rows() as f64;
    let value = (2.0 * cross.reg_value - self_a.reg_value - self_b.reg_value) / (2.0 * n);

    let ones_a = Matrix::ones(ea.rows(), ea.cols());
    // dS/dEa = 2·∂OT(Ea,Eb) − ∂OT(Ea,Ea); same for Eb by symmetry
    let mut g_ea = cross_ot_grad(&ea, &eb, &ones_a, &cross.plan).scale(2.0);
    g_ea.axpy(-1.0, &self_ot_grad(&ea, &ones_a, &self_a.plan));
    let g_ea = g_ea.scale(1.0 / (2.0 * n));
    let cross_t = cross.plan.transpose();
    let mut g_eb = cross_ot_grad(&eb, &ea, &ones_a, &cross_t).scale(2.0);
    g_eb.axpy(-1.0, &self_ot_grad(&eb, &ones_a, &self_b.plan));
    let g_eb = g_eb.scale(1.0 / (2.0 * n));

    // --- critic ascent: maximize S ⇒ descend −S ---
    critic.net.zero_grad();
    let _ = critic.net.forward(&in_a, Mode::Eval, rng);
    critic.net.backward(&g_ea.scale(-1.0));
    let _ = critic.net.forward(&in_b, Mode::Eval, rng);
    critic.net.backward(&g_eb.scale(-1.0));
    critic.opt.step(&mut critic.net);

    // --- generator gradient through the *updated* critic ---
    let ea2 = critic.net.forward(&in_a, Mode::Eval, rng);
    let eb2 = critic.net.forward(&in_b, Mode::Eval, rng);
    if !all_finite(&ea2) || !all_finite(&eb2) {
        return None;
    }
    let cost2 = pairwise_sq_dists_exec(&ea2, &eb2, cfg.exec);
    let cross2 = sinkhorn_uniform(&cost2, &opts);
    let self_a2 = sinkhorn_uniform(&pairwise_sq_dists_exec(&ea2, &ea2, cfg.exec), &opts);
    let mut g_ea2 = cross_ot_grad(&ea2, &eb2, &ones_a, &cross2.plan).scale(2.0);
    g_ea2.axpy(-1.0, &self_ot_grad(&ea2, &ones_a, &self_a2.plan));
    let g_ea2 = g_ea2.scale(1.0 / (2.0 * n));
    critic.net.zero_grad();
    let _ = critic.net.forward(&in_a, Mode::Eval, rng);
    let grad_in_a = critic.net.backward(&g_ea2);
    critic.net.zero_grad(); // φ params must not accumulate from the G pass
    let grad_xbar_masked = grad_in_a.select_cols(&(0..d).collect::<Vec<_>>());
    // input was x̄ ⊙ m ⇒ chain through the mask
    let grad_xbar = grad_xbar_masked.hadamard(mb);

    Some((value, grad_xbar, lambda))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scis_data::metrics::rmse_vs_ground_truth;
    use scis_data::missing::inject_mcar;
    use scis_imputers::traits::impute_with_generator;
    use scis_imputers::GainImputer;

    fn correlated_table(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut m = Matrix::zeros(n, 4);
        for i in 0..n {
            let t = rng.uniform();
            m[(i, 0)] = t;
            m[(i, 1)] = (0.8 * t + 0.1 + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
            m[(i, 2)] = (1.0 - t + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
            m[(i, 3)] = (0.5 * t + 0.25 + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
        }
        m
    }

    fn fast_cfg() -> DimConfig {
        DimConfig {
            train: TrainConfig {
                epochs: 60,
                batch_size: 64,
                learning_rate: 0.005,
                dropout: 0.0,
            },
            lambda: LambdaMode::Relative(0.1),
            max_sinkhorn_iters: 200,
            alpha: 10.0,
            critic: None,
            loss: GenerativeLoss::MaskedSinkhorn,
            exec: ExecPolicy::default(),
            accel: AccelConfig::default(),
        }
    }

    #[test]
    fn dim_training_reduces_the_ms_loss() {
        let complete = correlated_table(300, 1);
        let mut rng = Rng64::seed_from_u64(2);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let mut gain = GainImputer::new(fast_cfg().train);
        let report = try_train_dim(&mut gain, &ds, &fast_cfg(), &mut rng).expect("dim training");
        assert_eq!(report.epoch_losses.len(), 60);
        let first = report.epoch_losses[0];
        let last = report.final_loss();
        assert!(last < first, "loss {} -> {}", first, last);
        assert!(report.last_lambda.is_finite() && report.last_lambda > 0.0);
    }

    #[test]
    fn dim_trained_gain_beats_mean_imputation() {
        let complete = correlated_table(400, 3);
        let mut rng = Rng64::seed_from_u64(4);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let mut gain = GainImputer::new(fast_cfg().train);
        let _ = try_train_dim(&mut gain, &ds, &fast_cfg(), &mut rng).expect("dim training");
        let out = impute_with_generator(&mut gain, &ds, &mut rng);
        let e = rmse_vs_ground_truth(&ds, &complete, &out);

        let mut mean = scis_imputers::mean::MeanImputer;
        let e_mean = rmse_vs_ground_truth(
            &ds,
            &complete,
            &scis_imputers::Imputer::impute(&mut mean, &ds, &mut rng),
        );
        assert!(e < e_mean, "dim-gain {} vs mean {}", e, e_mean);
    }

    #[test]
    fn critic_mode_also_trains() {
        let complete = correlated_table(200, 5);
        let mut rng = Rng64::seed_from_u64(6);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let mut cfg = fast_cfg();
        cfg.train.epochs = 20;
        cfg.critic = Some(CriticConfig::default());
        let mut gain = GainImputer::new(cfg.train);
        let report = try_train_dim(&mut gain, &ds, &cfg, &mut rng).expect("dim training");
        assert!(report.final_loss().is_finite());
        let out = impute_with_generator(&mut gain, &ds, &mut rng);
        assert!(!out.has_nan());
    }

    #[test]
    fn sliced_wasserstein_mode_trains_and_beats_mean() {
        let complete = correlated_table(300, 9);
        let mut rng = Rng64::seed_from_u64(10);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let mut cfg = fast_cfg();
        cfg.loss = GenerativeLoss::SlicedWasserstein { n_projections: 24 };
        let mut gain = GainImputer::new(cfg.train);
        let report = try_train_dim(&mut gain, &ds, &cfg, &mut rng).expect("dim training");
        assert!(report.final_loss().is_finite());
        let out = impute_with_generator(&mut gain, &ds, &mut rng);
        let e = rmse_vs_ground_truth(&ds, &complete, &out);
        let mut mean = scis_imputers::mean::MeanImputer;
        let e_mean = rmse_vs_ground_truth(
            &ds,
            &complete,
            &scis_imputers::Imputer::impute(&mut mean, &ds, &mut rng),
        );
        assert!(e < e_mean, "sw-dim {} vs mean {}", e, e_mean);
    }

    #[test]
    fn relative_lambda_scales_with_cost() {
        let cfg = DimConfig {
            lambda: LambdaMode::Relative(0.5),
            ..Default::default()
        };
        let small = Matrix::full(4, 4, 0.1);
        let large = Matrix::full(4, 4, 10.0);
        assert!((cfg.resolve_lambda(&small) - 0.05).abs() < 1e-12);
        assert!((cfg.resolve_lambda(&large) - 5.0).abs() < 1e-12);
        let abs = DimConfig {
            lambda: LambdaMode::Absolute(130.0),
            ..Default::default()
        };
        assert_eq!(abs.resolve_lambda(&small), 130.0);
    }

    #[test]
    fn accel_training_warm_starts_and_saves_iterations() {
        use crate::error::TrainPhase;
        use crate::guard::{GuardConfig, GuardStats};

        let complete = correlated_table(300, 31);
        let mut rng = Rng64::seed_from_u64(32);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let mut cfg = fast_cfg();
        cfg.train.epochs = 12;

        let run = |accel: AccelConfig, seed: u64| {
            let mut rng = Rng64::seed_from_u64(seed);
            let mut gain = GainImputer::new(cfg.train);
            let mut stats = GuardStats::default();
            let tel = Telemetry::collecting();
            let cfg = cfg.accel(accel);
            let report = train_dim_telemetered(
                &mut gain,
                &ds,
                &cfg,
                &GuardConfig::default(),
                TrainPhase::Initial,
                &mut stats,
                &tel,
                &mut rng,
            )
            .expect("training failed");
            (report, stats, tel)
        };

        let (cold_report, cold_stats, cold_tel) = run(AccelConfig::default(), 33);
        let (warm_report, warm_stats, warm_tel) = run(AccelConfig::default().warm_start(true), 33);

        assert_eq!(
            warm_tel.counter(Counter::WarmStartHits),
            warm_stats.sinkhorn.warm_starts as u64
        );
        assert!(
            warm_stats.sinkhorn.warm_starts > 0,
            "no warm starts after epoch 1"
        );
        assert_eq!(cold_tel.counter(Counter::WarmStartHits), 0);
        assert!(
            warm_stats.sinkhorn.iterations < cold_stats.sinkhorn.iterations,
            "warm {} vs cold {} total iterations",
            warm_stats.sinkhorn.iterations,
            cold_stats.sinkhorn.iterations
        );
        // same fixed points within tol → the loss trajectories stay close
        let last_cold = cold_report.final_loss();
        let last_warm = warm_report.final_loss();
        assert!(
            (last_cold - last_warm).abs() < 0.05 * last_cold.abs().max(0.1),
            "loss diverged: cold {} vs warm {}",
            last_cold,
            last_warm
        );
    }

    #[test]
    fn decomposed_cost_training_stays_healthy() {
        let complete = correlated_table(250, 41);
        let mut rng = Rng64::seed_from_u64(42);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let mut cfg = fast_cfg().accel(AccelConfig::all());
        cfg.train.epochs = 15;
        let mut gain = GainImputer::new(cfg.train);
        let report = try_train_dim(&mut gain, &ds, &cfg, &mut rng).expect("dim training");
        assert_eq!(report.epoch_losses.len(), 15);
        let first = report.epoch_losses[0];
        let last = report.final_loss();
        assert!(last < first, "loss {} -> {}", first, last);
        let out = impute_with_generator(&mut gain, &ds, &mut rng);
        assert!(!out.has_nan());
    }

    #[test]
    fn warm_start_continues_from_existing_generator() {
        let complete = correlated_table(200, 7);
        let mut rng = Rng64::seed_from_u64(8);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let mut cfg = fast_cfg();
        cfg.train.epochs = 10;
        let mut gain = GainImputer::new(cfg.train);
        let _ = try_train_dim(&mut gain, &ds, &cfg, &mut rng).expect("dim training");
        let theta_after_first =
            scis_imputers::AdversarialImputer::generator_mut(&mut gain).param_vector();
        let _ = try_train_dim(&mut gain, &ds, &cfg, &mut rng).expect("dim training");
        let theta_after_second =
            scis_imputers::AdversarialImputer::generator_mut(&mut gain).param_vector();
        assert_ne!(
            theta_after_first, theta_after_second,
            "second run was a no-op"
        );
    }
}
