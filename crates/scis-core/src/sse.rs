//! SSE — Sample Size Estimation (paper §V).
//!
//! Given the initial model `M0` (parameters `θ0`) trained on `n0` samples,
//! SSE finds the minimum `n* ∈ [n0, N]` such that the imputation difference
//! between the model trained on `n*` samples and the model trained on all
//! `N` samples stays below `ε` with confidence `1 − α`:
//!
//! 1. **Theorem 1** — `θ̂_n | θ0 ~ N(θ0, η(n)·H⁻¹)` with
//!    `η(n) = ζ(λ)·(1/n0 − 1/n)`, `ζ(λ) = e^{6/λ}(1 + 1/λ^{⌊d/2⌋})²`.
//!    We keep the *diagonal* of the Gauss–Newton/empirical-Fisher `H`
//!    (DESIGN.md §6): full `H` is `P×P` for `P` generator parameters.
//! 2. **Proposition 2** — Monte-Carlo estimate of `P(D(θ_n, θ_N) ≤ ε)`
//!    from `k` sampled parameter pairs, accepted when it clears the
//!    Hoeffding-corrected threshold `(1−α)/(1−β) + sqrt(log β / (−2k))`.
//!    With the paper's constants (α=.05, β=.01, k=20) that threshold
//!    exceeds 1, so it clamps to "all k draws within ε" — noted in
//!    EXPERIMENTS.md.
//! 3. **Binary search** over `n`, monotone by common random numbers: the
//!    same base Gaussian draws are rescaled by `sqrt(η)` at every probe.
//!
//! ## Calibration (documented deviation, DESIGN.md §6)
//!
//! Theorem 1 is stated up to `≍` — unspecified multiplicative constants.
//! Taken with constant 1 and a diagonal `H`, the predicted difference
//! `D(θ_n, θ_N)` is off by orders of magnitude (it would always demand
//! `n* = N`). We therefore anchor the scale *empirically*: the pipeline
//! trains a **sibling model** on a second size-`n0` sample, measures the
//! real model-to-model imputation difference `D_obs`, and rescales the
//! Monte-Carlo distances so that their prediction at the sibling setting
//! (`η_ref = 2ζ/n0`, two independent size-`n0` models) matches `D_obs`.
//! The `1/n`-shape of Theorem 1 is untouched — only the hidden constant is
//! estimated from data. Perturbation probes are kept in the network's
//! linear-response regime by normalizing the per-parameter scales
//! ([`SseConfig::probe_std`]).
//!
//! `D(θa, θb)` is evaluated exactly as Eq. 4 prescribes: the RMS of
//! `m ⊙ (x̄_a − x̄_b)` over the held-aside validation set, by swapping the
//! parameter vectors in and out of the generator.

use scis_data::Dataset;
use scis_imputers::AdversarialImputer;
use scis_ot::{
    ms_loss_grad_accel, ms_loss_grad_tracked, AccelContext, DualCache, EscalationPolicy,
    MaskedRows, SinkhornOptions,
};
use scis_telemetry::{Counter, Event, Series, Telemetry};
use scis_tensor::{ExecPolicy, Rng64, RunDeadline};

/// SSE configuration (paper defaults from §VI).
#[derive(Debug, Clone, Copy)]
pub struct SseConfig {
    /// User-tolerated error bound ε (paper default 0.001).
    pub epsilon: f64,
    /// Confidence level α (paper default 0.05).
    pub alpha: f64,
    /// Hoeffding hyper-parameter β, `0 < β ≤ α` (paper default 0.01).
    pub beta: f64,
    /// Number of parameter samples k (paper default 20).
    pub k: usize,
    /// λ used in ζ(λ) (paper default 130; this is the paper's absolute λ,
    /// independent of DIM's batch-relative λ — DESIGN.md §6).
    pub zeta_lambda: f64,
    /// Typical per-parameter probe std at the reference scale `η = ζ/n0`;
    /// keeps Monte-Carlo perturbations in the linear-response regime.
    pub probe_std: f64,
    /// Ridge added to the Fisher diagonal before inversion.
    pub fisher_ridge: f64,
    /// Whether the pipeline should calibrate against a sibling model
    /// (strongly recommended; `false` keeps Theorem 1's raw constant 1).
    pub calibrate: bool,
    /// Execution policy for the Monte-Carlo distance evaluations: the `k`
    /// draws fan out across worker threads, each on its own deep-copied
    /// imputer ([`AdversarialImputer::clone_boxed`]). Results are
    /// bit-identical to the serial evaluation.
    pub exec: ExecPolicy,
    /// Binary-search stopping granularity on `n` (rows). `None` keeps the
    /// adaptive default `max(N / 200, 1)`. Out-of-core runs can widen this
    /// so each probe gathers fewer candidate training sets; the streamed
    /// and in-memory pipelines share whatever value is configured, so their
    /// searches visit identical midpoints.
    pub granularity: Option<usize>,
}

impl Default for SseConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.001,
            alpha: 0.05,
            beta: 0.01,
            k: 20,
            zeta_lambda: 130.0,
            probe_std: 0.01,
            fisher_ridge: 1e-12,
            calibrate: true,
            exec: ExecPolicy::default(),
            granularity: None,
        }
    }
}

impl SseConfig {
    /// Fluent setter for [`SseConfig::epsilon`].
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Fluent setter for [`SseConfig::alpha`].
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Fluent setter for [`SseConfig::beta`].
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Fluent setter for [`SseConfig::k`].
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Fluent setter for [`SseConfig::zeta_lambda`].
    pub fn zeta_lambda(mut self, zeta_lambda: f64) -> Self {
        self.zeta_lambda = zeta_lambda;
        self
    }

    /// Fluent setter for [`SseConfig::probe_std`].
    pub fn probe_std(mut self, probe_std: f64) -> Self {
        self.probe_std = probe_std;
        self
    }

    /// Fluent setter for [`SseConfig::fisher_ridge`].
    pub fn fisher_ridge(mut self, fisher_ridge: f64) -> Self {
        self.fisher_ridge = fisher_ridge;
        self
    }

    /// Fluent setter for [`SseConfig::calibrate`].
    pub fn calibrate(mut self, calibrate: bool) -> Self {
        self.calibrate = calibrate;
        self
    }

    /// Fluent setter for [`SseConfig::exec`].
    pub fn exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Fluent setter for [`SseConfig::granularity`].
    pub fn granularity(mut self, granularity: usize) -> Self {
        self.granularity = Some(granularity);
        self
    }

    /// ζ(λ) from Theorem 1 for data dimension `d`.
    pub fn zeta(&self, d: usize) -> f64 {
        let l = self.zeta_lambda;
        let pow = l.powi((d / 2) as i32);
        let correction = 1.0 + 1.0 / pow;
        ((6.0 / l).exp() * correction * correction).min(1e12)
    }

    /// The Proposition-2 acceptance threshold on the empirical probability,
    /// clamped to 1 (with the paper's constants it exceeds 1).
    pub fn acceptance_threshold(&self) -> f64 {
        assert!(self.beta > 0.0 && self.beta <= self.alpha && self.alpha <= 1.0);
        let eps1 = (self.beta.ln() / (-2.0 * self.k as f64)).sqrt();
        ((1.0 - self.alpha) / (1.0 - self.beta) + eps1).min(1.0)
    }
}

/// One evaluated candidate size in the SSE binary search, in probe order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SseProbe {
    /// The candidate sample size that was probed.
    pub n: usize,
    /// Empirical `P(D ≤ ε)` measured at `n`.
    pub prob: f64,
    /// Whether the probability cleared the Proposition-2 threshold.
    pub accepted: bool,
}

/// Result of the SSE binary search.
#[derive(Debug, Clone)]
pub struct SseResult {
    /// The estimated minimum sample size `n*`.
    pub n_star: usize,
    /// Empirical `P(D ≤ ε)` at `n*`.
    pub prob_at_n_star: f64,
    /// Number of candidate sizes probed by the binary search.
    pub probes: usize,
    /// The calibration factor γ applied to the Monte-Carlo distances.
    pub calibration: f64,
    /// Wall-clock duration of the estimation (excluding the pipeline's
    /// sibling-model training).
    pub duration: std::time::Duration,
    /// The binary-search trace: every distinct candidate size evaluated,
    /// in probe order (cache hits are not re-recorded).
    pub trace: Vec<SseProbe>,
}

impl SseResult {
    /// A placeholder for runs where SSE never happened (the pipeline
    /// degraded before reaching it): `n* = n0`, zero probes.
    pub fn skipped(n0: usize) -> Self {
        Self {
            n_star: n0,
            prob_at_n_star: 0.0,
            probes: 0,
            calibration: 1.0,
            duration: std::time::Duration::ZERO,
            trace: Vec::new(),
        }
    }
}

/// Estimates the diagonal of the Gauss–Newton/empirical-Fisher matrix of
/// the MS-divergence loss at the current generator parameters, from batches
/// of the initial training set.
///
/// Only the *relative* structure of this diagonal matters — the absolute
/// scale is fixed by [`SseEstimator`]'s probe normalization + calibration.
pub fn fisher_diagonal(
    imp: &mut dyn AdversarialImputer,
    ds: &Dataset,
    sinkhorn: &SinkhornOptions,
    batch_size: usize,
    rng: &mut Rng64,
) -> Vec<f64> {
    fisher_diagonal_tracked(
        imp,
        ds,
        sinkhorn,
        batch_size,
        &EscalationPolicy::none(),
        &Telemetry::off(),
        rng,
    )
}

/// [`fisher_diagonal`] with fault-tolerant Sinkhorn solves and telemetry:
/// poisoned batches are *skipped* instead of panicking deep inside the
/// solver, non-converged solves are escalated per `policy`, and the solve
/// accounting is recorded on `tel`. With [`EscalationPolicy::none`] the
/// per-batch numerics are identical to the historical plain-solve path.
pub fn fisher_diagonal_tracked(
    imp: &mut dyn AdversarialImputer,
    ds: &Dataset,
    sinkhorn: &SinkhornOptions,
    batch_size: usize,
    policy: &EscalationPolicy,
    tel: &Telemetry,
    rng: &mut Rng64,
) -> Vec<f64> {
    fisher_diagonal_cached(
        imp,
        ds,
        sinkhorn,
        batch_size,
        policy,
        tel,
        &DualCache::off(),
        crate::dim::AccelConfig::default(),
        rng,
    )
}

/// [`fisher_diagonal_tracked`] with hot-path acceleration: Sinkhorn solves
/// may warm-start from `cache` (read-only — the Fisher probe operates on
/// perturbed parameters, so its duals are *not* written back and cannot
/// pollute the training-epoch entries), and the batch cost matrix may be
/// built with the decomposed GEMM kernel. With `DualCache::off()` and
/// default [`crate::dim::AccelConfig`] this is bit-identical to
/// [`fisher_diagonal_tracked`]'s historical path.
#[allow(clippy::too_many_arguments)]
pub fn fisher_diagonal_cached(
    imp: &mut dyn AdversarialImputer,
    ds: &Dataset,
    sinkhorn: &SinkhornOptions,
    batch_size: usize,
    policy: &EscalationPolicy,
    tel: &Telemetry,
    cache: &DualCache,
    accel: crate::dim::AccelConfig,
    rng: &mut Rng64,
) -> Vec<f64> {
    let n = ds.n_samples();
    let x = ds.values_filled(0.0);
    let mask = ds.dense_mask();
    let bs = batch_size.min(n).max(2);
    let order = rng.permutation(n);
    let p = imp.generator_mut().num_params();
    let mut diag = vec![0.0; p];
    let mut batches = 0usize;
    let data_masked = accel.decomposed_cost.then(|| MaskedRows::new(&x, &mask));
    for chunk in order.chunks(bs) {
        if chunk.len() < 2 {
            continue;
        }
        let xb = x.select_rows(chunk);
        let mb = mask.select_rows(chunk);
        let g_in = imp.generator_input(&xb, &mb, rng);
        let generator = imp.generator_mut();
        let xbar = generator.forward(&g_in, scis_nn::Mode::Eval, rng);
        if xbar.as_slice().iter().any(|v| !v.is_finite()) {
            // a poisoned batch would contaminate the whole diagonal
            continue;
        }
        let solved = if accel.any() {
            let data_batch = data_masked.as_ref().map(|d| d.select(chunk));
            let ctx = AccelContext {
                cache,
                rows: chunk,
                data_side: data_batch.as_ref(),
                decomposed_cost: accel.decomposed_cost,
                eps_scale_cold: accel.eps_scale_cold,
                store: false,
            };
            ms_loss_grad_accel(&xbar, &xb, &mb, sinkhorn, policy, &ctx, None)
        } else {
            ms_loss_grad_tracked(&xbar, &xb, &mb, sinkhorn, policy)
        };
        let (grad_xbar, solve_stats) = match solved {
            Ok((_, grad, stats)) => (grad, stats),
            // a rejected solve (non-finite cost) poisons only this batch
            Err(_) => continue,
        };
        crate::dim::record_solve_stats(tel, solve_stats);
        generator.zero_grad();
        generator.backward(&grad_xbar);
        let g = generator.grad_vector();
        if g.iter().any(|v| !v.is_finite()) {
            continue;
        }
        for (acc, gv) in diag.iter_mut().zip(&g) {
            *acc += gv * gv;
        }
        batches += 1;
    }
    let scale = 1.0 / batches.max(1) as f64;
    for v in &mut diag {
        *v *= scale;
    }
    diag
}

/// The Eq.-4 imputation difference between two parameter vectors, evaluated
/// on the validation set: RMS of `m ⊙ (x̄_a − x̄_b)` over observed cells.
pub fn model_distance(
    imp: &mut dyn AdversarialImputer,
    validation: &Dataset,
    theta_a: &[f64],
    theta_b: &[f64],
) -> f64 {
    let vx = validation.values_filled(0.0);
    let vm = validation.dense_mask();
    let cells = validation.mask.count_observed().max(1) as f64;
    let saved = imp.generator_mut().param_vector();
    imp.generator_mut().set_param_vector(theta_a);
    let xa = imp.reconstruct(&vx, &vm);
    imp.generator_mut().set_param_vector(theta_b);
    let xb = imp.reconstruct(&vx, &vm);
    imp.generator_mut().set_param_vector(&saved);
    let diff = xa.sub(&xb).hadamard(&vm);
    (diff.as_slice().iter().map(|v| v * v).sum::<f64>() / cells).sqrt()
}

/// Theorem-1 Monte-Carlo machinery with common random numbers.
///
/// Build once per SSE invocation; the same base draws are reused for every
/// probed `n`, which makes `P̂(D ≤ ε)` monotone in `n` and the binary
/// search well defined.
pub struct SseEstimator {
    theta0: Vec<f64>,
    /// Per-parameter perturbation scale at η = 1 (already normalized so
    /// that η = ζ/n0 gives a median probe of `probe_std`).
    unit_scale: Vec<f64>,
    draws_n: Vec<Vec<f64>>,
    draws_gap: Vec<Vec<f64>>,
    zeta: f64,
    n0: usize,
    n_total: usize,
    cfg: SseConfig,
    calibration: f64,
    telemetry: Telemetry,
    deadline: RunDeadline,
}

impl SseEstimator {
    /// Builds the estimator for the current generator parameters.
    pub fn new(
        imp: &mut dyn AdversarialImputer,
        fisher_diag: &[f64],
        n0: usize,
        n_total: usize,
        d_features: usize,
        cfg: SseConfig,
        rng: &mut Rng64,
    ) -> Self {
        assert!(n0 <= n_total, "SSE: n0 exceeds N");
        let theta0 = imp.generator_mut().param_vector();
        let p = theta0.len();
        assert_eq!(fisher_diag.len(), p, "SSE: Fisher diagonal length mismatch");
        let zeta = cfg.zeta(d_features);

        // relative structure from H⁻¹ᐟ²…
        let mut scale: Vec<f64> = fisher_diag
            .iter()
            .map(|&h| 1.0 / (h + cfg.fisher_ridge).sqrt())
            .collect();
        // …normalized so the median probe at η_ref = ζ/n0 equals probe_std
        // (keeps the network in its linear-response regime; absolute scale
        // is later fixed by the calibration factor γ)
        let mut sorted = scale.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2].max(1e-300);
        let eta_ref = (zeta / n0 as f64).max(1e-300);
        let norm = cfg.probe_std / (eta_ref.sqrt() * median);
        for s in &mut scale {
            *s = (*s * norm).min(median * norm * 1e3); // cap extreme outliers
        }

        let draws_n: Vec<Vec<f64>> = (0..cfg.k)
            .map(|_| (0..p).map(|_| rng.normal()).collect())
            .collect();
        let draws_gap: Vec<Vec<f64>> = (0..cfg.k)
            .map(|_| (0..p).map(|_| rng.normal()).collect())
            .collect();

        Self {
            theta0,
            unit_scale: scale,
            draws_n,
            draws_gap,
            zeta,
            n0,
            n_total,
            cfg,
            calibration: 1.0,
            telemetry: Telemetry::off(),
            deadline: RunDeadline::none(),
        }
    }

    /// Attaches a telemetry collector: Monte-Carlo evaluations and binary-
    /// search probes are counted on it. Recording never perturbs the
    /// estimates or the RNG streams.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Attaches a run deadline, polled at binary-search probe boundaries
    /// and inside the Monte-Carlo fan-out. On expiry the search stops at
    /// its current accepted candidate instead of refining further.
    pub fn set_deadline(&mut self, deadline: RunDeadline) {
        self.deadline = deadline;
    }

    /// ζ(λ) resolved for this estimator.
    pub fn zeta(&self) -> f64 {
        self.zeta
    }

    /// Sets the empirical calibration factor γ (see module docs).
    pub fn set_calibration(&mut self, gamma: f64) {
        assert!(
            gamma.is_finite() && gamma > 0.0,
            "calibration must be positive"
        );
        self.calibration = gamma;
    }

    /// Current calibration factor.
    pub fn calibration(&self) -> f64 {
        self.calibration
    }

    /// Raw (uncalibrated) Monte-Carlo distances for a *pair variance*
    /// `eta_gap` and a *location variance* `eta_n` — one distance per draw.
    ///
    /// The `k` evaluations fan out across [`SseConfig::exec`] worker
    /// threads when the imputer supports [`AdversarialImputer::clone_boxed`]
    /// — each parameter pair is precomputed up front (no RNG in the
    /// parallel region), each output slot is owned by exactly one worker,
    /// and [`model_distance`] is deterministic, so the result vector is
    /// bit-identical to the serial loop.
    fn mc_distances(
        &self,
        imp: &mut dyn AdversarialImputer,
        validation: &Dataset,
        eta_n: f64,
        eta_gap: f64,
    ) -> Vec<f64> {
        let p = self.theta0.len();
        let k = self.cfg.k;
        self.telemetry.add(Counter::SseMcEvals, k as u64);
        let pairs: Vec<(Vec<f64>, Vec<f64>)> = (0..k)
            .map(|i| {
                let mut theta_n = self.theta0.clone();
                let mut theta_cap = self.theta0.clone();
                for j in 0..p {
                    let s = self.unit_scale[j];
                    let dn = eta_n.sqrt() * s * self.draws_n[i][j];
                    let dg = eta_gap.sqrt() * s * self.draws_gap[i][j];
                    theta_n[j] += dn;
                    theta_cap[j] = theta_n[j] + dg;
                }
                (theta_n, theta_cap)
            })
            .collect();

        let threads = self.cfg.exec.workers(k);
        if threads > 1 {
            if let Some(first) = imp.clone_boxed() {
                let mut out = vec![0.0; k];
                let chunk = k.div_ceil(threads);
                std::thread::scope(|scope| {
                    let mut spare = Some(first);
                    for (block, slot) in out.chunks_mut(chunk).enumerate() {
                        let lo = block * chunk;
                        let pairs = &pairs;
                        let deadline = &self.deadline;
                        let mut worker = spare
                            .take()
                            .or_else(|| imp.clone_boxed())
                            .expect("clone_boxed regressed mid-fan-out");
                        // workers evaluate serially — the fan-out already
                        // saturates the policy's thread budget
                        worker.generator_mut().set_exec(ExecPolicy::Serial);
                        scope.spawn(move || {
                            for (off, d) in slot.iter_mut().enumerate() {
                                // cooperative cancellation: unevaluated
                                // draws stay at distance 0 (counted as
                                // within ε — the graceful direction)
                                if deadline.expired() {
                                    break;
                                }
                                let (ta, tb) = &pairs[lo + off];
                                *d = model_distance(worker.as_mut(), validation, ta, tb);
                            }
                        });
                    }
                });
                return out;
            }
        }
        let mut out = vec![0.0; k];
        for (d, (ta, tb)) in out.iter_mut().zip(&pairs) {
            if self.deadline.expired() {
                break;
            }
            *d = model_distance(imp, validation, ta, tb);
        }
        out
    }

    /// Mean *uncalibrated* Monte-Carlo distance at the sibling reference
    /// variance `η_ref = 2ζ/n0` (two independent size-n0 models) — the
    /// quantity the pipeline divides `D_obs` by to obtain γ.
    pub fn reference_mc_distance(
        &self,
        imp: &mut dyn AdversarialImputer,
        validation: &Dataset,
    ) -> f64 {
        let eta_ref = 2.0 * self.zeta / self.n0 as f64;
        let d = self.mc_distances(imp, validation, 0.0, eta_ref);
        d.iter().sum::<f64>() / d.len().max(1) as f64
    }

    /// Empirical `P(D(θ_n, θ_N) ≤ ε)` at sample size `n`, calibrated.
    pub fn prob_within_epsilon(
        &self,
        imp: &mut dyn AdversarialImputer,
        validation: &Dataset,
        n: usize,
    ) -> f64 {
        let eta_n = self.zeta * (1.0 / self.n0 as f64 - 1.0 / n as f64).max(0.0);
        let eta_gap = self.zeta * (1.0 / n as f64 - 1.0 / self.n_total as f64).max(0.0);
        let dists = self.mc_distances(imp, validation, eta_n, eta_gap);
        let hits = dists
            .iter()
            .filter(|&&d| d * self.calibration <= self.cfg.epsilon)
            .count();
        hits as f64 / self.cfg.k.max(1) as f64
    }

    /// Binary search for the minimum `n*` whose empirical probability
    /// clears the Proposition-2 threshold (Algorithm 1 line 3).
    pub fn estimate(&self, imp: &mut dyn AdversarialImputer, validation: &Dataset) -> SseResult {
        let start = std::time::Instant::now();
        let threshold = self.cfg.acceptance_threshold();
        let mut probes = 0usize;
        let mut trace: Vec<SseProbe> = Vec::new();
        let mut cache: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
        let mut prob_at = |n: usize,
                           imp: &mut dyn AdversarialImputer,
                           probes: &mut usize,
                           trace: &mut Vec<SseProbe>|
         -> f64 {
            if let Some(&pr) = cache.get(&n) {
                return pr;
            }
            *probes += 1;
            self.telemetry.incr(Counter::SseProbes);
            let pr = self.prob_within_epsilon(imp, validation, n);
            cache.insert(n, pr);
            let accepted = pr >= threshold;
            self.telemetry.push_series(Series::SseProbeN, n as f64);
            self.telemetry.push_series(Series::SseProbeProb, pr);
            self.telemetry.record_event(Event::SseProbe {
                n: n as u64,
                prob: pr,
                accepted,
            });
            trace.push(SseProbe {
                n,
                prob: pr,
                accepted,
            });
            pr
        };

        let (n_star, prob) = if prob_at(self.n0, imp, &mut probes, &mut trace) >= threshold {
            (self.n0, cache[&self.n0])
        } else if prob_at(self.n_total, imp, &mut probes, &mut trace) < threshold {
            // even the full dataset misses ε — degrade to "use everything"
            (self.n_total, cache[&self.n_total])
        } else {
            let (mut lo, mut hi) = (self.n0, self.n_total);
            let granularity = self
                .cfg
                .granularity
                .unwrap_or((self.n_total / 200).max(1))
                .max(1);
            while hi - lo > granularity {
                // deadline: stop refining and keep the smallest *accepted*
                // candidate seen so far (`hi` is always accepted here, so
                // the early answer stays conservative-correct)
                if self.deadline.expired() {
                    break;
                }
                let mid = lo + (hi - lo) / 2;
                if prob_at(mid, imp, &mut probes, &mut trace) >= threshold {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            (hi, prob_at(hi, imp, &mut probes, &mut trace))
        };

        SseResult {
            n_star,
            prob_at_n_star: prob,
            probes,
            calibration: self.calibration,
            duration: start.elapsed(),
            trace,
        }
    }
}

/// Convenience wrapper retaining the original free-function interface
/// (uncalibrated; the pipeline uses [`SseEstimator`] directly so it can
/// inject the sibling-model calibration).
#[allow(clippy::too_many_arguments)]
pub fn estimate_min_sample_size(
    imp: &mut dyn AdversarialImputer,
    validation: &Dataset,
    fisher_diag: &[f64],
    n0: usize,
    n_total: usize,
    cfg: &SseConfig,
    rng: &mut Rng64,
) -> SseResult {
    let d = validation.n_features();
    let est = SseEstimator::new(imp, fisher_diag, n0, n_total, d, *cfg, rng);
    est.estimate(imp, validation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scis_data::missing::inject_mcar;
    use scis_imputers::{GainImputer, TrainConfig};
    use scis_tensor::Matrix;

    fn setup(seed: u64) -> (GainImputer, Dataset, Rng64) {
        let mut rng = Rng64::seed_from_u64(seed);
        let complete = Matrix::from_fn(300, 4, |_, _| rng.uniform());
        let ds = inject_mcar(&complete, 0.3, &mut rng);
        let mut gain = GainImputer::new(TrainConfig::fast_test());
        gain.init_networks(4, &mut rng);
        (gain, ds, rng)
    }

    fn diag_for(gain: &mut GainImputer, ds: &Dataset, rng: &mut Rng64) -> Vec<f64> {
        let opts = SinkhornOptions {
            lambda: 0.1,
            max_iters: 100,
            tol: 1e-7,
            ..Default::default()
        };
        fisher_diagonal(gain, ds, &opts, 64, rng)
    }

    #[test]
    fn nan_fisher_entries_do_not_panic_probe_scaling() {
        // regression: a NaN in the Fisher diagonal (a pathological gradient
        // that slipped past the batch filters) reached the probe-scale
        // median sort, whose partial_cmp().expect("finite scales")
        // comparator panicked. total_cmp sorts the NaN scale last; the
        // median stays finite and the estimator still runs end to end.
        let (mut gain, ds, mut rng) = setup(31);
        let mut diag = diag_for(&mut gain, &ds, &mut rng);
        diag[1] = f64::NAN;
        let cfg = SseConfig {
            k: 4,
            calibrate: false,
            ..Default::default()
        };
        let est = SseEstimator::new(&mut gain, &diag, 50, 300, 4, cfg, &mut rng);
        let res = est.estimate(&mut gain, &ds);
        assert!(res.n_star >= 50 && res.n_star <= 300);
    }

    #[test]
    fn zeta_matches_theorem_formula() {
        let cfg = SseConfig::default();
        // d = 9 → ⌊d/2⌋ = 4; λ = 130
        let z = cfg.zeta(9);
        let expect = (6.0f64 / 130.0).exp() * (1.0 + 130.0f64.powi(-4)).powi(2);
        assert!((z - expect).abs() < 1e-12);
        // tiny λ explodes but is capped
        let tiny = SseConfig {
            zeta_lambda: 0.1,
            ..Default::default()
        };
        assert_eq!(tiny.zeta(20), 1e12);
    }

    #[test]
    fn acceptance_threshold_clamps_to_one_with_paper_constants() {
        let cfg = SseConfig::default();
        assert_eq!(cfg.acceptance_threshold(), 1.0);
        // a generous k makes the threshold drop below 1
        let big_k = SseConfig {
            k: 2000,
            ..Default::default()
        };
        assert!(big_k.acceptance_threshold() < 1.0);
    }

    #[test]
    fn fisher_diagonal_is_nonnegative_and_sized() {
        let (mut gain, ds, mut rng) = setup(1);
        let diag = diag_for(&mut gain, &ds, &mut rng);
        assert_eq!(
            diag.len(),
            scis_imputers::AdversarialImputer::generator_mut(&mut gain).num_params()
        );
        assert!(diag.iter().all(|&v| v >= 0.0));
        assert!(diag.iter().any(|&v| v > 0.0), "all-zero Fisher diagonal");
    }

    #[test]
    fn model_distance_is_zero_for_identical_parameters() {
        let (mut gain, ds, mut rng) = setup(2);
        let _ = &mut rng;
        let theta = scis_imputers::AdversarialImputer::generator_mut(&mut gain).param_vector();
        assert_eq!(model_distance(&mut gain, &ds, &theta, &theta), 0.0);
        // distance grows with the perturbation
        let mut t2 = theta.clone();
        for v in &mut t2 {
            *v += 0.05;
        }
        let mut t3 = theta.clone();
        for v in &mut t3 {
            *v += 0.5;
        }
        let d_small = model_distance(&mut gain, &ds, &theta, &t2);
        let d_large = model_distance(&mut gain, &ds, &theta, &t3);
        assert!(d_small > 0.0);
        assert!(d_large > d_small, "{} vs {}", d_large, d_small);
    }

    #[test]
    fn loose_epsilon_accepts_the_initial_size() {
        let (mut gain, ds, mut rng) = setup(3);
        let diag = diag_for(&mut gain, &ds, &mut rng);
        let cfg = SseConfig {
            epsilon: 10.0,
            ..Default::default()
        }; // anything passes
        let res = estimate_min_sample_size(&mut gain, &ds, &diag, 50, 300, &cfg, &mut rng);
        assert_eq!(res.n_star, 50);
        assert_eq!(res.prob_at_n_star, 1.0);
    }

    #[test]
    fn tight_epsilon_demands_more_samples() {
        let (mut gain, ds, mut rng) = setup(4);
        let diag = diag_for(&mut gain, &ds, &mut rng);
        let mut sizes = Vec::new();
        for eps in [3e-2, 3e-3, 3e-4] {
            let cfg = SseConfig {
                epsilon: eps,
                ..Default::default()
            };
            sizes.push(
                estimate_min_sample_size(&mut gain, &ds, &diag, 50, 300, &cfg, &mut rng).n_star,
            );
        }
        assert!(
            sizes[0] <= sizes[1] && sizes[1] <= sizes[2],
            "sizes {:?}",
            sizes
        );
        // the sweep actually exercises the interior, not just endpoints
        assert!(sizes[0] < 300, "loosest ε already saturated: {:?}", sizes);
    }

    #[test]
    fn calibration_scales_the_distances() {
        let (mut gain, ds, mut rng) = setup(5);
        let diag = diag_for(&mut gain, &ds, &mut rng);
        let cfg = SseConfig {
            epsilon: 5e-3,
            ..Default::default()
        };
        let mut est = SseEstimator::new(&mut gain, &diag, 50, 300, 4, cfg, &mut rng);
        let n_star_raw = est.estimate(&mut gain, &ds).n_star;
        // a huge γ makes every distance exceed ε → n* = N
        est.set_calibration(1e6);
        let n_star_big = est.estimate(&mut gain, &ds).n_star;
        assert!(n_star_big >= n_star_raw);
        assert_eq!(n_star_big, 300);
        // a tiny γ makes everything pass → n* = n0
        est.set_calibration(1e-9);
        assert_eq!(est.estimate(&mut gain, &ds).n_star, 50);
    }

    #[test]
    fn estimate_records_probe_trace_and_counters() {
        let (mut gain, ds, mut rng) = setup(10);
        let diag = diag_for(&mut gain, &ds, &mut rng);
        let cfg = SseConfig {
            epsilon: 5e-3,
            ..Default::default()
        };
        let mut est = SseEstimator::new(&mut gain, &diag, 50, 300, 4, cfg, &mut rng);
        let tel = scis_telemetry::Telemetry::collecting();
        est.set_telemetry(tel.clone());
        let res = est.estimate(&mut gain, &ds);
        assert_eq!(res.trace.len(), res.probes, "one trace entry per probe");
        assert!(!res.trace.is_empty());
        // the chosen n* must have been probed (cache hits are not re-logged)
        assert!(res.trace.iter().any(|p| p.n == res.n_star));
        assert_eq!(tel.counter(Counter::SseProbes), res.probes as u64);
        assert_eq!(
            tel.counter(Counter::SseMcEvals),
            (res.probes * cfg.k) as u64
        );
    }

    #[test]
    fn reference_distance_is_positive_and_linear_regime() {
        let (mut gain, ds, mut rng) = setup(6);
        let diag = diag_for(&mut gain, &ds, &mut rng);
        let est = SseEstimator::new(&mut gain, &diag, 50, 300, 4, SseConfig::default(), &mut rng);
        let r = est.reference_mc_distance(&mut gain, &ds);
        assert!(r > 0.0 && r.is_finite());
        // probe_std-normalized perturbations must not saturate the sigmoid
        // head: reference distances stay well below the 0.5 saturation level
        assert!(r < 0.3, "reference distance {} suggests saturation", r);
    }

    #[test]
    fn restores_theta0_after_estimation() {
        let (mut gain, ds, mut rng) = setup(7);
        let diag = diag_for(&mut gain, &ds, &mut rng);
        let before = scis_imputers::AdversarialImputer::generator_mut(&mut gain).param_vector();
        let cfg = SseConfig {
            epsilon: 0.01,
            ..Default::default()
        };
        let _ = estimate_min_sample_size(&mut gain, &ds, &diag, 50, 300, &cfg, &mut rng);
        let after = scis_imputers::AdversarialImputer::generator_mut(&mut gain).param_vector();
        assert_eq!(before, after);
    }

    #[test]
    fn n_star_stays_in_range() {
        let (mut gain, ds, mut rng) = setup(8);
        let diag = diag_for(&mut gain, &ds, &mut rng);
        for &eps in &[1e-6, 1e-3, 1e-2, 1.0] {
            let cfg = SseConfig {
                epsilon: eps,
                ..Default::default()
            };
            let res = estimate_min_sample_size(&mut gain, &ds, &diag, 40, 300, &cfg, &mut rng);
            assert!(
                (40..=300).contains(&res.n_star),
                "n* = {} for ε = {}",
                res.n_star,
                eps
            );
        }
    }

    #[test]
    fn probability_is_monotone_in_n() {
        let (mut gain, ds, mut rng) = setup(9);
        let diag = diag_for(&mut gain, &ds, &mut rng);
        let cfg = SseConfig {
            epsilon: 0.005,
            ..Default::default()
        };
        let est = SseEstimator::new(&mut gain, &diag, 40, 400, 4, cfg, &mut rng);
        let mut prev = -1.0;
        for n in [40usize, 80, 160, 320, 400] {
            let p = est.prob_within_epsilon(&mut gain, &ds, n);
            assert!(
                p >= prev - 1e-12,
                "P̂ not monotone at n={}: {} < {}",
                n,
                p,
                prev
            );
            prev = p;
        }
    }
}
