//! Out-of-core pipeline equivalence: `Scis::try_run_streamed` over a
//! [`ShardedDataset`] must push exactly the bytes `Scis::try_run` returns
//! for the same seed — at any shard size and any thread count — and must
//! surface damaged spill shards as typed errors instead of garbage output.

use scis_core::dim::{DimConfig, GenerativeLoss, LambdaMode};
use scis_core::{Scis, ScisConfig, ScisError, SseConfig};
use scis_data::shard::spill_source;
use scis_data::synth::SynthConfig;
use scis_data::{
    ChunkedDataset, MemorySink, MinMaxScaler, RowSource, ScaledSource, ShardError, ShardedDataset,
};
use scis_imputers::{GainImputer, TrainConfig};
use scis_tensor::{ExecPolicy, Matrix, Rng64};
use std::path::PathBuf;

const SEED: u64 = 7;
const N0: usize = 48;

fn recipe(n: usize, shard_rows: usize) -> ShardedDataset {
    ShardedDataset::from_recipe(
        SynthConfig {
            n_samples: n,
            n_features: 6,
            latent_dim: 2,
            n_categorical: 2,
            categorical_levels: 3,
            noise_std: 0.05,
        },
        0.25,
        2024,
        shard_rows,
    )
}

fn fast_config(exec: ExecPolicy) -> ScisConfig {
    ScisConfig::default()
        .dim(DimConfig {
            train: TrainConfig {
                epochs: 6,
                batch_size: 64,
                learning_rate: 0.005,
                dropout: 0.0,
            },
            lambda: LambdaMode::Relative(0.1),
            max_sinkhorn_iters: 100,
            alpha: 10.0,
            critic: None,
            loss: GenerativeLoss::MaskedSinkhorn,
            ..Default::default()
        })
        .sse(SseConfig {
            epsilon: 0.02,
            ..Default::default()
        })
        .exec(exec)
}

fn assert_bits_eq(a: &Matrix, b: &Matrix) {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            assert_eq!(
                a[(i, j)].to_bits(),
                b[(i, j)].to_bits(),
                "cell ({i},{j}): {} vs {}",
                a[(i, j)],
                b[(i, j)]
            );
        }
    }
}

/// Runs the in-memory pipeline on the materialized source.
fn run_in_memory(src: &ShardedDataset, exec: ExecPolicy) -> (Matrix, usize) {
    let ds = src.materialize().expect("materialize");
    let cfg = fast_config(exec);
    let (norm, _scaler) = MinMaxScaler::fit_transform_dataset(&ds);
    let mut gain = GainImputer::new(cfg.dim.train);
    let mut rng = Rng64::seed_from_u64(SEED);
    let outcome = Scis::new(cfg)
        .try_run(&mut gain, &norm, N0, &mut rng)
        .expect("in-memory run");
    (outcome.imputed, outcome.n_star)
}

/// Runs the streamed pipeline shard by shard into a memory sink.
fn run_streamed(src: &dyn RowSource, exec: ExecPolicy) -> (Matrix, usize) {
    let cfg = fast_config(exec);
    let scaler = MinMaxScaler::fit_source(src).expect("fit_source");
    let scaled = ScaledSource::new(src, &scaler);
    let mut gain = GainImputer::new(cfg.dim.train);
    let mut rng = Rng64::seed_from_u64(SEED);
    let mut sink = MemorySink::new();
    let out = Scis::new(cfg)
        .try_run_streamed(&mut gain, &scaled, N0, &mut rng, &mut sink)
        .expect("streamed run");
    assert_eq!(out.rows_written, src.n_rows());
    (sink.into_matrix(), out.n_star)
}

#[test]
fn streamed_run_matches_in_memory_bitwise_serial() {
    let src = recipe(600, 128);
    let (full, n_star_full) = run_in_memory(&src, ExecPolicy::Serial);
    let (streamed, n_star_streamed) = run_streamed(&src, ExecPolicy::Serial);
    assert_eq!(n_star_full, n_star_streamed);
    assert_bits_eq(&full, &streamed);
}

#[test]
fn streamed_run_matches_in_memory_bitwise_threads4() {
    let src = recipe(600, 97);
    let (full, n_star_full) = run_in_memory(&src, ExecPolicy::threads(4));
    let (streamed, n_star_streamed) = run_streamed(&src, ExecPolicy::threads(4));
    assert_eq!(n_star_full, n_star_streamed);
    assert_bits_eq(&full, &streamed);
}

#[test]
fn shard_size_does_not_change_streamed_output() {
    // Recipe shards salt their RNG per shard, so re-partitioning the recipe
    // itself would generate different rows. Hold the data fixed: materialize
    // once and stream the same matrix under two different shard sizes.
    let ds = recipe(600, 128).materialize().expect("materialize");
    let (a, _) = run_streamed(&ChunkedDataset::new(&ds, 128), ExecPolicy::Serial);
    let (b, _) = run_streamed(&ChunkedDataset::new(&ds, 37), ExecPolicy::Serial);
    assert_bits_eq(&a, &b);
}

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("scis_shard_stream_{}_{}", std::process::id(), name));
    std::fs::remove_dir_all(&p).ok();
    p
}

#[test]
fn spilled_source_streams_the_same_bytes_as_the_recipe() {
    let src = recipe(300, 64);
    let dir = tmp_dir("spill_eq");
    let spilled = spill_source(&src, &dir).expect("spill");
    let (a, _) = run_streamed(&src, ExecPolicy::Serial);
    let (b, _) = run_streamed(&spilled, ExecPolicy::Serial);
    assert_bits_eq(&a, &b);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_spill_shard_fails_the_streamed_run_with_a_typed_error() {
    let src = recipe(300, 64);
    let dir = tmp_dir("torn");
    let spilled = spill_source(&src, &dir).expect("spill");
    let shard1 = dir.join("shard-000001.bin");
    let bytes = std::fs::read(&shard1).unwrap();
    std::fs::write(&shard1, &bytes[..bytes.len() / 2]).unwrap();

    let cfg = fast_config(ExecPolicy::Serial);
    let mut gain = GainImputer::new(cfg.dim.train);
    let mut rng = Rng64::seed_from_u64(SEED);
    let mut sink = MemorySink::new();
    let err = Scis::new(cfg)
        .try_run_streamed(&mut gain, &spilled, N0, &mut rng, &mut sink)
        .expect_err("torn shard must fail");
    match err {
        ScisError::Shard(ShardError::Torn { shard: 1, .. }) => {}
        other => panic!("expected Torn error, got {other}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_spill_shard_fails_the_streamed_run_with_a_typed_error() {
    let src = recipe(300, 64);
    let dir = tmp_dir("corrupt");
    let spilled = spill_source(&src, &dir).expect("spill");
    let shard0 = dir.join("shard-000000.bin");
    let mut bytes = std::fs::read(&shard0).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&shard0, &bytes).unwrap();

    let cfg = fast_config(ExecPolicy::Serial);
    let mut gain = GainImputer::new(cfg.dim.train);
    let mut rng = Rng64::seed_from_u64(SEED);
    let mut sink = MemorySink::new();
    let err = Scis::new(cfg)
        .try_run_streamed(&mut gain, &spilled, N0, &mut rng, &mut sink)
        .expect_err("corrupt shard must fail");
    match err {
        ScisError::Shard(ShardError::Corrupt { shard: 0, .. }) => {}
        other => panic!("expected Corrupt error, got {other}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
