//! Consolidates the CSVs written by `table3/4/5/6` into the comparison
//! summaries the paper's prose reports: average speedup, average sample
//! rate, and RMSE deltas of the SCIS rows vs their base models.
//!
//! ```sh
//! cargo run -p scis-bench --release --bin summarize            # reads bench_results/
//! RESULTS_DIR=other/dir cargo run -p scis-bench --release --bin summarize
//! ```

use scis_bench::report::results_dir;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Row {
    dataset: String,
    method: String,
    rmse: f64,
    time_s: f64,
    rt: f64,
    finished: bool,
}

fn parse(path: &std::path::Path) -> Vec<Row> {
    let Ok(content) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    content
        .lines()
        .skip(1)
        .filter_map(|line| {
            let f: Vec<&str> = line.split(',').collect();
            if f.len() < 7 {
                return None;
            }
            Some(Row {
                dataset: f[0].to_string(),
                method: f[1].to_string(),
                rmse: f[2].parse().unwrap_or(f64::NAN),
                time_s: f[4].parse().unwrap_or(f64::NAN),
                rt: f[5].parse().unwrap_or(f64::NAN),
                finished: f[6].trim() == "true",
            })
        })
        .collect()
}

fn compare(rows: &[Row], base: &str, scis: &str) {
    let by_key: HashMap<(String, String), &Row> = rows
        .iter()
        .map(|r| ((r.dataset.clone(), r.method.clone()), r))
        .collect();
    let datasets: Vec<String> = {
        let mut seen = Vec::new();
        for r in rows {
            if !seen.contains(&r.dataset) {
                seen.push(r.dataset.clone());
            }
        }
        seen
    };
    let mut speedups = Vec::new();
    let mut rts = Vec::new();
    let mut rmse_deltas = Vec::new();
    println!("\n--- {} vs {} ---", scis, base);
    for d in &datasets {
        let (Some(b), Some(s)) = (
            by_key.get(&(d.clone(), base.to_string())),
            by_key.get(&(d.clone(), scis.to_string())),
        ) else {
            continue;
        };
        match (b.finished, s.finished) {
            (true, true) => {
                let speedup = b.time_s / s.time_s.max(1e-9);
                let delta = (s.rmse - b.rmse) / b.rmse.max(1e-12) * 100.0;
                println!(
                    "{:<12} speedup {:>6.2}x  R_t {:>6.2}%  ΔRMSE {:>+6.2}%",
                    d, speedup, s.rt, delta
                );
                speedups.push(speedup);
                rts.push(s.rt);
                rmse_deltas.push(delta);
            }
            (false, true) => {
                println!(
                    "{:<12} {} finished ({}s, R_t {:.2}%) while {} missed the budget",
                    d, scis, s.time_s, s.rt, base
                );
            }
            (true, false) => println!("{:<12} {} missed the budget", d, scis),
            (false, false) => println!("{:<12} both missed the budget", d),
        }
    }
    if !speedups.is_empty() {
        let n = speedups.len() as f64;
        println!(
            "average: speedup {:.2}x, R_t {:.2}%, ΔRMSE {:+.2}% over {} dataset(s)",
            speedups.iter().sum::<f64>() / n,
            rts.iter().sum::<f64>() / n,
            rmse_deltas.iter().sum::<f64>() / n,
            speedups.len()
        );
    }
}

fn main() {
    let dir = results_dir();
    println!("summarizing {}", dir.display());
    let mut all: Vec<Row> = Vec::new();
    for file in ["table3.csv", "table4.csv", "table5.csv", "table6.csv"] {
        let rows = parse(&dir.join(file));
        if !rows.is_empty() {
            println!("  {} — {} rows", file, rows.len());
            all.extend(rows);
        }
    }
    if all.is_empty() {
        println!("no results yet — run the table binaries first");
        return;
    }
    compare(&all, "GAIN", "SCIS-GAIN");
    compare(&all, "GINN", "SCIS-GINN");
    compare(&all, "GAIN", "DIM-GAIN");
    compare(&all, "DIM-GAIN", "SCIS-GAIN");
    compare(&all, "Fixed-DIM-GAIN", "SCIS-GAIN");
}
