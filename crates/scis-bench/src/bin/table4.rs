//! Table IV — performance comparison on the million-scale recipes
//! (Search, Weather, Surveil), scaled by `SCALE`. Methods that exceed the
//! per-run budget print "—", the paper's notation for its 10⁵-second cap —
//! on these recipes that is expected for GINN (O(N²) graph build).
//!
//! ```sh
//! cargo run -p scis-bench --release --bin table4
//! SCALE=0.02 BUDGET=1200 cargo run -p scis-bench --release --bin table4
//! ```

use scis_bench::harness::{evaluate_method, finish_process, load_recipe, BenchConfig};
use scis_bench::methods::MethodId;
use scis_bench::report::{print_table, results_dir, write_csv};
use scis_data::CovidRecipe;

fn main() {
    let cfg = BenchConfig::from_env(0.005, 2, 600);
    println!(
        "Table IV reproduction — scale {}, {} seeds, {}s budget, {} epochs",
        cfg.scale,
        cfg.seeds,
        cfg.budget.as_secs(),
        cfg.epochs
    );
    let csv = results_dir().join("table4.csv");

    for recipe in [
        CovidRecipe::Search,
        CovidRecipe::Weather,
        CovidRecipe::Surveil,
    ] {
        let (dataset, n0) = load_recipe(recipe, &cfg, 2000 + recipe.features() as u64);
        println!(
            "\n[{}] {} x {} @ {:.2}% missing, n0 = {}",
            recipe.name(),
            dataset.n_samples(),
            dataset.n_features(),
            dataset.missing_rate() * 100.0,
            n0
        );
        let mut rows = Vec::new();
        for id in MethodId::TABLE4 {
            let out = evaluate_method(id, &dataset, n0, &cfg, 43);
            println!(
                "  {} done ({})",
                id.name(),
                if out.finished { "ok" } else { "—" }
            );
            rows.push(out);
        }
        print_table(recipe.name(), &rows);
        if let Err(e) = write_csv(&csv, recipe.name(), &rows) {
            eprintln!("csv write failed: {}", e);
        }
    }
    println!("\nresults appended to {}", csv.display());
    finish_process();
}
