//! Figure 2 — effect of the missing rate R_m: RMSE, training time, R_t and
//! SSE time for GAIN vs SCIS-GAIN as R_m sweeps 10%..90%.
//!
//! Following §VI.B, R_m is the fraction of *originally observed* values
//! dropped; the dropped cells are the evaluation ground truth.
//!
//! ```sh
//! cargo run -p scis-bench --release --bin fig2
//! RECIPES=trial,response cargo run -p scis-bench --release --bin fig2
//! ```

use scis_bench::harness::{finish_process, recipes_from_env, run_with_budget, BenchConfig};
use scis_core::dim::DimConfig;
use scis_core::pipeline::{Scis, ScisConfig};
use scis_data::metrics::make_holdout;
use scis_data::normalize::MinMaxScaler;
use scis_data::CovidRecipe;
use scis_imputers::{GainImputer, Imputer};
use scis_tensor::Rng64;
use std::time::Instant;

fn main() {
    let cfg = BenchConfig::from_env(0.1, 1, 900);
    println!(
        "Figure 2 reproduction — scale {}, {}s budget, {} epochs",
        cfg.scale,
        cfg.budget.as_secs(),
        cfg.epochs
    );

    let default = [
        CovidRecipe::Trial,
        CovidRecipe::Emergency,
        CovidRecipe::Response,
    ];
    for recipe in recipes_from_env(&default) {
        let scale = cfg
            .scale
            .min(cfg.max_rows as f64 / recipe.full_samples() as f64)
            .min(1.0);
        let inst = recipe.generate(scale, 77);
        let (norm, _) = MinMaxScaler::fit_transform_dataset(&inst.dataset);
        println!(
            "\n[{}] {} x {}, base missing {:.1}%, n0 = {}",
            recipe.name(),
            norm.n_samples(),
            norm.n_features(),
            norm.missing_rate() * 100.0,
            inst.n0
        );
        println!(
            "{:>5} | {:>12} {:>9} | {:>12} {:>9} {:>8} {:>9}",
            "R_m", "GAIN rmse", "time", "SCIS rmse", "time", "R_t", "SSE time"
        );
        println!("{}", "-".repeat(78));
        for rm10 in 1..=9 {
            let rm = rm10 as f64 / 10.0;
            let mut rng = Rng64::seed_from_u64(500 + rm10);
            let (train_ds, holdout) = make_holdout(&norm, rm, &mut rng);
            if holdout.is_empty() {
                continue;
            }
            let train = cfg.train_config();

            // --- GAIN ---
            let ds1 = train_ds.clone();
            let mut rng1 = rng.fork();
            let t = Instant::now();
            let gain_res = run_with_budget(cfg.budget, move || {
                GainImputer::new(train).impute(&ds1, &mut rng1)
            });
            let gain_time = t.elapsed().as_secs_f64();
            let gain_rmse = gain_res.as_ref().map(|m| holdout.rmse(m));

            // --- SCIS-GAIN ---
            let ds2 = train_ds.clone();
            let mut rng2 = rng.fork();
            let n0 = inst.n0.min(train_ds.n_samples() / 3);
            let t = Instant::now();
            let scis_res = run_with_budget(cfg.budget, move || {
                let config = ScisConfig {
                    dim: DimConfig {
                        train,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                let mut gain = GainImputer::new(train);
                let outcome = Scis::new(config)
                    .try_run(&mut gain, &ds2, n0, &mut rng2)
                    .expect("pipeline run");
                let rt = outcome.training_sample_rate();
                let sse_t = outcome.sse_time.as_secs_f64();
                (outcome.imputed, rt, sse_t)
            });
            let scis_time = t.elapsed().as_secs_f64();

            match (gain_rmse, scis_res) {
                (Some(ge), Some((imputed, rt, sse_t))) => {
                    println!(
                        "{:>4}% | {:>12.4} {:>8.2}s | {:>12.4} {:>8.2}s {:>7.2}% {:>8.2}s",
                        rm10 * 10,
                        ge,
                        gain_time,
                        holdout.rmse(&imputed),
                        scis_time,
                        rt * 100.0,
                        sse_t
                    );
                }
                _ => println!("{:>4}% | — (budget exceeded)", rm10 * 10),
            }
        }
    }
    finish_process();
}
