//! Sinkhorn hot-path benchmark: measures what the acceleration layer
//! actually buys and writes `bench_results/BENCH_sinkhorn.json`.
//!
//! ```sh
//! cargo run -p scis-bench --release --bin sinkhorn_bench
//! SCIS_SINKHORN_BENCH_ROWS=200 SCIS_SINKHORN_BENCH_EPOCHS=8 \
//!     cargo run -p scis-bench --release --bin sinkhorn_bench
//! ```
//!
//! Three measurements:
//!
//! 1. **solver** — one masked-batch transport problem solved cold, then the
//!    slightly-perturbed next-epoch problem solved cold vs warm-started
//!    from the previous duals. Reports both iteration counts and the
//!    max-abs plan difference (the warm solve must land on the same plan
//!    within the solver tolerance).
//! 2. **cost_kernel** — the loop kernel (`masked_sq_cost_with`) vs the
//!    decomposed GEMM kernel (cached `MaskedRows` +
//!    `masked_sq_cost_decomposed`) on the same batch, with the max-abs
//!    entry difference between the two cost matrices.
//! 3. **training** — a full seeded DIM training run with the dual cache off
//!    vs on: total `sinkhorn_iterations` from telemetry (the headline
//!    ratio), warm-start hits, the estimated sweeps saved, final losses,
//!    and the max-abs difference between the two imputed tables (reported
//!    honestly — warm-started solves agree within tolerance, not bitwise,
//!    so the trained models differ slightly).

use scis_core::dim::{train_dim_cached, AccelConfig, DimConfig};
use scis_core::{GuardConfig, GuardStats, TrainPhase};
use scis_imputers::traits::impute_with_generator;
use scis_imputers::{GainImputer, TrainConfig};
use scis_ot::{
    masked_sq_cost_decomposed, masked_sq_cost_with, sinkhorn_uniform, try_sinkhorn_warm, DualCache,
    MaskedRows, SinkhornOptions,
};
use scis_telemetry::{Counter, Telemetry};
use scis_tensor::{ExecPolicy, Matrix, Rng64};
use std::hint::black_box;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Mean seconds per call after one warm-up run.
fn time<R>(iters: usize, mut body: impl FnMut() -> R) -> f64 {
    black_box(body());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(body());
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// Low-rank correlated table: realistic cost structure for the solver.
fn correlated_table(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::seed_from_u64(seed);
    Matrix::from_fn(n, d, |i, j| {
        let _ = i;
        let t = rng.uniform();
        (0.6 * t + 0.2 * (j as f64 / d as f64) + rng.normal_with(0.0, 0.05)).clamp(0.0, 1.0)
    })
}

fn main() {
    let rows = env_usize("SCIS_SINKHORN_BENCH_ROWS", 300);
    let d = env_usize("SCIS_SINKHORN_BENCH_FEATURES", 8);
    let epochs = env_usize("SCIS_SINKHORN_BENCH_EPOCHS", 60);
    // full-batch by default: every epoch re-solves the same row set, which
    // is where epoch-to-epoch warm-starting pays off most. Mini-batch
    // configs (set SCIS_SINKHORN_BENCH_BATCH < rows) still warm-start via
    // the row-keyed cache, but duals composed across different batch
    // compositions are a weaker init and the savings shrink accordingly.
    let batch = env_usize("SCIS_SINKHORN_BENCH_BATCH", rows).min(rows);
    let kernel_iters = env_usize("SCIS_SINKHORN_BENCH_KERNEL_ITERS", 10);

    // ---- 1. solver: cold vs warm on consecutive-epoch problems ----------
    let mut rng = Rng64::seed_from_u64(11);
    let x = correlated_table(batch, d, 12);
    let m = Matrix::from_fn(batch, d, |_, _| if rng.bernoulli(0.75) { 1.0 } else { 0.0 });
    let xbar = x.map(|v| (v + 0.08).clamp(0.0, 1.0));
    let cost0 = masked_sq_cost_with(&xbar, &m, &x, &m, ExecPolicy::Serial);
    // λ relative to the cost scale, exactly as DIM training resolves it
    let opts = SinkhornOptions::default()
        .lambda(0.1 * cost0.mean())
        .max_iters(5000)
        .tol(1e-8)
        .exec(ExecPolicy::Serial);
    let r0 = sinkhorn_uniform(&cost0, &opts);
    // "next epoch": the generator moved one optimizer step, the data side
    // did not (perturbation sized like an Adam step's output movement)
    let xbar2 = xbar.map(|v| (v - 0.002).clamp(0.0, 1.0));
    let cost1 = masked_sq_cost_with(&xbar2, &m, &x, &m, ExecPolicy::Serial);
    let cold = sinkhorn_uniform(&cost1, &opts);
    let ua = vec![1.0 / batch as f64; batch];
    let warm = try_sinkhorn_warm(&cost1, &ua, &ua, r0.f.clone(), r0.g.clone(), &opts)
        .expect("warm solve rejected");
    let plan_diff = cold
        .plan
        .as_slice()
        .iter()
        .zip(warm.plan.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "solver/{batch}: cold {} iters, warm {} iters, plan max|Δ| {plan_diff:.2e}",
        cold.iterations, warm.iterations
    );

    // ---- 1b. sweep precision: default f64/libm vs f32 + fast_exp ---------
    // Same solve, opt-in compute mode: f32 cost storage, reciprocal-λ
    // multiply, polynomial exp in the sweeps. The plan difference is the
    // honest price (input rounding at ~1e-7 relative, solves still converge
    // to the same tolerance).
    let sweep_iters = env_usize("SCIS_SINKHORN_BENCH_SWEEP_ITERS", 3);
    let opts32 = opts.clone().precision(scis_tensor::Precision::F32);
    let sweep_f64_s = time(sweep_iters, || sinkhorn_uniform(&cost0, &opts));
    let sweep_f32_s = time(sweep_iters, || sinkhorn_uniform(&cost0, &opts32));
    let r32 = sinkhorn_uniform(&cost0, &opts32);
    let sweep_plan_diff = r0
        .plan
        .as_slice()
        .iter()
        .zip(r32.plan.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let sweep_speedup = sweep_f64_s / sweep_f32_s.max(1e-12);
    println!(
        "sweep_f32/{batch}: f64 {sweep_f64_s:.6}s, f32 {sweep_f32_s:.6}s \
         ({sweep_speedup:.2}x), plan max|Δ| {sweep_plan_diff:.2e}"
    );

    // ---- 2. cost kernel: loop vs decomposed GEMM -------------------------
    // Measured at a wide feature count (its target regime): the GEMM's
    // multi-accumulator inner product beats the subtract-square loop when
    // the O(n²·d) dot products dominate, while at a handful of features the
    // O(n²) assembly pass eats the gain — which is why `decomposed_cost`
    // is a config flag rather than the default.
    let kn = env_usize("SCIS_SINKHORN_BENCH_KERNEL_ROWS", 600);
    let kd = env_usize("SCIS_SINKHORN_BENCH_KERNEL_FEATURES", 128);
    let mut krng = Rng64::seed_from_u64(31);
    let kx = correlated_table(kn, kd, 32);
    let km = Matrix::from_fn(kn, kd, |_, _| if krng.bernoulli(0.75) { 1.0 } else { 0.0 });
    let kxbar = kx.map(|v| (v + 0.05).clamp(0.0, 1.0));
    let loop_s = time(kernel_iters, || {
        masked_sq_cost_with(&kxbar, &km, &kx, &km, ExecPolicy::Serial)
    });
    let data_side = MaskedRows::new(&kx, &km); // cached across epochs in training
    let gemm_s = time(kernel_iters, || {
        let gen_side = MaskedRows::new(&kxbar, &km);
        masked_sq_cost_decomposed(&gen_side, &data_side, ExecPolicy::Serial)
    });
    let cost_loop = masked_sq_cost_with(&kxbar, &km, &kx, &km, ExecPolicy::Serial);
    let gen_side = MaskedRows::new(&kxbar, &km);
    let cost_gemm = masked_sq_cost_decomposed(&gen_side, &data_side, ExecPolicy::Serial);
    let cost_diff = cost_loop
        .as_slice()
        .iter()
        .zip(cost_gemm.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let kernel_speedup = loop_s / gemm_s.max(1e-12);
    println!(
        "cost_kernel/{kn}x{kd}: loop {loop_s:.6}s, gemm {gemm_s:.6}s ({kernel_speedup:.2}x), max|Δ| {cost_diff:.2e}"
    );

    // ---- 3. training: dual cache off vs on, same seeds -------------------
    let complete = correlated_table(rows, d, 21);
    let mut rng = Rng64::seed_from_u64(22);
    let ds = scis_data::missing::inject_mcar(&complete, 0.25, &mut rng);
    let mut base_cfg = DimConfig::default()
        .train(TrainConfig {
            epochs,
            batch_size: batch,
            learning_rate: 0.005,
            dropout: 0.0,
        })
        .exec(ExecPolicy::Serial);
    // budget high enough that solves converge in the *plain* attempt: with
    // the default 200-sweep cap most solves fail over to the ε-scaling
    // ladder, whose cold restarts would mask exactly the effect this bench
    // measures
    base_cfg.max_sinkhorn_iters = env_usize("SCIS_SINKHORN_BENCH_MAX_ITERS", 3000);

    let run = |accel: AccelConfig| {
        let cfg = base_cfg.accel(accel);
        let mut gain = GainImputer::new(cfg.train);
        let mut stats = GuardStats::default();
        let tel = Telemetry::collecting();
        let cache = if accel.warm_start {
            DualCache::enabled()
        } else {
            DualCache::off()
        };
        let mut rng = Rng64::seed_from_u64(23);
        let start = Instant::now();
        let report = train_dim_cached(
            &mut gain,
            &ds,
            &cfg,
            &GuardConfig::default(),
            TrainPhase::Initial,
            &mut stats,
            &tel,
            &cache,
            &mut rng,
        )
        .expect("training failed");
        let train_s = start.elapsed().as_secs_f64();
        let out = impute_with_generator(&mut gain, &ds, &mut rng);
        (report, tel, out, train_s)
    };

    let (cold_report, cold_tel, cold_out, cold_s) = run(AccelConfig::default());
    let (warm_report, warm_tel, warm_out, warm_s) = run(AccelConfig::default().warm_start(true));

    let cold_iters = cold_tel.counter(Counter::SinkhornIterations);
    let warm_iters = warm_tel.counter(Counter::SinkhornIterations);
    for (name, tel) in [("cold", &cold_tel), ("warm", &warm_tel)] {
        println!(
            "  {name}: solves {}, converged {}, escalations {}, unconverged {}",
            tel.counter(Counter::SinkhornSolves),
            tel.counter(Counter::SinkhornConverged),
            tel.counter(Counter::SinkhornEscalations),
            tel.counter(Counter::SinkhornUnconverged),
        );
    }
    let warm_hits = warm_tel.counter(Counter::WarmStartHits);
    let iters_saved = warm_tel.counter(Counter::ItersSaved);
    let iter_ratio = cold_iters as f64 / warm_iters.max(1) as f64;
    let impute_diff = cold_out
        .as_slice()
        .iter()
        .zip(warm_out.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        warm_iters <= cold_iters,
        "warm-start increased total iterations: {warm_iters} > {cold_iters}"
    );
    println!(
        "training/{rows}x{d}x{epochs}: cold {cold_iters} iters ({cold_s:.2}s), \
         warm {warm_iters} iters ({warm_s:.2}s) — {iter_ratio:.2}x fewer, \
         {warm_hits} warm hits, imputation max|Δ| {impute_diff:.2e}"
    );

    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"config\": {{\n    \"rows\": {rows},\n    \
         \"features\": {d},\n    \"epochs\": {epochs},\n    \"batch_size\": {batch}\n  }},\n  \
         \"solver\": {{\n    \"cold_iterations\": {},\n    \"warm_iterations\": {},\n    \
         \"plan_max_abs_diff\": {plan_diff:e}\n  }},\n  \
         \"sweep_f32\": {{\n    \"f64_s\": {sweep_f64_s:.6},\n    \"f32_s\": {sweep_f32_s:.6},\n    \
         \"speedup\": {sweep_speedup:.3},\n    \"plan_max_abs_diff\": {sweep_plan_diff:e}\n  }},\n  \
         \"cost_kernel\": {{\n    \"rows\": {kn},\n    \"features\": {kd},\n    \
         \"loop_s\": {loop_s:.6},\n    \"gemm_s\": {gemm_s:.6},\n    \
         \"speedup\": {kernel_speedup:.3},\n    \"max_abs_diff\": {cost_diff:e}\n  }},\n  \
         \"training\": {{\n    \"cold_iterations\": {cold_iters},\n    \
         \"warm_iterations\": {warm_iters},\n    \"iteration_ratio\": {iter_ratio:.3},\n    \
         \"warm_start_hits\": {warm_hits},\n    \"iters_saved_estimate\": {iters_saved},\n    \
         \"cold_train_s\": {cold_s:.3},\n    \"warm_train_s\": {warm_s:.3},\n    \
         \"cold_final_loss\": {:e},\n    \"warm_final_loss\": {:e},\n    \
         \"imputation_max_abs_diff\": {impute_diff:e}\n  }}\n}}\n",
        cold.iterations,
        warm.iterations,
        cold_report.final_loss(),
        warm_report.final_loss(),
    );
    std::fs::create_dir_all("bench_results").expect("creating bench_results/");
    std::fs::write("bench_results/BENCH_sinkhorn.json", &json)
        .expect("writing BENCH_sinkhorn.json");
    println!("wrote bench_results/BENCH_sinkhorn.json");
}
