//! Figure 4 — effect of the initial sample size n0 on SCIS-GAIN: RMSE,
//! training time, and R_t as n0 sweeps around the paper's per-dataset
//! optimum. Expectation (§VI.B): smaller n0 → larger Theorem-1 variance →
//! larger n* and R_t.
//!
//! ```sh
//! cargo run -p scis-bench --release --bin fig4
//! ```

use scis_bench::harness::{finish_process, recipes_from_env, run_with_budget, BenchConfig};
use scis_core::dim::DimConfig;
use scis_core::pipeline::{Scis, ScisConfig};
use scis_data::metrics::make_holdout;
use scis_data::normalize::MinMaxScaler;
use scis_data::CovidRecipe;
use scis_imputers::GainImputer;
use scis_tensor::Rng64;

fn main() {
    let cfg = BenchConfig::from_env(0.1, 1, 900);
    println!(
        "Figure 4 reproduction — scale {}, {}s budget, {} epochs",
        cfg.scale,
        cfg.budget.as_secs(),
        cfg.epochs
    );

    let default = [
        CovidRecipe::Trial,
        CovidRecipe::Emergency,
        CovidRecipe::Response,
    ];
    for recipe in recipes_from_env(&default) {
        let scale = cfg
            .scale
            .min(cfg.max_rows as f64 / recipe.full_samples() as f64)
            .min(1.0);
        let inst = recipe.generate(scale, 99);
        let (norm, _) = MinMaxScaler::fit_transform_dataset(&inst.dataset);
        let mut rng = Rng64::seed_from_u64(700);
        let (train_ds, holdout) = make_holdout(&norm, cfg.holdout_frac, &mut rng);
        let n = train_ds.n_samples();
        let paper_n0 = inst.n0;
        println!(
            "\n[{}] {} rows; paper-optimal n0 (scaled) = {}",
            recipe.name(),
            n,
            paper_n0
        );
        println!(
            "{:>8} {:>12} {:>9} {:>9} {:>9}",
            "n0", "RMSE", "R_t (%)", "n*", "time (s)"
        );
        println!("{}", "-".repeat(52));
        for factor in [0.25, 0.5, 1.0, 2.0, 4.0] {
            let n0 = ((paper_n0 as f64 * factor) as usize).clamp(16, n / 3);
            let train = cfg.train_config();
            let ds = train_ds.clone();
            let mut run_rng = rng.fork();
            let t = std::time::Instant::now();
            let res = run_with_budget(cfg.budget, move || {
                let config = ScisConfig {
                    dim: DimConfig {
                        train,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                let mut gain = GainImputer::new(train);
                let outcome = Scis::new(config)
                    .try_run(&mut gain, &ds, n0, &mut run_rng)
                    .expect("pipeline run");
                {
                    let rt = outcome.training_sample_rate();
                    (outcome.imputed, rt, outcome.n_star)
                }
            });
            match res {
                Some((imputed, rt, n_star)) => println!(
                    "{:>8} {:>12.4} {:>8.2}% {:>9} {:>9.2}",
                    n0,
                    holdout.rmse(&imputed),
                    rt * 100.0,
                    n_star,
                    t.elapsed().as_secs_f64()
                ),
                None => println!("{:>8} — (budget exceeded)", n0),
            }
        }
    }
    finish_process();
}
