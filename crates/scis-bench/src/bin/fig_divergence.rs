//! §IV.A Example 1 — the analytic JS-vs-MS divergence contrast that
//! motivates DIM: for `p0 = δ_0`, `p_θ = δ_θ` under a Bernoulli(q) MCAR
//! mask, the JS divergence is the constant `2·log 2` for every `θ ≠ 0`
//! (zero gradient a.e. — the "vanishing gradient"), while the MS divergence
//! is `2qθ² + λ[(1−q)log(1−q) + q·log q]`, quadratic with informative
//! gradients everywhere.
//!
//! This binary prints the closed forms next to the *empirical* MS
//! divergence computed by our Sinkhorn solver, validating the paper's
//! example end to end.
//!
//! ```sh
//! cargo run -p scis-bench --release --bin fig_divergence
//! ```

use scis_ot::{ms_divergence, SinkhornOptions};
use scis_tensor::{Matrix, Rng64};

fn main() {
    let n = 400;
    let q = 0.5; // P(observed)
    let lambda = 0.01;
    let mut rng = Rng64::seed_from_u64(1);
    let mask = Matrix::from_fn(n, 1, |_, _| if rng.bernoulli(q) { 1.0 } else { 0.0 });
    let q_emp = mask.mean();
    let x0 = Matrix::zeros(n, 1);
    let opts = SinkhornOptions {
        lambda,
        max_iters: 20_000,
        tol: 1e-11,
        ..Default::default()
    };
    let entropy_const = lambda * ((1.0 - q_emp) * (1.0 - q_emp).ln() + q_emp * q_emp.ln());

    println!("Example 1: p0 = δ_0 vs p_θ = δ_θ, MCAR mask ~ Ber({q}), λ = {lambda}");
    println!("empirical q = {:.3}; n = {}\n", q_emp, n);
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>12}",
        "theta", "JS", "MS (paper)", "MS (Sinkhorn)", "dMS/dθ ≈"
    );
    println!("{}", "-".repeat(62));
    let thetas = [0.0, 0.25, 0.5, 0.75, 1.0, 1.5];
    let mut prev: Option<(f64, f64)> = None;
    for &theta in &thetas {
        let js = if theta == 0.0 { 0.0 } else { 2.0 * 2.0f64.ln() };
        let ms_paper = 2.0 * q_emp * theta * theta + entropy_const;
        let xt = Matrix::full(n, 1, theta);
        let ms_emp = ms_divergence(&xt, &x0, &mask, &opts).value;
        let slope = prev
            .map(|(pt, pv)| (ms_emp - pv) / (theta - pt))
            .map(|s| format!("{:>12.4}", s))
            .unwrap_or_else(|| format!("{:>12}", "-"));
        println!(
            "{:>6.2} {:>12.4} {:>14.4} {:>14.4} {}",
            theta, js, ms_paper, ms_emp, slope
        );
        prev = Some((theta, ms_emp));
    }
    println!(
        "\nJS: flat at 2·log2 = {:.4} for θ ≠ 0 → zero gradient a.e. (vanishing)",
        2.0 * 2.0f64.ln()
    );
    println!("MS: quadratic in θ → gradient 4qθ grows linearly — always informative.");
}
