//! The abstract's headline claim: *"SCIS can accelerate the generative
//! adversarial model training by 7.1×, using around 7.6% samples"*.
//!
//! This bench sweeps the dataset size N (Response recipe) and reports, per
//! N: GAIN's full-data training time, SCIS-GAIN's total time, the speedup,
//! R_t, and both RMSEs. The expected shape: speedup grows with N (GAIN is
//! linear in N per epoch, SCIS is ~flat once n* saturates), crossing ~1×
//! at small N and reaching high single digits at the largest size that
//! fits the budget.
//!
//! ```sh
//! cargo run -p scis-bench --release --bin fig_scaling
//! SIZES=2000,8000,32000 cargo run -p scis-bench --release --bin fig_scaling
//! ```

use scis_bench::harness::{finish_process, run_with_budget, BenchConfig};
use scis_core::dim::DimConfig;
use scis_core::pipeline::{Scis, ScisConfig};
use scis_data::metrics::make_holdout;
use scis_data::normalize::MinMaxScaler;
use scis_data::CovidRecipe;
use scis_imputers::{GainImputer, Imputer};
use scis_tensor::Rng64;
use std::time::Instant;

fn main() {
    let cfg = BenchConfig::from_env(1.0, 1, 1800);
    let sizes: Vec<usize> = std::env::var("SIZES")
        .map(|s| s.split(',').filter_map(|v| v.trim().parse().ok()).collect())
        .unwrap_or_else(|_| vec![1_000, 4_000, 16_000, 64_000]);
    println!(
        "scaling sweep (Response recipe) — {} epochs, {}s budget",
        cfg.epochs,
        cfg.budget.as_secs()
    );
    println!(
        "\n{:>8} | {:>10} {:>9} | {:>10} {:>9} {:>8} | {:>8}",
        "N", "GAIN rmse", "time", "SCIS rmse", "time", "R_t", "speedup"
    );
    println!("{}", "-".repeat(78));

    for &n in &sizes {
        let scale = n as f64 / CovidRecipe::Response.full_samples() as f64;
        let inst = CovidRecipe::Response.generate(scale.min(1.0), 222);
        let (norm, _) = MinMaxScaler::fit_transform_dataset(&inst.dataset);
        let mut rng = Rng64::seed_from_u64(222);
        let (train_ds, holdout) = make_holdout(&norm, 0.2, &mut rng);
        let train = cfg.train_config();
        let n0 = inst.n0.min(train_ds.n_samples() / 3).max(32);

        let ds1 = train_ds.clone();
        let mut r1 = rng.fork();
        let t = Instant::now();
        let gain_res = run_with_budget(cfg.budget, move || {
            GainImputer::new(train).impute(&ds1, &mut r1)
        });
        let gain_time = t.elapsed().as_secs_f64();

        let ds2 = train_ds.clone();
        let mut r2 = rng.fork();
        let t = Instant::now();
        let scis_res = run_with_budget(cfg.budget, move || {
            let config = ScisConfig {
                dim: DimConfig {
                    train,
                    ..Default::default()
                },
                ..Default::default()
            };
            let mut gain = GainImputer::new(train);
            let outcome = Scis::new(config)
                .try_run(&mut gain, &ds2, n0, &mut r2)
                .expect("pipeline run");
            let rt = outcome.training_sample_rate();
            (outcome.imputed, rt)
        });
        let scis_time = t.elapsed().as_secs_f64();

        match (gain_res, scis_res) {
            (Some(g), Some((s, rt))) => println!(
                "{:>8} | {:>10.4} {:>8.2}s | {:>10.4} {:>8.2}s {:>7.2}% | {:>7.2}x",
                train_ds.n_samples(),
                holdout.rmse(&g),
                gain_time,
                holdout.rmse(&s),
                scis_time,
                rt * 100.0,
                gain_time / scis_time.max(1e-9)
            ),
            (None, Some((s, rt))) => println!(
                "{:>8} | {:>10} {:>9} | {:>10.4} {:>8.2}s {:>7.2}% | {:>8}",
                train_ds.n_samples(),
                "—",
                "—",
                holdout.rmse(&s),
                scis_time,
                rt * 100.0,
                ">budget"
            ),
            _ => println!("{:>8} | both exceeded the budget", train_ds.n_samples()),
        }
    }
    finish_process();
}
