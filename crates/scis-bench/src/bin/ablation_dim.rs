//! Design-choice ablation (beyond the paper's tables): DIM variants.
//!
//! Compares, on one recipe:
//! * GAIN (native JS/BCE loss) — the baseline;
//! * DIM data-space — MS divergence computed on masked batches (our
//!   default, used by every table);
//! * DIM critic — §IV.B taken literally: an embedding network φ trained to
//!   *maximize* the MS divergence while the generator minimizes it;
//! * DIM λ sweep — sensitivity of the data-space variant to the relative
//!   entropic regularization factor.
//!
//! ```sh
//! cargo run -p scis-bench --release --bin ablation_dim
//! ```

use scis_bench::harness::{finish_process, run_with_budget, BenchConfig};
use scis_core::dim::{try_train_dim, CriticConfig, DimConfig, GenerativeLoss, LambdaMode};
use scis_data::metrics::make_holdout;
use scis_data::normalize::MinMaxScaler;
use scis_data::CovidRecipe;
use scis_imputers::traits::impute_with_generator;
use scis_imputers::{GainImputer, Imputer};
use scis_tensor::Rng64;
use std::time::Instant;

fn main() {
    let cfg = BenchConfig::from_env(0.1, 1, 900);
    println!(
        "DIM ablation — scale {}, {}s budget, {} epochs\n",
        cfg.scale,
        cfg.budget.as_secs(),
        cfg.epochs
    );
    let scale = cfg
        .scale
        .min(cfg.max_rows as f64 / CovidRecipe::Trial.full_samples() as f64)
        .min(1.0);
    let inst = CovidRecipe::Trial.generate(scale, 55);
    let (norm, _) = MinMaxScaler::fit_transform_dataset(&inst.dataset);
    let mut rng = Rng64::seed_from_u64(55);
    let (train_ds, holdout) = make_holdout(&norm, cfg.holdout_frac, &mut rng);
    let train = cfg.train_config();
    println!(
        "[{}] {} x {}, {} eval cells",
        CovidRecipe::Trial.name(),
        train_ds.n_samples(),
        train_ds.n_features(),
        holdout.len()
    );
    println!("{:<28} {:>10} {:>10}", "Variant", "RMSE", "time (s)");
    println!("{}", "-".repeat(50));

    // GAIN native
    {
        let ds = train_ds.clone();
        let mut r = rng.fork();
        let t = Instant::now();
        let out = run_with_budget(cfg.budget, move || {
            GainImputer::new(train).impute(&ds, &mut r)
        });
        report(
            "GAIN (native JS)",
            out.map(|m| holdout.rmse(&m)),
            t.elapsed().as_secs_f64(),
        );
    }

    // DIM variants
    let variants: Vec<(String, DimConfig)> = vec![
        (
            "DIM data-space (rel 0.1)".into(),
            DimConfig {
                train,
                ..Default::default()
            },
        ),
        (
            "DIM critic".into(),
            DimConfig {
                train,
                critic: Some(CriticConfig::default()),
                ..Default::default()
            },
        ),
        (
            "DIM data-space (rel 0.02)".into(),
            DimConfig {
                train,
                lambda: LambdaMode::Relative(0.02),
                ..Default::default()
            },
        ),
        (
            "DIM data-space (rel 0.5)".into(),
            DimConfig {
                train,
                lambda: LambdaMode::Relative(0.5),
                ..Default::default()
            },
        ),
        (
            "DIM data-space (abs 130)".into(),
            DimConfig {
                train,
                lambda: LambdaMode::Absolute(130.0),
                ..Default::default()
            },
        ),
        (
            "DIM sliced-Wasserstein".into(),
            DimConfig {
                train,
                loss: GenerativeLoss::SlicedWasserstein { n_projections: 32 },
                ..Default::default()
            },
        ),
    ];
    for (name, dim) in variants {
        let ds = train_ds.clone();
        let mut r = rng.fork();
        let t = Instant::now();
        let out = run_with_budget(cfg.budget, move || {
            let mut gain = GainImputer::new(train);
            let _ = try_train_dim(&mut gain, &ds, &dim, &mut r).expect("dim training");
            impute_with_generator(&mut gain, &ds, &mut r)
        });
        report(
            &name,
            out.map(|m| holdout.rmse(&m)),
            t.elapsed().as_secs_f64(),
        );
    }
    finish_process();
}

fn report(name: &str, rmse: Option<f64>, secs: f64) {
    match rmse {
        Some(r) => println!("{:<28} {:>10.4} {:>10.2}", name, r, secs),
        None => println!("{:<28} {:>10} {:>10}", name, "—", "—"),
    }
}
