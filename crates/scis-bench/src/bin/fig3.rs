//! Figure 3 — effect of the user-tolerated error bound ε on SCIS-GAIN:
//! RMSE vs the user-tolerated error (R^u_mse + ε) and the plain-GAIN error
//! (R^o_mse + ε), plus the sample rates R_1 = n0/N and R_2 = n*/N.
//!
//! ```sh
//! cargo run -p scis-bench --release --bin fig3
//! ```

use scis_bench::harness::{finish_process, recipes_from_env, run_with_budget, BenchConfig};
use scis_core::dim::{try_train_dim, DimConfig};
use scis_core::pipeline::{Scis, ScisConfig};
use scis_data::metrics::make_holdout;
use scis_data::normalize::MinMaxScaler;
use scis_data::CovidRecipe;
use scis_imputers::traits::impute_with_generator;
use scis_imputers::{GainImputer, Imputer};
use scis_tensor::Rng64;

fn main() {
    let cfg = BenchConfig::from_env(0.1, 1, 900);
    println!(
        "Figure 3 reproduction — scale {}, {}s budget, {} epochs",
        cfg.scale,
        cfg.budget.as_secs(),
        cfg.epochs
    );

    let default = [
        CovidRecipe::Trial,
        CovidRecipe::Emergency,
        CovidRecipe::Response,
    ];
    for recipe in recipes_from_env(&default) {
        let scale = cfg
            .scale
            .min(cfg.max_rows as f64 / recipe.full_samples() as f64)
            .min(1.0);
        let inst = recipe.generate(scale, 88);
        let (norm, _) = MinMaxScaler::fit_transform_dataset(&inst.dataset);
        let mut rng = Rng64::seed_from_u64(600);
        let (train_ds, holdout) = make_holdout(&norm, cfg.holdout_frac, &mut rng);
        let train = cfg.train_config();
        let n0 = inst.n0.min(train_ds.n_samples() / 3);
        println!(
            "\n[{}] {} x {}, n0 = {} (R_1 = {:.2}%)",
            recipe.name(),
            train_ds.n_samples(),
            train_ds.n_features(),
            n0,
            n0 as f64 / train_ds.n_samples() as f64 * 100.0
        );

        // reference errors: R^o_mse (native GAIN on full data) and
        // R^u_mse (DIM-GAIN on full data)
        let ds_o = train_ds.clone();
        let mut rng_o = rng.fork();
        let r_o = run_with_budget(cfg.budget, move || {
            GainImputer::new(train).impute(&ds_o, &mut rng_o)
        })
        .map(|m| holdout.rmse(&m));
        let ds_u = train_ds.clone();
        let mut rng_u = rng.fork();
        let r_u = run_with_budget(cfg.budget, move || {
            let mut gain = GainImputer::new(train);
            let dim = DimConfig {
                train,
                ..Default::default()
            };
            let _ = try_train_dim(&mut gain, &ds_u, &dim, &mut rng_u).expect("dim training");
            impute_with_generator(&mut gain, &ds_u, &mut rng_u)
        })
        .map(|m| holdout.rmse(&m));
        match (r_o, r_u) {
            (Some(o), Some(u)) => {
                println!("R^o_mse (GAIN, full data)     = {:.4}", o);
                println!("R^u_mse (DIM-GAIN, full data) = {:.4}", u);
                println!(
                    "{:>8} {:>12} {:>12} {:>12} {:>9} {:>9}",
                    "eps", "SCIS rmse", "R^u+eps", "R^o+eps", "R_2 (%)", "time (s)"
                );
                println!("{}", "-".repeat(68));
                for &eps in &[0.001, 0.003, 0.005, 0.007, 0.009] {
                    let ds_s = train_ds.clone();
                    let mut rng_s = rng.fork();
                    let t = std::time::Instant::now();
                    let res = run_with_budget(cfg.budget, move || {
                        let mut config = ScisConfig {
                            dim: DimConfig {
                                train,
                                ..Default::default()
                            },
                            ..Default::default()
                        };
                        config.sse.epsilon = eps;
                        let mut gain = GainImputer::new(train);
                        let outcome = Scis::new(config)
                            .try_run(&mut gain, &ds_s, n0, &mut rng_s)
                            .expect("pipeline run");
                        {
                            let rt = outcome.training_sample_rate();
                            (outcome.imputed, rt)
                        }
                    });
                    match res {
                        Some((imputed, r2)) => println!(
                            "{:>8.3} {:>12.4} {:>12.4} {:>12.4} {:>8.2}% {:>9.2}",
                            eps,
                            holdout.rmse(&imputed),
                            u + eps,
                            o + eps,
                            r2 * 100.0,
                            t.elapsed().as_secs_f64()
                        ),
                        None => println!("{:>8.3} — (budget exceeded)", eps),
                    }
                }
            }
            _ => println!("reference runs exceeded the budget — rerun with BUDGET=…"),
        }
    }
    finish_process();
}
