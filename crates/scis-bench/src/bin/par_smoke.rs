//! Smoke test for the deterministic parallel execution engine: times the
//! two hottest kernels (512×512 GEMM and pairwise squared distances) under
//! `ExecPolicy::Serial` vs `ExecPolicy::threads(4)`, verifies bit-identical
//! outputs, and writes the result to `bench_results/par_smoke.json`.
//!
//! ```sh
//! cargo run -p scis-bench --release --bin par_smoke
//! SCIS_SMOKE_THREADS=8 cargo run -p scis-bench --release --bin par_smoke
//! ```
//!
//! On a multi-core machine the parallel timings should show near-linear
//! speedup; on a single core they degrade gracefully to ~1×. The parity
//! assertions hold everywhere — that is the engine's contract.

use scis_tensor::par::{matmul_exec, pairwise_sq_dists_exec};
use scis_tensor::{ExecPolicy, Matrix, Rng64};
use std::hint::black_box;
use std::time::Instant;

const N: usize = 512;
const ITERS: usize = 5;

/// Mean seconds per call after one warm-up run.
fn time<R>(mut body: impl FnMut() -> R) -> f64 {
    black_box(body());
    let start = Instant::now();
    for _ in 0..ITERS {
        black_box(body());
    }
    start.elapsed().as_secs_f64() / ITERS as f64
}

fn main() {
    let threads: usize = std::env::var("SCIS_SMOKE_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let par = ExecPolicy::threads(threads);
    let mut rng = Rng64::seed_from_u64(7);
    let a = Matrix::from_fn(N, N, |_, _| rng.uniform());
    let b = Matrix::from_fn(N, N, |_, _| rng.uniform());

    let mm_serial = time(|| matmul_exec(&a, &b, ExecPolicy::Serial));
    let mm_par = time(|| matmul_exec(&a, &b, par));
    let pw_serial = time(|| pairwise_sq_dists_exec(&a, &b, ExecPolicy::Serial));
    let pw_par = time(|| pairwise_sq_dists_exec(&a, &b, par));

    let mm_identical = matmul_exec(&a, &b, ExecPolicy::Serial) == matmul_exec(&a, &b, par);
    let pw_identical =
        pairwise_sq_dists_exec(&a, &b, ExecPolicy::Serial) == pairwise_sq_dists_exec(&a, &b, par);
    assert!(mm_identical, "matmul parity violated");
    assert!(pw_identical, "pairwise_sq_dists parity violated");

    let mm_speedup = mm_serial / mm_par.max(1e-12);
    let pw_speedup = pw_serial / pw_par.max(1e-12);
    println!("matmul/{N}:            serial {mm_serial:.4}s, {threads} threads {mm_par:.4}s  ({mm_speedup:.2}x)");
    println!("pairwise_sq_dists/{N}: serial {pw_serial:.4}s, {threads} threads {pw_par:.4}s  ({pw_speedup:.2}x)");

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"size\": {N},\n  \"threads\": {threads},\n  \"available_cores\": {cores},\n  \
         \"matmul_serial_s\": {mm_serial:.6},\n  \"matmul_par_s\": {mm_par:.6},\n  \
         \"matmul_speedup\": {mm_speedup:.3},\n  \"matmul_bit_identical\": {mm_identical},\n  \
         \"pairwise_serial_s\": {pw_serial:.6},\n  \"pairwise_par_s\": {pw_par:.6},\n  \
         \"pairwise_speedup\": {pw_speedup:.3},\n  \"pairwise_bit_identical\": {pw_identical}\n}}\n"
    );
    std::fs::create_dir_all("bench_results").expect("creating bench_results/");
    std::fs::write("bench_results/par_smoke.json", &json).expect("writing par_smoke.json");
    println!("wrote bench_results/par_smoke.json");
}
