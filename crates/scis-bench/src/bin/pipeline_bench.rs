//! End-to-end pipeline benchmark: runs Algorithm 1 on a seeded synthetic
//! table with the flight recorder attached and writes the repo-root
//! `BENCH_pipeline.json` — the head of the whole-pipeline perf trajectory
//! (phase wall times, Sinkhorn iteration totals, imputation RMSE).
//!
//! ```sh
//! cargo run -p scis-bench --release --bin pipeline_bench
//! SCIS_PIPELINE_BENCH_ROWS=200 SCIS_PIPELINE_BENCH_EPOCHS=8 \
//!     cargo run -p scis-bench --release --bin pipeline_bench
//! ```
//!
//! Schema v2 reports three measurements:
//!
//! 1. **gemm** — the register-tiled GEMM microkernel vs the naive reference
//!    loop (same per-element accumulation chains, so bit-identical output);
//!    min-of-reps timing, with the blocked/naive speedup as a number.
//! 2. **baseline** — the whole pipeline with `AccelConfig::default()`: the
//!    bit-stable default path.
//! 3. **accel** — the same seeded pipeline with `AccelConfig::all_f32()`
//!    (warm-start dual cache, decomposed cost, ε-scaled cold solves, f32
//!    compute + `fast_exp` sweeps), plus the per-phase speedup over the
//!    baseline — the headline `speedup.train_initial` number.
//!
//! The accel run keeps the cache-effectiveness assertion: the per-epoch
//! `warm_start_hit_rate` series must be non-decreasing after each phase's
//! first epoch, so a cache regression fails the bench smoke leg rather than
//! silently shifting the iteration histogram right.

use scis_core::dim::AccelConfig;
use scis_core::pipeline::{Scis, ScisConfig, ScisOutcome};
use scis_data::metrics::rmse_vs_ground_truth;
use scis_data::missing::inject_mcar;
use scis_imputers::{GainImputer, TrainConfig};
use scis_telemetry::{json_f64, Counter, Telemetry};
use scis_tensor::ops;
use scis_tensor::{ExecPolicy, Matrix, Rng64};
use std::hint::black_box;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Minimum seconds per call over `reps` timed runs (after one warm-up run):
/// the noise-robust estimator for a short deterministic kernel.
fn time_min<R>(reps: usize, mut body: impl FnMut() -> R) -> f64 {
    black_box(body());
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        black_box(body());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Low-rank correlated table: realistic structure for the imputer to learn.
fn correlated_table(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut m = Matrix::zeros(n, d);
    for i in 0..n {
        let t = rng.uniform();
        for j in 0..d {
            let w = 0.3 + 0.5 * (j as f64 / d.max(1) as f64);
            m[(i, j)] = (w * t + 0.5 * (1.0 - w) + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
        }
    }
    m
}

struct PipelineRun {
    outcome: ScisOutcome,
    tel: Telemetry,
    rmse: f64,
}

impl PipelineRun {
    fn phase_secs(&self, name: &str) -> f64 {
        self.outcome
            .report
            .phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.secs)
            .unwrap_or(0.0)
    }

    fn section_json(&self, label: &str) -> String {
        let mut json = format!("  \"{label}\": {{\n    \"phases\": {{");
        for (i, p) in self.outcome.report.phases.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!("\n      \"{}\": {:.6}", p.name, p.secs));
        }
        json.push_str("\n    },\n");
        json.push_str(&format!(
            "    \"sinkhorn\": {{\n      \"solves\": {},\n      \"iterations\": {},\n      \
             \"warm_start_hits\": {},\n      \"iters_saved\": {}\n    }},\n",
            self.tel.counter(Counter::SinkhornSolves),
            self.tel.counter(Counter::SinkhornIterations),
            self.tel.counter(Counter::WarmStartHits),
            self.tel.counter(Counter::ItersSaved),
        ));
        json.push_str(&format!(
            "    \"n_star\": {},\n    \"rmse\": {},\n    \"total_s\": {:.3}\n  }}",
            self.outcome.n_star,
            json_f64(self.rmse),
            self.outcome.total_time.as_secs_f64(),
        ));
        json
    }
}

fn main() {
    let rows = env_usize("SCIS_PIPELINE_BENCH_ROWS", 400);
    let d = env_usize("SCIS_PIPELINE_BENCH_FEATURES", 4);
    let epochs = env_usize("SCIS_PIPELINE_BENCH_EPOCHS", 20);
    let n0 = env_usize("SCIS_PIPELINE_BENCH_N0", rows / 5);
    assert!(2 * n0 <= rows, "n0 = {n0} too large for {rows} rows");

    // ---- 1. GEMM microbench: blocked/tiled vs naive reference -----------
    let gdim = env_usize("SCIS_PIPELINE_BENCH_GEMM_DIM", 192);
    let greps = env_usize("SCIS_PIPELINE_BENCH_GEMM_REPS", 15);
    let mut grng = Rng64::seed_from_u64(71);
    let ga = Matrix::from_fn(gdim, gdim, |_, _| grng.normal());
    let gb = Matrix::from_fn(gdim, gdim, |_, _| grng.normal());
    assert_eq!(
        ops::matmul(&ga, &gb),
        ops::matmul_naive(&ga, &gb),
        "blocked GEMM must be bit-identical to the naive reference"
    );
    let naive_s = time_min(greps, || ops::matmul_naive(&ga, &gb));
    let blocked_s = time_min(greps, || ops::matmul(&ga, &gb));
    let gemm_speedup = naive_s / blocked_s.max(1e-12);
    println!(
        "gemm/{gdim}x{gdim}x{gdim}: naive {naive_s:.6}s, blocked {blocked_s:.6}s \
         ({gemm_speedup:.2}x)"
    );

    // ---- 2 + 3. the pipeline, baseline vs accelerated --------------------
    let complete = correlated_table(rows, d, 51);

    let run = |accel: AccelConfig| {
        let mut rng = Rng64::seed_from_u64(52);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let train = TrainConfig {
            epochs,
            batch_size: rows, // full-batch: every epoch re-solves the same rows
            learning_rate: 0.005,
            dropout: 0.0,
        };
        let config = ScisConfig::default()
            .dim(scis_core::dim::DimConfig::default().train(train))
            .epsilon(0.02)
            .exec(ExecPolicy::Serial)
            .accel(accel);
        let mut gain = GainImputer::new(train);
        let tel = Telemetry::collecting();
        let outcome = Scis::new(config)
            .telemetry(tel.clone())
            .try_run(&mut gain, &ds, n0, &mut rng)
            .expect("pipeline run");
        let rmse = rmse_vs_ground_truth(&ds, &complete, &outcome.imputed);
        PipelineRun { outcome, tel, rmse }
    };

    let baseline = run(AccelConfig::default());
    println!(
        "baseline/{rows}x{d}x{epochs}: n* = {}, rmse {:.4}, {} sinkhorn iters, total {:.2}s",
        baseline.outcome.n_star,
        baseline.rmse,
        baseline.tel.counter(Counter::SinkhornIterations),
        baseline.outcome.total_time.as_secs_f64(),
    );

    let accel = run(AccelConfig::all_f32());

    // cache-effectiveness contract: within each training phase (each phase
    // owns a fresh dual cache), the per-epoch hit rate must not decrease
    // once the cache is primed by the phase's first epoch
    let hit_rate = accel.tel.series(scis_telemetry::Series::WarmStartHitRate);
    let phase = accel.tel.series(scis_telemetry::Series::TrainPhase);
    assert_eq!(hit_rate.len(), phase.len());
    let mut seg_start = 0;
    for e in 1..=hit_rate.len() {
        if e == hit_rate.len() || phase[e] != phase[seg_start] {
            for i in (seg_start + 2)..e {
                assert!(
                    hit_rate[i] >= hit_rate[i - 1] - 1e-12,
                    "warm_start_hit_rate decreased after epoch 1 (phase {}, epoch {}): {} -> {}",
                    phase[seg_start],
                    i - seg_start + 1,
                    hit_rate[i - 1],
                    hit_rate[i],
                );
            }
            seg_start = e;
        }
    }

    let train_speedup =
        baseline.phase_secs("train_initial") / accel.phase_secs("train_initial").max(1e-12);
    let total_speedup = baseline.outcome.total_time.as_secs_f64()
        / accel.outcome.total_time.as_secs_f64().max(1e-12);
    println!(
        "accel/{rows}x{d}x{epochs}: n* = {}, rmse {:.4}, {} sinkhorn iters, \
         {} warm hits, total {:.2}s — train_initial {train_speedup:.2}x, total {total_speedup:.2}x",
        accel.outcome.n_star,
        accel.rmse,
        accel.tel.counter(Counter::SinkhornIterations),
        accel.tel.counter(Counter::WarmStartHits),
        accel.outcome.total_time.as_secs_f64(),
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema_version\": 2,\n");
    json.push_str(&format!(
        "  \"config\": {{\n    \"rows\": {rows},\n    \"features\": {d},\n    \
         \"epochs\": {epochs},\n    \"n0\": {n0}\n  }},\n"
    ));
    json.push_str(&format!(
        "  \"gemm\": {{\n    \"dim\": {gdim},\n    \"reps\": {greps},\n    \
         \"naive_s\": {naive_s:.6},\n    \"blocked_s\": {blocked_s:.6},\n    \
         \"speedup\": {gemm_speedup:.3}\n  }},\n"
    ));
    json.push_str(&baseline.section_json("baseline"));
    json.push_str(",\n");
    json.push_str(&accel.section_json("accel"));
    json.push_str(",\n");
    json.push_str("  \"accel_warm_start_hit_rate\": [");
    for (i, v) in hit_rate.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&json_f64(*v));
    }
    json.push_str("],\n");
    json.push_str(&format!(
        "  \"speedup\": {{\n    \"train_initial\": {train_speedup:.3},\n    \
         \"total\": {total_speedup:.3}\n  }}\n}}\n"
    ));
    std::fs::write("BENCH_pipeline.json", &json).expect("writing BENCH_pipeline.json");
    println!("wrote BENCH_pipeline.json");
}
