//! End-to-end pipeline benchmark: runs Algorithm 1 on a seeded synthetic
//! table with the flight recorder attached and writes the repo-root
//! `BENCH_pipeline.json` — the head of the whole-pipeline perf trajectory
//! (phase wall times, Sinkhorn iteration totals, imputation RMSE).
//!
//! ```sh
//! cargo run -p scis-bench --release --bin pipeline_bench
//! SCIS_PIPELINE_BENCH_ROWS=200 SCIS_PIPELINE_BENCH_EPOCHS=8 \
//!     cargo run -p scis-bench --release --bin pipeline_bench
//! ```
//!
//! Runs with the warm-start dual cache on, and asserts the per-epoch
//! `warm_start_hit_rate` series is non-decreasing after each phase's first
//! epoch (the first epoch of a phase always misses — its cache is empty),
//! so a cache regression fails the bench smoke leg rather than silently
//! shifting the iteration histogram right.

use scis_core::pipeline::{Scis, ScisConfig};
use scis_data::metrics::rmse_vs_ground_truth;
use scis_data::missing::inject_mcar;
use scis_imputers::{GainImputer, TrainConfig};
use scis_telemetry::{json_f64, Counter, Telemetry};
use scis_tensor::{ExecPolicy, Matrix, Rng64};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Low-rank correlated table: realistic structure for the imputer to learn.
fn correlated_table(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut m = Matrix::zeros(n, d);
    for i in 0..n {
        let t = rng.uniform();
        for j in 0..d {
            let w = 0.3 + 0.5 * (j as f64 / d.max(1) as f64);
            m[(i, j)] = (w * t + 0.5 * (1.0 - w) + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
        }
    }
    m
}

fn main() {
    let rows = env_usize("SCIS_PIPELINE_BENCH_ROWS", 400);
    let d = env_usize("SCIS_PIPELINE_BENCH_FEATURES", 4);
    let epochs = env_usize("SCIS_PIPELINE_BENCH_EPOCHS", 20);
    let n0 = env_usize("SCIS_PIPELINE_BENCH_N0", rows / 5);
    assert!(2 * n0 <= rows, "n0 = {n0} too large for {rows} rows");

    let complete = correlated_table(rows, d, 51);
    let mut rng = Rng64::seed_from_u64(52);
    let ds = inject_mcar(&complete, 0.25, &mut rng);

    let train = TrainConfig {
        epochs,
        batch_size: rows, // full-batch: every epoch re-solves the same rows
        learning_rate: 0.005,
        dropout: 0.0,
    };
    let config = ScisConfig::default()
        .dim(scis_core::dim::DimConfig::default().train(train))
        .epsilon(0.02)
        .exec(ExecPolicy::Serial)
        .accel(scis_core::dim::AccelConfig::default().warm_start(true));
    let mut gain = GainImputer::new(train);
    let tel = Telemetry::collecting();
    let outcome = Scis::new(config)
        .telemetry(tel.clone())
        .try_run(&mut gain, &ds, n0, &mut rng)
        .expect("pipeline run");
    let rmse = rmse_vs_ground_truth(&ds, &complete, &outcome.imputed);

    // cache-effectiveness contract: within each training phase (each phase
    // owns a fresh dual cache), the per-epoch hit rate must not decrease
    // once the cache is primed by the phase's first epoch
    let hit_rate = tel.series(scis_telemetry::Series::WarmStartHitRate);
    let phase = tel.series(scis_telemetry::Series::TrainPhase);
    assert_eq!(hit_rate.len(), phase.len());
    let mut seg_start = 0;
    for e in 1..=hit_rate.len() {
        if e == hit_rate.len() || phase[e] != phase[seg_start] {
            for i in (seg_start + 2)..e {
                assert!(
                    hit_rate[i] >= hit_rate[i - 1] - 1e-12,
                    "warm_start_hit_rate decreased after epoch 1 (phase {}, epoch {}): {} -> {}",
                    phase[seg_start],
                    i - seg_start + 1,
                    hit_rate[i - 1],
                    hit_rate[i],
                );
            }
            seg_start = e;
        }
    }
    println!(
        "pipeline/{rows}x{d}x{epochs}: n* = {}, rmse {rmse:.4}, {} sinkhorn iters, \
         {} warm hits, total {:.2}s",
        outcome.n_star,
        tel.counter(Counter::SinkhornIterations),
        tel.counter(Counter::WarmStartHits),
        outcome.total_time.as_secs_f64(),
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema_version\": 1,\n");
    json.push_str(&format!(
        "  \"config\": {{\n    \"rows\": {rows},\n    \"features\": {d},\n    \
         \"epochs\": {epochs},\n    \"n0\": {n0}\n  }},\n"
    ));
    json.push_str("  \"phases\": {");
    for (i, p) in outcome.report.phases.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!("\n    \"{}\": {:.6}", p.name, p.secs));
    }
    json.push_str("\n  },\n");
    json.push_str(&format!(
        "  \"sinkhorn\": {{\n    \"solves\": {},\n    \"iterations\": {},\n    \
         \"warm_start_hits\": {},\n    \"iters_saved\": {}\n  }},\n",
        tel.counter(Counter::SinkhornSolves),
        tel.counter(Counter::SinkhornIterations),
        tel.counter(Counter::WarmStartHits),
        tel.counter(Counter::ItersSaved),
    ));
    json.push_str("  \"warm_start_hit_rate\": [");
    for (i, v) in hit_rate.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&json_f64(*v));
    }
    json.push_str("],\n");
    json.push_str(&format!(
        "  \"n_star\": {},\n  \"rmse\": {},\n  \"total_s\": {:.3}\n}}\n",
        outcome.n_star,
        json_f64(rmse),
        outcome.total_time.as_secs_f64(),
    ));
    std::fs::write("BENCH_pipeline.json", &json).expect("writing BENCH_pipeline.json");
    println!("wrote BENCH_pipeline.json");
}
