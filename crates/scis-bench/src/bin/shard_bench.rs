//! Out-of-core shard-scale benchmark: runs the streamed SCIS pipeline
//! (`Scis::try_run_streamed`) over a Weather-shape sharded recipe whose
//! total row count exceeds the shard budget by an order of magnitude, and
//! writes the repo-root `BENCH_shard.json` — peak RSS, spill throughput,
//! per-phase wall times, and an FNV-1a checksum of the imputed output bits
//! (the determinism witness for the streamed path).
//!
//! ```sh
//! cargo run -p scis-bench --release --bin shard_bench
//! SCIS_SHARD_BENCH_SCALE=0.01 SCIS_SHARD_BENCH_SHARD_ROWS=4096 \
//!     cargo run -p scis-bench --release --bin shard_bench
//! ```

use scis_core::pipeline::{Scis, ScisConfig};
use scis_data::shard::{fnv1a, spill_source};
use scis_data::{CovidRecipe, MinMaxScaler, RowSource, ScaledSource, ShardError, ShardSink};
use scis_imputers::{GainImputer, TrainConfig};
use scis_tensor::{ExecPolicy, Matrix, Rng64};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`; 0 when
/// the proc filesystem is unavailable).
fn peak_rss_bytes() -> u64 {
    let Ok(text) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// A sink that never stores the output: it counts rows and folds every
/// imputed cell's bit pattern into one FNV-1a checksum, keeping the
/// benchmark's memory profile honest.
struct HashSink {
    rows: usize,
    h: u64,
}

impl HashSink {
    fn new() -> Self {
        Self {
            rows: 0,
            h: 0xcbf2_9ce4_8422_2325,
        }
    }
}

impl ShardSink for HashSink {
    fn push_rows(&mut self, rows: &Matrix) -> Result<(), ShardError> {
        for &v in rows.as_slice() {
            for b in v.to_bits().to_le_bytes() {
                self.h ^= b as u64;
                self.h = self.h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        self.rows += rows.rows();
        Ok(())
    }
}

fn dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

fn main() {
    let scale = env_f64("SCIS_SHARD_BENCH_SCALE", 0.001);
    let shard_rows = env_usize("SCIS_SHARD_BENCH_SHARD_ROWS", 256);
    let epochs = env_usize("SCIS_SHARD_BENCH_EPOCHS", 5);
    let seed = env_usize("SCIS_SHARD_BENCH_SEED", 42) as u64;

    let (src, n0) = CovidRecipe::Weather
        .sharded(scale, seed, shard_rows)
        .expect("weather recipe");
    let rows = src.n_rows();
    let cols = src.n_cols();
    let n_shards = src.n_shards();
    let budget_ratio = rows as f64 / shard_rows as f64;
    assert!(
        budget_ratio >= 10.0,
        "shard bench must stream >= 10x its shard budget (got {rows} rows / {shard_rows} \
         shard_rows = {budget_ratio:.1}x); lower SCIS_SHARD_BENCH_SHARD_ROWS or raise the scale"
    );
    println!(
        "weather@{scale}: {rows} rows x {cols} cols, {n_shards} shards of <= {shard_rows} rows \
         ({budget_ratio:.1}x the shard budget), n0 = {n0}, epochs = {epochs}"
    );

    // ---- 1. spill throughput: recipe -> checksummed shard files ----------
    let spill_dir =
        std::env::temp_dir().join(format!("scis_shard_bench_{}_{}", std::process::id(), seed));
    std::fs::remove_dir_all(&spill_dir).ok();
    let t = Instant::now();
    let spilled = spill_source(&src, &spill_dir).expect("spill");
    let spill_write_s = t.elapsed().as_secs_f64();
    let spill_bytes = dir_bytes(&spill_dir);
    let t = Instant::now();
    let spill_missing = spilled.missing_rate().expect("scan");
    let spill_scan_s = t.elapsed().as_secs_f64();
    println!(
        "spill: wrote {spill_bytes} bytes in {spill_write_s:.3}s, full scan {spill_scan_s:.3}s, \
         missing rate {:.4}",
        spill_missing
    );

    // ---- 2. the streamed pipeline over the spilled shards ----------------
    let train = TrainConfig {
        epochs,
        batch_size: 128,
        learning_rate: 0.005,
        dropout: 0.0,
    };
    let config = ScisConfig::default()
        .dim(scis_core::dim::DimConfig::default().train(train))
        .epsilon(0.02)
        .exec(ExecPolicy::Serial);
    let scaler = MinMaxScaler::fit_source(&spilled).expect("fit_source");
    let scaled = ScaledSource::new(&spilled, &scaler);
    let mut gain = GainImputer::new(train);
    let mut rng = Rng64::seed_from_u64(seed);
    let mut sink = HashSink::new();
    let outcome = Scis::new(config)
        .try_run_streamed(&mut gain, &scaled, n0, &mut rng, &mut sink)
        .expect("streamed pipeline");
    assert_eq!(sink.rows, rows, "sink must see every row exactly once");
    let checksum = sink.h;
    println!(
        "pipeline: n* = {} of {} rows, train {:.2}s, sse {:.2}s, retrain {:.2}s, \
         total {:.2}s, output fnv1a {:#018x}",
        outcome.n_star,
        outcome.n_total,
        outcome.initial_train_time.as_secs_f64(),
        outcome.sse_time.as_secs_f64(),
        outcome.retrain_time.as_secs_f64(),
        outcome.total_time.as_secs_f64(),
        checksum,
    );

    let peak_rss = peak_rss_bytes();
    let full_matrix_bytes = (rows * cols * 8) as u64;
    println!(
        "peak RSS {peak_rss} bytes (full matrix would be {full_matrix_bytes} bytes before \
         any pipeline copies)"
    );

    // manifest checksum keeps the spill dir honest in the artifact
    let manifest = std::fs::read(spill_dir.join("manifest.txt")).expect("manifest");
    let manifest_fnv = fnv1a(&manifest);
    std::fs::remove_dir_all(&spill_dir).ok();

    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"config\": {{\n    \"recipe\": \"weather\",\n    \
         \"scale\": {scale},\n    \"rows\": {rows},\n    \"cols\": {cols},\n    \
         \"shard_rows\": {shard_rows},\n    \"n_shards\": {n_shards},\n    \
         \"rows_over_shard_budget\": {budget_ratio:.2},\n    \"epochs\": {epochs},\n    \
         \"n0\": {n0},\n    \"seed\": {seed}\n  }},\n  \"spill\": {{\n    \
         \"write_s\": {spill_write_s:.6},\n    \"scan_s\": {spill_scan_s:.6},\n    \
         \"bytes\": {spill_bytes},\n    \"missing_rate\": {spill_missing:.6},\n    \
         \"manifest_fnv1a\": \"{manifest_fnv:#018x}\"\n  }},\n  \"pipeline\": {{\n    \
         \"n_star\": {},\n    \"rows_written\": {},\n    \"train_initial_s\": {:.6},\n    \
         \"sse_s\": {:.6},\n    \"retrain_s\": {:.6},\n    \"total_s\": {:.6},\n    \
         \"output_fnv1a\": \"{checksum:#018x}\"\n  }},\n  \"peak_rss_bytes\": {peak_rss},\n  \
         \"full_matrix_bytes\": {full_matrix_bytes}\n}}\n",
        outcome.n_star,
        outcome.rows_written,
        outcome.initial_train_time.as_secs_f64(),
        outcome.sse_time.as_secs_f64(),
        outcome.retrain_time.as_secs_f64(),
        outcome.total_time.as_secs_f64(),
    );
    std::fs::write("BENCH_shard.json", &json).expect("writing BENCH_shard.json");
    println!("wrote BENCH_shard.json");
}
