//! Table VI — the ablation of Table V repeated on the large recipes
//! (Search, Weather, Surveil). DIM-GAIN (MS loss over the *full* data) is
//! the row expected to hit the budget here, as it did the paper's
//! 10⁵-second cap.
//!
//! ```sh
//! cargo run -p scis-bench --release --bin table6
//! ```

use scis_bench::harness::{evaluate_method, finish_process, load_recipe, BenchConfig};
use scis_bench::methods::MethodId;
use scis_bench::report::{print_table, results_dir, write_csv};
use scis_data::CovidRecipe;

fn main() {
    let cfg = BenchConfig::from_env(0.005, 2, 600);
    println!(
        "Table VI reproduction (ablation, large) — scale {}, {} seeds, {}s budget, {} epochs",
        cfg.scale,
        cfg.seeds,
        cfg.budget.as_secs(),
        cfg.epochs
    );
    let csv = results_dir().join("table6.csv");

    for recipe in [
        CovidRecipe::Search,
        CovidRecipe::Weather,
        CovidRecipe::Surveil,
    ] {
        let (dataset, n0) = load_recipe(recipe, &cfg, 4000 + recipe.features() as u64);
        println!(
            "\n[{}] {} rows, n0 = {}",
            recipe.name(),
            dataset.n_samples(),
            n0
        );
        let mut rows = Vec::new();
        for id in MethodId::ABLATION {
            let out = evaluate_method(id, &dataset, n0, &cfg, 45);
            println!(
                "  {} done ({})",
                id.name(),
                if out.finished { "ok" } else { "—" }
            );
            rows.push(out);
        }
        print_table(recipe.name(), &rows);
        if let Err(e) = write_csv(&csv, recipe.name(), &rows) {
            eprintln!("csv write failed: {}", e);
        }
    }
    println!("\nresults appended to {}", csv.display());
    finish_process();
}
