//! Extension experiment (the paper's §VII future work): how do GAIN and
//! SCIS-GAIN behave when the missingness is *not* MCAR?
//!
//! The paper's theory (Example 1, Theorem 1) assumes MCAR; its conclusion
//! names complex mechanisms as future work. This bench injects the same
//! overall missing rate under MCAR, MAR (driver-feature dependent) and
//! MNAR (self-value dependent) and reports the RMSE of mean / GAIN /
//! SCIS-GAIN against the known ground truth.
//!
//! ```sh
//! cargo run -p scis-bench --release --bin ext_mechanisms
//! ```

use scis_bench::harness::{finish_process, run_with_budget, BenchConfig};
use scis_core::dim::DimConfig;
use scis_core::pipeline::{Scis, ScisConfig};
use scis_data::metrics::rmse_vs_ground_truth;
use scis_data::missing::{inject, Mechanism};
use scis_data::normalize::MinMaxScaler;
use scis_data::synth::{generate, SynthConfig};
use scis_imputers::mean::MeanImputer;
use scis_imputers::{GainImputer, Imputer};
use scis_tensor::Rng64;

fn main() {
    let cfg = BenchConfig::from_env(1.0, 1, 900);
    let mut rng = Rng64::seed_from_u64(321);
    let synth = generate(
        &SynthConfig {
            n_samples: 4_000,
            n_features: 10,
            latent_dim: 3,
            ..Default::default()
        },
        &mut rng,
    );
    println!(
        "mechanism extension — 4,000 x 10 synthetic table, rate 0.3, {} epochs\n",
        cfg.epochs
    );
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>9}",
        "Mech", "Mean", "GAIN", "SCIS-GAIN", "R_t (%)"
    );
    println!("{}", "-".repeat(54));

    for (label, mech) in [
        ("MCAR", Mechanism::Mcar { rate: 0.3 }),
        ("MAR", Mechanism::Mar { rate: 0.3 }),
        ("MNAR", Mechanism::Mnar { rate: 0.3 }),
    ] {
        let mut inj_rng = Rng64::seed_from_u64(7);
        let ds = inject(&synth.complete, synth.kinds.clone(), mech, &mut inj_rng);
        let (norm, scaler) = MinMaxScaler::fit_transform_dataset(&ds);
        let gt_norm = scaler.transform(&synth.complete);
        let train = cfg.train_config();

        let mut r0 = Rng64::seed_from_u64(11);
        let e_mean = rmse_vs_ground_truth(&norm, &gt_norm, &MeanImputer.impute(&norm, &mut r0));

        let ds1 = norm.clone();
        let mut r1 = Rng64::seed_from_u64(11);
        let e_gain = run_with_budget(cfg.budget, move || {
            GainImputer::new(train).impute(&ds1, &mut r1)
        })
        .map(|m| rmse_vs_ground_truth(&norm, &gt_norm, &m));

        let ds2 = norm.clone();
        let mut r2 = Rng64::seed_from_u64(11);
        let scis = run_with_budget(cfg.budget, move || {
            let config = ScisConfig {
                dim: DimConfig {
                    train,
                    ..Default::default()
                },
                ..Default::default()
            };
            let mut gain = GainImputer::new(train);
            let outcome = Scis::new(config)
                .try_run(&mut gain, &ds2, 300, &mut r2)
                .expect("pipeline run");
            let rt = outcome.training_sample_rate();
            (outcome.imputed, rt)
        })
        .map(|(m, rt)| (rmse_vs_ground_truth(&norm, &gt_norm, &m), rt));

        match (e_gain, scis) {
            (Some(g), Some((s, rt))) => println!(
                "{:<8} {:>10.4} {:>10.4} {:>12.4} {:>8.2}%",
                label,
                e_mean,
                g,
                s,
                rt * 100.0
            ),
            _ => println!("{:<8} — (budget exceeded)", label),
        }
    }
    println!(
        "\nExpectation: all methods degrade from MCAR → MNAR (information is\n\
         destroyed selectively); SCIS-GAIN should track GAIN under every\n\
         mechanism since DIM/SSE wrap, not replace, the generator."
    );
    finish_process();
}
