//! Table VII — post-imputation prediction: impute with GAIN vs SCIS-GAIN,
//! then train a 3-layer fully connected predictor on the imputed features
//! (30 epochs, lr 0.005, dropout 0.5, batch 128 — §VI.D). Classification
//! (AUC) on Trial and Surveil; regression (MAE) on Emergency, Response,
//! Search, Weather.
//!
//! The downstream target is the dataset's *last* column (from the ground
//! truth, never shown to the imputers); classification binarizes it at the
//! median.
//!
//! ```sh
//! cargo run -p scis-bench --release --bin table7
//! ```

use scis_bench::harness::{finish_process, run_with_budget, BenchConfig};
use scis_bench::predictor::{classification_auc, regression_mae, PredictorConfig};
use scis_core::dim::DimConfig;
use scis_core::pipeline::{Scis, ScisConfig};
use scis_data::normalize::MinMaxScaler;
use scis_data::{CovidRecipe, Dataset};
use scis_imputers::{GainImputer, Imputer};
use scis_tensor::stats::nan_median;
use scis_tensor::{Matrix, Rng64};

struct Task {
    recipe: CovidRecipe,
    classification: bool,
    scale_override: Option<f64>,
}

fn main() {
    let cfg = BenchConfig::from_env(0.1, 1, 900);
    println!(
        "Table VII reproduction — scale {}, {}s budget, {} epochs",
        cfg.scale,
        cfg.budget.as_secs(),
        cfg.epochs
    );
    let tasks = [
        Task {
            recipe: CovidRecipe::Trial,
            classification: true,
            scale_override: None,
        },
        Task {
            recipe: CovidRecipe::Surveil,
            classification: true,
            scale_override: Some(0.002),
        },
        Task {
            recipe: CovidRecipe::Emergency,
            classification: false,
            scale_override: None,
        },
        Task {
            recipe: CovidRecipe::Response,
            classification: false,
            scale_override: Some(0.02),
        },
        Task {
            recipe: CovidRecipe::Search,
            classification: false,
            scale_override: Some(0.005),
        },
        Task {
            recipe: CovidRecipe::Weather,
            classification: false,
            scale_override: Some(0.002),
        },
    ];

    println!(
        "\n{:<8} {:<10} {:>12} {:>12}",
        "Metric", "Dataset", "GAIN", "SCIS-GAIN"
    );
    println!("{}", "-".repeat(46));
    for task in &tasks {
        let scale = task.scale_override.unwrap_or(cfg.scale);
        let scale = scale
            .min(cfg.max_rows as f64 / task.recipe.full_samples() as f64)
            .min(1.0);
        let inst = task.recipe.generate(scale, 111);
        let d = inst.dataset.n_features();
        let target_col = d - 1;
        // features: all but the target column; target from ground truth
        let feature_cols: Vec<usize> = (0..target_col).collect();
        let fds = Dataset {
            values: inst.dataset.values.select_cols(&feature_cols),
            mask: {
                let mut m = scis_data::MaskMatrix::all_missing(
                    inst.dataset.n_samples(),
                    feature_cols.len(),
                );
                for i in 0..inst.dataset.n_samples() {
                    for (k, &j) in feature_cols.iter().enumerate() {
                        if inst.dataset.mask.get(i, j) {
                            m.set(i, k, true);
                        }
                    }
                }
                m
            },
            kinds: feature_cols
                .iter()
                .map(|&j| inst.dataset.kinds[j].clone())
                .collect(),
        };
        let (norm, _) = MinMaxScaler::fit_transform_dataset(&fds);
        let target: Vec<f64> = inst.ground_truth.col(target_col);
        let median = nan_median(&target).unwrap_or(0.0);
        let labels: Vec<u8> = target.iter().map(|&v| (v > median) as u8).collect();
        let train = cfg.train_config();
        let n0 = inst.n0.min(norm.n_samples() / 3).max(16);

        // impute with both methods
        let mut rng = Rng64::seed_from_u64(900);
        let ds1 = norm.clone();
        let mut r1 = rng.fork();
        let gain_imp = run_with_budget(cfg.budget, move || {
            GainImputer::new(train).impute(&ds1, &mut r1)
        });
        let ds2 = norm.clone();
        let mut r2 = rng.fork();
        let scis_imp = run_with_budget(cfg.budget, move || {
            let config = ScisConfig {
                dim: DimConfig {
                    train,
                    ..Default::default()
                },
                ..Default::default()
            };
            let mut gain = GainImputer::new(train);
            Scis::new(config)
                .try_run(&mut gain, &ds2, n0, &mut r2)
                .expect("pipeline run")
                .imputed
        });

        let (Some(gain_x), Some(scis_x)) = (gain_imp, scis_imp) else {
            println!(
                "{:<8} {:<10} {:>12} {:>12}",
                if task.classification { "AUC" } else { "MAE" },
                task.recipe.name(),
                "—",
                "—"
            );
            continue;
        };

        let pcfg = PredictorConfig::default();
        let score = |x: &Matrix, rng: &mut Rng64| -> f64 {
            if task.classification {
                classification_auc(x, &labels, 0.7, &pcfg, rng)
            } else {
                regression_mae(x, &target, 0.7, &pcfg, rng)
            }
        };
        let mut pr = rng.fork();
        let g = score(&gain_x, &mut pr);
        let mut pr = rng.fork();
        let s = score(&scis_x, &mut pr);
        println!(
            "{:<8} {:<10} {:>12.4} {:>12.4}",
            if task.classification { "AUC" } else { "MAE" },
            task.recipe.name(),
            g,
            s
        );
    }
    println!("\n(AUC: higher is better; MAE: lower is better)");
    finish_process();
}
