//! Table V — ablation study of SCIS over Trial, Emergency, Response:
//! GAIN vs DIM-GAIN (MS loss, no SSE) vs Fixed-DIM-GAIN (fixed 10% sample)
//! vs SCIS-GAIN (full system).
//!
//! ```sh
//! cargo run -p scis-bench --release --bin table5
//! ```

use scis_bench::harness::{evaluate_method, finish_process, load_recipe, BenchConfig};
use scis_bench::methods::MethodId;
use scis_bench::report::{print_table, results_dir, write_csv};
use scis_data::CovidRecipe;

fn main() {
    let cfg = BenchConfig::from_env(0.1, 3, 600);
    println!(
        "Table V reproduction (ablation) — scale {}, {} seeds, {}s budget, {} epochs",
        cfg.scale,
        cfg.seeds,
        cfg.budget.as_secs(),
        cfg.epochs
    );
    let csv = results_dir().join("table5.csv");

    for recipe in [
        CovidRecipe::Trial,
        CovidRecipe::Emergency,
        CovidRecipe::Response,
    ] {
        let (dataset, n0) = load_recipe(recipe, &cfg, 3000 + recipe.features() as u64);
        println!(
            "\n[{}] {} rows, n0 = {}",
            recipe.name(),
            dataset.n_samples(),
            n0
        );
        let mut rows = Vec::new();
        for id in MethodId::ABLATION {
            let out = evaluate_method(id, &dataset, n0, &cfg, 44);
            println!(
                "  {} done ({})",
                id.name(),
                if out.finished { "ok" } else { "—" }
            );
            rows.push(out);
        }
        print_table(recipe.name(), &rows);
        if let Err(e) = write_csv(&csv, recipe.name(), &rows) {
            eprintln!("csv write failed: {}", e);
        }
    }
    println!("\nresults appended to {}", csv.display());
    finish_process();
}
