//! Table III — performance comparison of all imputation methods over the
//! Trial, Emergency, and Response recipes (RMSE ± bias, training time,
//! training sample rate R_t).
//!
//! ```sh
//! cargo run -p scis-bench --release --bin table3
//! SCALE=0.25 SEEDS=5 BUDGET=600 cargo run -p scis-bench --release --bin table3
//! ```

use scis_bench::harness::{evaluate_method, finish_process, load_recipe, BenchConfig};
use scis_bench::methods::MethodId;
use scis_bench::report::{print_table, results_dir, write_csv};
use scis_data::CovidRecipe;

fn main() {
    let cfg = BenchConfig::from_env(0.1, 3, 300);
    println!(
        "Table III reproduction — scale {}, {} seeds, {}s budget, {} epochs",
        cfg.scale,
        cfg.seeds,
        cfg.budget.as_secs(),
        cfg.epochs
    );
    let csv = results_dir().join("table3.csv");

    for recipe in [
        CovidRecipe::Trial,
        CovidRecipe::Emergency,
        CovidRecipe::Response,
    ] {
        let (dataset, n0) = load_recipe(recipe, &cfg, 1000 + recipe.features() as u64);
        println!(
            "\n[{}] {} x {} @ {:.2}% missing, n0 = {}",
            recipe.name(),
            dataset.n_samples(),
            dataset.n_features(),
            dataset.missing_rate() * 100.0,
            n0
        );
        let mut rows = Vec::new();
        for id in MethodId::TABLE3 {
            let out = evaluate_method(id, &dataset, n0, &cfg, 42);
            println!(
                "  {} done ({})",
                id.name(),
                if out.finished { "ok" } else { "—" }
            );
            rows.push(out);
        }
        print_table(recipe.name(), &rows);
        if let Err(e) = write_csv(&csv, recipe.name(), &rows) {
            eprintln!("csv write failed: {}", e);
        }
    }
    println!("\nresults appended to {}", csv.display());
    finish_process();
}
