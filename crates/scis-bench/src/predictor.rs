//! Post-imputation prediction (Table VII): a 3-layer fully connected
//! network trained on the imputed data — classification (AUC) or
//! regression (MAE). Paper settings: 30 epochs, lr 0.005, dropout 0.5,
//! batch size 128.

use scis_data::metrics::try_auc;
use scis_nn::loss::{bce_prob, mse};
use scis_nn::{Activation, Adam, Mlp, Mode, Optimizer};
use scis_tensor::{Matrix, Rng64};

/// Table VII training settings.
#[derive(Debug, Clone, Copy)]
pub struct PredictorConfig {
    /// Training epochs (paper: 30).
    pub epochs: usize,
    /// Learning rate (paper: 0.005).
    pub learning_rate: f64,
    /// Dropout (paper: 0.5).
    pub dropout: f64,
    /// Batch size (paper: 128).
    pub batch_size: usize,
    /// Hidden width of the two hidden layers.
    pub hidden: usize,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            learning_rate: 0.005,
            dropout: 0.5,
            batch_size: 128,
            hidden: 32,
        }
    }
}

fn build(d: usize, cfg: &PredictorConfig, classifier: bool, rng: &mut Rng64) -> Mlp {
    let head = if classifier {
        Activation::Sigmoid
    } else {
        Activation::Identity
    };
    Mlp::builder(d)
        .dense(cfg.hidden, Activation::Relu)
        .dropout(cfg.dropout)
        .dense(cfg.hidden, Activation::Relu)
        .dense(1, head)
        .build(rng)
}

fn train_eval(
    x_train: &Matrix,
    y_train: &Matrix,
    x_test: &Matrix,
    cfg: &PredictorConfig,
    classifier: bool,
    rng: &mut Rng64,
) -> Vec<f64> {
    let mut net = build(x_train.cols(), cfg, classifier, rng);
    let mut opt = Adam::new(cfg.learning_rate);
    let n = x_train.rows();
    let bs = cfg.batch_size.min(n);
    for _ in 0..cfg.epochs {
        let order = rng.permutation(n);
        for chunk in order.chunks(bs) {
            let xb = x_train.select_rows(chunk);
            let yb = y_train.select_rows(chunk);
            let pred = net.forward(&xb, Mode::Train, rng);
            let (_, grad) = if classifier {
                bce_prob(&pred, &yb)
            } else {
                mse(&pred, &yb)
            };
            net.zero_grad();
            net.backward(&grad);
            opt.step(&mut net);
        }
    }
    net.forward(x_test, Mode::Eval, rng).into_vec()
}

/// Trains a classifier on `(x_train, labels)` and returns the AUC on the
/// test split.
pub fn classification_auc(
    x: &Matrix,
    labels: &[u8],
    train_frac: f64,
    cfg: &PredictorConfig,
    rng: &mut Rng64,
) -> f64 {
    assert_eq!(
        x.rows(),
        labels.len(),
        "classification_auc: length mismatch"
    );
    let n = x.rows();
    let perm = rng.permutation(n);
    let n_train = ((n as f64) * train_frac) as usize;
    let (tr, te) = perm.split_at(n_train);
    let x_train = x.select_rows(tr);
    let y_train = Matrix::from_vec(tr.len(), 1, tr.iter().map(|&i| labels[i] as f64).collect());
    let x_test = x.select_rows(te);
    let scores = train_eval(&x_train, &y_train, &x_test, cfg, true, rng);
    let y_test: Vec<u8> = te.iter().map(|&i| labels[i]).collect();
    // a destabilized predictor can emit NaN scores; report the cell as NaN
    // ("—" downstream) instead of panicking mid-table
    try_auc(&scores, &y_test).unwrap_or_else(|e| {
        eprintln!("classification_auc: {e}; reporting NaN");
        f64::NAN
    })
}

/// Trains a regressor on `(x_train, target)` and returns the MAE on the
/// test split.
pub fn regression_mae(
    x: &Matrix,
    target: &[f64],
    train_frac: f64,
    cfg: &PredictorConfig,
    rng: &mut Rng64,
) -> f64 {
    assert_eq!(x.rows(), target.len(), "regression_mae: length mismatch");
    let n = x.rows();
    let perm = rng.permutation(n);
    let n_train = ((n as f64) * train_frac) as usize;
    let (tr, te) = perm.split_at(n_train);
    let x_train = x.select_rows(tr);
    let y_train = Matrix::from_vec(tr.len(), 1, tr.iter().map(|&i| target[i]).collect());
    let x_test = x.select_rows(te);
    let preds = train_eval(&x_train, &y_train, &x_test, cfg, false, rng);
    let mut acc = 0.0;
    for (p, &i) in preds.iter().zip(te) {
        acc += (p - target[i]).abs();
    }
    acc / te.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PredictorConfig {
        PredictorConfig {
            epochs: 40,
            hidden: 16,
            dropout: 0.1,
            ..Default::default()
        }
    }

    #[test]
    fn classifier_separates_separable_classes() {
        let mut rng = Rng64::seed_from_u64(1);
        let n = 400;
        let x = Matrix::from_fn(n, 3, |_, _| rng.uniform());
        let labels: Vec<u8> = (0..n).map(|i| (x[(i, 0)] > 0.5) as u8).collect();
        let a = classification_auc(&x, &labels, 0.7, &cfg(), &mut rng);
        assert!(a > 0.95, "auc {}", a);
    }

    #[test]
    fn regressor_fits_linear_target() {
        let mut rng = Rng64::seed_from_u64(2);
        let n = 400;
        let x = Matrix::from_fn(n, 3, |_, _| rng.uniform());
        let y: Vec<f64> = (0..n).map(|i| 2.0 * x[(i, 0)] - x[(i, 1)]).collect();
        let mae = regression_mae(&x, &y, 0.7, &cfg(), &mut rng);
        assert!(mae < 0.2, "mae {}", mae);
    }

    #[test]
    fn better_features_give_better_auc() {
        let mut rng = Rng64::seed_from_u64(3);
        let n = 400;
        let x_good = Matrix::from_fn(n, 2, |_, _| rng.uniform());
        let labels: Vec<u8> = (0..n).map(|i| (x_good[(i, 0)] > 0.5) as u8).collect();
        // destroy the informative feature
        let x_bad = Matrix::from_fn(n, 2, |i, j| if j == 0 { 0.5 } else { x_good[(i, j)] });
        let a_good = classification_auc(&x_good, &labels, 0.7, &cfg(), &mut rng);
        let a_bad = classification_auc(&x_bad, &labels, 0.7, &cfg(), &mut rng);
        assert!(a_good > a_bad, "good {} vs bad {}", a_good, a_bad);
    }
}
