#![warn(missing_docs)]

//! `scis-bench` — the experiment harness that regenerates every table and
//! figure of the paper's evaluation (§VI).
//!
//! One binary per artifact (run with `--release`):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table3` | Table III — method comparison on Trial/Emergency/Response |
//! | `table4` | Table IV — method comparison on Search/Weather/Surveil |
//! | `fig2` | Figure 2 — missing-rate sweep (GAIN vs SCIS-GAIN) |
//! | `fig3` | Figure 3 — error-bound ε sweep |
//! | `fig4` | Figure 4 — initial-sample-size n0 sweep |
//! | `table5` | Table V — ablation on the small datasets |
//! | `table6` | Table VI — ablation on the large datasets |
//! | `table7` | Table VII — post-imputation prediction |
//! | `fig_divergence` | §IV.A Example 1 — JS vs MS divergence toy |
//!
//! Common environment knobs (all optional): `SCALE` (dataset scale factor),
//! `SEEDS` (random repetitions, paper uses 5), `BUDGET` (per-run wall-clock
//! budget in seconds — runs exceeding it print "—", the paper's notation
//! for methods that missed its 10⁵-second cap), `EPOCHS` (training epochs).

pub mod harness;
pub mod methods;
pub mod predictor;
pub mod report;

pub use harness::{BenchConfig, RunOutcome};
pub use methods::MethodId;
