//! Budgeted, multi-seed experiment runner implementing the paper's §VI
//! protocol: hide 20% of observed cells, impute, score RMSE on the hidden
//! cells; repeat over random divisions and report mean ± std.

use crate::methods::MethodId;
use scis_data::metrics::make_holdout;
use scis_data::normalize::MinMaxScaler;
use scis_data::{CovidRecipe, Dataset};
use scis_imputers::TrainConfig;
use scis_telemetry::Telemetry;
use scis_tensor::stats::mean_and_std;
use scis_tensor::Rng64;
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Bench-wide configuration, read from environment variables so every
/// binary shares the same knobs.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Dataset scale factor relative to Table II's full sizes.
    pub scale: f64,
    /// Cap on generated rows regardless of `scale` (`MAXROWS`); lets the
    /// small recipes run at full size while the million-row ones stay
    /// laptop-sized.
    pub max_rows: usize,
    /// Number of random divisions (paper: 5).
    pub seeds: u64,
    /// Per-run wall-clock budget; exceeding it prints "—".
    pub budget: Duration,
    /// Training epochs for deep methods.
    pub epochs: usize,
    /// Fraction of observed cells hidden for evaluation (paper: 0.2).
    pub holdout_frac: f64,
}

impl BenchConfig {
    /// Reads `SCALE`, `SEEDS`, `BUDGET`, `EPOCHS` from the environment,
    /// falling back to the given defaults.
    pub fn from_env(default_scale: f64, default_seeds: u64, default_budget_s: u64) -> Self {
        let get = |k: &str| std::env::var(k).ok();
        Self {
            scale: get("SCALE")
                .and_then(|v| v.parse().ok())
                .unwrap_or(default_scale),
            max_rows: get("MAXROWS")
                .and_then(|v| v.parse().ok())
                .unwrap_or(usize::MAX),
            seeds: get("SEEDS")
                .and_then(|v| v.parse().ok())
                .unwrap_or(default_seeds),
            budget: Duration::from_secs(
                get("BUDGET")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(default_budget_s),
            ),
            epochs: get("EPOCHS").and_then(|v| v.parse().ok()).unwrap_or(30),
            holdout_frac: 0.2,
        }
    }

    /// Training schedule derived from this config (paper defaults
    /// otherwise: batch 128, lr 0.001, dropout 0.5).
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            ..TrainConfig::default()
        }
    }
}

/// Aggregated outcome of one `(method, dataset)` cell.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Method label.
    pub method: &'static str,
    /// Mean held-out RMSE over seeds.
    pub rmse_mean: f64,
    /// Std of the RMSE over seeds (the "± bias" column).
    pub rmse_std: f64,
    /// Mean wall-clock seconds per run.
    pub time_s: f64,
    /// Mean training sample rate `R_t` (%).
    pub rt_percent: f64,
    /// Whether all runs finished within the budget.
    pub finished: bool,
}

impl RunOutcome {
    /// The "did not finish" row.
    pub fn dnf(method: &'static str) -> Self {
        Self {
            method,
            rmse_mean: f64::NAN,
            rmse_std: f64::NAN,
            time_s: f64::NAN,
            rt_percent: f64::NAN,
            finished: false,
        }
    }
}

/// Runs `f` on a worker thread; returns `None` if it exceeds `budget`
/// (the worker is abandoned, mirroring the paper's wall-clock cut-off —
/// call [`finish_process`] at the end of `main` so abandoned workers don't
/// keep the process alive).
pub fn run_with_budget<T: Send + 'static>(
    budget: Duration,
    f: impl FnOnce() -> T + Send + 'static,
) -> Option<T> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(budget).ok()
}

/// Exits the process immediately (detached over-budget workers would
/// otherwise keep it alive).
pub fn finish_process() -> ! {
    std::process::exit(0)
}

/// Evaluates one method on one recipe instance under the paper's protocol.
///
/// Per seed: a fresh 20% holdout of observed cells, a fresh method
/// instance, a full run (within the budget), and the held-out RMSE.
pub fn evaluate_method(
    id: MethodId,
    dataset: &Dataset,
    n0: usize,
    cfg: &BenchConfig,
    seed_base: u64,
) -> RunOutcome {
    let (norm, _) = MinMaxScaler::fit_transform_dataset(dataset);
    let trace_path = trace_jsonl_path();
    let mut rmses = Vec::new();
    let mut times = Vec::new();
    let mut rts = Vec::new();
    for seed in 0..cfg.seeds {
        let mut rng = Rng64::seed_from_u64(seed_base.wrapping_add(seed));
        let (train_ds, holdout) = make_holdout(&norm, cfg.holdout_frac, &mut rng);
        let train = cfg.train_config();
        let worker_ds = train_ds.clone();
        let mut worker_rng = rng.fork();
        let tel = if trace_path.is_some() {
            Telemetry::collecting()
        } else {
            Telemetry::off()
        };
        let worker_tel = tel.clone();
        let started = Instant::now();
        let result = run_with_budget(cfg.budget, move || {
            id.run_traced(&worker_ds, n0, train, &worker_tel, &mut worker_rng)
        });
        match result {
            Some((imputed, rt, run_report)) => {
                let rmse = holdout.rmse(&imputed);
                let elapsed = started.elapsed().as_secs_f64();
                rmses.push(rmse);
                times.push(elapsed);
                rts.push(rt * 100.0);
                if let Some(path) = &trace_path {
                    if let Err(e) = crate::report::append_run_trace(
                        path,
                        id.name(),
                        seed,
                        rmse,
                        elapsed,
                        rt * 100.0,
                        run_report.as_ref(),
                    ) {
                        eprintln!("scis-bench: failed to append run trace: {e}");
                    }
                }
            }
            None => return RunOutcome::dnf(id.name()),
        }
    }
    let (rmse_mean, rmse_std) = mean_and_std(&rmses);
    let (time_s, _) = mean_and_std(&times);
    let (rt_percent, _) = mean_and_std(&rts);
    RunOutcome {
        method: id.name(),
        rmse_mean,
        rmse_std,
        time_s,
        rt_percent,
        finished: true,
    }
}

/// The per-run trace sink, from the `SCIS_TRACE_JSONL` environment
/// variable: when set (and non-empty), [`evaluate_method`] records every
/// run with a collecting [`Telemetry`] and appends one JSON line per run
/// ([`crate::report::append_run_trace`]) to the given path. Relative paths
/// land under the working directory — e.g.
/// `SCIS_TRACE_JSONL=bench_results/run_traces.jsonl`.
pub fn trace_jsonl_path() -> Option<PathBuf> {
    match std::env::var("SCIS_TRACE_JSONL") {
        Ok(s) if !s.is_empty() => Some(PathBuf::from(s)),
        _ => None,
    }
}

/// Parses the `RECIPES` env var (comma-separated names) into recipes,
/// falling back to the given default list.
pub fn recipes_from_env(default: &[CovidRecipe]) -> Vec<CovidRecipe> {
    match std::env::var("RECIPES") {
        Ok(s) => s
            .split(',')
            .filter_map(|name| {
                CovidRecipe::ALL
                    .iter()
                    .find(|r| r.name().eq_ignore_ascii_case(name.trim()))
                    .copied()
            })
            .collect(),
        Err(_) => default.to_vec(),
    }
}

/// Generates a recipe instance and returns it with its scaled `n0`.
/// The effective scale is `min(SCALE, MAXROWS / full_samples)`.
pub fn load_recipe(recipe: CovidRecipe, cfg: &BenchConfig, seed: u64) -> (Dataset, usize) {
    let cap_scale = cfg.max_rows as f64 / recipe.full_samples() as f64;
    let scale = cfg.scale.min(cap_scale).min(1.0);
    let inst = recipe.generate(scale, seed);
    (inst.dataset, inst.n0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scis_data::missing::inject_mcar;
    use scis_tensor::Matrix;

    #[test]
    fn budget_allows_fast_work() {
        let r = run_with_budget(Duration::from_secs(5), || 40 + 2);
        assert_eq!(r, Some(42));
    }

    #[test]
    fn budget_cuts_slow_work() {
        let r = run_with_budget(Duration::from_millis(50), || {
            std::thread::sleep(Duration::from_secs(5));
            1
        });
        assert_eq!(r, None);
    }

    #[test]
    fn evaluate_mean_imputer_end_to_end() {
        let mut rng = Rng64::seed_from_u64(1);
        let complete = Matrix::from_fn(200, 4, |_, _| rng.uniform());
        let ds = inject_mcar(&complete, 0.2, &mut rng);
        let cfg = BenchConfig {
            scale: 1.0,
            max_rows: usize::MAX,
            seeds: 3,
            budget: Duration::from_secs(30),
            epochs: 2,
            holdout_frac: 0.2,
        };
        let out = evaluate_method(MethodId::Mean, &ds, 30, &cfg, 7);
        assert!(out.finished);
        assert!(out.rmse_mean.is_finite() && out.rmse_mean > 0.0);
        assert_eq!(out.rt_percent, 100.0);
        assert_eq!(out.method, "Mean");
    }

    #[test]
    fn dnf_propagates() {
        let mut rng = Rng64::seed_from_u64(2);
        let complete = Matrix::from_fn(400, 4, |_, _| rng.uniform());
        let ds = inject_mcar(&complete, 0.2, &mut rng);
        let cfg = BenchConfig {
            scale: 1.0,
            max_rows: usize::MAX,
            seeds: 1,
            budget: Duration::from_millis(1), // nothing finishes in 1ms
            epochs: 2,
            holdout_frac: 0.2,
        };
        let out = evaluate_method(MethodId::Mice, &ds, 30, &cfg, 7);
        assert!(!out.finished);
        assert!(out.rmse_mean.is_nan());
    }

    #[test]
    fn env_config_defaults() {
        let cfg = BenchConfig::from_env(0.1, 3, 300);
        assert!(cfg.scale > 0.0);
        assert!(cfg.seeds >= 1);
        assert_eq!(cfg.holdout_frac, 0.2);
    }

    #[test]
    fn max_rows_caps_the_effective_scale() {
        let mut cfg = BenchConfig::from_env(1.0, 1, 60);
        cfg.max_rows = 1000;
        cfg.scale = 1.0;
        let (ds, n0) = load_recipe(scis_data::CovidRecipe::Trial, &cfg, 1);
        assert!(ds.n_samples() <= 1010, "{} rows", ds.n_samples());
        assert!(n0 <= ds.n_samples());
    }
}
