//! Method factory: one identifier per table row, covering the eleven
//! baselines, the two GAN models, their SCIS-wrapped versions, and the
//! ablation variants of Tables V/VI.

use scis_core::dim::{train_dim_telemetered, DimConfig};
use scis_core::error::TrainPhase;
use scis_core::guard::{GuardConfig, GuardStats};
use scis_core::pipeline::{Scis, ScisConfig};
use scis_core::RunReport;
use scis_data::split::sample_training_set;
use scis_data::Dataset;
use scis_imputers::boost::BoostImputer;
use scis_imputers::datawig::DataWigImputer;
use scis_imputers::eddi::EddiImputer;
use scis_imputers::hivae::HivaeImputer;
use scis_imputers::knn::KnnImputer;
use scis_imputers::mean::{MeanImputer, MedianImputer};
use scis_imputers::mice::MiceImputer;
use scis_imputers::midae::MidaeImputer;
use scis_imputers::missforest::MissForestImputer;
use scis_imputers::miwae::MiwaeImputer;
use scis_imputers::rrsi::RrsiImputer;
use scis_imputers::traits::impute_with_generator;
use scis_imputers::vaei::VaeImputer;
use scis_imputers::{GainImputer, GinnImputer, Imputer, TrainConfig};
use scis_telemetry::Telemetry;
use scis_tensor::{Matrix, Rng64};

/// Identifier for every method row across the paper's tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MethodId {
    /// Column-mean fill (reference floor, not a paper row).
    Mean,
    /// Column-median fill (reference, not a paper row).
    Median,
    /// k-nearest-neighbour imputation (reference, not a paper row).
    Knn,
    /// MissForest ("MissF").
    MissF,
    /// Boosted-stump stand-in for Baran (see DESIGN.md §4).
    Baran,
    /// Chained equations.
    Mice,
    /// Per-column MLP.
    DataWig,
    /// Sinkhorn batch imputation.
    Rrsi,
    /// Denoising autoencoder.
    Midae,
    /// Variational autoencoder.
    Vaei,
    /// Importance-weighted autoencoder.
    Miwae,
    /// Partial VAE.
    Eddi,
    /// Heterogeneous VAE.
    Hivae,
    /// GAIN with its native JS/BCE adversarial training.
    Gain,
    /// GINN with its native training (incl. the O(N²) graph build).
    Ginn,
    /// SCIS wrapped around GAIN (the paper's flagship row).
    ScisGain,
    /// SCIS wrapped around GINN.
    ScisGinn,
    /// Ablation: DIM loss on the full dataset, no SSE (Table V "DIM-GAIN").
    DimGain,
    /// Ablation: DIM loss on a fixed 10% sample (Table V "Fixed-DIM-GAIN").
    FixedDimGain,
}

impl MethodId {
    /// The Table III row order (plus the non-paper references first).
    pub const TABLE3: [MethodId; 14] = [
        MethodId::MissF,
        MethodId::Baran,
        MethodId::Mice,
        MethodId::DataWig,
        MethodId::Rrsi,
        MethodId::Midae,
        MethodId::Vaei,
        MethodId::Miwae,
        MethodId::Eddi,
        MethodId::Hivae,
        MethodId::Ginn,
        MethodId::ScisGinn,
        MethodId::Gain,
        MethodId::ScisGain,
    ];

    /// The Table IV row order.
    pub const TABLE4: [MethodId; 5] = [
        MethodId::Hivae,
        MethodId::Ginn,
        MethodId::ScisGinn,
        MethodId::Gain,
        MethodId::ScisGain,
    ];

    /// The ablation rows of Tables V/VI.
    pub const ABLATION: [MethodId; 4] = [
        MethodId::Gain,
        MethodId::DimGain,
        MethodId::FixedDimGain,
        MethodId::ScisGain,
    ];

    /// Row label as printed in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            MethodId::Mean => "Mean",
            MethodId::Median => "Median",
            MethodId::Knn => "kNN",
            MethodId::MissF => "MissF",
            MethodId::Baran => "Baran",
            MethodId::Mice => "MICE",
            MethodId::DataWig => "DataWig",
            MethodId::Rrsi => "RRSI",
            MethodId::Midae => "MIDAE",
            MethodId::Vaei => "VAEI",
            MethodId::Miwae => "MIWAE",
            MethodId::Eddi => "EDDI",
            MethodId::Hivae => "HIVAE",
            MethodId::Gain => "GAIN",
            MethodId::Ginn => "GINN",
            MethodId::ScisGain => "SCIS-GAIN",
            MethodId::ScisGinn => "SCIS-GINN",
            MethodId::DimGain => "DIM-GAIN",
            MethodId::FixedDimGain => "Fixed-DIM-GAIN",
        }
    }

    /// Runs the method on `ds`, returning the imputed matrix and the
    /// training sample rate `R_t` (1.0 unless SSE/fixed sampling shrank it).
    pub fn run(
        &self,
        ds: &Dataset,
        n0: usize,
        train: TrainConfig,
        rng: &mut Rng64,
    ) -> (Matrix, f64) {
        let (imputed, rt, _) = self.run_traced(ds, n0, train, &Telemetry::off(), rng);
        (imputed, rt)
    }

    /// [`MethodId::run`] with telemetry: the SCIS pipeline methods record on
    /// `tel` and return their structured [`RunReport`] (other methods return
    /// `None`). SCIS/DIM training failures degrade gracefully (SCIS falls
    /// back to mean imputation inside the pipeline; the DIM ablations keep
    /// the guard's best snapshot) instead of panicking mid-benchmark.
    pub fn run_traced(
        &self,
        ds: &Dataset,
        n0: usize,
        train: TrainConfig,
        tel: &Telemetry,
        rng: &mut Rng64,
    ) -> (Matrix, f64, Option<RunReport>) {
        let (imputed, rt) = match self {
            MethodId::Mean => (MeanImputer.impute(ds, rng), 1.0),
            MethodId::Median => (MedianImputer.impute(ds, rng), 1.0),
            MethodId::Knn => (KnnImputer::default().impute(ds, rng), 1.0),
            MethodId::MissF => {
                // forest size scaled down from the paper's 100 trees to keep
                // laptop runs feasible; the family-level ordering holds
                let mut m = MissForestImputer {
                    n_trees: 30,
                    max_iter: 3,
                    ..Default::default()
                };
                (m.impute(ds, rng), 1.0)
            }
            MethodId::Baran => (BoostImputer::default().impute(ds, rng), 1.0),
            MethodId::Mice => (MiceImputer::default().impute(ds, rng), 1.0),
            MethodId::DataWig => (
                DataWigImputer {
                    config: train,
                    ..Default::default()
                }
                .impute(ds, rng),
                1.0,
            ),
            MethodId::Rrsi => (
                RrsiImputer {
                    config: train,
                    ..Default::default()
                }
                .impute(ds, rng),
                1.0,
            ),
            MethodId::Midae => (
                MidaeImputer {
                    config: train,
                    ..Default::default()
                }
                .impute(ds, rng),
                1.0,
            ),
            MethodId::Vaei => (
                VaeImputer {
                    config: train,
                    ..Default::default()
                }
                .impute(ds, rng),
                1.0,
            ),
            MethodId::Miwae => (
                MiwaeImputer {
                    config: train,
                    ..Default::default()
                }
                .impute(ds, rng),
                1.0,
            ),
            MethodId::Eddi => (
                EddiImputer {
                    config: train,
                    ..Default::default()
                }
                .impute(ds, rng),
                1.0,
            ),
            MethodId::Hivae => (
                HivaeImputer {
                    config: train,
                    ..Default::default()
                }
                .impute(ds, rng),
                1.0,
            ),
            MethodId::Gain => (GainImputer::new(train).impute(ds, rng), 1.0),
            MethodId::Ginn => (GinnImputer::new(train).impute(ds, rng), 1.0),
            MethodId::ScisGain => {
                let mut gain = GainImputer::new(train);
                return run_scis(&mut gain, ds, n0, train, tel, rng);
            }
            MethodId::ScisGinn => {
                let mut ginn = GinnImputer::new(train);
                return run_scis(&mut ginn, ds, n0, train, tel, rng);
            }
            MethodId::DimGain => {
                let mut gain = GainImputer::new(train);
                run_dim_ablation(&mut gain, ds, train, tel, rng);
                (impute_with_generator(&mut gain, ds, rng), 1.0)
            }
            MethodId::FixedDimGain => {
                let frac = 0.10; // the paper's fixed 10% sample
                let n = ((ds.n_samples() as f64 * frac) as usize)
                    .max(16)
                    .min(ds.n_samples());
                let sample = sample_training_set(ds, n, rng);
                let mut gain = GainImputer::new(train);
                run_dim_ablation(&mut gain, &sample, train, tel, rng);
                (impute_with_generator(&mut gain, ds, rng), frac)
            }
        };
        (imputed, rt, None)
    }
}

/// Shared SCIS path for the wrapped methods: fallible pipeline entry with
/// telemetry attached. An `Err` (bad data/configuration — should not happen
/// with the bench's curated instances) degrades to mean imputation so a
/// multi-row table run survives one broken cell.
fn run_scis(
    imp: &mut dyn scis_imputers::AdversarialImputer,
    ds: &Dataset,
    n0: usize,
    train: TrainConfig,
    tel: &Telemetry,
    rng: &mut Rng64,
) -> (Matrix, f64, Option<RunReport>) {
    let config = ScisConfig {
        dim: DimConfig {
            train,
            ..Default::default()
        },
        ..Default::default()
    };
    match Scis::new(config)
        .telemetry(tel.clone())
        .try_run(imp, ds, n0, rng)
    {
        Ok(outcome) => {
            let rt = outcome.training_sample_rate();
            (outcome.imputed, rt, Some(outcome.report))
        }
        Err(e) => {
            eprintln!("scis-bench: SCIS run failed ({e}); falling back to mean imputation");
            (MeanImputer.impute(ds, rng), 1.0, None)
        }
    }
}

/// Shared DIM path for the ablation rows: guarded, telemetered training
/// that keeps the best parameter snapshot on terminal failure instead of
/// panicking (the guarded trainer restores it before surfacing the error).
fn run_dim_ablation(
    imp: &mut dyn scis_imputers::AdversarialImputer,
    ds: &Dataset,
    train: TrainConfig,
    tel: &Telemetry,
    rng: &mut Rng64,
) {
    let cfg = DimConfig {
        train,
        ..Default::default()
    };
    imp.set_telemetry(tel.clone());
    let mut stats = GuardStats::default();
    if let Err(e) = train_dim_telemetered(
        imp,
        ds,
        &cfg,
        &GuardConfig::default(),
        TrainPhase::Initial,
        &mut stats,
        tel,
        rng,
    ) {
        eprintln!("scis-bench: DIM training failed ({e}); keeping the best snapshot");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scis_data::missing::inject_mcar;

    #[test]
    fn every_method_id_runs_on_a_tiny_dataset() {
        let mut rng = Rng64::seed_from_u64(1);
        let complete = Matrix::from_fn(150, 4, |_, _| rng.uniform());
        let ds = inject_mcar(&complete, 0.2, &mut rng);
        let train = TrainConfig {
            epochs: 2,
            batch_size: 32,
            learning_rate: 0.01,
            dropout: 0.1,
        };
        let all = [
            MethodId::Mean,
            MethodId::Median,
            MethodId::Knn,
            MethodId::MissF,
            MethodId::Baran,
            MethodId::Mice,
            MethodId::DataWig,
            MethodId::Rrsi,
            MethodId::Midae,
            MethodId::Vaei,
            MethodId::Miwae,
            MethodId::Eddi,
            MethodId::Hivae,
            MethodId::Gain,
            MethodId::Ginn,
            MethodId::ScisGain,
            MethodId::ScisGinn,
            MethodId::DimGain,
            MethodId::FixedDimGain,
        ];
        for id in all {
            let (imputed, rt) = id.run(&ds, 30, train, &mut rng);
            assert_eq!(imputed.shape(), (150, 4), "{}", id.name());
            assert!(!imputed.has_nan(), "{} produced NaN", id.name());
            assert!((0.0..=1.0).contains(&rt), "{} R_t = {}", id.name(), rt);
        }
    }

    #[test]
    fn table_row_lists_have_expected_sizes() {
        assert_eq!(MethodId::TABLE3.len(), 14);
        assert_eq!(MethodId::TABLE4.len(), 5);
        assert_eq!(MethodId::ABLATION.len(), 4);
        assert_eq!(MethodId::ScisGain.name(), "SCIS-GAIN");
    }
}
