//! Table formatting and CSV export for the experiment binaries.

use crate::harness::RunOutcome;
use scis_core::RunReport;
use scis_telemetry::json_f64;
use std::io::Write;
use std::path::Path;

/// Formats one table cell triple `RMSE (±std) | time | R_t`, using the
/// paper's "—" notation for runs that missed the budget.
pub fn format_row(out: &RunOutcome) -> String {
    if !out.finished {
        format!("{:<16} {:>20} {:>10} {:>8}", out.method, "—", "—", "—")
    } else {
        format!(
            "{:<16} {:>12.4} (±{:.4}) {:>9.2}s {:>7.2}%",
            out.method, out.rmse_mean, out.rmse_std, out.time_s, out.rt_percent
        )
    }
}

/// Prints a full table section for one dataset.
pub fn print_table(dataset: &str, rows: &[RunOutcome]) {
    println!("\n=== {} ===", dataset);
    println!(
        "{:<16} {:>20} {:>10} {:>8}",
        "Method", "RMSE (±bias)", "Time", "R_t"
    );
    println!("{}", "-".repeat(58));
    for r in rows {
        println!("{}", format_row(r));
    }
}

/// Appends rows to a CSV file (creating it with a header when absent):
/// `dataset,method,rmse_mean,rmse_std,time_s,rt_percent,finished`.
pub fn write_csv(path: &Path, dataset: &str, rows: &[RunOutcome]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let new = !path.exists();
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if new {
        writeln!(
            f,
            "dataset,method,rmse_mean,rmse_std,time_s,rt_percent,finished"
        )?;
    }
    for r in rows {
        writeln!(
            f,
            "{},{},{},{},{},{},{}",
            dataset, r.method, r.rmse_mean, r.rmse_std, r.time_s, r.rt_percent, r.finished
        )?;
    }
    Ok(())
}

/// Default output directory for bench CSVs.
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(
        std::env::var("RESULTS_DIR").unwrap_or_else(|_| "bench_results".to_string()),
    )
}

/// Appends one per-run record to a JSON-lines trace file (creating parent
/// directories as needed): `{"method":…,"seed":…,"rmse":…,"time_s":…,
/// "rt_percent":…,"report":{…}|null}`. The embedded report is the
/// pipeline's full [`RunReport`] for SCIS rows, `null` for methods without
/// one.
#[allow(clippy::too_many_arguments)]
pub fn append_run_trace(
    path: &Path,
    method: &str,
    seed: u64,
    rmse: f64,
    time_s: f64,
    rt_percent: f64,
    report: Option<&RunReport>,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let report_json = match report {
        Some(r) => r.to_json(),
        None => "null".to_string(),
    };
    writeln!(
        f,
        "{{\"method\":\"{}\",\"seed\":{},\"rmse\":{},\"time_s\":{},\"rt_percent\":{},\"report\":{}}}",
        scis_telemetry::json_escape(method),
        seed,
        json_f64(rmse),
        json_f64(time_s),
        json_f64(rt_percent),
        report_json
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunOutcome {
        RunOutcome {
            method: "GAIN",
            rmse_mean: 0.398,
            rmse_std: 0.024,
            time_s: 90.0,
            rt_percent: 100.0,
            finished: true,
        }
    }

    #[test]
    fn formats_finished_rows() {
        let s = format_row(&sample());
        assert!(s.contains("GAIN"));
        assert!(s.contains("0.3980"));
        assert!(s.contains("100.00%"));
    }

    #[test]
    fn formats_dnf_rows_with_dashes() {
        let s = format_row(&RunOutcome::dnf("GINN"));
        assert!(s.contains("GINN"));
        assert!(s.contains("—"));
        assert!(!s.contains("NaN"));
    }

    #[test]
    fn run_trace_appends_json_lines() {
        let mut path = std::env::temp_dir();
        path.push(format!("scis_bench_trace_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        append_run_trace(&path, "Mean", 0, 0.25, 1.5, 100.0, None).unwrap();
        let tel = scis_telemetry::Telemetry::collecting();
        tel.incr(scis_telemetry::Counter::SseProbes);
        let report = RunReport::assemble(
            &tel.snapshot(),
            100,
            20,
            40,
            2.0,
            Vec::new(),
            &scis_core::RunAnomalies::default(),
        );
        append_run_trace(&path, "SCIS-GAIN", 1, 0.1, 9.0, 40.0, Some(&report)).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"report\":null"));
        assert!(lines[1].contains("\"n_star\":40"));
        assert!(lines[1].contains("\"sse_probes\":1"));
        // every line is a self-contained object
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_roundtrip() {
        let mut path = std::env::temp_dir();
        path.push(format!("scis_bench_report_{}.csv", std::process::id()));
        let _ = std::fs::remove_file(&path);
        write_csv(&path, "Trial", &[sample()]).unwrap();
        write_csv(&path, "Trial", &[RunOutcome::dnf("GINN")]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("dataset,method"));
        assert!(lines[1].starts_with("Trial,GAIN,0.398"));
        assert!(lines[2].contains("false"));
        std::fs::remove_file(&path).ok();
    }
}
