//! Table formatting and CSV export for the experiment binaries.

use crate::harness::RunOutcome;
use std::io::Write;
use std::path::Path;

/// Formats one table cell triple `RMSE (±std) | time | R_t`, using the
/// paper's "—" notation for runs that missed the budget.
pub fn format_row(out: &RunOutcome) -> String {
    if !out.finished {
        format!("{:<16} {:>20} {:>10} {:>8}", out.method, "—", "—", "—")
    } else {
        format!(
            "{:<16} {:>12.4} (±{:.4}) {:>9.2}s {:>7.2}%",
            out.method, out.rmse_mean, out.rmse_std, out.time_s, out.rt_percent
        )
    }
}

/// Prints a full table section for one dataset.
pub fn print_table(dataset: &str, rows: &[RunOutcome]) {
    println!("\n=== {} ===", dataset);
    println!(
        "{:<16} {:>20} {:>10} {:>8}",
        "Method", "RMSE (±bias)", "Time", "R_t"
    );
    println!("{}", "-".repeat(58));
    for r in rows {
        println!("{}", format_row(r));
    }
}

/// Appends rows to a CSV file (creating it with a header when absent):
/// `dataset,method,rmse_mean,rmse_std,time_s,rt_percent,finished`.
pub fn write_csv(path: &Path, dataset: &str, rows: &[RunOutcome]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let new = !path.exists();
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if new {
        writeln!(
            f,
            "dataset,method,rmse_mean,rmse_std,time_s,rt_percent,finished"
        )?;
    }
    for r in rows {
        writeln!(
            f,
            "{},{},{},{},{},{},{}",
            dataset, r.method, r.rmse_mean, r.rmse_std, r.time_s, r.rt_percent, r.finished
        )?;
    }
    Ok(())
}

/// Default output directory for bench CSVs.
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(
        std::env::var("RESULTS_DIR").unwrap_or_else(|_| "bench_results".to_string()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunOutcome {
        RunOutcome {
            method: "GAIN",
            rmse_mean: 0.398,
            rmse_std: 0.024,
            time_s: 90.0,
            rt_percent: 100.0,
            finished: true,
        }
    }

    #[test]
    fn formats_finished_rows() {
        let s = format_row(&sample());
        assert!(s.contains("GAIN"));
        assert!(s.contains("0.3980"));
        assert!(s.contains("100.00%"));
    }

    #[test]
    fn formats_dnf_rows_with_dashes() {
        let s = format_row(&RunOutcome::dnf("GINN"));
        assert!(s.contains("GINN"));
        assert!(s.contains("—"));
        assert!(!s.contains("NaN"));
    }

    #[test]
    fn csv_roundtrip() {
        let mut path = std::env::temp_dir();
        path.push(format!("scis_bench_report_{}.csv", std::process::id()));
        let _ = std::fs::remove_file(&path);
        write_csv(&path, "Trial", &[sample()]).unwrap();
        write_csv(&path, "Trial", &[RunOutcome::dnf("GINN")]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("dataset,method"));
        assert!(lines[1].starts_with("Trial,GAIN,0.398"));
        assert!(lines[2].contains("false"));
        std::fs::remove_file(&path).ok();
    }
}
