//! Criterion microbenchmarks for the hot kernels: Sinkhorn solves at the
//! paper's batch size, the MS-divergence gradient, GAIN adversarial steps,
//! and the GINN graph build whose O(N²) growth explains the paper's
//! Table IV dashes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scis_imputers::{AdversarialImputer, GainImputer, GinnImputer, TrainConfig};
use scis_nn::Adam;
use scis_ot::{ms_loss_grad, sinkhorn_uniform, SinkhornOptions};
use scis_tensor::{Matrix, Rng64};

fn bench_sinkhorn(c: &mut Criterion) {
    let mut group = c.benchmark_group("sinkhorn_solve");
    for &n in &[32usize, 64, 128] {
        let mut rng = Rng64::seed_from_u64(1);
        let cost = Matrix::from_fn(n, n, |_, _| rng.uniform());
        let opts = SinkhornOptions { lambda: 0.1, max_iters: 200, tol: 1e-8 };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| sinkhorn_uniform(std::hint::black_box(&cost), &opts))
        });
    }
    group.finish();
}

fn bench_ms_gradient(c: &mut Criterion) {
    let mut group = c.benchmark_group("ms_loss_grad");
    for &(n, d) in &[(64usize, 8usize), (128, 8), (128, 32)] {
        let mut rng = Rng64::seed_from_u64(2);
        let x = Matrix::from_fn(n, d, |_, _| rng.uniform());
        let xbar = Matrix::from_fn(n, d, |_, _| rng.uniform());
        let mask = Matrix::from_fn(n, d, |_, _| if rng.bernoulli(0.7) { 1.0 } else { 0.0 });
        let opts = SinkhornOptions { lambda: 0.1, max_iters: 100, tol: 1e-7 };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}x{}", n, d)),
            &n,
            |b, _| b.iter(|| ms_loss_grad(&xbar, &x, &mask, &opts)),
        );
    }
    group.finish();
}

fn bench_gain_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("gain_adversarial_step");
    for &d in &[8usize, 32] {
        let mut rng = Rng64::seed_from_u64(3);
        let n = 128;
        let x = Matrix::from_fn(n, d, |_, _| rng.uniform());
        let mask = Matrix::from_fn(n, d, |_, _| if rng.bernoulli(0.7) { 1.0 } else { 0.0 });
        let mut gain = GainImputer::new(TrainConfig::default());
        gain.init_networks(d, &mut rng);
        let mut opt_g = Adam::new(0.001);
        let mut opt_d = Adam::new(0.001);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| gain.train_batch(&x, &mask, &mut opt_g, &mut opt_d, &mut rng))
        });
    }
    group.finish();
}

fn bench_ginn_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("ginn_graph_build");
    group.sample_size(10);
    for &n in &[500usize, 1000, 2000] {
        let mut rng = Rng64::seed_from_u64(4);
        let x = Matrix::from_fn(n, 8, |_, _| rng.uniform());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| GinnImputer::build_graph(std::hint::black_box(&x), 5))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sinkhorn,
    bench_ms_gradient,
    bench_gain_step,
    bench_ginn_graph
);
criterion_main!(benches);
