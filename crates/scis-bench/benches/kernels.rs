//! Microbenchmarks for the hot kernels: Sinkhorn solves at the paper's
//! batch size, the MS-divergence gradient, GAIN adversarial steps, and the
//! GINN graph build whose O(N²) growth explains the paper's Table IV dashes.
//!
//! The container has no cargo registry access, so this is a self-contained
//! `harness = false` binary with wall-clock timing instead of criterion.

use std::hint::black_box;
use std::time::Instant;

use scis_imputers::{AdversarialImputer, GainImputer, GinnImputer, TrainConfig};
use scis_nn::Adam;
use scis_ot::{ms_loss_grad, sinkhorn_uniform, SinkhornOptions};
use scis_tensor::par::{matmul_exec, pairwise_sq_dists_exec};
use scis_tensor::{ExecPolicy, Matrix, Rng64};

/// Times `body` over `iters` runs after one warm-up, printing mean per-run.
fn bench<R>(name: &str, iters: usize, mut body: impl FnMut() -> R) {
    black_box(body());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(body());
    }
    let mean = start.elapsed().as_secs_f64() / iters as f64;
    let (value, unit) = if mean >= 1e-3 {
        (mean * 1e3, "ms")
    } else {
        (mean * 1e6, "µs")
    };
    println!("{name:<32} {value:>10.3} {unit}/iter  ({iters} iters)");
}

fn bench_sinkhorn() {
    for &n in &[32usize, 64, 128] {
        let mut rng = Rng64::seed_from_u64(1);
        let cost = Matrix::from_fn(n, n, |_, _| rng.uniform());
        let opts = SinkhornOptions {
            lambda: 0.1,
            max_iters: 200,
            tol: 1e-8,
            ..Default::default()
        };
        bench(&format!("sinkhorn_solve/{n}"), 20, || {
            sinkhorn_uniform(black_box(&cost), &opts)
        });
    }
}

fn bench_ms_gradient() {
    for &(n, d) in &[(64usize, 8usize), (128, 8), (128, 32)] {
        let mut rng = Rng64::seed_from_u64(2);
        let x = Matrix::from_fn(n, d, |_, _| rng.uniform());
        let xbar = Matrix::from_fn(n, d, |_, _| rng.uniform());
        let mask = Matrix::from_fn(n, d, |_, _| if rng.bernoulli(0.7) { 1.0 } else { 0.0 });
        let opts = SinkhornOptions {
            lambda: 0.1,
            max_iters: 100,
            tol: 1e-7,
            ..Default::default()
        };
        bench(&format!("ms_loss_grad/{n}x{d}"), 10, || {
            ms_loss_grad(&xbar, &x, &mask, &opts)
        });
    }
}

fn bench_gain_step() {
    for &d in &[8usize, 32] {
        let mut rng = Rng64::seed_from_u64(3);
        let n = 128;
        let x = Matrix::from_fn(n, d, |_, _| rng.uniform());
        let mask = Matrix::from_fn(n, d, |_, _| if rng.bernoulli(0.7) { 1.0 } else { 0.0 });
        let mut gain = GainImputer::new(TrainConfig::default());
        gain.init_networks(d, &mut rng);
        let mut opt_g = Adam::new(0.001);
        let mut opt_d = Adam::new(0.001);
        bench(&format!("gain_adversarial_step/{d}"), 20, || {
            gain.train_batch(&x, &mask, &mut opt_g, &mut opt_d, &mut rng)
        });
    }
}

fn bench_par_kernels() {
    let n = 512;
    let mut rng = Rng64::seed_from_u64(5);
    let a = Matrix::from_fn(n, n, |_, _| rng.uniform());
    let b = Matrix::from_fn(n, n, |_, _| rng.uniform());
    for &(label, exec) in &[
        ("serial", ExecPolicy::Serial),
        ("4 threads", ExecPolicy::threads(4)),
    ] {
        bench(&format!("matmul/{n} ({label})"), 5, || {
            matmul_exec(black_box(&a), black_box(&b), exec)
        });
        bench(&format!("pairwise_sq_dists/{n} ({label})"), 5, || {
            pairwise_sq_dists_exec(black_box(&a), black_box(&b), exec)
        });
    }
    // the determinism contract the policies promise
    assert_eq!(
        matmul_exec(&a, &b, ExecPolicy::Serial),
        matmul_exec(&a, &b, ExecPolicy::threads(4)),
    );
    assert_eq!(
        pairwise_sq_dists_exec(&a, &b, ExecPolicy::Serial),
        pairwise_sq_dists_exec(&a, &b, ExecPolicy::threads(4)),
    );
}

fn bench_ginn_graph() {
    for &n in &[500usize, 1000, 2000] {
        let mut rng = Rng64::seed_from_u64(4);
        let x = Matrix::from_fn(n, 8, |_, _| rng.uniform());
        bench(&format!("ginn_graph_build/{n}"), 5, || {
            GinnImputer::build_graph(black_box(&x), 5)
        });
    }
}

fn main() {
    bench_sinkhorn();
    bench_ms_gradient();
    bench_gain_step();
    bench_par_kernels();
    bench_ginn_graph();
}
