//! The masking Sinkhorn (MS) divergence — paper Definition 4.
//!
//! `S_m(ν̂_x̄ ‖ μ̂_x) = 2·OT_λ^m(ν̂, μ̂) − OT_λ^m(ν̂, ν̂) − OT_λ^m(μ̂, μ̂)`
//!
//! where each `OT_λ^m` is the entropic-regularized optimal transport value
//! of Definition 3 over mask-projected samples. The debiasing ("corrective")
//! terms cancel the entropic bias so the divergence is non-negative and
//! vanishes iff the two masked empirical measures coincide — this is what
//! lets DIM use it as a GAN loss with usable gradients everywhere.

use crate::cost::{masked_self_cost, masked_sq_cost};
use crate::sinkhorn::{sinkhorn_uniform, SinkhornOptions, SinkhornResult};
use scis_tensor::Matrix;

/// Full decomposition of one MS-divergence evaluation.
#[derive(Debug, Clone)]
pub struct MsDivergenceValue {
    /// The divergence `S_m(ν̂ ‖ μ̂)`.
    pub value: f64,
    /// Cross solve `OT_λ^m(ν̂, μ̂)`.
    pub cross: SinkhornResult,
    /// Self solve on the reconstructed side, `OT_λ^m(ν̂, ν̂)`.
    pub self_a: SinkhornResult,
    /// Self solve on the data side, `OT_λ^m(μ̂, μ̂)`.
    pub self_b: SinkhornResult,
}

/// Computes the MS divergence between the reconstructed batch `xbar` and the
/// observed batch `x`, both masked by the batch mask `mask` (1 = observed).
///
/// All three entropic OT problems are solved with the same `opts`.
pub fn ms_divergence(
    xbar: &Matrix,
    x: &Matrix,
    mask: &Matrix,
    opts: &SinkhornOptions,
) -> MsDivergenceValue {
    assert_eq!(
        xbar.shape(),
        x.shape(),
        "ms_divergence: data shape mismatch"
    );
    assert_eq!(
        x.shape(),
        mask.shape(),
        "ms_divergence: mask shape mismatch"
    );

    let cross_cost = masked_sq_cost(xbar, mask, x, mask);
    let self_a_cost = masked_self_cost(xbar, mask);
    let self_b_cost = masked_self_cost(x, mask);

    let cross = sinkhorn_uniform(&cross_cost, opts);
    let self_a = sinkhorn_uniform(&self_a_cost, opts);
    let self_b = sinkhorn_uniform(&self_b_cost, opts);

    let value = 2.0 * cross.reg_value - self_a.reg_value - self_b.reg_value;
    MsDivergenceValue {
        value,
        cross,
        self_a,
        self_b,
    }
}

/// The paper's imputation loss `L_s(X, M) = S_m(ν̂ ‖ μ̂) / (2n)`.
pub fn ms_loss(xbar: &Matrix, x: &Matrix, mask: &Matrix, opts: &SinkhornOptions) -> f64 {
    let n = x.rows().max(1) as f64;
    ms_divergence(xbar, x, mask, opts).value / (2.0 * n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scis_tensor::Rng64;

    fn opts(lambda: f64) -> SinkhornOptions {
        SinkhornOptions {
            lambda,
            max_iters: 2000,
            tol: 1e-10,
            ..Default::default()
        }
    }

    #[test]
    fn divergence_is_zero_for_identical_batches() {
        let mut rng = Rng64::seed_from_u64(1);
        let x = Matrix::from_fn(10, 4, |_, _| rng.uniform());
        let m = Matrix::from_fn(10, 4, |_, _| if rng.bernoulli(0.7) { 1.0 } else { 0.0 });
        let d = ms_divergence(&x, &x, &m, &opts(0.5));
        assert!(d.value.abs() < 1e-7, "S(x‖x) = {}", d.value);
    }

    #[test]
    fn divergence_is_nonnegative() {
        let mut rng = Rng64::seed_from_u64(2);
        for trial in 0..5 {
            let a = Matrix::from_fn(8, 3, |_, _| rng.uniform());
            let b = Matrix::from_fn(8, 3, |_, _| rng.uniform());
            let m = Matrix::from_fn(8, 3, |_, _| if rng.bernoulli(0.6) { 1.0 } else { 0.0 });
            let d = ms_divergence(&a, &b, &m, &opts(0.3));
            assert!(d.value > -1e-7, "trial {}: S = {}", trial, d.value);
        }
    }

    #[test]
    fn divergence_grows_with_separation() {
        let mut rng = Rng64::seed_from_u64(3);
        let x = Matrix::from_fn(12, 2, |_, _| rng.uniform() * 0.1);
        let m = Matrix::ones(12, 2);
        let near = x.map(|v| v + 0.05);
        let far = x.map(|v| v + 0.5);
        let o = opts(0.2);
        let d_near = ms_divergence(&near, &x, &m, &o).value;
        let d_far = ms_divergence(&far, &x, &m, &o).value;
        assert!(d_far > d_near, "{} vs {}", d_far, d_near);
    }

    #[test]
    fn masked_dimensions_do_not_contribute() {
        let mut rng = Rng64::seed_from_u64(4);
        let x = Matrix::from_fn(6, 2, |_, _| rng.uniform());
        // second feature fully masked out
        let m = Matrix::from_fn(6, 2, |_, j| if j == 0 { 1.0 } else { 0.0 });
        // xbar differs wildly in the masked feature only
        let mut xbar = x.clone();
        for i in 0..6 {
            xbar[(i, 1)] = 100.0 + i as f64;
        }
        let d = ms_divergence(&xbar, &x, &m, &opts(0.5));
        assert!(d.value.abs() < 1e-7, "masked feature leaked: {}", d.value);
    }

    /// The paper's Example 1: p0 = δ_0, p_θ = δ_θ, MCAR mask m ~ Ber(q).
    /// Closed form (paper §IV.A): S_m = 2qθ² + λ[(1−q)log(1−q) + q·log q],
    /// quadratic in θ with informative gradients everywhere, unlike the JS
    /// divergence whose gradient is 0 a.e. The closed form is the λ → 0
    /// (block-diagonal plan) regime, so we probe with λ ≪ θ².
    #[test]
    fn example1_ms_divergence_quadratic_in_theta() {
        let n = 120;
        let q = 0.4;
        let mut rng = Rng64::seed_from_u64(5);
        // empirical Bernoulli(q) masks, shared by both sides (MCAR)
        let m = Matrix::from_fn(n, 1, |_, _| if rng.bernoulli(q) { 1.0 } else { 0.0 });
        let q_emp = m.mean(); // realized missing-ness
        let x0 = Matrix::zeros(n, 1);
        let lambda = 0.01;
        let o = SinkhornOptions {
            lambda,
            max_iters: 20_000,
            tol: 1e-11,
            ..Default::default()
        };
        let entropy_const = lambda * ((1.0 - q_emp) * (1.0 - q_emp).ln() + q_emp * q_emp.ln());
        let mut prev = -1.0;
        for &theta in &[0.5f64, 0.8, 1.2] {
            let xt = Matrix::full(n, 1, theta);
            let d = ms_divergence(&xt, &x0, &m, &o).value;
            let expect = 2.0 * q_emp * theta * theta + entropy_const;
            assert!(
                (d - expect).abs() < 0.1 * expect.abs() + 1e-2,
                "θ={}: S={} expect≈{}",
                theta,
                d,
                expect
            );
            assert!(d > prev, "S not increasing at θ={}", theta);
            prev = d;
        }
    }

    #[test]
    fn divergence_is_symmetric() {
        let mut rng = Rng64::seed_from_u64(7);
        let a = Matrix::from_fn(7, 3, |_, _| rng.uniform());
        let b = Matrix::from_fn(7, 3, |_, _| rng.uniform());
        let m = Matrix::from_fn(7, 3, |_, _| if rng.bernoulli(0.6) { 1.0 } else { 0.0 });
        let o = opts(0.4);
        let ab = ms_divergence(&a, &b, &m, &o).value;
        let ba = ms_divergence(&b, &a, &m, &o).value;
        assert!((ab - ba).abs() < 1e-8, "S(a,b)={} S(b,a)={}", ab, ba);
    }

    #[test]
    fn cross_plan_has_uniform_marginals() {
        let mut rng = Rng64::seed_from_u64(8);
        let a = Matrix::from_fn(5, 2, |_, _| rng.uniform());
        let b = Matrix::from_fn(5, 2, |_, _| rng.uniform());
        let m = Matrix::ones(5, 2);
        let d = ms_divergence(&a, &b, &m, &opts(0.3));
        for s in d.cross.plan.row_sums() {
            assert!((s - 0.2).abs() < 1e-7);
        }
        for s in d.cross.plan.col_sums() {
            assert!((s - 0.2).abs() < 1e-7);
        }
    }

    #[test]
    fn single_row_batches_are_handled() {
        let a = Matrix::from_rows(&[&[0.3, 0.7]]);
        let b = Matrix::from_rows(&[&[0.5, 0.1]]);
        let m = Matrix::ones(1, 2);
        let d = ms_divergence(&a, &b, &m, &opts(0.5));
        assert!(d.value.is_finite());
        // with one point per side, OT is just the pair cost; debiasing
        // removes the (zero-cost) self terms' entropy
        assert!(d.value > 0.0);
    }

    #[test]
    fn loss_is_divergence_over_2n() {
        let mut rng = Rng64::seed_from_u64(6);
        let a = Matrix::from_fn(5, 2, |_, _| rng.uniform());
        let b = Matrix::from_fn(5, 2, |_, _| rng.uniform());
        let m = Matrix::ones(5, 2);
        let o = opts(0.5);
        let d = ms_divergence(&a, &b, &m, &o).value;
        let l = ms_loss(&a, &b, &m, &o);
        assert!((l - d / 10.0).abs() < 1e-12);
    }
}
