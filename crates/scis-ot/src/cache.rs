//! Warm-start dual cache for the Sinkhorn hot path.
//!
//! DIM training (paper Algorithm 1) solves the same three entropic-OT
//! problems — cross `OT(X̄, X)`, self `OT(X̄, X̄)`, self `OT(X, X)` — for every
//! batch of every epoch, from cold. Between consecutive epochs the generator
//! moves by one optimizer step per batch, so the optimal dual potentials
//! `(f, g)` barely move; re-starting each solve from the previous epoch's
//! duals cuts the sweep count by a large factor (the classic warm-start
//! observation, cf. Muzellec et al., arXiv:2002.03860).
//!
//! # Keying
//! DIM draws a fresh row permutation every epoch, so batch *slots* are not
//! stable identities — batch 3 of epoch 5 holds different rows than batch 3
//! of epoch 6. Potentials are therefore keyed by **dataset row index**, per
//! solve kind and per side: after a solve over rows `[r₀, r₁, …]` each `fᵢ`
//! is stored under `rᵢ`, and a later batch warm-starts only if *every* one
//! of its rows has a cached value (full coverage; partial hits fall back to
//! a cold solve).
//!
//! # Gauge
//! Sinkhorn duals are defined up to a constant shift (`f + c, g − c`). Before
//! storing, potentials are re-centered (`c = mean(f)`) so values cached by
//! different batches compose into a consistent warm start.
//!
//! # Invalidation
//! [`DualCache::invalidate_all`] drops every entry. The training guard calls
//! it on rollback/LR backoff: after parameters rewind, cached duals describe
//! a generator state that no longer exists and would steer solves from a
//! stale point (still correct — warm starts never change the fixed point —
//! but slower and misleading in the accounting).
//!
//! The handle is a clone-shared `Option<Arc<…>>` in the style of
//! `scis_telemetry::Telemetry`: a disabled cache ([`DualCache::off`]) is one
//! pointer-sized `None` and every operation is a no-op branch.

use crate::sinkhorn::SinkhornResult;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Which of the MS-divergence solves a cached potential pair belongs to.
///
/// The three solves see different cost matrices, so their duals must never
/// mix even when they cover the same rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveKind {
    /// Cross term `OT(X̄ ⊙ M, X ⊙ M)`.
    Cross,
    /// Generator self term `OT(X̄ ⊙ M, X̄ ⊙ M)`.
    SelfA,
    /// Data self term `OT(X ⊙ M, X ⊙ M)`.
    SelfB,
}

impl SolveKind {
    fn idx(self) -> usize {
        match self {
            SolveKind::Cross => 0,
            SolveKind::SelfA => 1,
            SolveKind::SelfB => 2,
        }
    }
}

/// Cache effectiveness counters, readable for tests and the bench suite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that produced a full warm start.
    pub hits: usize,
    /// Lookups that fell back to a cold solve (missing rows or empty cache).
    pub misses: usize,
    /// Potential pairs stored.
    pub stores: usize,
    /// Times the whole cache was dropped (guard rollbacks).
    pub invalidations: usize,
}

#[derive(Default)]
struct Store {
    /// Row-keyed first-side potentials (gauge-recentered).
    f: HashMap<usize, f64>,
    /// Row-keyed second-side potentials (gauge-recentered).
    g: HashMap<usize, f64>,
    /// Iteration count of the most recent cold solve of this kind — the
    /// baseline for the `iters_saved` estimate.
    last_cold_iters: Option<usize>,
}

#[derive(Default)]
struct Inner {
    stores: [Store; 3],
    stats: CacheStats,
}

/// Clone-shared warm-start cache handle; see the module docs.
///
/// All clones point at the same storage, so the training loop, the gradient
/// layer and the SSE fan-out can share one cache without threading `&mut`
/// through every signature.
#[derive(Clone, Default)]
pub struct DualCache(Option<Arc<Mutex<Inner>>>);

impl std::fmt::Debug for DualCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => write!(f, "DualCache(off)"),
            Some(_) => write!(f, "DualCache(enabled, {:?})", self.stats()),
        }
    }
}

impl DualCache {
    /// A disabled cache: every operation is a no-op, every lookup misses.
    pub fn off() -> Self {
        Self(None)
    }

    /// A live cache with empty storage.
    pub fn enabled() -> Self {
        Self(Some(Arc::new(Mutex::new(Inner::default()))))
    }

    /// Whether this handle points at live storage.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    fn lock(&self) -> Option<std::sync::MutexGuard<'_, Inner>> {
        self.0
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Looks up warm-start potentials for a solve of `kind` whose first
    /// marginal covers dataset rows `rows_a` and second marginal `rows_b`.
    ///
    /// Returns `Some((f0, g0))` only on *full* coverage — every row of both
    /// sides present — otherwise `None` (counted as a miss). A disabled
    /// cache always misses without touching the counters.
    pub fn lookup(
        &self,
        kind: SolveKind,
        rows_a: &[usize],
        rows_b: &[usize],
    ) -> Option<(Vec<f64>, Vec<f64>)> {
        let mut inner = self.lock()?;
        let store = &inner.stores[kind.idx()];
        let f0: Option<Vec<f64>> = rows_a.iter().map(|r| store.f.get(r).copied()).collect();
        let g0: Option<Vec<f64>> = rows_b.iter().map(|r| store.g.get(r).copied()).collect();
        match (f0, g0) {
            (Some(f0), Some(g0)) => {
                inner.stats.hits += 1;
                Some((f0, g0))
            }
            _ => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Stores the duals of a finished solve under its row keys.
    ///
    /// Potentials are gauge-recentered by the mean of `f` first, and the
    /// store is skipped entirely if any potential is non-finite (an
    /// unconverged or degenerate solve must not poison later warm starts).
    pub fn store(&self, kind: SolveKind, rows_a: &[usize], rows_b: &[usize], r: &SinkhornResult) {
        let Some(mut inner) = self.lock() else {
            return;
        };
        if r.f.len() != rows_a.len() || r.g.len() != rows_b.len() {
            return; // shape drift: refuse silently rather than mis-key
        }
        if !r.f.iter().chain(r.g.iter()).all(|v| v.is_finite()) {
            return;
        }
        let c = r.f.iter().sum::<f64>() / r.f.len().max(1) as f64;
        let store = &mut inner.stores[kind.idx()];
        for (&row, &fv) in rows_a.iter().zip(&r.f) {
            store.f.insert(row, fv - c);
        }
        for (&row, &gv) in rows_b.iter().zip(&r.g) {
            store.g.insert(row, gv + c);
        }
        inner.stats.stores += 1;
    }

    /// Records the iteration count of a cold solve of `kind` — the baseline
    /// the `iters_saved` telemetry estimate is measured against.
    pub fn note_cold_iters(&self, kind: SolveKind, iters: usize) {
        if let Some(mut inner) = self.lock() {
            inner.stores[kind.idx()].last_cold_iters = Some(iters);
        }
    }

    /// The most recent cold-solve iteration count for `kind`, if any.
    pub fn cold_baseline(&self, kind: SolveKind) -> Option<usize> {
        self.lock()?.stores[kind.idx()].last_cold_iters
    }

    /// Drops every cached potential (all kinds) and counts an invalidation.
    /// Cold baselines are dropped too — after a rollback the generator's
    /// solves are back to square one.
    pub fn invalidate_all(&self) {
        if let Some(mut inner) = self.lock() {
            inner.stores = Default::default();
            inner.stats.invalidations += 1;
        }
    }

    /// Snapshot of the effectiveness counters (all zero when disabled).
    pub fn stats(&self) -> CacheStats {
        self.lock().map(|i| i.stats).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinkhorn::{sinkhorn_uniform, SinkhornOptions};
    use scis_tensor::Matrix;

    fn solve(n: usize) -> SinkhornResult {
        let cost = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 5) % 7) as f64);
        sinkhorn_uniform(
            &cost,
            &SinkhornOptions {
                lambda: 1.0,
                max_iters: 2000,
                tol: 1e-9,
                ..Default::default()
            },
        )
    }

    #[test]
    fn off_cache_is_inert() {
        let c = DualCache::off();
        assert!(!c.is_enabled());
        c.store(SolveKind::Cross, &[0, 1], &[0, 1], &solve(2));
        assert!(c.lookup(SolveKind::Cross, &[0, 1], &[0, 1]).is_none());
        c.invalidate_all();
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn full_coverage_hit_partial_coverage_miss() {
        let c = DualCache::enabled();
        let r = solve(3);
        c.store(SolveKind::Cross, &[10, 20, 30], &[10, 20, 30], &r);
        assert!(c
            .lookup(SolveKind::Cross, &[30, 10, 20], &[10, 20, 30])
            .is_some());
        // row 40 never seen → miss
        assert!(c
            .lookup(SolveKind::Cross, &[10, 40, 20], &[10, 20, 30])
            .is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.stores), (1, 1, 1));
    }

    #[test]
    fn kinds_do_not_mix() {
        let c = DualCache::enabled();
        c.store(SolveKind::SelfA, &[1, 2], &[1, 2], &solve(2));
        assert!(c.lookup(SolveKind::Cross, &[1, 2], &[1, 2]).is_none());
        assert!(c.lookup(SolveKind::SelfA, &[1, 2], &[1, 2]).is_some());
    }

    #[test]
    fn lookup_respects_row_order() {
        let c = DualCache::enabled();
        let r = solve(2);
        c.store(SolveKind::SelfB, &[7, 8], &[7, 8], &r);
        let (f_fwd, _) = c.lookup(SolveKind::SelfB, &[7, 8], &[7, 8]).unwrap();
        let (f_rev, _) = c.lookup(SolveKind::SelfB, &[8, 7], &[7, 8]).unwrap();
        assert_eq!(f_fwd[0], f_rev[1]);
        assert_eq!(f_fwd[1], f_rev[0]);
    }

    #[test]
    fn gauge_recentering_keeps_sum_structure() {
        // f' = f − c, g' = g + c is the same dual solution; check the shift
        // really is applied so entries from different batches compose
        let c = DualCache::enabled();
        let mut r = solve(2);
        let shift = 3.5;
        for v in &mut r.f {
            *v += shift;
        }
        for v in &mut r.g {
            *v -= shift;
        }
        let mut r2 = r.clone();
        for v in &mut r2.f {
            *v -= 2.0 * shift;
        }
        for v in &mut r2.g {
            *v += 2.0 * shift;
        }
        c.store(SolveKind::Cross, &[0, 1], &[0, 1], &r);
        let (f_a, g_a) = c.lookup(SolveKind::Cross, &[0, 1], &[0, 1]).unwrap();
        c.invalidate_all();
        c.store(SolveKind::Cross, &[0, 1], &[0, 1], &r2);
        let (f_b, g_b) = c.lookup(SolveKind::Cross, &[0, 1], &[0, 1]).unwrap();
        for (x, y) in f_a.iter().zip(&f_b).chain(g_a.iter().zip(&g_b)) {
            assert!(
                (x - y).abs() < 1e-12,
                "gauge shift not removed: {} vs {}",
                x,
                y
            );
        }
    }

    #[test]
    fn non_finite_potentials_are_not_stored() {
        let c = DualCache::enabled();
        let mut r = solve(2);
        r.g[1] = f64::NAN;
        c.store(SolveKind::Cross, &[0, 1], &[0, 1], &r);
        assert!(c.lookup(SolveKind::Cross, &[0, 1], &[0, 1]).is_none());
        assert_eq!(c.stats().stores, 0);
    }

    #[test]
    fn invalidate_all_drops_entries_and_baselines() {
        let c = DualCache::enabled();
        c.store(SolveKind::Cross, &[0, 1], &[0, 1], &solve(2));
        c.note_cold_iters(SolveKind::Cross, 42);
        assert_eq!(c.cold_baseline(SolveKind::Cross), Some(42));
        c.invalidate_all();
        assert!(c.lookup(SolveKind::Cross, &[0, 1], &[0, 1]).is_none());
        assert_eq!(c.cold_baseline(SolveKind::Cross), None);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn clones_share_storage() {
        let c = DualCache::enabled();
        let c2 = c.clone();
        c.store(SolveKind::SelfB, &[5], &[5], &solve(1));
        assert!(c2.lookup(SolveKind::SelfB, &[5], &[5]).is_some());
        c2.invalidate_all();
        assert!(c.lookup(SolveKind::SelfB, &[5], &[5]).is_none());
    }
}
