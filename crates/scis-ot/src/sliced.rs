//! Masked sliced-Wasserstein distance — an ablation alternative to the
//! masking Sinkhorn divergence.
//!
//! `SW²(ν̂, μ̂) = E_θ[ W²₂(θ·ν̂, θ·μ̂) ]` over random unit directions θ;
//! each 1-D `W²₂` is the rank-matched mean squared difference of sorted
//! projections. Like the MS divergence it is differentiable a.e. and zero
//! iff the masked empirical measures coincide (as the number of
//! projections grows); unlike Sinkhorn it needs no iterative solver —
//! `O(T · n log n)` per evaluation. The `dim_critic` ablation uses it to
//! quantify what the *transport-plan* structure of the MS divergence buys.

use scis_tensor::{Matrix, Rng64};

/// Sliced-Wasserstein settings.
#[derive(Debug, Clone, Copy)]
pub struct SlicedOptions {
    /// Number of random projection directions `T`.
    pub n_projections: usize,
    /// Seed for the (fixed) projection directions — fixing them makes the
    /// loss a deterministic function, so gradients are well defined.
    pub seed: u64,
}

impl Default for SlicedOptions {
    fn default() -> Self {
        Self {
            n_projections: 32,
            seed: 0x51CE,
        }
    }
}

fn unit_directions(d: usize, opts: &SlicedOptions) -> Vec<Vec<f64>> {
    let mut rng = Rng64::seed_from_u64(opts.seed);
    (0..opts.n_projections)
        .map(|_| {
            let mut v: Vec<f64> = (0..d).map(|_| rng.normal()).collect();
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
            for x in &mut v {
                *x /= norm;
            }
            v
        })
        .collect()
}

/// Computes the masked sliced-W² loss `SW²/(2)` and its gradient w.r.t.
/// `xbar` (zero on masked-out cells by construction).
pub fn sliced_w2_loss_grad(
    xbar: &Matrix,
    x: &Matrix,
    mask: &Matrix,
    opts: &SlicedOptions,
) -> (f64, Matrix) {
    assert_eq!(xbar.shape(), x.shape(), "sliced_w2: data shape mismatch");
    assert_eq!(x.shape(), mask.shape(), "sliced_w2: mask shape mismatch");
    let (n, d) = x.shape();
    assert!(n > 0, "sliced_w2: empty batch");
    let dirs = unit_directions(d, opts);
    let t = dirs.len().max(1) as f64;

    let a = xbar.hadamard(mask);
    let b = x.hadamard(mask);
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(n, d);

    for theta in &dirs {
        // project
        let mut pa: Vec<(f64, usize)> = (0..n)
            .map(|i| (a.row(i).iter().zip(theta).map(|(&v, &w)| v * w).sum(), i))
            .collect();
        let mut pb: Vec<f64> = (0..n)
            .map(|j| b.row(j).iter().zip(theta).map(|(&v, &w)| v * w).sum())
            .collect();
        // total_cmp: a NaN projection (poisoned batch upstream) sorts last
        // instead of panicking mid-epoch — the guard layer rejects the
        // resulting non-finite loss at the batch boundary
        pa.sort_by(|u, v| u.0.total_cmp(&v.0));
        pb.sort_by(|u, v| u.total_cmp(v));
        // rank matching
        for (rank, &(proj_a, i)) in pa.iter().enumerate() {
            let diff = proj_a - pb[rank];
            loss += diff * diff / (n as f64 * t);
            let coeff = 2.0 * diff / (n as f64 * t);
            let grow = grad.row_mut(i);
            let mrow = mask.row(i);
            for k in 0..d {
                grow[k] += coeff * theta[k] * mrow[k];
            }
        }
    }
    (loss / 2.0, grad.scale(0.5))
}

/// Value-only convenience wrapper.
pub fn sliced_w2_loss(xbar: &Matrix, x: &Matrix, mask: &Matrix, opts: &SlicedOptions) -> f64 {
    sliced_w2_loss_grad(xbar, x, mask, opts).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> SlicedOptions {
        SlicedOptions {
            n_projections: 64,
            seed: 7,
        }
    }

    #[test]
    fn zero_on_identical_batches() {
        let mut rng = Rng64::seed_from_u64(1);
        let x = Matrix::from_fn(12, 4, |_, _| rng.uniform());
        let m = Matrix::from_fn(12, 4, |_, _| if rng.bernoulli(0.7) { 1.0 } else { 0.0 });
        let (loss, grad) = sliced_w2_loss_grad(&x, &x, &m, &opts());
        assert!(loss.abs() < 1e-15);
        assert!(grad.frobenius_norm() < 1e-12);
    }

    #[test]
    fn nan_projection_does_not_panic() {
        // regression: the rank-matching sorts used partial_cmp().expect()
        // and panicked deep inside the loss when a poisoned generator
        // produced a NaN cell; total_cmp sorts it last and the non-finite
        // loss is rejected at the guard layer instead
        let mut rng = Rng64::seed_from_u64(9);
        let mut xbar = Matrix::from_fn(10, 3, |_, _| rng.uniform());
        let x = Matrix::from_fn(10, 3, |_, _| rng.uniform());
        let m = Matrix::ones(10, 3);
        xbar[(4, 1)] = f64::NAN;
        let (loss, grad) = sliced_w2_loss_grad(&xbar, &x, &m, &opts());
        assert!(!loss.is_finite(), "NaN input must surface in the loss");
        assert_eq!(grad.rows(), 10);
    }

    #[test]
    fn positive_and_growing_with_separation() {
        let mut rng = Rng64::seed_from_u64(2);
        let x = Matrix::from_fn(16, 3, |_, _| rng.uniform() * 0.1);
        let m = Matrix::ones(16, 3);
        let near = x.map(|v| v + 0.05);
        let far = x.map(|v| v + 0.5);
        let o = opts();
        let l_near = sliced_w2_loss(&near, &x, &m, &o);
        let l_far = sliced_w2_loss(&far, &x, &m, &o);
        assert!(l_near > 0.0);
        assert!(l_far > l_near, "{} vs {}", l_far, l_near);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = Rng64::seed_from_u64(3);
        let n = 6;
        let d = 3;
        let x = Matrix::from_fn(n, d, |_, _| rng.uniform());
        let xbar = Matrix::from_fn(n, d, |_, _| rng.uniform());
        let m = Matrix::from_fn(n, d, |_, _| if rng.bernoulli(0.8) { 1.0 } else { 0.0 });
        let o = opts();
        let (_, grad) = sliced_w2_loss_grad(&xbar, &x, &m, &o);
        let h = 1e-6;
        for idx in 0..(n * d) {
            let (i, k) = (idx / d, idx % d);
            let mut plus = xbar.clone();
            plus[(i, k)] += h;
            let mut minus = xbar.clone();
            minus[(i, k)] -= h;
            let numeric = (sliced_w2_loss(&plus, &x, &m, &o) - sliced_w2_loss(&minus, &x, &m, &o))
                / (2.0 * h);
            assert!(
                (numeric - grad[(i, k)]).abs() < 1e-6 + 1e-3 * numeric.abs(),
                "grad[{},{}]: {} vs {}",
                i,
                k,
                numeric,
                grad[(i, k)]
            );
        }
    }

    #[test]
    fn masked_cells_have_zero_gradient() {
        let mut rng = Rng64::seed_from_u64(4);
        let x = Matrix::from_fn(8, 2, |_, _| rng.uniform());
        let xbar = Matrix::from_fn(8, 2, |_, _| rng.uniform());
        let m = Matrix::from_fn(8, 2, |i, j| if (i + j) % 2 == 0 { 1.0 } else { 0.0 });
        let (_, grad) = sliced_w2_loss_grad(&xbar, &x, &m, &opts());
        for i in 0..8 {
            for j in 0..2 {
                if m[(i, j)] == 0.0 {
                    assert_eq!(grad[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let mut rng = Rng64::seed_from_u64(5);
        let x = Matrix::from_fn(10, 3, |_, _| rng.uniform());
        let y = Matrix::from_fn(10, 3, |_, _| rng.uniform());
        let m = Matrix::ones(10, 3);
        let o = opts();
        assert_eq!(
            sliced_w2_loss(&x, &y, &m, &o),
            sliced_w2_loss(&x, &y, &m, &o)
        );
        // different seed → different (but finite) value
        let o2 = SlicedOptions { seed: 99, ..o };
        let v2 = sliced_w2_loss(&x, &y, &m, &o2);
        assert!(v2.is_finite());
    }

    #[test]
    fn agrees_with_exact_w2_in_one_dimension() {
        // d = 1: sliced W² along ±e1 equals the exact 1-D W² (rank match)
        let a = Matrix::from_vec(4, 1, vec![0.1, 0.4, 0.2, 0.3]);
        let b = Matrix::from_vec(4, 1, vec![0.15, 0.35, 0.25, 0.45]);
        let m = Matrix::ones(4, 1);
        let o = SlicedOptions {
            n_projections: 8,
            seed: 11,
        };
        let sw = sliced_w2_loss(&a, &b, &m, &o) * 2.0; // undo the /2
                                                       // exact: sort both, mean squared rank difference
        let exact = {
            let mut sa = [0.1, 0.2, 0.3, 0.4];
            let mut sb = [0.15, 0.25, 0.35, 0.45];
            sa.sort_by(f64::total_cmp);
            sb.sort_by(f64::total_cmp);
            sa.iter()
                .zip(&sb)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                / 4.0
        };
        assert!((sw - exact).abs() < 1e-12, "{} vs {}", sw, exact);
    }
}
