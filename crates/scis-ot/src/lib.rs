#![warn(missing_docs)]

//! `scis-ot` — entropic optimal transport and the paper's masking Sinkhorn
//! (MS) divergence.
//!
//! The DIM module of SCIS replaces a GAN imputer's Jensen–Shannon loss with
//! the divergence defined here (paper Definitions 2–4):
//!
//! * [`cost::masked_sq_cost`] — the masking cost matrix
//!   `C_m[i][j] = ‖m_i ⊙ x̄_i − m_j ⊙ x_j‖²` (Definition 2);
//! * [`sinkhorn::sinkhorn_uniform`] — log-domain Sinkhorn iterations solving
//!   the entropic-regularized plan of Definition 3;
//! * [`divergence::ms_divergence`] — the debiased divergence
//!   `S_m(ν‖μ) = 2·OT_λ(ν,μ) − OT_λ(ν,ν) − OT_λ(μ,μ)` (Definition 4);
//! * [`grad::ms_loss_grad`] — the barycentric-map gradient of Proposition 1,
//!   verified against finite differences in tests.

pub mod cache;
pub mod cost;
pub mod divergence;
pub mod grad;
pub mod sinkhorn;
pub mod sliced;

pub use cache::{CacheStats, DualCache, SolveKind};
pub use cost::{
    masked_self_cost, masked_self_cost_with, masked_sq_cost, masked_sq_cost_decomposed,
    masked_sq_cost_decomposed_p, masked_sq_cost_with, MaskedRows,
};
pub use divergence::{ms_divergence, ms_loss, MsDivergenceValue};
pub use grad::{
    cross_ot_grad_with, ms_loss_grad, ms_loss_grad_accel, ms_loss_grad_tracked, self_ot_grad_with,
    AccelContext,
};
pub use sinkhorn::{
    sinkhorn, sinkhorn_uniform, try_sinkhorn, try_sinkhorn_escalated, try_sinkhorn_uniform,
    try_sinkhorn_uniform_eps_scaling, try_sinkhorn_uniform_escalated,
    try_sinkhorn_uniform_warm_escalated, try_sinkhorn_warm, try_sinkhorn_warm_escalated,
    EscalationPolicy, SinkhornError, SinkhornOptions, SinkhornResult, SolveStats,
};
pub use sliced::{sliced_w2_loss, sliced_w2_loss_grad, SlicedOptions};
