//! Gradient of the MS divergence w.r.t. the reconstructed batch
//! (paper Proposition 1, extended to the debiased divergence).
//!
//! For the entropic OT value `OT_λ(ν̂, μ̂) = min_P ⟨P, C⟩ + λΣP log P`, the
//! envelope theorem gives the exact derivative w.r.t. anything entering the
//! cost matrix: `∂OT/∂x̄_i = Σ_j P*_ij ∂C_ij/∂x̄_i`, with the optimal plan
//! held fixed. With the masked squared cost this is the barycentric-map form
//! of Proposition 1:
//!
//! ```text
//! ∂OT/∂x̄_i = Σ_j P*_ij · 2 (m_i ⊙ x̄_i − m_j ⊙ x_j) ⊙ m_i
//! ```
//!
//! The self term `OT_λ(ν̂, ν̂)` contributes twice (x̄ appears in both
//! marginals; plan and cost are symmetric). Gradients here are verified
//! against central finite differences of the actual Sinkhorn values.

use crate::cache::{DualCache, SolveKind};
use crate::cost::{
    masked_self_cost_with, masked_sq_cost_decomposed_p, masked_sq_cost_with, MaskedRows,
};
use crate::sinkhorn::{
    sinkhorn_uniform, try_sinkhorn_uniform_eps_scaling, try_sinkhorn_uniform_escalated,
    try_sinkhorn_uniform_warm_escalated, EscalationPolicy, SinkhornError, SinkhornOptions,
    SinkhornResult, SolveStats,
};
use scis_tensor::exec::for_each_row;
use scis_tensor::par::PAR_MIN_WORK;
use scis_tensor::{ExecPolicy, Matrix};

/// Gradient of the *cross* entropic OT value `OT_λ^m(x̄, x)` w.r.t. `x̄`.
///
/// Serial convenience wrapper around [`cross_ot_grad_with`].
pub fn cross_ot_grad(xbar: &Matrix, x: &Matrix, mask: &Matrix, plan: &Matrix) -> Matrix {
    cross_ot_grad_with(xbar, x, mask, plan, ExecPolicy::Serial)
}

/// Policy-aware [`cross_ot_grad`]: gradient rows are independent, so large
/// batches are computed in parallel over row blocks, bit-identical to the
/// serial loop.
pub fn cross_ot_grad_with(
    xbar: &Matrix,
    x: &Matrix,
    mask: &Matrix,
    plan: &Matrix,
    exec: ExecPolicy,
) -> Matrix {
    let (n, d) = xbar.shape();
    assert_eq!(
        plan.shape(),
        (n, x.rows()),
        "cross_ot_grad: plan shape mismatch"
    );
    let mut grad = Matrix::zeros(n, d);
    if d == 0 {
        return grad;
    }
    let threads = if n * x.rows() * d < PAR_MIN_WORK {
        1
    } else {
        exec.workers(n)
    };
    for_each_row(grad.as_mut_slice(), d, threads, |i, grow| {
        let mi = mask.row(i);
        let xi = xbar.row(i);
        let prow = plan.row(i);
        for (j, &p) in prow.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let mj = mask.row(j);
            let xj = x.row(j);
            for k in 0..d {
                grow[k] += p * 2.0 * (mi[k] * xi[k] - mj[k] * xj[k]) * mi[k];
            }
        }
    });
    grad
}

/// Gradient of the *self* entropic OT value `OT_λ^m(x̄, x̄)` w.r.t. `x̄`
/// (both marginals depend on `x̄`, hence the factor 2).
pub fn self_ot_grad(xbar: &Matrix, mask: &Matrix, plan: &Matrix) -> Matrix {
    cross_ot_grad(xbar, xbar, mask, plan).scale(2.0)
}

/// Policy-aware [`self_ot_grad`].
pub fn self_ot_grad_with(xbar: &Matrix, mask: &Matrix, plan: &Matrix, exec: ExecPolicy) -> Matrix {
    cross_ot_grad_with(xbar, xbar, mask, plan, exec).scale(2.0)
}

/// Computes the MS-divergence imputation loss `L_s = S_m / (2n)` and its
/// gradient w.r.t. the reconstructed batch `xbar`, in one pass.
///
/// Runs three Sinkhorn solves (cross, self-x̄, self-x; the self-x solve only
/// feeds the value, not the gradient).
pub fn ms_loss_grad(
    xbar: &Matrix,
    x: &Matrix,
    mask: &Matrix,
    opts: &SinkhornOptions,
) -> (f64, Matrix) {
    assert_eq!(xbar.shape(), x.shape(), "ms_loss_grad: data shape mismatch");
    assert_eq!(x.shape(), mask.shape(), "ms_loss_grad: mask shape mismatch");
    let n = x.rows().max(1) as f64;

    let cross_cost = masked_sq_cost_with(xbar, mask, x, mask, opts.exec);
    let self_a_cost = masked_self_cost_with(xbar, mask, opts.exec);
    let self_b_cost = masked_self_cost_with(x, mask, opts.exec);
    let cross = sinkhorn_uniform(&cross_cost, opts);
    let self_a = sinkhorn_uniform(&self_a_cost, opts);
    let self_b = sinkhorn_uniform(&self_b_cost, opts);

    let value = 2.0 * cross.reg_value - self_a.reg_value - self_b.reg_value;
    let loss = value / (2.0 * n);

    let g_cross = cross_ot_grad_with(xbar, x, mask, &cross.plan, opts.exec);
    let g_self = self_ot_grad_with(xbar, mask, &self_a.plan, opts.exec);
    // dS/dx̄ = 2·g_cross − g_self ; dL/dx̄ = dS/dx̄ / (2n)
    let mut grad = g_cross.scale(2.0);
    grad.axpy(-1.0, &g_self);
    (loss, grad.scale(1.0 / (2.0 * n)))
}

/// Fault-tolerant variant of [`ms_loss_grad`]: validates every Sinkhorn
/// input (surfacing poisoned batches as [`SinkhornError`] instead of NaN
/// propagation or panics) and escalates non-converged solves through
/// ε-scaling per `policy`, reporting the retry accounting.
pub fn ms_loss_grad_tracked(
    xbar: &Matrix,
    x: &Matrix,
    mask: &Matrix,
    opts: &SinkhornOptions,
    policy: &EscalationPolicy,
) -> Result<(f64, Matrix, SolveStats), SinkhornError> {
    assert_eq!(xbar.shape(), x.shape(), "ms_loss_grad: data shape mismatch");
    assert_eq!(x.shape(), mask.shape(), "ms_loss_grad: mask shape mismatch");
    let n = x.rows().max(1) as f64;
    let mut stats = SolveStats::default();

    let cross_cost = masked_sq_cost_with(xbar, mask, x, mask, opts.exec);
    let self_a_cost = masked_self_cost_with(xbar, mask, opts.exec);
    let self_b_cost = masked_self_cost_with(x, mask, opts.exec);
    let (cross, s1) = try_sinkhorn_uniform_escalated(&cross_cost, opts, policy)?;
    let (self_a, s2) = try_sinkhorn_uniform_escalated(&self_a_cost, opts, policy)?;
    let (self_b, s3) = try_sinkhorn_uniform_escalated(&self_b_cost, opts, policy)?;
    stats.absorb(s1);
    stats.absorb(s2);
    stats.absorb(s3);

    let value = 2.0 * cross.reg_value - self_a.reg_value - self_b.reg_value;
    let loss = value / (2.0 * n);

    let g_cross = cross_ot_grad_with(xbar, x, mask, &cross.plan, opts.exec);
    let g_self = self_ot_grad_with(xbar, mask, &self_a.plan, opts.exec);
    let mut grad = g_cross.scale(2.0);
    grad.axpy(-1.0, &g_self);
    Ok((loss, grad.scale(1.0 / (2.0 * n)), stats))
}

/// Hot-path context for [`ms_loss_grad_accel`]: the shared dual cache, the
/// dataset row identities of the batch, and the acceleration knobs.
#[derive(Debug, Clone, Copy)]
pub struct AccelContext<'a> {
    /// Shared warm-start cache (may be [`DualCache::off`], in which case
    /// every solve runs cold, exactly as in [`ms_loss_grad_tracked`]).
    pub cache: &'a DualCache,
    /// Dataset row indices backing this batch, in batch order — the cache
    /// keys. Must have one entry per batch row.
    pub rows: &'a [usize],
    /// Pre-gathered data-side masked rows (`X ⊙ M` for this batch) when the
    /// caller amortized the masking across epochs; `None` recomputes here.
    /// Only consulted when `decomposed_cost` is set.
    pub data_side: Option<&'a MaskedRows>,
    /// Build costs with the decomposed GEMM kernel
    /// ([`masked_sq_cost_decomposed`]) instead of the scalar distance loop.
    pub decomposed_cost: bool,
    /// Anneal *cold* solves through ε-scaling. A cache miss is exactly the
    /// cold-start situation (first epoch, or right after an invalidation),
    /// so the flag naturally applies only there.
    pub eps_scale_cold: bool,
    /// Store solved duals back into the cache. The SSE Monte-Carlo fan-out
    /// sets this to `false` and reuses the training-phase cache read-only.
    pub store: bool,
}

/// One uniform-marginal solve through the cache: warm-start on a full-row
/// hit (degrading to cold if the cached potentials turn out stale), cold
/// otherwise, recording warm/saved-iteration accounting.
fn solve_cached(
    cost: &Matrix,
    kind: SolveKind,
    ctx: &AccelContext<'_>,
    opts: &SinkhornOptions,
    policy: &EscalationPolicy,
) -> Result<(SinkhornResult, SolveStats), SinkhornError> {
    if let Some((f0, g0)) = ctx.cache.lookup(kind, ctx.rows, ctx.rows) {
        // a failed warm attempt (stale shape, non-finite entry) degrades to
        // the cold path below instead of aborting the guarded run
        if let Ok((r, mut s)) = try_sinkhorn_uniform_warm_escalated(cost, f0, g0, opts, policy) {
            if let Some(base) = ctx.cache.cold_baseline(kind) {
                s.iters_saved = base.saturating_sub(r.iterations);
            }
            if ctx.store {
                ctx.cache.store(kind, ctx.rows, ctx.rows, &r);
            }
            return Ok((r, s));
        }
    }
    let (r, s) = if ctx.eps_scale_cold {
        try_sinkhorn_uniform_eps_scaling(cost, opts, policy.base_stages.max(2))?
    } else {
        try_sinkhorn_uniform_escalated(cost, opts, policy)?
    };
    ctx.cache.note_cold_iters(kind, r.iterations);
    if ctx.store {
        ctx.cache.store(kind, ctx.rows, ctx.rows, &r);
    }
    Ok((r, s))
}

/// Accelerated [`ms_loss_grad_tracked`]: identical mathematics (same three
/// solves, same envelope-theorem gradient) with the Sinkhorn hot path
/// rerouted through the warm-start dual cache and, optionally, the
/// decomposed GEMM cost kernel.
///
/// `cross_cost` lets the caller hand over an already-built cross cost matrix
/// (DIM builds one anyway to resolve a relative λ) so it is not built twice;
/// it must match the kernel selected by `ctx.decomposed_cost`.
///
/// Warm starts never change the fixed point — only the start — so results
/// agree with the cold path within the solver tolerance, and remain
/// bit-identical across thread counts for a fixed configuration.
pub fn ms_loss_grad_accel(
    xbar: &Matrix,
    x: &Matrix,
    mask: &Matrix,
    opts: &SinkhornOptions,
    policy: &EscalationPolicy,
    ctx: &AccelContext<'_>,
    cross_cost: Option<Matrix>,
) -> Result<(f64, Matrix, SolveStats), SinkhornError> {
    assert_eq!(xbar.shape(), x.shape(), "ms_loss_grad: data shape mismatch");
    assert_eq!(x.shape(), mask.shape(), "ms_loss_grad: mask shape mismatch");
    assert_eq!(
        ctx.rows.len(),
        x.rows(),
        "ms_loss_grad_accel: row-key count must match the batch"
    );
    let n = x.rows().max(1) as f64;
    let mut stats = SolveStats::default();

    let (cross_cost, self_a_cost, self_b_cost) = if ctx.decomposed_cost {
        let gen_side = MaskedRows::new(xbar, mask);
        let data_owned;
        let data_side = match ctx.data_side {
            Some(d) => d,
            None => {
                data_owned = MaskedRows::new(x, mask);
                &data_owned
            }
        };
        (
            cross_cost.unwrap_or_else(|| {
                masked_sq_cost_decomposed_p(&gen_side, data_side, opts.exec, opts.precision)
            }),
            masked_sq_cost_decomposed_p(&gen_side, &gen_side, opts.exec, opts.precision),
            masked_sq_cost_decomposed_p(data_side, data_side, opts.exec, opts.precision),
        )
    } else {
        (
            cross_cost.unwrap_or_else(|| masked_sq_cost_with(xbar, mask, x, mask, opts.exec)),
            masked_self_cost_with(xbar, mask, opts.exec),
            masked_self_cost_with(x, mask, opts.exec),
        )
    };

    let (cross, s1) = solve_cached(&cross_cost, SolveKind::Cross, ctx, opts, policy)?;
    let (self_a, s2) = solve_cached(&self_a_cost, SolveKind::SelfA, ctx, opts, policy)?;
    let (self_b, s3) = solve_cached(&self_b_cost, SolveKind::SelfB, ctx, opts, policy)?;
    stats.absorb(s1);
    stats.absorb(s2);
    stats.absorb(s3);

    let value = 2.0 * cross.reg_value - self_a.reg_value - self_b.reg_value;
    let loss = value / (2.0 * n);

    let g_cross = cross_ot_grad_with(xbar, x, mask, &cross.plan, opts.exec);
    let g_self = self_ot_grad_with(xbar, mask, &self_a.plan, opts.exec);
    let mut grad = g_cross.scale(2.0);
    grad.axpy(-1.0, &g_self);
    Ok((loss, grad.scale(1.0 / (2.0 * n)), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::divergence::ms_loss;
    use scis_tensor::Rng64;

    fn opts() -> SinkhornOptions {
        SinkhornOptions {
            lambda: 0.5,
            max_iters: 5000,
            tol: 1e-12,
            ..Default::default()
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = Rng64::seed_from_u64(11);
        let n = 6;
        let d = 3;
        let x = Matrix::from_fn(n, d, |_, _| rng.uniform());
        let xbar = Matrix::from_fn(n, d, |_, _| rng.uniform());
        let mask = Matrix::from_fn(n, d, |_, _| if rng.bernoulli(0.7) { 1.0 } else { 0.0 });
        let o = opts();
        let (_, grad) = ms_loss_grad(&xbar, &x, &mask, &o);

        let h = 1e-5;
        for idx in 0..(n * d) {
            let (i, k) = (idx / d, idx % d);
            let mut plus = xbar.clone();
            plus[(i, k)] += h;
            let mut minus = xbar.clone();
            minus[(i, k)] -= h;
            let numeric =
                (ms_loss(&plus, &x, &mask, &o) - ms_loss(&minus, &x, &mask, &o)) / (2.0 * h);
            let analytic = grad[(i, k)];
            assert!(
                (numeric - analytic).abs() < 1e-5 + 0.02 * numeric.abs(),
                "grad[{},{}]: numeric {} vs analytic {}",
                i,
                k,
                numeric,
                analytic
            );
        }
    }

    #[test]
    fn gradient_zero_on_masked_entries() {
        let mut rng = Rng64::seed_from_u64(12);
        let x = Matrix::from_fn(5, 2, |_, _| rng.uniform());
        let xbar = Matrix::from_fn(5, 2, |_, _| rng.uniform());
        let mask = Matrix::from_fn(5, 2, |i, j| if (i + j) % 2 == 0 { 1.0 } else { 0.0 });
        let (_, grad) = ms_loss_grad(&xbar, &x, &mask, &opts());
        for i in 0..5 {
            for j in 0..2 {
                if mask[(i, j)] == 0.0 {
                    assert_eq!(grad[(i, j)], 0.0, "gradient leaked into missing cell");
                }
            }
        }
    }

    #[test]
    fn gradient_vanishes_at_identical_batches() {
        let mut rng = Rng64::seed_from_u64(13);
        let x = Matrix::from_fn(6, 2, |_, _| rng.uniform());
        let mask = Matrix::ones(6, 2);
        let (loss, grad) = ms_loss_grad(&x, &x, &mask, &opts());
        assert!(loss.abs() < 1e-8);
        // at ν̂ = μ̂ the cross and self plans coincide, so 2g_cross = g_self
        assert!(
            grad.frobenius_norm() < 1e-6,
            "‖grad‖ = {}",
            grad.frobenius_norm()
        );
    }

    #[test]
    fn accel_off_cache_matches_tracked_exactly() {
        // with the cache off and the loop kernel, the accel path must be
        // bit-identical to ms_loss_grad_tracked (same solves, same order)
        let mut rng = Rng64::seed_from_u64(21);
        let n = 8;
        let x = Matrix::from_fn(n, 3, |_, _| rng.uniform());
        let xbar = Matrix::from_fn(n, 3, |_, _| rng.uniform());
        let mask = Matrix::from_fn(n, 3, |_, _| if rng.bernoulli(0.7) { 1.0 } else { 0.0 });
        let o = opts();
        let policy = EscalationPolicy::default();
        let (l1, g1, s1) = ms_loss_grad_tracked(&xbar, &x, &mask, &o, &policy).unwrap();
        let rows: Vec<usize> = (0..n).collect();
        let cache = crate::cache::DualCache::off();
        let ctx = AccelContext {
            cache: &cache,
            rows: &rows,
            data_side: None,
            decomposed_cost: false,
            eps_scale_cold: false,
            store: true,
        };
        let (l2, g2, s2) = ms_loss_grad_accel(&xbar, &x, &mask, &o, &policy, &ctx, None).unwrap();
        assert_eq!(l1.to_bits(), l2.to_bits());
        for (a, b) in g1.as_slice().iter().zip(g2.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(s1, s2);
    }

    #[test]
    fn accel_warm_start_agrees_with_cold_within_tol() {
        let mut rng = Rng64::seed_from_u64(22);
        let n = 10;
        let x = Matrix::from_fn(n, 3, |_, _| rng.uniform());
        let xbar = Matrix::from_fn(n, 3, |_, _| rng.uniform());
        let mask = Matrix::from_fn(n, 3, |_, _| if rng.bernoulli(0.7) { 1.0 } else { 0.0 });
        let o = opts();
        let policy = EscalationPolicy::default();
        let (cold_loss, cold_grad, _) =
            ms_loss_grad_tracked(&xbar, &x, &mask, &o, &policy).unwrap();

        let rows: Vec<usize> = (0..n).collect();
        let cache = crate::cache::DualCache::enabled();
        let ctx = AccelContext {
            cache: &cache,
            rows: &rows,
            data_side: None,
            decomposed_cost: false,
            eps_scale_cold: false,
            store: true,
        };
        // first pass populates the cache (cold), second warm-starts
        let (_, _, s_first) =
            ms_loss_grad_accel(&xbar, &x, &mask, &o, &policy, &ctx, None).unwrap();
        assert_eq!(s_first.warm_starts, 0);
        let (warm_loss, warm_grad, s_warm) =
            ms_loss_grad_accel(&xbar, &x, &mask, &o, &policy, &ctx, None).unwrap();
        assert_eq!(s_warm.warm_starts, 3, "all three solves should warm-start");
        assert!(
            s_warm.iterations <= s_first.iterations,
            "warm {} vs cold {} iterations",
            s_warm.iterations,
            s_first.iterations
        );
        assert!((warm_loss - cold_loss).abs() < 1e-6);
        for (a, b) in warm_grad.as_slice().iter().zip(cold_grad.as_slice()) {
            assert!((a - b).abs() < 1e-6, "{} vs {}", a, b);
        }
    }

    #[test]
    fn accel_decomposed_cost_matches_loop_cost_closely() {
        let mut rng = Rng64::seed_from_u64(23);
        let n = 9;
        let x = Matrix::from_fn(n, 4, |_, _| rng.uniform());
        let xbar = Matrix::from_fn(n, 4, |_, _| rng.uniform());
        let mask = Matrix::from_fn(n, 4, |_, _| if rng.bernoulli(0.6) { 1.0 } else { 0.0 });
        let o = opts();
        let policy = EscalationPolicy::default();
        let (l_loop, g_loop, _) = ms_loss_grad_tracked(&xbar, &x, &mask, &o, &policy).unwrap();
        let rows: Vec<usize> = (0..n).collect();
        let cache = crate::cache::DualCache::off();
        let data_side = MaskedRows::new(&x, &mask);
        let ctx = AccelContext {
            cache: &cache,
            rows: &rows,
            data_side: Some(&data_side),
            decomposed_cost: true,
            eps_scale_cold: false,
            store: false,
        };
        let (l_dec, g_dec, _) =
            ms_loss_grad_accel(&xbar, &x, &mask, &o, &policy, &ctx, None).unwrap();
        assert!((l_loop - l_dec).abs() < 1e-7, "{} vs {}", l_loop, l_dec);
        for (a, b) in g_loop.as_slice().iter().zip(g_dec.as_slice()) {
            assert!((a - b).abs() < 1e-7, "{} vs {}", a, b);
        }
    }

    #[test]
    fn example1_gradient_is_linear_in_theta() {
        // Paper's "vanishing gradient" contrast: the MS loss derivative in
        // the Dirac example is ≈ 4qθ / (2n) per coordinate — linear, nonzero
        // for θ ≠ 0, unlike the JS divergence whose gradient is 0 a.e.
        let n = 100;
        let q = 0.5;
        let mut rng = Rng64::seed_from_u64(14);
        let mask = Matrix::from_fn(n, 1, |_, _| if rng.bernoulli(q) { 1.0 } else { 0.0 });
        let x0 = Matrix::zeros(n, 1);
        // λ ≪ θ² so the plans sit in the block-diagonal regime where the
        // paper's closed form S = 2qθ² + const holds.
        let o = SinkhornOptions {
            lambda: 0.01,
            max_iters: 20_000,
            tol: 1e-12,
            ..Default::default()
        };
        let grad_at = |theta: f64| {
            let xt = Matrix::full(n, 1, theta);
            let (_, g) = ms_loss_grad(&xt, &x0, &mask, &o);
            g.sum() // total derivative dL/dθ (all coords move together)
        };
        let g1 = grad_at(0.5);
        let g2 = grad_at(1.0);
        assert!(g1 > 1e-4, "gradient vanished: {}", g1);
        // linearity: doubling θ ≈ doubles the gradient
        assert!((g2 / g1 - 2.0).abs() < 0.25, "ratio {}", g2 / g1);
    }
}
