//! Log-domain Sinkhorn iterations for entropic optimal transport.
//!
//! Solves the masking regularized optimal transport problem of the paper's
//! Definition 3:
//!
//! ```text
//! OT_λ(a, b) = min_{P ∈ Γ(a,b)} ⟨P, C⟩ + λ Σ_ij P_ij log P_ij
//! ```
//!
//! The iterations run entirely on dual potentials `(f, g)` with log-sum-exp
//! reductions, so they are stable for any `λ > 0` — including the λ = 130 the
//! paper uses on [0,1]-normalized data *and* tiny λ where the kernel
//! `exp(−C/λ)` would underflow in the primal domain.

use scis_tensor::exec::{for_each_row, for_row_spans};
use scis_tensor::fastmath::{fast_exp, fast_exp_shifted};
use scis_tensor::ops::to_f32_vec;
use scis_tensor::{ExecPolicy, Matrix, Precision, RunDeadline};

/// Minimum number of cost-matrix cells (`n · m`) before the per-iteration
/// sweeps go parallel: below this, thread-spawn overhead dominates, and DIM's
/// per-batch solves (≤ a few hundred rows) stay on the serial fast path.
const PAR_MIN_CELLS: usize = 1 << 15;

/// Tuning knobs for the Sinkhorn solver.
#[derive(Debug, Clone)]
pub struct SinkhornOptions {
    /// Entropic regularization strength λ (paper hyper-parameter; 130 in the
    /// experiments).
    pub lambda: f64,
    /// Maximum number of (f, g) sweeps.
    pub max_iters: usize,
    /// Convergence threshold on the L1 marginal violation of the plan.
    pub tol: f64,
    /// Execution policy for the row/column sweeps. Parallelism never changes
    /// results — sweeps partition rows across workers with ordered
    /// reductions, so solves are bit-identical under any policy.
    pub exec: ExecPolicy,
    /// Cooperative run deadline, polled at sweep boundaries. An expired
    /// deadline stops the solve early (reported as unconverged); the default
    /// token never expires.
    pub deadline: RunDeadline,
    /// Compute precision of the per-iteration sweeps. The default
    /// [`Precision::F64`] is the bit-stable reference path. Under
    /// [`Precision::F32`] the cost matrix is stored as `f32`, `C/λ` becomes
    /// a multiply by `1/λ`, and the sweep exponentials use the polynomial
    /// [`fast_exp`] — accumulators and potentials stay `f64`, the final plan
    /// is always materialized from the full-precision cost with libm `exp`,
    /// and results remain bit-identical across thread counts *within* the
    /// mode. Opt-in via `AccelConfig::f32_compute` upstream.
    pub precision: Precision,
}

impl Default for SinkhornOptions {
    fn default() -> Self {
        Self {
            lambda: 130.0,
            max_iters: 500,
            tol: 1e-9,
            exec: ExecPolicy::default(),
            deadline: RunDeadline::none(),
            precision: Precision::default(),
        }
    }
}

impl SinkhornOptions {
    /// Convenience constructor fixing λ, keeping default iteration limits.
    pub fn with_lambda(lambda: f64) -> Self {
        Self {
            lambda,
            ..Self::default()
        }
    }

    /// Fluent setter for [`SinkhornOptions::lambda`].
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Fluent setter for [`SinkhornOptions::max_iters`].
    pub fn max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Fluent setter for [`SinkhornOptions::tol`].
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Fluent setter for [`SinkhornOptions::exec`].
    pub fn exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Fluent setter for [`SinkhornOptions::deadline`].
    pub fn deadline(mut self, deadline: RunDeadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Fluent setter for [`SinkhornOptions::precision`].
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }
}

/// Output of a Sinkhorn solve.
#[derive(Debug, Clone)]
pub struct SinkhornResult {
    /// Dual potential on the first marginal (length `n`).
    pub f: Vec<f64>,
    /// Dual potential on the second marginal (length `m`).
    pub g: Vec<f64>,
    /// Optimal transport plan `P` (`n x m`, rows sum to `a`, cols to `b`).
    pub plan: Matrix,
    /// Sharp transport cost `⟨P, C⟩`.
    pub transport_cost: f64,
    /// Regularized objective `⟨P, C⟩ + λ Σ P log P` (Definition 3's value).
    pub reg_value: f64,
    /// Number of sweeps performed.
    pub iterations: usize,
    /// Whether the marginal tolerance was met within `max_iters`.
    pub converged: bool,
}

/// Structured failure from a fallible Sinkhorn solve.
///
/// Every condition here was previously an `assert!`/`debug_assert!` panic;
/// [`try_sinkhorn`] surfaces them as values so callers embedded in long
/// training runs can degrade gracefully instead of aborting the process.
#[derive(Debug, Clone, PartialEq)]
pub enum SinkhornError {
    /// A marginal or potential vector length disagrees with the cost shape.
    DimensionMismatch {
        /// Which input was mis-sized.
        what: &'static str,
        /// Length found.
        got: usize,
        /// Length required by the cost matrix.
        expected: usize,
    },
    /// λ ≤ 0 or non-finite — the entropic problem is undefined.
    BadLambda {
        /// The offending λ.
        lambda: f64,
    },
    /// A marginal is not a probability vector (negative/non-finite entries,
    /// or mass not summing to 1 within tolerance), or a warm-start potential
    /// vector carries non-finite entries.
    BadMarginal {
        /// `"a"`, `"b"`, or `"warm-start potentials"`.
        side: &'static str,
        /// Human-readable diagnosis.
        reason: &'static str,
    },
    /// The cost matrix contains a NaN/Inf entry — typically a poisoned
    /// generator batch upstream.
    NonFiniteCost {
        /// Row of the first offending entry.
        row: usize,
        /// Column of the first offending entry.
        col: usize,
    },
}

impl std::fmt::Display for SinkhornError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SinkhornError::DimensionMismatch {
                what,
                got,
                expected,
            } => {
                write!(
                    f,
                    "sinkhorn: {} length mismatch ({} vs expected {})",
                    what, got, expected
                )
            }
            SinkhornError::BadLambda { lambda } => {
                write!(
                    f,
                    "sinkhorn: lambda must be positive and finite, got {}",
                    lambda
                )
            }
            SinkhornError::BadMarginal { side, reason } => {
                write!(
                    f,
                    "sinkhorn: marginal {:?} is not a probability vector ({})",
                    side, reason
                )
            }
            SinkhornError::NonFiniteCost { row, col } => {
                write!(f, "sinkhorn: non-finite cost entry at ({}, {})", row, col)
            }
        }
    }
}

impl std::error::Error for SinkhornError {}

/// Validates solver inputs, returning the first structural defect found.
fn validate_inputs(
    cost: &Matrix,
    a: &[f64],
    b: &[f64],
    opts: &SinkhornOptions,
) -> Result<(), SinkhornError> {
    let (n, m) = cost.shape();
    if a.len() != n {
        return Err(SinkhornError::DimensionMismatch {
            what: "first marginal",
            got: a.len(),
            expected: n,
        });
    }
    if b.len() != m {
        return Err(SinkhornError::DimensionMismatch {
            what: "second marginal",
            got: b.len(),
            expected: m,
        });
    }
    if !(opts.lambda.is_finite() && opts.lambda > 0.0) {
        return Err(SinkhornError::BadLambda {
            lambda: opts.lambda,
        });
    }
    for (side, w) in [("a", a), ("b", b)] {
        let mut sum = 0.0;
        for &v in w {
            if !v.is_finite() {
                return Err(SinkhornError::BadMarginal {
                    side,
                    reason: "non-finite entry",
                });
            }
            if v < 0.0 {
                return Err(SinkhornError::BadMarginal {
                    side,
                    reason: "negative entry",
                });
            }
            sum += v;
        }
        if (sum - 1.0).abs() > 1e-6 {
            return Err(SinkhornError::BadMarginal {
                side,
                reason: "mass does not sum to 1",
            });
        }
        if w.iter().all(|&v| v == 0.0) {
            return Err(SinkhornError::BadMarginal {
                side,
                reason: "all entries zero",
            });
        }
    }
    for i in 0..n {
        for (j, &c) in cost.row(i).iter().enumerate() {
            if !c.is_finite() {
                return Err(SinkhornError::NonFiniteCost { row: i, col: j });
            }
        }
    }
    Ok(())
}

/// Numerically stable `log Σ exp(t_j)` over a materialized term buffer.
///
/// The sequential ascending max fold and the ascending `exp` sum reproduce,
/// bit for bit, the historical two-pass iterator formulation — the buffer
/// only avoids evaluating each term's arithmetic twice. The max fold stays
/// strictly sequential on purpose: `f64::max` is not associative around
/// signed zeros, so a multi-lane max could change which representative wins.
#[inline]
fn lse_terms(terms: &[f64]) -> f64 {
    let mut max = f64::NEG_INFINITY;
    for &t in terms {
        max = f64::max(max, t);
    }
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let mut sum = 0.0;
    for &t in terms {
        sum += (t - max).exp();
    }
    max + sum.ln()
}

/// [`lse_terms`] with the polynomial [`fast_exp`] — accelerated-mode only.
///
/// Three departures from the reference, all legal in accelerated mode
/// (each row is still produced by exactly one worker with a fixed
/// reduction structure, so results stay bit-identical across thread
/// counts *within* the mode):
///
/// * the max fold runs over four independent lanes, breaking the
///   one-`maxsd`-latency-per-element chain;
/// * exponentiation ([`fast_exp_shifted`]) runs as its own in-place pass
///   so the polynomial pipelines/vectorizes across the row instead of
///   serializing on the sum accumulator (the buffer is consumed);
/// * the `exp` sum uses the same four-accumulator shape as `ops::dot`.
#[inline]
fn lse_terms_fast(terms: &mut [f64]) -> f64 {
    let (mut m0, mut m1, mut m2, mut m3) = (
        f64::NEG_INFINITY,
        f64::NEG_INFINITY,
        f64::NEG_INFINITY,
        f64::NEG_INFINITY,
    );
    let mut chunks = terms.chunks_exact(4);
    for ch in &mut chunks {
        m0 = f64::max(m0, ch[0]);
        m1 = f64::max(m1, ch[1]);
        m2 = f64::max(m2, ch[2]);
        m3 = f64::max(m3, ch[3]);
    }
    for &t in chunks.remainder() {
        m0 = f64::max(m0, t);
    }
    let max = f64::max(f64::max(m0, m1), f64::max(m2, m3));
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    fast_exp_shifted(terms, max);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    let mut chunks = terms.chunks_exact(4);
    for ch in &mut chunks {
        s0 += ch[0];
        s1 += ch[1];
        s2 += ch[2];
        s3 += ch[3];
    }
    for &t in chunks.remainder() {
        s0 += t;
    }
    let sum = (s0 + s1) + (s2 + s3);
    max + sum.ln()
}

/// Runs log-domain Sinkhorn for marginals `a` (len n) and `b` (len m) and
/// cost matrix `cost` (`n x m`).
///
/// ```
/// use scis_ot::{sinkhorn, SinkhornOptions};
/// use scis_tensor::Matrix;
///
/// let cost = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
/// let r = sinkhorn(&cost, &[0.5, 0.5], &[0.5, 0.5],
///                  &SinkhornOptions::default().lambda(0.05).max_iters(1000));
/// assert!(r.converged);
/// // identity matching is free -> transport cost near zero
/// assert!(r.transport_cost < 1e-3);
/// ```
///
/// # Panics
/// Panics on dimension mismatch, non-positive λ, or weights that do not
/// form probability vectors (up to 1e-6). Use [`try_sinkhorn`] for a
/// fallible variant that reports these as [`SinkhornError`] values.
pub fn sinkhorn(cost: &Matrix, a: &[f64], b: &[f64], opts: &SinkhornOptions) -> SinkhornResult {
    try_sinkhorn(cost, a, b, opts).unwrap_or_else(|e| panic!("{}", e))
}

/// Fallible Sinkhorn solve: validates the cost matrix, marginals, and λ up
/// front and returns a structured [`SinkhornError`] instead of panicking.
pub fn try_sinkhorn(
    cost: &Matrix,
    a: &[f64],
    b: &[f64],
    opts: &SinkhornOptions,
) -> Result<SinkhornResult, SinkhornError> {
    validate_inputs(cost, a, b, opts)?;
    Ok(sinkhorn_impl(
        cost,
        a,
        b,
        vec![0.0; a.len()],
        vec![0.0; b.len()],
        opts,
    ))
}

fn sinkhorn_impl(
    cost: &Matrix,
    a: &[f64],
    b: &[f64],
    f_init: Vec<f64>,
    g_init: Vec<f64>,
    opts: &SinkhornOptions,
) -> SinkhornResult {
    let (n, m) = cost.shape();
    debug_assert_eq!(f_init.len(), n, "sinkhorn: f potential length mismatch");
    debug_assert_eq!(g_init.len(), m, "sinkhorn: g potential length mismatch");

    let lam = opts.lambda;
    let log_a: Vec<f64> = a
        .iter()
        .map(|&w| if w > 0.0 { w.ln() } else { f64::NEG_INFINITY })
        .collect();
    let log_b: Vec<f64> = b
        .iter()
        .map(|&w| if w > 0.0 { w.ln() } else { f64::NEG_INFINITY })
        .collect();

    let mut f = f_init;
    let mut g = g_init;
    let mut iterations = 0;
    let mut converged = false;

    // Sweeps partition independent rows (resp. columns) across scoped
    // workers; each entry is produced by exactly one worker with the same
    // arithmetic as the serial loop, so solves are bit-identical under any
    // thread count. Small problems stay serial (see PAR_MIN_CELLS).
    let threads = if n * m < PAR_MIN_CELLS {
        1
    } else {
        opts.exec.resolve()
    };
    let mut row_violation = vec![0.0; n];

    // A transposed copy of the cost lets the g-sweep walk contiguous rows
    // instead of strided columns. The values and their iteration order are
    // unchanged, so the default path does not move a bit; the one-time
    // `n·m` copy is amortized over every sweep of every iteration.
    let cost_t = cost.transpose();
    // Accelerated mode: `f32` cost storage (halved sweep bandwidth), the
    // division by λ folded into a reciprocal multiply, and `fast_exp` in
    // the sweeps. Potentials and accumulators stay `f64`, and the final
    // plan below is always materialized from the full-precision cost.
    let f32_mode = opts.precision.is_f32();
    let (cost32, cost_t32) = if f32_mode {
        (to_f32_vec(cost), to_f32_vec(&cost_t))
    } else {
        (Vec::new(), Vec::new())
    };
    let inv_lam = 1.0 / lam;

    if f32_mode && opts.max_iters > 0 {
        // ---- accelerated iteration loop (within-mode deterministic) ----
        // (An explicit zero-iteration budget skips the loop entirely so the
        // warm-started potentials pass through untouched, like the default.)
        //
        // Two reassociations make this loop cheaper than the reference, both
        // legal in accelerated mode (only cross-thread bit-identity within
        // the mode is required, and every worker reads the same per-sweep
        // buffers):
        //
        // 1. The affine part of each logit is hoisted out of the n·m cell
        //    loop: `g_pre[j] = log b_j + g_j·invλ` is computed once per
        //    f-sweep, so the inner loop is one fused multiply-subtract per
        //    cell (`g_pre[j] − C_ij·invλ`). Same for the g-sweep.
        // 2. The dedicated marginal-violation sweep — a third of all sweep
        //    work — disappears. Right after an f-sweep against duals `g`,
        //    the implied row sum of the previous iterate collapses to
        //    `Σ_j P_ij = exp(log a_i + (f_i_old − f_i_new)·invλ)` because the
        //    sweep's LSE value *is* `−f_i_new/λ`. So each f-sweep doubles as
        //    the convergence check of the iterate the previous pass produced,
        //    at the cost of one O(n) pass. A trailing f-sweep performs the
        //    final check once the (f,g)-update budget is spent.
        let mut g_pre = vec![0.0; m];
        let mut f_pre = vec![0.0; n];
        let mut f_prev = vec![0.0; n];
        let mut it = 0;
        loop {
            // Cooperative cancellation: stop at a sweep boundary, leaving the
            // potentials from the completed sweeps (reported unconverged).
            if opts.deadline.expired() {
                break;
            }
            // f_i ← −λ LSE_j [ g_pre_j − C_ij·invλ ]
            for (p, (&lb, &gj)) in g_pre.iter_mut().zip(log_b.iter().zip(&g)) {
                *p = lb + gj * inv_lam;
            }
            f_prev.copy_from_slice(&f);
            {
                let g_pre = &g_pre;
                for_row_spans(&mut f, 1, threads, |r0, span| {
                    let mut terms = vec![0.0; m];
                    for (di, fi) in span.iter_mut().enumerate() {
                        let row = &cost32[(r0 + di) * m..(r0 + di) * m + m];
                        for ((t, &p), &c) in terms.iter_mut().zip(g_pre).zip(row) {
                            *t = p - c as f64 * inv_lam;
                        }
                        *fi = -lam * lse_terms_fast(&mut terms);
                    }
                });
            }
            if it > 0 {
                // Fused check of the iterate completed by the previous pass.
                let mut violation = 0.0;
                for i in 0..n {
                    let row_sum = fast_exp(log_a[i] + (f_prev[i] - f[i]) * inv_lam);
                    violation += (row_sum - a[i]).abs();
                }
                if violation < opts.tol {
                    converged = true;
                    iterations = it;
                    break;
                }
            }
            if it == opts.max_iters {
                break;
            }
            iterations = it + 1;
            // g_j ← −λ LSE_i [ f_pre_i − C_ij·invλ ]
            for (p, (&la, &fi)) in f_pre.iter_mut().zip(log_a.iter().zip(&f)) {
                *p = la + fi * inv_lam;
            }
            {
                let f_pre = &f_pre;
                for_row_spans(&mut g, 1, threads, |c0, span| {
                    let mut terms = vec![0.0; n];
                    for (dj, gj) in span.iter_mut().enumerate() {
                        let col = &cost_t32[(c0 + dj) * n..(c0 + dj) * n + n];
                        for ((t, &p), &c) in terms.iter_mut().zip(f_pre).zip(col) {
                            *t = p - c as f64 * inv_lam;
                        }
                        *gj = -lam * lse_terms_fast(&mut terms);
                    }
                });
            }
            it += 1;
        }
    }

    let default_iters = if f32_mode { 0 } else { opts.max_iters };
    for it in 0..default_iters {
        // Cooperative cancellation: stop at a sweep boundary, leaving the
        // potentials from the completed sweeps (reported unconverged).
        if opts.deadline.expired() {
            break;
        }
        iterations = it + 1;
        // f_i ← −λ LSE_j [ log b_j + (g_j − C_ij)/λ ]
        // Span iteration gives each worker one term buffer for its whole
        // block of rows rather than an allocation per row.
        {
            let g = &g;
            for_row_spans(&mut f, 1, threads, |r0, span| {
                let mut terms = vec![0.0; m];
                for (di, fi) in span.iter_mut().enumerate() {
                    let row = cost.row(r0 + di);
                    for j in 0..m {
                        terms[j] = log_b[j] + (g[j] - row[j]) / lam;
                    }
                    *fi = -lam * lse_terms(&terms);
                }
            });
        }
        // g_j ← −λ LSE_i [ log a_i + (f_i − C_ij)/λ ]
        {
            let f = &f;
            for_row_spans(&mut g, 1, threads, |c0, span| {
                let mut terms = vec![0.0; n];
                for (dj, gj) in span.iter_mut().enumerate() {
                    let col = cost_t.row(c0 + dj);
                    for i in 0..n {
                        terms[i] = log_a[i] + (f[i] - col[i]) / lam;
                    }
                    *gj = -lam * lse_terms(&terms);
                }
            });
        }
        // After a g-update, column marginals are exact; check row marginals.
        // Per-row partials are summed in ascending row order below, so the
        // reduction matches the serial accumulation bit for bit.
        {
            let (f, g) = (&f, &g);
            for_row_spans(&mut row_violation, 1, threads, |r0, span| {
                for (di, slot) in span.iter_mut().enumerate() {
                    let i = r0 + di;
                    let mut row_sum = 0.0;
                    let row = cost.row(i);
                    for j in 0..m {
                        row_sum += (log_a[i] + log_b[j] + (f[i] + g[j] - row[j]) / lam).exp();
                    }
                    *slot = (row_sum - a[i]).abs();
                }
            });
        }
        let violation: f64 = row_violation.iter().sum();
        if violation < opts.tol {
            converged = true;
            break;
        }
    }

    // materialize plan (rows in parallel), then reduce the objective terms
    // serially in row-major order — the same summation chain as the serial
    // reference, so reg_value is independent of the thread count
    let mut plan = Matrix::zeros(n, m);
    {
        let (f, g) = (&f, &g);
        for_each_row(plan.as_mut_slice(), m, threads, |i, prow| {
            let crow = cost.row(i);
            for (j, p) in prow.iter_mut().enumerate() {
                let log_p = log_a[i] + log_b[j] + (f[i] + g[j] - crow[j]) / lam;
                *p = log_p.exp();
            }
        });
    }
    let mut transport_cost = 0.0;
    let mut neg_entropy = 0.0;
    for i in 0..n {
        let crow = cost.row(i);
        for (j, &val) in plan.row(i).iter().enumerate() {
            if val > 0.0 {
                transport_cost += val * crow[j];
                neg_entropy += val * val.ln();
            }
        }
    }
    let reg_value = transport_cost + lam * neg_entropy;

    SinkhornResult {
        f,
        g,
        plan,
        transport_cost,
        reg_value,
        iterations,
        converged,
    }
}

/// Sinkhorn with uniform marginals `a = b = 1/n` — the empirical-measure
/// setting of the paper (`Γ_{n,n}` in Definition 2).
pub fn sinkhorn_uniform(cost: &Matrix, opts: &SinkhornOptions) -> SinkhornResult {
    let (n, m) = cost.shape();
    let a = vec![1.0 / n as f64; n];
    let b = vec![1.0 / m as f64; m];
    sinkhorn(cost, &a, &b, opts)
}

/// Fallible uniform-marginal solve — see [`try_sinkhorn`].
pub fn try_sinkhorn_uniform(
    cost: &Matrix,
    opts: &SinkhornOptions,
) -> Result<SinkhornResult, SinkhornError> {
    let (n, m) = cost.shape();
    let a = vec![1.0 / n.max(1) as f64; n];
    let b = vec![1.0 / m.max(1) as f64; m];
    try_sinkhorn(cost, &a, &b, opts)
}

/// Log-domain Sinkhorn continued from given dual potentials (warm start).
/// Identical to [`sinkhorn`] except for the initialization of `(f, g)`.
///
/// # Panics
/// Panics on invalid inputs or mis-sized potentials; use
/// [`try_sinkhorn_warm`] for the fallible variant the dual cache relies on.
pub fn sinkhorn_warm(
    cost: &Matrix,
    a: &[f64],
    b: &[f64],
    f0: Vec<f64>,
    g0: Vec<f64>,
    opts: &SinkhornOptions,
) -> SinkhornResult {
    try_sinkhorn_warm(cost, a, b, f0, g0, opts).unwrap_or_else(|e| panic!("{}", e))
}

/// Fallible warm-started solve: validates inputs *and* the initial potential
/// lengths, returning [`SinkhornError::DimensionMismatch`] instead of
/// panicking. This lets the dual cache degrade to a cold solve when a stale
/// entry no longer matches the batch shape, rather than aborting a guarded
/// training run.
pub fn try_sinkhorn_warm(
    cost: &Matrix,
    a: &[f64],
    b: &[f64],
    f0: Vec<f64>,
    g0: Vec<f64>,
    opts: &SinkhornOptions,
) -> Result<SinkhornResult, SinkhornError> {
    validate_inputs(cost, a, b, opts)?;
    if f0.len() != a.len() {
        return Err(SinkhornError::DimensionMismatch {
            what: "f potential",
            got: f0.len(),
            expected: a.len(),
        });
    }
    if g0.len() != b.len() {
        return Err(SinkhornError::DimensionMismatch {
            what: "g potential",
            got: g0.len(),
            expected: b.len(),
        });
    }
    for &v in f0.iter().chain(g0.iter()) {
        if !v.is_finite() {
            return Err(SinkhornError::BadMarginal {
                side: "warm-start potentials",
                reason: "non-finite entry",
            });
        }
    }
    Ok(sinkhorn_impl(cost, a, b, f0, g0, opts))
}

/// ε-scaling (annealed) Sinkhorn: solves a geometric sequence of
/// regularization levels `λ_0 > λ_1 > … > λ`, warm-starting the dual
/// potentials at each stage. For small target λ this converges in a small
/// fraction of the iterations cold-start Sinkhorn needs — the classic
/// trick from Schmitzer (2019); exactness is unchanged because only the
/// final stage's fixed point is reported.
pub fn sinkhorn_eps_scaling(
    cost: &Matrix,
    a: &[f64],
    b: &[f64],
    opts: &SinkhornOptions,
    n_stages: usize,
) -> SinkhornResult {
    if let Err(e) = validate_inputs(cost, a, b, opts) {
        panic!("{}", e);
    }
    eps_scaling_impl(cost, a, b, opts, n_stages)
}

/// Fallible ε-scaling solve — see [`sinkhorn_eps_scaling`].
pub fn try_sinkhorn_eps_scaling(
    cost: &Matrix,
    a: &[f64],
    b: &[f64],
    opts: &SinkhornOptions,
    n_stages: usize,
) -> Result<SinkhornResult, SinkhornError> {
    validate_inputs(cost, a, b, opts)?;
    Ok(eps_scaling_impl(cost, a, b, opts, n_stages))
}

fn eps_scaling_impl(
    cost: &Matrix,
    a: &[f64],
    b: &[f64],
    opts: &SinkhornOptions,
    n_stages: usize,
) -> SinkhornResult {
    assert!(
        n_stages >= 1,
        "sinkhorn_eps_scaling: need at least one stage"
    );
    let max_cost = cost.max().max(opts.lambda);
    // start near the cost scale (plans ~ product measure, trivially solved)
    let lambda_start = max_cost.max(opts.lambda);
    let ratio = if n_stages > 1 {
        (opts.lambda / lambda_start).powf(1.0 / (n_stages - 1) as f64)
    } else {
        1.0
    };
    let mut f = vec![0.0; a.len()];
    let mut g = vec![0.0; b.len()];
    let mut lambda = lambda_start;
    let mut result = None;
    for stage in 0..n_stages {
        if stage + 1 == n_stages {
            lambda = opts.lambda;
        }
        let stage_opts = SinkhornOptions {
            lambda,
            // intermediate stages only need rough potentials
            max_iters: if stage + 1 == n_stages {
                opts.max_iters
            } else {
                opts.max_iters / 4 + 1
            },
            tol: if stage + 1 == n_stages {
                opts.tol
            } else {
                opts.tol * 100.0
            },
            exec: opts.exec,
            deadline: opts.deadline.clone(),
            precision: opts.precision,
        };
        let r = sinkhorn_impl(cost, a, b, f, g, &stage_opts);
        f = r.f.clone();
        g = r.g.clone();
        result = Some(r);
        lambda *= ratio;
    }
    result.expect("at least one stage ran")
}

/// Uniform-marginal convenience wrapper for [`sinkhorn_eps_scaling`].
pub fn sinkhorn_eps_scaling_uniform(
    cost: &Matrix,
    opts: &SinkhornOptions,
    n_stages: usize,
) -> SinkhornResult {
    let (n, m) = cost.shape();
    let a = vec![1.0 / n as f64; n];
    let b = vec![1.0 / m as f64; m];
    sinkhorn_eps_scaling(cost, &a, &b, opts, n_stages)
}

/// Retry policy when a plain solve fails to reach the marginal tolerance:
/// each escalation attempt re-solves with [`sinkhorn_eps_scaling`], doubling
/// the number of annealing stages (starting from `base_stages`) and growing
/// the iteration budget by `iter_growth` per attempt. Annealing alone cannot
/// rescue an iteration-starved solve — each stage reuses the caller's
/// `max_iters` — so the budget must grow with the stage count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EscalationPolicy {
    /// Maximum number of ε-scaling retries after a failed plain solve.
    pub max_attempts: usize,
    /// Stage count of the first retry; attempt `i` uses `base_stages << i`.
    pub base_stages: usize,
    /// Iteration-budget multiplier: attempt `i` runs with
    /// `max_iters * iter_growth^(i+1)`.
    pub iter_growth: usize,
}

impl Default for EscalationPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 2,
            base_stages: 4,
            iter_growth: 4,
        }
    }
}

impl EscalationPolicy {
    /// A policy that never escalates (plain solve only).
    pub fn none() -> Self {
        Self {
            max_attempts: 0,
            base_stages: 4,
            iter_growth: 1,
        }
    }
}

/// Per-solve accounting of the escalating Sinkhorn entry points, merged
/// upward into the pipeline's anomaly record and telemetry counters.
///
/// `solves`, `iterations` and `converged` track *all* tracked solves (the
/// value-flow channel of the telemetry layer); `escalations` and
/// `unconverged` keep their original meaning as recovery events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Solves attempted through the escalating entry points.
    pub solves: usize,
    /// Total Sinkhorn sweep iterations, summed over every attempt of every
    /// solve (ε-scaling attempts report their final stage's sweeps).
    pub iterations: usize,
    /// Solves whose final attempt met the marginal tolerance.
    pub converged: usize,
    /// ε-scaling retries performed across solves.
    pub escalations: usize,
    /// Solves that stayed unconverged even after the last retry.
    pub unconverged: usize,
    /// Solves that started from cached dual potentials instead of zeros.
    pub warm_starts: usize,
    /// Estimated sweeps avoided by warm-starting: per warm solve, the most
    /// recent comparable cold solve's iteration count minus this solve's,
    /// saturating at zero. An estimate for telemetry, not a measurement.
    pub iters_saved: usize,
    /// Per-solve iteration counts, retained for histogram emission. A
    /// bounded scratch: the first [`TRACKED_SOLVE_CAP`] solves absorbed into
    /// this record keep their individual counts (enough for the per-batch
    /// records the telemetry layer reads; epoch-level aggregates saturate
    /// and rely on `iterations` for the total).
    pub solve_iters: [u32; TRACKED_SOLVE_CAP],
    /// Number of valid entries in `solve_iters`.
    pub tracked_solves: usize,
}

/// Capacity of the per-solve iteration scratch in [`SolveStats`] (an MS
/// divergence evaluation performs 3 solves; 8 leaves headroom).
pub const TRACKED_SOLVE_CAP: usize = 8;

impl SolveStats {
    /// Accumulates another stats record into this one. Per-solve iteration
    /// entries are carried over until [`TRACKED_SOLVE_CAP`] is reached.
    pub fn absorb(&mut self, other: SolveStats) {
        self.solves += other.solves;
        self.iterations += other.iterations;
        self.converged += other.converged;
        self.escalations += other.escalations;
        self.unconverged += other.unconverged;
        self.warm_starts += other.warm_starts;
        self.iters_saved += other.iters_saved;
        for i in 0..other.tracked_solves {
            self.note_solve_iters(other.solve_iters[i] as usize);
        }
    }

    /// Records one solve's total iteration count into the per-solve scratch
    /// (silently saturates past [`TRACKED_SOLVE_CAP`] entries).
    pub fn note_solve_iters(&mut self, iters: usize) {
        if self.tracked_solves < TRACKED_SOLVE_CAP {
            self.solve_iters[self.tracked_solves] = iters.min(u32::MAX as usize) as u32;
            self.tracked_solves += 1;
        }
    }

    /// The retained per-solve iteration counts, in solve order.
    pub fn tracked_iters(&self) -> &[u32] {
        &self.solve_iters[..self.tracked_solves]
    }

    /// Whether any recovery event fired (escalation or final non-
    /// convergence). The always-on `solves`/`iterations`/`converged`
    /// counters — and the warm-start accounting, which is an optimization,
    /// not a recovery — do not make a run anomalous.
    pub fn is_clean(&self) -> bool {
        self.escalations == 0 && self.unconverged == 0
    }
}

/// Sinkhorn with non-convergence escalation: runs a plain solve, then —
/// while the marginal tolerance is unmet and attempts remain — re-solves
/// with ε-scaling at a growing stage count. Returns the best result plus
/// the retry accounting; never panics on bad inputs.
pub fn try_sinkhorn_escalated(
    cost: &Matrix,
    a: &[f64],
    b: &[f64],
    opts: &SinkhornOptions,
    policy: &EscalationPolicy,
) -> Result<(SinkhornResult, SolveStats), SinkhornError> {
    validate_inputs(cost, a, b, opts)?;
    let mut stats = SolveStats {
        solves: 1,
        ..SolveStats::default()
    };
    let mut result = sinkhorn_impl(cost, a, b, vec![0.0; a.len()], vec![0.0; b.len()], opts);
    stats.iterations += result.iterations;
    let mut stages = policy.base_stages.max(2);
    let growth = policy.iter_growth.max(1);
    let mut budget = opts.max_iters;
    for _ in 0..policy.max_attempts {
        if result.converged {
            break;
        }
        stats.escalations += 1;
        budget = budget.saturating_mul(growth);
        let esc_opts = SinkhornOptions {
            max_iters: budget,
            ..opts.clone()
        };
        result = eps_scaling_impl(cost, a, b, &esc_opts, stages);
        stats.iterations += result.iterations;
        stages *= 2;
    }
    if result.converged {
        stats.converged += 1;
    } else {
        stats.unconverged += 1;
    }
    stats.note_solve_iters(stats.iterations);
    Ok((result, stats))
}

/// Uniform-marginal convenience wrapper for [`try_sinkhorn_escalated`].
pub fn try_sinkhorn_uniform_escalated(
    cost: &Matrix,
    opts: &SinkhornOptions,
    policy: &EscalationPolicy,
) -> Result<(SinkhornResult, SolveStats), SinkhornError> {
    let (n, m) = cost.shape();
    let a = vec![1.0 / n.max(1) as f64; n];
    let b = vec![1.0 / m.max(1) as f64; m];
    try_sinkhorn_escalated(cost, &a, &b, opts, policy)
}

/// Warm-started variant of [`try_sinkhorn_escalated`]: the first attempt
/// starts from the supplied `(f0, g0)` potentials (stats record one
/// `warm_starts`); escalation retries — if the warm attempt misses the
/// tolerance — fall back to the cold ε-scaling ladder, exactly as in the
/// cold entry point. Returns a structured error (never panics) on mis-sized
/// or non-finite potentials so the cache layer can degrade to a cold solve.
pub fn try_sinkhorn_warm_escalated(
    cost: &Matrix,
    a: &[f64],
    b: &[f64],
    f0: Vec<f64>,
    g0: Vec<f64>,
    opts: &SinkhornOptions,
    policy: &EscalationPolicy,
) -> Result<(SinkhornResult, SolveStats), SinkhornError> {
    let mut result = try_sinkhorn_warm(cost, a, b, f0, g0, opts)?;
    let mut stats = SolveStats {
        solves: 1,
        warm_starts: 1,
        iterations: result.iterations,
        ..SolveStats::default()
    };
    let mut stages = policy.base_stages.max(2);
    let growth = policy.iter_growth.max(1);
    let mut budget = opts.max_iters;
    for _ in 0..policy.max_attempts {
        if result.converged {
            break;
        }
        stats.escalations += 1;
        budget = budget.saturating_mul(growth);
        let esc_opts = SinkhornOptions {
            max_iters: budget,
            ..opts.clone()
        };
        result = eps_scaling_impl(cost, a, b, &esc_opts, stages);
        stats.iterations += result.iterations;
        stages *= 2;
    }
    if result.converged {
        stats.converged += 1;
    } else {
        stats.unconverged += 1;
    }
    stats.note_solve_iters(stats.iterations);
    Ok((result, stats))
}

/// Uniform-marginal convenience wrapper for [`try_sinkhorn_warm_escalated`].
pub fn try_sinkhorn_uniform_warm_escalated(
    cost: &Matrix,
    f0: Vec<f64>,
    g0: Vec<f64>,
    opts: &SinkhornOptions,
    policy: &EscalationPolicy,
) -> Result<(SinkhornResult, SolveStats), SinkhornError> {
    let (n, m) = cost.shape();
    let a = vec![1.0 / n.max(1) as f64; n];
    let b = vec![1.0 / m.max(1) as f64; m];
    try_sinkhorn_warm_escalated(cost, &a, &b, f0, g0, opts, policy)
}

/// Uniform-marginal ε-scaling solve with [`SolveStats`] accounting — the
/// cold-start path the accelerated layer uses for a batch's *first* solve
/// when ε-scaling of cold solves is enabled. The reported iteration count is
/// the final stage's sweeps (the comparable-budget number), matching how
/// escalated solves report.
pub fn try_sinkhorn_uniform_eps_scaling(
    cost: &Matrix,
    opts: &SinkhornOptions,
    n_stages: usize,
) -> Result<(SinkhornResult, SolveStats), SinkhornError> {
    let (n, m) = cost.shape();
    let a = vec![1.0 / n.max(1) as f64; n];
    let b = vec![1.0 / m.max(1) as f64; m];
    let result = try_sinkhorn_eps_scaling(cost, &a, &b, opts, n_stages)?;
    let mut stats = SolveStats {
        solves: 1,
        iterations: result.iterations,
        converged: result.converged as usize,
        unconverged: (!result.converged) as usize,
        ..SolveStats::default()
    };
    stats.note_solve_iters(stats.iterations);
    Ok((result, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_cost() -> Matrix {
        Matrix::from_rows(&[&[0.0, 1.0, 4.0], &[1.0, 0.0, 1.0], &[4.0, 1.0, 0.0]])
    }

    #[test]
    fn plan_satisfies_marginals() {
        let c = toy_cost();
        let r = sinkhorn_uniform(
            &c,
            &SinkhornOptions {
                lambda: 0.1,
                max_iters: 20_000,
                tol: 1e-8,
                ..Default::default()
            },
        );
        assert!(
            r.converged,
            "not converged after {} iterations",
            r.iterations
        );
        let rows = r.plan.row_sums();
        let cols = r.plan.col_sums();
        for v in rows.iter().chain(cols.iter()) {
            assert!((v - 1.0 / 3.0).abs() < 1e-7, "marginal {}", v);
        }
        assert!(r.plan.as_slice().iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn small_lambda_approaches_unregularized_ot() {
        // cost with a perfect matching of cost 0 on the diagonal
        let c = toy_cost();
        let r = sinkhorn_uniform(
            &c,
            &SinkhornOptions {
                lambda: 0.005,
                max_iters: 5000,
                tol: 1e-10,
                ..Default::default()
            },
        );
        // unregularized OT = 0 (identity assignment)
        assert!(r.transport_cost < 0.01, "cost {}", r.transport_cost);
        // plan concentrates on the diagonal
        for i in 0..3 {
            assert!(r.plan[(i, i)] > 0.3, "P[{0}][{0}] = {1}", i, r.plan[(i, i)]);
        }
    }

    #[test]
    fn large_lambda_spreads_the_plan_to_product_measure() {
        let c = toy_cost();
        let r = sinkhorn_uniform(&c, &SinkhornOptions::with_lambda(1e4));
        for p in r.plan.as_slice() {
            assert!((p - 1.0 / 9.0).abs() < 1e-3, "plan entry {}", p);
        }
    }

    #[test]
    fn handles_nonuniform_marginals() {
        let c = Matrix::from_rows(&[&[0.0, 2.0], &[2.0, 0.0]]);
        let a = [0.7, 0.3];
        let b = [0.4, 0.6];
        let r = sinkhorn(&c, &a, &b, &SinkhornOptions::with_lambda(0.05));
        let rows = r.plan.row_sums();
        let cols = r.plan.col_sums();
        assert!((rows[0] - 0.7).abs() < 1e-6);
        assert!((rows[1] - 0.3).abs() < 1e-6);
        assert!((cols[0] - 0.4).abs() < 1e-6);
        assert!((cols[1] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn rectangular_problems_supported() {
        let c = Matrix::from_fn(4, 7, |i, j| ((i as f64) - (j as f64) * 0.5).powi(2));
        let r = sinkhorn_uniform(&c, &SinkhornOptions::with_lambda(0.2));
        assert!(r.converged);
        assert_eq!(r.plan.shape(), (4, 7));
        for v in r.plan.row_sums() {
            assert!((v - 0.25).abs() < 1e-7);
        }
        for v in r.plan.col_sums() {
            assert!((v - 1.0 / 7.0).abs() < 1e-7);
        }
    }

    #[test]
    fn stable_under_paper_scale_lambda() {
        // λ = 130 (the paper's setting) with [0,1]-normalized data costs
        let c = Matrix::from_fn(16, 16, |i, j| ((i as f64 - j as f64) / 16.0).powi(2));
        let r = sinkhorn_uniform(&c, &SinkhornOptions::default());
        assert!(r.converged);
        assert!(r.transport_cost.is_finite());
        assert!(r.reg_value.is_finite());
    }

    #[test]
    fn stable_under_tiny_lambda_large_costs() {
        // would underflow e^{-C/λ} in the primal domain: C up to 1e4, λ=1e-3
        let c = Matrix::from_fn(5, 5, |i, j| (i as f64 - j as f64).powi(2) * 400.0);
        let r = sinkhorn_uniform(
            &c,
            &SinkhornOptions {
                lambda: 1e-3,
                max_iters: 2000,
                tol: 1e-8,
                ..Default::default()
            },
        );
        assert!(r.transport_cost.is_finite());
        assert!(r.plan.as_slice().iter().all(|p| p.is_finite()));
        // identity matching is optimal
        assert!(r.transport_cost < 1.0);
    }

    #[test]
    fn identical_points_give_zero_cost() {
        let c = Matrix::zeros(4, 4);
        let r = sinkhorn_uniform(&c, &SinkhornOptions::with_lambda(0.5));
        assert!(r.transport_cost.abs() < 1e-12);
    }

    #[test]
    fn reg_value_includes_entropy_term() {
        let c = Matrix::zeros(2, 2);
        let r = sinkhorn_uniform(&c, &SinkhornOptions::with_lambda(1.0));
        // zero cost → plan is product measure 1/4 each; Σ p log p = −log 4
        assert!(
            (r.reg_value - (-(4.0f64).ln())).abs() < 1e-9,
            "{}",
            r.reg_value
        );
    }

    #[test]
    #[should_panic(expected = "marginal length mismatch")]
    fn rejects_bad_marginal_length() {
        let _ = sinkhorn(
            &Matrix::zeros(2, 2),
            &[1.0],
            &[0.5, 0.5],
            &SinkhornOptions::default(),
        );
    }

    #[test]
    fn try_sinkhorn_reports_structured_errors() {
        let opts = SinkhornOptions::default();
        let half = [0.5, 0.5];
        assert!(matches!(
            try_sinkhorn(&Matrix::zeros(2, 2), &[1.0], &half, &opts),
            Err(SinkhornError::DimensionMismatch {
                what: "first marginal",
                ..
            })
        ));
        assert!(matches!(
            try_sinkhorn(&Matrix::zeros(2, 2), &half, &[1.0, 2.0, 3.0], &opts),
            Err(SinkhornError::DimensionMismatch {
                what: "second marginal",
                ..
            })
        ));
        let bad_lambda = SinkhornOptions {
            lambda: -1.0,
            ..opts.clone()
        };
        assert!(matches!(
            try_sinkhorn(&Matrix::zeros(2, 2), &half, &half, &bad_lambda),
            Err(SinkhornError::BadLambda { .. })
        ));
        let nan_lambda = SinkhornOptions {
            lambda: f64::NAN,
            ..opts.clone()
        };
        assert!(matches!(
            try_sinkhorn(&Matrix::zeros(2, 2), &half, &half, &nan_lambda),
            Err(SinkhornError::BadLambda { .. })
        ));
        assert!(matches!(
            try_sinkhorn(&Matrix::zeros(2, 2), &[0.9, 0.9], &half, &opts),
            Err(SinkhornError::BadMarginal { side: "a", .. })
        ));
        assert!(matches!(
            try_sinkhorn(&Matrix::zeros(2, 2), &half, &[-0.5, 1.5], &opts),
            Err(SinkhornError::BadMarginal { side: "b", .. })
        ));
        let mut c = Matrix::zeros(2, 2);
        c[(1, 0)] = f64::NAN;
        assert_eq!(
            try_sinkhorn(&c, &half, &half, &opts).unwrap_err(),
            SinkhornError::NonFiniteCost { row: 1, col: 0 }
        );
    }

    #[test]
    fn try_sinkhorn_matches_panicking_solver_on_good_inputs() {
        let c = toy_cost();
        let opts = SinkhornOptions {
            lambda: 0.2,
            max_iters: 5000,
            tol: 1e-9,
            ..Default::default()
        };
        let a = sinkhorn_uniform(&c, &opts);
        let b = try_sinkhorn_uniform(&c, &opts).expect("valid inputs");
        assert_eq!(a.reg_value, b.reg_value);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn zero_weight_marginal_entries_are_supported() {
        // a degenerate marginal with zero-mass entries must not yield NaN
        let c = toy_cost();
        let a = [0.5, 0.5, 0.0];
        let b = [0.0, 0.5, 0.5];
        let r = try_sinkhorn(&c, &a, &b, &SinkhornOptions::with_lambda(0.1)).unwrap();
        assert!(r.plan.as_slice().iter().all(|p| p.is_finite() && *p >= 0.0));
        let rows = r.plan.row_sums();
        assert!(rows[2].abs() < 1e-12, "zero-mass row got mass {}", rows[2]);
        assert!(r.transport_cost.is_finite());
    }
}

#[cfg(test)]
mod escalation_tests {
    use super::*;

    /// A cost landscape that a heavily iteration-capped plain solve cannot
    /// finish: two tight clusters and a tiny λ.
    fn hard_cost(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            let ci = (i < n / 2) as u8;
            let cj = (j < n / 2) as u8;
            if ci == cj {
                0.001 * ((i + 2 * j) % 7) as f64
            } else {
                1.0 + 0.001 * ((i * j) % 5) as f64
            }
        })
    }

    /// Unstructured random cost: at small λ the plain solver needs far more
    /// iterations than the starved budget below allows.
    fn random_cost(n: usize, seed: u64) -> Matrix {
        let mut s = seed | 1;
        Matrix::from_fn(n, n, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        })
    }

    #[test]
    fn escalation_recovers_a_non_converged_solve() {
        let c = random_cost(24, 0x12345);
        // deliberately starved plain solve
        let opts = SinkhornOptions {
            lambda: 1e-3,
            max_iters: 30,
            tol: 1e-9,
            ..Default::default()
        };
        let plain = sinkhorn_uniform(&c, &opts);
        assert!(
            !plain.converged,
            "test premise: plain solve must be starved"
        );
        let policy = EscalationPolicy {
            max_attempts: 3,
            base_stages: 4,
            iter_growth: 4,
        };
        let (r, stats) = try_sinkhorn_uniform_escalated(&c, &opts, &policy).unwrap();
        assert!(
            r.converged,
            "escalation did not recover convergence: {stats:?}"
        );
        assert!(stats.escalations >= 1, "recovery must have used a retry");
        assert_eq!(stats.unconverged, 0);
    }

    #[test]
    fn escalation_counts_attempts_on_starved_budget() {
        let c = hard_cost(20);
        // even the retries are starved (no budget growth) → every attempt is
        // consumed
        let opts = SinkhornOptions {
            lambda: 0.005,
            max_iters: 3,
            tol: 1e-12,
            ..Default::default()
        };
        let policy = EscalationPolicy {
            max_attempts: 2,
            base_stages: 4,
            iter_growth: 1,
        };
        let (r, stats) = try_sinkhorn_uniform_escalated(&c, &opts, &policy).unwrap();
        assert_eq!(stats.escalations, 2);
        assert_eq!(stats.unconverged, 1);
        // output is still finite — degraded, not poisoned
        assert!(r.plan.as_slice().iter().all(|p| p.is_finite()));
        assert!(r.reg_value.is_finite());
    }

    #[test]
    fn converged_solve_never_escalates() {
        let c = hard_cost(10);
        let opts = SinkhornOptions {
            lambda: 0.5,
            max_iters: 5000,
            tol: 1e-9,
            ..Default::default()
        };
        let (r, stats) =
            try_sinkhorn_uniform_escalated(&c, &opts, &EscalationPolicy::default()).unwrap();
        assert!(r.converged);
        assert!(
            stats.is_clean(),
            "recovery events on a clean solve: {stats:?}"
        );
        assert_eq!(stats.solves, 1);
        assert_eq!(stats.converged, 1);
        assert_eq!(stats.iterations, r.iterations, "single-attempt solve");
        assert!(stats.iterations > 0);
    }

    #[test]
    fn solve_stats_absorb_adds_all_fields() {
        let mut a = SolveStats {
            solves: 1,
            iterations: 10,
            converged: 1,
            escalations: 0,
            unconverged: 0,
            warm_starts: 1,
            iters_saved: 5,
            ..SolveStats::default()
        };
        a.note_solve_iters(10);
        let mut b = SolveStats {
            solves: 2,
            iterations: 30,
            converged: 1,
            escalations: 3,
            unconverged: 1,
            warm_starts: 2,
            iters_saved: 7,
            ..SolveStats::default()
        };
        b.note_solve_iters(12);
        b.note_solve_iters(18);
        a.absorb(b);
        assert_eq!(a.solves, 3);
        assert_eq!(a.iterations, 40);
        assert_eq!(a.converged, 2);
        assert_eq!(a.escalations, 3);
        assert_eq!(a.unconverged, 1);
        assert_eq!(a.warm_starts, 3);
        assert_eq!(a.iters_saved, 12);
        assert_eq!(a.tracked_iters(), &[10, 12, 18]);
        assert!(!a.is_clean());
    }

    #[test]
    fn solve_stats_per_solve_scratch_saturates() {
        let mut s = SolveStats::default();
        for i in 0..(TRACKED_SOLVE_CAP + 3) {
            s.note_solve_iters(i + 1);
        }
        assert_eq!(s.tracked_solves, TRACKED_SOLVE_CAP);
        assert_eq!(s.tracked_iters().len(), TRACKED_SOLVE_CAP);
        assert_eq!(s.tracked_iters()[0], 1);
    }

    #[test]
    fn escalated_solves_record_per_solve_iterations() {
        let c = hard_cost(8);
        let opts = SinkhornOptions {
            lambda: 0.2,
            max_iters: 10_000,
            tol: 1e-9,
            ..Default::default()
        };
        let (r, stats) =
            try_sinkhorn_uniform_escalated(&c, &opts, &EscalationPolicy::default()).unwrap();
        assert_eq!(stats.tracked_iters(), &[r.iterations as u32]);
        assert_eq!(stats.iterations, r.iterations);
    }

    #[test]
    fn warm_start_accounting_is_clean() {
        // warm_starts/iters_saved are optimizations, not recovery events
        let s = SolveStats {
            solves: 4,
            iterations: 40,
            converged: 4,
            warm_starts: 3,
            iters_saved: 25,
            ..SolveStats::default()
        };
        assert!(s.is_clean());
    }

    #[test]
    fn none_policy_is_plain_sinkhorn() {
        let c = hard_cost(12);
        let opts = SinkhornOptions {
            lambda: 0.05,
            max_iters: 30,
            tol: 1e-12,
            ..Default::default()
        };
        let plain = sinkhorn_uniform(&c, &opts);
        let (r, stats) =
            try_sinkhorn_uniform_escalated(&c, &opts, &EscalationPolicy::none()).unwrap();
        assert_eq!(r.reg_value, plain.reg_value);
        assert_eq!(stats.escalations, 0);
    }

    #[test]
    fn try_warm_rejects_mismatched_potentials_without_panicking() {
        let c = hard_cost(6);
        let a = vec![1.0 / 6.0; 6];
        let opts = SinkhornOptions::with_lambda(0.5);
        // stale cache entry from a differently-sized batch
        let err = try_sinkhorn_warm(&c, &a, &a, vec![0.0; 4], vec![0.0; 6], &opts).unwrap_err();
        assert!(matches!(
            err,
            SinkhornError::DimensionMismatch {
                what: "f potential",
                got: 4,
                expected: 6,
            }
        ));
        let err = try_sinkhorn_warm(&c, &a, &a, vec![0.0; 6], vec![0.0; 9], &opts).unwrap_err();
        assert!(matches!(
            err,
            SinkhornError::DimensionMismatch {
                what: "g potential",
                ..
            }
        ));
    }

    #[test]
    fn try_warm_rejects_non_finite_potentials() {
        let c = hard_cost(4);
        let a = vec![0.25; 4];
        let opts = SinkhornOptions::with_lambda(0.5);
        let mut f0 = vec![0.0; 4];
        f0[2] = f64::NAN;
        let err = try_sinkhorn_warm(&c, &a, &a, f0, vec![0.0; 4], &opts).unwrap_err();
        assert!(matches!(err, SinkhornError::BadMarginal { .. }));
    }

    #[test]
    fn warm_escalated_matches_cold_plan_and_records_warm_start() {
        let c = hard_cost(10);
        let opts = SinkhornOptions {
            lambda: 0.1,
            max_iters: 10_000,
            tol: 1e-9,
            ..Default::default()
        };
        let policy = EscalationPolicy::default();
        let (cold, cold_stats) = try_sinkhorn_uniform_escalated(&c, &opts, &policy).unwrap();
        assert_eq!(cold_stats.warm_starts, 0);
        let (warm, warm_stats) =
            try_sinkhorn_uniform_warm_escalated(&c, cold.f.clone(), cold.g.clone(), &opts, &policy)
                .unwrap();
        assert_eq!(warm_stats.warm_starts, 1);
        assert!(warm.converged);
        // restarting from the fixed point must converge (much) faster …
        assert!(warm.iterations <= cold.iterations);
        // … to the same plan, up to the marginal tolerance
        for (p, q) in warm.plan.as_slice().iter().zip(cold.plan.as_slice()) {
            assert!((p - q).abs() < 1e-7, "{} vs {}", p, q);
        }
        assert!((warm.reg_value - cold.reg_value).abs() < 1e-7);
    }

    #[test]
    fn eps_scaling_uniform_reports_stats() {
        let c = hard_cost(8);
        let opts = SinkhornOptions {
            lambda: 0.05,
            max_iters: 5_000,
            tol: 1e-8,
            ..Default::default()
        };
        let (r, stats) = try_sinkhorn_uniform_eps_scaling(&c, &opts, 4).unwrap();
        assert_eq!(stats.solves, 1);
        assert_eq!(stats.iterations, r.iterations);
        assert_eq!(stats.converged, r.converged as usize);
        assert_eq!(stats.warm_starts, 0);
    }
}

#[cfg(test)]
mod eps_scaling_tests {
    use super::*;

    fn clustered_cost(n: usize) -> Matrix {
        // two clusters → hard for cold-start small-λ Sinkhorn
        Matrix::from_fn(n, n, |i, j| {
            let ci = (i < n / 2) as u8;
            let cj = (j < n / 2) as u8;
            if ci == cj {
                0.001 * ((i + 2 * j) % 7) as f64
            } else {
                1.0 + 0.001 * ((i * j) % 5) as f64
            }
        })
    }

    #[test]
    fn eps_scaling_matches_cold_start_value() {
        let c = clustered_cost(20);
        let opts = SinkhornOptions {
            lambda: 0.01,
            max_iters: 20_000,
            tol: 1e-10,
            ..Default::default()
        };
        let cold = sinkhorn_uniform(&c, &opts);
        let warm = sinkhorn_eps_scaling_uniform(&c, &opts, 5);
        assert!(warm.converged);
        assert!(
            (warm.reg_value - cold.reg_value).abs() < 1e-6,
            "{} vs {}",
            warm.reg_value,
            cold.reg_value
        );
        // plans agree
        for (p, q) in warm.plan.as_slice().iter().zip(cold.plan.as_slice()) {
            assert!((p - q).abs() < 1e-6);
        }
    }

    #[test]
    fn eps_scaling_final_stage_never_needs_more_iterations() {
        let c = clustered_cost(30);
        let opts = SinkhornOptions {
            lambda: 0.005,
            max_iters: 50_000,
            tol: 1e-9,
            ..Default::default()
        };
        let cold = sinkhorn_uniform(&c, &opts);
        let warm = sinkhorn_eps_scaling_uniform(&c, &opts, 6);
        assert!(warm.converged && cold.converged);
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} vs cold {} final-stage iterations",
            warm.iterations,
            cold.iterations
        );
        assert!((warm.reg_value - cold.reg_value).abs() < 1e-6);
    }

    #[test]
    fn warm_start_from_exact_potentials_is_instant() {
        let c = clustered_cost(12);
        let opts = SinkhornOptions {
            lambda: 0.05,
            max_iters: 10_000,
            tol: 1e-10,
            ..Default::default()
        };
        let r1 = sinkhorn_uniform(&c, &opts);
        let a = vec![1.0 / 12.0; 12];
        let r2 = sinkhorn_warm(&c, &a, &a, r1.f.clone(), r1.g.clone(), &opts);
        assert!(r2.converged);
        assert!(
            r2.iterations <= 2,
            "took {} iterations from exact start",
            r2.iterations
        );
    }

    #[test]
    fn single_stage_equals_plain_sinkhorn() {
        let c = clustered_cost(10);
        let opts = SinkhornOptions {
            lambda: 0.5,
            max_iters: 2000,
            tol: 1e-10,
            ..Default::default()
        };
        let a = sinkhorn_uniform(&c, &opts);
        let b = sinkhorn_eps_scaling_uniform(&c, &opts, 1);
        assert!((a.reg_value - b.reg_value).abs() < 1e-9);
    }
}
