//! Masked squared-Euclidean cost matrices (paper Definition 2).

use scis_tensor::linalg::{row_sq_norms, sq_dists_from_gram};
use scis_tensor::par::{matmul_bt_exec_p, pairwise_sq_dists_exec};
use scis_tensor::Precision;
use scis_tensor::{ExecPolicy, Matrix};

/// Builds the masking cost matrix between two row sets:
/// `C[i][j] = ‖ma_i ⊙ a_i − mb_j ⊙ b_j‖²`.
///
/// In the paper's Definition 2 both sides share the batch's mask matrix
/// (`a = X̄`, `b = X`, `ma = mb = M`); the two-mask form is also used by the
/// RRSI baseline, which compares two different batches.
///
/// Serial convenience wrapper around [`masked_sq_cost_with`].
///
/// # Panics
/// Panics if feature dimensions disagree or masks don't match their data.
pub fn masked_sq_cost(a: &Matrix, ma: &Matrix, b: &Matrix, mb: &Matrix) -> Matrix {
    masked_sq_cost_with(a, ma, b, mb, ExecPolicy::Serial)
}

/// Policy-aware [`masked_sq_cost`]: large cost matrices are built in
/// parallel over row blocks, bit-identical to the serial build.
pub fn masked_sq_cost_with(
    a: &Matrix,
    ma: &Matrix,
    b: &Matrix,
    mb: &Matrix,
    exec: ExecPolicy,
) -> Matrix {
    assert_eq!(
        a.shape(),
        ma.shape(),
        "masked_sq_cost: a/mask shape mismatch"
    );
    assert_eq!(
        b.shape(),
        mb.shape(),
        "masked_sq_cost: b/mask shape mismatch"
    );
    assert_eq!(a.cols(), b.cols(), "masked_sq_cost: feature dim mismatch");
    // Pre-mask both sides once (O(nd + md)) so the O(n·m·d) loop is a plain
    // squared distance.
    let am = a.hadamard(ma);
    let bm = b.hadamard(mb);
    pairwise_sq_dists_exec(&am, &bm, exec)
}

/// Pre-masked rows of one side of a masked cost, plus their squared norms.
///
/// The decomposed cost kernel writes
/// `C[i][j] = ‖aᵢ‖² + ‖bⱼ‖² − 2·(A⊙Mₐ)(B⊙M_b)ᵀ`, so each side reduces to its
/// masked row matrix and row-norm vector. During DIM training the data side
/// (`X ⊙ M`) is constant across epochs — only the generator side `X̄` changes
/// — so a [`MaskedRows`] built once over the whole dataset amortizes the
/// per-batch masking and norm work to a row gather.
#[derive(Debug, Clone)]
pub struct MaskedRows {
    /// `X ⊙ M`, one row per dataset row.
    pub rows: Matrix,
    /// `‖(x ⊙ m)ᵢ‖²` for each row.
    pub sq_norms: Vec<f64>,
}

impl MaskedRows {
    /// Masks `x` by `m` and precomputes per-row squared norms.
    ///
    /// # Panics
    /// Panics if `x` and `m` disagree in shape.
    pub fn new(x: &Matrix, m: &Matrix) -> Self {
        assert_eq!(x.shape(), m.shape(), "MaskedRows: x/mask shape mismatch");
        let rows = x.hadamard(m);
        let sq_norms = row_sq_norms(&rows);
        Self { rows, sq_norms }
    }

    /// Gathers the masked rows and norms for a batch of dataset row indices.
    pub fn select(&self, indices: &[usize]) -> Self {
        Self {
            rows: self.rows.select_rows(indices),
            sq_norms: indices.iter().map(|&i| self.sq_norms[i]).collect(),
        }
    }
}

/// Decomposed masked cost: one GEMM plus a rank-1 norm broadcast instead of
/// the O(n·m·d) scalar distance loop.
///
/// Computes `C[i][j] = max(‖aᵢ‖² + ‖bⱼ‖² − 2·aᵢ·bⱼ, 0)` where `a`/`b` are
/// already-masked rows (see [`MaskedRows`]). Mathematically identical to
/// [`masked_sq_cost_with`] but **not** bitwise identical — the difference is
/// one or two ulps from the reassociated accumulation — which is why the
/// accelerated path is opt-in (`AccelConfig::decomposed_cost`). Within a
/// fixed kernel choice, results are still bit-identical across thread counts.
pub fn masked_sq_cost_decomposed(a: &MaskedRows, b: &MaskedRows, exec: ExecPolicy) -> Matrix {
    masked_sq_cost_decomposed_p(a, b, exec, Precision::F64)
}

/// Precision-aware [`masked_sq_cost_decomposed`]: under [`Precision::F32`]
/// the Gram-matrix GEMM stores its operands as `f32` (accumulating `f64`);
/// the norm broadcast and clamp stay full precision.
pub fn masked_sq_cost_decomposed_p(
    a: &MaskedRows,
    b: &MaskedRows,
    exec: ExecPolicy,
    precision: Precision,
) -> Matrix {
    assert_eq!(
        a.rows.cols(),
        b.rows.cols(),
        "masked_sq_cost_decomposed: feature dim mismatch"
    );
    let gram = matmul_bt_exec_p(&a.rows, &b.rows, exec, precision);
    sq_dists_from_gram(&gram, &a.sq_norms, &b.sq_norms)
}

/// Self cost `C[i][j] = ‖m_i ⊙ x_i − m_j ⊙ x_j‖²` within one masked set.
pub fn masked_self_cost(x: &Matrix, m: &Matrix) -> Matrix {
    masked_sq_cost(x, m, x, m)
}

/// Policy-aware [`masked_self_cost`].
pub fn masked_self_cost_with(x: &Matrix, m: &Matrix, exec: ExecPolicy) -> Matrix {
    masked_sq_cost_with(x, m, x, m, exec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmasked_reduces_to_plain_sq_dist() {
        let a = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        let ones_a = Matrix::ones(2, 2);
        let ones_b = Matrix::ones(1, 2);
        let c = masked_sq_cost(&a, &ones_a, &b, &ones_b);
        assert_eq!(c.shape(), (2, 1));
        assert_eq!(c[(0, 0)], 25.0);
        assert_eq!(c[(1, 0)], 13.0);
    }

    #[test]
    fn mask_zeroes_out_missing_dimensions() {
        let a = Matrix::from_rows(&[&[100.0, 1.0]]);
        let ma = Matrix::from_rows(&[&[0.0, 1.0]]); // first dim missing
        let b = Matrix::from_rows(&[&[0.0, 3.0]]);
        let mb = Matrix::from_rows(&[&[1.0, 1.0]]);
        let c = masked_sq_cost(&a, &ma, &b, &mb);
        // masked a = (0,1); masked b = (0,3) → dist² = 4
        assert_eq!(c[(0, 0)], 4.0);
    }

    #[test]
    fn self_cost_symmetric_zero_diagonal() {
        let x = Matrix::from_fn(4, 3, |i, j| ((i * 5 + j * 3) % 7) as f64);
        let m = Matrix::from_fn(4, 3, |i, j| ((i + j) % 2) as f64);
        let c = masked_self_cost(&x, &m);
        for i in 0..4 {
            assert_eq!(c[(i, i)], 0.0);
            for j in 0..4 {
                assert_eq!(c[(i, j)], c[(j, i)]);
                assert!(c[(i, j)] >= 0.0);
            }
        }
    }

    #[test]
    fn fully_masked_rows_have_zero_cost() {
        let a = Matrix::from_rows(&[&[5.0, -2.0]]);
        let z = Matrix::zeros(1, 2);
        let b = Matrix::from_rows(&[&[9.0, 9.0]]);
        let c = masked_sq_cost(&a, &z, &b, &z.clone());
        assert_eq!(c[(0, 0)], 0.0);
    }

    #[test]
    fn decomposed_matches_loop_kernel_within_ulps() {
        use scis_tensor::Rng64;
        let mut rng = Rng64::seed_from_u64(11);
        let a = Matrix::from_fn(13, 6, |_, _| rng.normal());
        let ma = Matrix::from_fn(13, 6, |_, _| if rng.uniform() < 0.3 { 0.0 } else { 1.0 });
        let b = Matrix::from_fn(9, 6, |_, _| rng.normal());
        let mb = Matrix::from_fn(9, 6, |_, _| if rng.uniform() < 0.3 { 0.0 } else { 1.0 });
        let loop_c = masked_sq_cost_with(&a, &ma, &b, &mb, ExecPolicy::Serial);
        let ra = MaskedRows::new(&a, &ma);
        let rb = MaskedRows::new(&b, &mb);
        let dec_c = masked_sq_cost_decomposed(&ra, &rb, ExecPolicy::Serial);
        assert_eq!(loop_c.shape(), dec_c.shape());
        for (x, y) in loop_c.as_slice().iter().zip(dec_c.as_slice()) {
            assert!((x - y).abs() < 1e-9, "{} vs {}", x, y);
            assert!(*y >= 0.0);
        }
    }

    #[test]
    fn masked_rows_select_gathers_batch() {
        let x = Matrix::from_fn(6, 3, |i, j| (i * 3 + j) as f64);
        let m = Matrix::from_fn(6, 3, |i, j| ((i + j) % 2) as f64);
        let full = MaskedRows::new(&x, &m);
        let batch = full.select(&[4, 1]);
        assert_eq!(batch.rows.rows(), 2);
        for j in 0..3 {
            assert_eq!(batch.rows[(0, j)], full.rows[(4, j)]);
            assert_eq!(batch.rows[(1, j)], full.rows[(1, j)]);
        }
        assert_eq!(batch.sq_norms, vec![full.sq_norms[4], full.sq_norms[1]]);
    }

    #[test]
    fn decomposed_self_cost_zero_diagonal_after_clamp() {
        let x = Matrix::from_fn(5, 4, |i, j| ((i * 7 + j * 2) % 5) as f64 * 1e3);
        let m = Matrix::ones(5, 4);
        let r = MaskedRows::new(&x, &m);
        let c = masked_sq_cost_decomposed(&r, &r, ExecPolicy::Serial);
        for i in 0..5 {
            assert_eq!(c[(i, i)], 0.0, "diagonal must clamp to exactly zero");
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn rejects_mismatched_mask() {
        let _ = masked_sq_cost(
            &Matrix::zeros(2, 3),
            &Matrix::zeros(2, 2),
            &Matrix::zeros(2, 3),
            &Matrix::zeros(2, 3),
        );
    }
}
