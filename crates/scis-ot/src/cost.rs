//! Masked squared-Euclidean cost matrices (paper Definition 2).

use scis_tensor::par::pairwise_sq_dists_exec;
use scis_tensor::{ExecPolicy, Matrix};

/// Builds the masking cost matrix between two row sets:
/// `C[i][j] = ‖ma_i ⊙ a_i − mb_j ⊙ b_j‖²`.
///
/// In the paper's Definition 2 both sides share the batch's mask matrix
/// (`a = X̄`, `b = X`, `ma = mb = M`); the two-mask form is also used by the
/// RRSI baseline, which compares two different batches.
///
/// Serial convenience wrapper around [`masked_sq_cost_with`].
///
/// # Panics
/// Panics if feature dimensions disagree or masks don't match their data.
pub fn masked_sq_cost(a: &Matrix, ma: &Matrix, b: &Matrix, mb: &Matrix) -> Matrix {
    masked_sq_cost_with(a, ma, b, mb, ExecPolicy::Serial)
}

/// Policy-aware [`masked_sq_cost`]: large cost matrices are built in
/// parallel over row blocks, bit-identical to the serial build.
pub fn masked_sq_cost_with(
    a: &Matrix,
    ma: &Matrix,
    b: &Matrix,
    mb: &Matrix,
    exec: ExecPolicy,
) -> Matrix {
    assert_eq!(
        a.shape(),
        ma.shape(),
        "masked_sq_cost: a/mask shape mismatch"
    );
    assert_eq!(
        b.shape(),
        mb.shape(),
        "masked_sq_cost: b/mask shape mismatch"
    );
    assert_eq!(a.cols(), b.cols(), "masked_sq_cost: feature dim mismatch");
    // Pre-mask both sides once (O(nd + md)) so the O(n·m·d) loop is a plain
    // squared distance.
    let am = a.hadamard(ma);
    let bm = b.hadamard(mb);
    pairwise_sq_dists_exec(&am, &bm, exec)
}

/// Self cost `C[i][j] = ‖m_i ⊙ x_i − m_j ⊙ x_j‖²` within one masked set.
pub fn masked_self_cost(x: &Matrix, m: &Matrix) -> Matrix {
    masked_sq_cost(x, m, x, m)
}

/// Policy-aware [`masked_self_cost`].
pub fn masked_self_cost_with(x: &Matrix, m: &Matrix, exec: ExecPolicy) -> Matrix {
    masked_sq_cost_with(x, m, x, m, exec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmasked_reduces_to_plain_sq_dist() {
        let a = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        let ones_a = Matrix::ones(2, 2);
        let ones_b = Matrix::ones(1, 2);
        let c = masked_sq_cost(&a, &ones_a, &b, &ones_b);
        assert_eq!(c.shape(), (2, 1));
        assert_eq!(c[(0, 0)], 25.0);
        assert_eq!(c[(1, 0)], 13.0);
    }

    #[test]
    fn mask_zeroes_out_missing_dimensions() {
        let a = Matrix::from_rows(&[&[100.0, 1.0]]);
        let ma = Matrix::from_rows(&[&[0.0, 1.0]]); // first dim missing
        let b = Matrix::from_rows(&[&[0.0, 3.0]]);
        let mb = Matrix::from_rows(&[&[1.0, 1.0]]);
        let c = masked_sq_cost(&a, &ma, &b, &mb);
        // masked a = (0,1); masked b = (0,3) → dist² = 4
        assert_eq!(c[(0, 0)], 4.0);
    }

    #[test]
    fn self_cost_symmetric_zero_diagonal() {
        let x = Matrix::from_fn(4, 3, |i, j| ((i * 5 + j * 3) % 7) as f64);
        let m = Matrix::from_fn(4, 3, |i, j| ((i + j) % 2) as f64);
        let c = masked_self_cost(&x, &m);
        for i in 0..4 {
            assert_eq!(c[(i, i)], 0.0);
            for j in 0..4 {
                assert_eq!(c[(i, j)], c[(j, i)]);
                assert!(c[(i, j)] >= 0.0);
            }
        }
    }

    #[test]
    fn fully_masked_rows_have_zero_cost() {
        let a = Matrix::from_rows(&[&[5.0, -2.0]]);
        let z = Matrix::zeros(1, 2);
        let b = Matrix::from_rows(&[&[9.0, 9.0]]);
        let c = masked_sq_cost(&a, &z, &b, &z.clone());
        assert_eq!(c[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn rejects_mismatched_mask() {
        let _ = masked_sq_cost(
            &Matrix::zeros(2, 3),
            &Matrix::zeros(2, 2),
            &Matrix::zeros(2, 3),
            &Matrix::zeros(2, 3),
        );
    }
}
