//! Weight initialization schemes.

use scis_tensor::{Matrix, Rng64};

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The default for every dense layer,
/// matching the reference GAIN implementation.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut Rng64) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.uniform_range(-a, a))
}

/// He/Kaiming normal initialization: `N(0, sqrt(2 / fan_in))` — preferred for
/// deep ReLU stacks (used by the optional deeper predictor in Table VII).
pub fn he_normal(fan_in: usize, fan_out: usize, rng: &mut Rng64) -> Matrix {
    let std = (2.0 / fan_in as f64).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.normal_with(0.0, std))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = Rng64::seed_from_u64(1);
        let w = xavier_uniform(100, 50, &mut rng);
        let a = (6.0f64 / 150.0).sqrt();
        assert!(w.as_slice().iter().all(|&v| v.abs() <= a));
        // not degenerate
        assert!(w.as_slice().iter().any(|&v| v.abs() > a * 0.5));
    }

    #[test]
    fn xavier_variance_close_to_theory() {
        let mut rng = Rng64::seed_from_u64(2);
        let w = xavier_uniform(200, 200, &mut rng);
        let mean = w.mean();
        let var = w
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / w.len() as f64;
        // Var(U(-a,a)) = a²/3 = (6/400)/3
        let expect = (6.0 / 400.0) / 3.0;
        assert!((var - expect).abs() / expect < 0.1, "{} vs {}", var, expect);
    }

    #[test]
    fn he_normal_std() {
        let mut rng = Rng64::seed_from_u64(3);
        let w = he_normal(128, 128, &mut rng);
        let mean = w.mean();
        let var = w
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / w.len() as f64;
        let expect = 2.0 / 128.0;
        assert!(
            (var - expect).abs() / expect < 0.15,
            "{} vs {}",
            var,
            expect
        );
    }
}
