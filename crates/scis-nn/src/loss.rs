//! Loss functions, each returning `(value, d value / d prediction)`.
//!
//! Conventions: losses are *means* over all elements, and the returned
//! gradient matrix is already scaled accordingly, so `net.backward(&grad)`
//! needs no further normalization.

use scis_tensor::Matrix;

/// Mean squared error `mean((pred − target)²)` and its gradient.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f64, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "mse: shape mismatch");
    let n = pred.len().max(1) as f64;
    let diff = pred.sub(target);
    let loss = diff.as_slice().iter().map(|v| v * v).sum::<f64>() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Weighted MSE: elements with weight 0 contribute nothing (used by GAIN's
/// reconstruction term, which only scores *observed* cells).
/// Normalizes by the total weight, not the element count.
pub fn weighted_mse(pred: &Matrix, target: &Matrix, weight: &Matrix) -> (f64, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "weighted_mse: shape mismatch");
    assert_eq!(
        pred.shape(),
        weight.shape(),
        "weighted_mse: weight shape mismatch"
    );
    let wsum: f64 = weight.sum();
    let denom = if wsum > 0.0 { wsum } else { 1.0 };
    let diff = pred.sub(target).hadamard(weight);
    let loss = diff
        .as_slice()
        .iter()
        .zip(weight.as_slice())
        .map(|(&d, &w)| if w > 0.0 { d * d / w } else { 0.0 })
        .sum::<f64>()
        / denom;
    // d/dpred [ w (p-t)² / denom ] = 2 w (p-t) / denom
    let grad = pred.sub(target).hadamard(weight).scale(2.0 / denom);
    (loss, grad)
}

/// Binary cross-entropy on *probabilities* (outputs of a sigmoid), clamped
/// for numerical safety: `-mean(t·log p + (1−t)·log(1−p))`.
pub fn bce_prob(pred: &Matrix, target: &Matrix) -> (f64, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "bce_prob: shape mismatch");
    let n = pred.len().max(1) as f64;
    const EPS: f64 = 1e-8;
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    for (k, (&p, &t)) in pred.as_slice().iter().zip(target.as_slice()).enumerate() {
        let p = p.clamp(EPS, 1.0 - EPS);
        loss -= t * p.ln() + (1.0 - t) * (1.0 - p).ln();
        grad.as_mut_slice()[k] = (p - t) / (p * (1.0 - p)) / n;
    }
    (loss / n, grad)
}

/// Masked BCE on probabilities: only positions with `mask > 0` contribute,
/// normalized by the mask sum. Used by GAIN's discriminator/generator games
/// where only some entries carry a label.
pub fn masked_bce_prob(pred: &Matrix, target: &Matrix, mask: &Matrix) -> (f64, Matrix) {
    assert_eq!(
        pred.shape(),
        target.shape(),
        "masked_bce_prob: shape mismatch"
    );
    assert_eq!(
        pred.shape(),
        mask.shape(),
        "masked_bce_prob: mask shape mismatch"
    );
    const EPS: f64 = 1e-8;
    let denom = {
        let s = mask.sum();
        if s > 0.0 {
            s
        } else {
            1.0
        }
    };
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    for (k, ((&p, &t), &w)) in pred
        .as_slice()
        .iter()
        .zip(target.as_slice())
        .zip(mask.as_slice())
        .enumerate()
    {
        if w <= 0.0 {
            continue;
        }
        let p = p.clamp(EPS, 1.0 - EPS);
        loss -= w * (t * p.ln() + (1.0 - t) * (1.0 - p).ln());
        grad.as_mut_slice()[k] = w * (p - t) / (p * (1.0 - p)) / denom;
    }
    (loss / denom, grad)
}

/// Binary cross-entropy on raw *logits* (numerically stable softplus form).
pub fn bce_logits(logits: &Matrix, target: &Matrix) -> (f64, Matrix) {
    assert_eq!(logits.shape(), target.shape(), "bce_logits: shape mismatch");
    let n = logits.len().max(1) as f64;
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    for (k, (&z, &t)) in logits.as_slice().iter().zip(target.as_slice()).enumerate() {
        // log(1 + e^z) computed stably
        let softplus = if z > 0.0 {
            z + (-z).exp().ln_1p()
        } else {
            z.exp().ln_1p()
        };
        loss += softplus - t * z;
        let sigma = 1.0 / (1.0 + (-z).exp());
        grad.as_mut_slice()[k] = (sigma - t) / n;
    }
    (loss / n, grad)
}

/// Softmax cross-entropy over `k`-way logits for a *slice* of columns:
/// `logits` is `batch x k`, `target_idx[i] ∈ 0..k` the true class.
/// Returns the mean loss and the gradient w.r.t. the logits
/// (`softmax − onehot`, scaled by 1/batch). Used by the heterogeneous
/// likelihood heads (HIVAE's categorical columns).
pub fn softmax_cross_entropy(logits: &Matrix, target_idx: &[usize]) -> (f64, Matrix) {
    assert_eq!(
        logits.rows(),
        target_idx.len(),
        "softmax_ce: batch mismatch"
    );
    let (b, k) = logits.shape();
    assert!(k > 0, "softmax_ce: zero classes");
    let mut grad = Matrix::zeros(b, k);
    let mut loss = 0.0;
    for (i, &t) in target_idx.iter().enumerate() {
        let row = logits.row(i);
        assert!(t < k, "softmax_ce: class {} out of {}", t, k);
        let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let sum_exp: f64 = row.iter().map(|&z| (z - max).exp()).sum();
        let log_z = max + sum_exp.ln();
        loss += log_z - row[t];
        let grow = grad.row_mut(i);
        for (j, g) in grow.iter_mut().enumerate() {
            let p = (row[j] - max).exp() / sum_exp;
            *g = (p - if j == t { 1.0 } else { 0.0 }) / b as f64;
        }
    }
    (loss / b as f64, grad)
}

/// Row-wise softmax probabilities (inference companion to
/// [`softmax_cross_entropy`]).
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let (b, k) = logits.shape();
    let mut out = Matrix::zeros(b, k);
    for i in 0..b {
        let row = logits.row(i);
        let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for j in 0..k {
            let e = (row[j] - max).exp();
            out[(i, j)] = e;
            sum += e;
        }
        for j in 0..k {
            out[(i, j)] /= sum;
        }
    }
    out
}

/// Mean absolute error (reported in Table VII's regression rows).
pub fn mae_value(pred: &Matrix, target: &Matrix) -> f64 {
    assert_eq!(pred.shape(), target.shape(), "mae_value: shape mismatch");
    let n = pred.len().max(1) as f64;
    pred.as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(&p, &t)| (p - t).abs())
        .sum::<f64>()
        / n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_check(f: impl Fn(&Matrix) -> (f64, Matrix), at: &Matrix, tol: f64) {
        let (_, grad) = f(at);
        let h = 1e-6;
        for k in 0..at.len() {
            let mut plus = at.clone();
            plus.as_mut_slice()[k] += h;
            let mut minus = at.clone();
            minus.as_mut_slice()[k] -= h;
            let numeric = (f(&plus).0 - f(&minus).0) / (2.0 * h);
            let analytic = grad.as_slice()[k];
            assert!(
                (numeric - analytic).abs() < tol,
                "grad[{}]: numeric {} vs analytic {}",
                k,
                numeric,
                analytic
            );
        }
    }

    #[test]
    fn mse_value_and_grad() {
        let pred = Matrix::from_rows(&[&[1.0, 2.0]]);
        let target = Matrix::from_rows(&[&[0.0, 0.0]]);
        let (loss, _) = mse(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-12);
        let t = target.clone();
        fd_check(|p| mse(p, &t), &pred, 1e-5);
    }

    #[test]
    fn weighted_mse_ignores_zero_weight() {
        let pred = Matrix::from_rows(&[&[1.0, 100.0]]);
        let target = Matrix::from_rows(&[&[0.0, 0.0]]);
        let w = Matrix::from_rows(&[&[1.0, 0.0]]);
        let (loss, grad) = weighted_mse(&pred, &target, &w);
        assert!((loss - 1.0).abs() < 1e-12);
        assert_eq!(grad.as_slice()[1], 0.0);
        let (t2, w2) = (target.clone(), w.clone());
        fd_check(|p| weighted_mse(p, &t2, &w2), &pred, 1e-4);
    }

    #[test]
    fn bce_prob_matches_entropy_at_half() {
        let pred = Matrix::from_rows(&[&[0.5]]);
        let target = Matrix::from_rows(&[&[1.0]]);
        let (loss, _) = bce_prob(&pred, &target);
        assert!((loss - 0.5f64.ln().abs()).abs() < 1e-9);
        let t = Matrix::from_rows(&[&[1.0, 0.0, 1.0]]);
        let p = Matrix::from_rows(&[&[0.3, 0.6, 0.9]]);
        fd_check(|q| bce_prob(q, &t), &p, 1e-4);
    }

    #[test]
    fn bce_logits_agrees_with_prob_form() {
        let z = Matrix::from_rows(&[&[-1.5, 0.0, 2.0]]);
        let t = Matrix::from_rows(&[&[0.0, 1.0, 1.0]]);
        let probs = z.map(|v| 1.0 / (1.0 + (-v).exp()));
        let (l1, _) = bce_logits(&z, &t);
        let (l2, _) = bce_prob(&probs, &t);
        assert!((l1 - l2).abs() < 1e-9, "{} vs {}", l1, l2);
        fd_check(|q| bce_logits(q, &t), &z, 1e-5);
    }

    #[test]
    fn bce_logits_stable_at_extreme_values() {
        let z = Matrix::from_rows(&[&[-500.0, 500.0]]);
        let t = Matrix::from_rows(&[&[0.0, 1.0]]);
        let (loss, grad) = bce_logits(&z, &t);
        assert!(loss.is_finite() && loss.abs() < 1e-6);
        assert!(grad.as_slice().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn masked_bce_skips_unlabeled() {
        let p = Matrix::from_rows(&[&[0.9, 0.1]]);
        let t = Matrix::from_rows(&[&[1.0, 1.0]]);
        let m = Matrix::from_rows(&[&[1.0, 0.0]]);
        let (loss, grad) = masked_bce_prob(&p, &t, &m);
        assert!((loss - (-(0.9f64).ln())).abs() < 1e-9);
        assert_eq!(grad.as_slice()[1], 0.0);
        let (t2, m2) = (t.clone(), m.clone());
        fd_check(|q| masked_bce_prob(q, &t2, &m2), &p, 1e-4);
    }

    #[test]
    fn softmax_ce_value_and_gradient() {
        let logits = Matrix::from_rows(&[&[2.0, 0.5, -1.0], &[0.0, 0.0, 0.0]]);
        let targets = [0usize, 2];
        let (loss, grad) = softmax_cross_entropy(&logits, &targets);
        assert!(loss > 0.0 && loss.is_finite());
        // uniform logits → loss contribution ln(3)
        let (l_uniform, _) = softmax_cross_entropy(&Matrix::from_rows(&[&[0.0, 0.0, 0.0]]), &[1]);
        assert!((l_uniform - 3.0f64.ln()).abs() < 1e-12);
        // gradient rows sum to zero (softmax − onehot property)
        for i in 0..2 {
            let s: f64 = grad.row(i).iter().sum();
            assert!(s.abs() < 1e-12, "row {} grad sum {}", i, s);
        }
        // finite-difference check
        let h = 1e-6;
        for k in 0..logits.len() {
            let mut plus = logits.clone();
            plus.as_mut_slice()[k] += h;
            let mut minus = logits.clone();
            minus.as_mut_slice()[k] -= h;
            let numeric = (softmax_cross_entropy(&plus, &targets).0
                - softmax_cross_entropy(&minus, &targets).0)
                / (2.0 * h);
            assert!(
                (numeric - grad.as_slice()[k]).abs() < 1e-5,
                "grad[{}]: {} vs {}",
                k,
                numeric,
                grad.as_slice()[k]
            );
        }
    }

    #[test]
    fn softmax_ce_stable_at_large_logits() {
        let logits = Matrix::from_rows(&[&[1000.0, -1000.0]]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.abs() < 1e-9);
        assert!(grad.as_slice().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let logits = Matrix::from_rows(&[&[3.0, 1.0, 0.2], &[-5.0, 0.0, 5.0]]);
        let p = softmax_rows(&logits);
        for i in 0..2 {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(p.row(i).iter().all(|&v| v > 0.0));
        }
        // ordering preserved
        assert!(p[(0, 0)] > p[(0, 1)] && p[(0, 1)] > p[(0, 2)]);
    }

    #[test]
    fn mae_basic() {
        let p = Matrix::from_rows(&[&[1.0, -1.0]]);
        let t = Matrix::from_rows(&[&[0.0, 1.0]]);
        assert!((mae_value(&p, &t) - 1.5).abs() < 1e-12);
    }
}
