//! First-order optimizers over [`Mlp`] parameters.
//!
//! Optimizers address parameters through the network's stable
//! `visit_params` order, so their internal state (Adam moments) stays
//! aligned across steps without any registration step.

use crate::mlp::Mlp;

/// A gradient-descent style optimizer.
pub trait Optimizer {
    /// Applies one update using the gradients currently accumulated in `net`.
    fn step(&mut self, net: &mut Mlp);

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Replaces the learning rate (schedules/ablations).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Plain stochastic gradient descent: `θ ← θ − lr · g`.
pub struct Sgd {
    lr: f64,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "Sgd: learning rate must be positive");
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Mlp) {
        let lr = self.lr;
        net.visit_params(&mut |p, g| {
            for (pv, gv) in p.iter_mut().zip(g.iter()) {
                *pv -= lr * gv;
            }
        });
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// ADAM (Kingma & Ba) — the optimizer the paper uses for every deep method.
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates Adam with the standard `β1=0.9, β2=0.999, ε=1e-8`.
    pub fn new(lr: f64) -> Self {
        Self::with_betas(lr, 0.9, 0.999)
    }

    /// Creates Adam with explicit momentum coefficients.
    pub fn with_betas(lr: f64, beta1: f64, beta2: f64) -> Self {
        assert!(lr > 0.0, "Adam: learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Self {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Resets step count and moment estimates (used when a network is
    /// re-initialized for retraining, per Algorithm 1 line 5).
    pub fn reset(&mut self) {
        self.t = 0;
        self.m.clear();
        self.v.clear();
    }

    /// Snapshots the full optimizer state (for checkpointing).
    pub fn state(&self) -> AdamState {
        AdamState {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restores an optimizer from a snapshot taken via [`Adam::state`];
    /// subsequent steps continue the moment estimates bit-exactly.
    pub fn from_state(state: &AdamState) -> Self {
        assert!(state.lr > 0.0, "Adam: learning rate must be positive");
        Self {
            lr: state.lr,
            beta1: state.beta1,
            beta2: state.beta2,
            eps: state.eps,
            t: state.t,
            m: state.m.clone(),
            v: state.v.clone(),
        }
    }
}

/// Exported [`Adam`] state: hyper-parameters, step count, and both moment
/// vectors — everything needed to resume optimization bit-exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct AdamState {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay β1.
    pub beta1: f64,
    /// Second-moment decay β2.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    /// Step count (bias-correction exponent).
    pub t: u64,
    /// First-moment estimate per parameter.
    pub m: Vec<f64>,
    /// Second-moment estimate per parameter.
    pub v: Vec<f64>,
}

/// One Adam parameter update. Factored out so the four-wide unrolled strip
/// in [`Adam::step`] and its scalar tail share the exact same arithmetic —
/// the unroll only interleaves *independent* per-parameter chains, so it is
/// bit-identical to the historical scalar loop.
#[inline(always)]
fn adam_update(pv: &mut f64, gv: f64, m: &mut f64, v: &mut f64, cfg: (f64, f64, f64, f64)) {
    let (b1, b2, lr_t, eps) = cfg;
    *m = b1 * *m + (1.0 - b1) * gv;
    *v = b2 * *v + (1.0 - b2) * gv * gv;
    *pv -= lr_t * *m / (v.sqrt() + eps);
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Mlp) {
        let n = net.num_params();
        if self.m.len() != n {
            self.m = vec![0.0; n];
            self.v = vec![0.0; n];
            self.t = 0;
        }
        self.t += 1;
        let lr_t = self.lr * (1.0 - self.beta2.powi(self.t as i32)).sqrt()
            / (1.0 - self.beta1.powi(self.t as i32));
        let cfg = (self.beta1, self.beta2, lr_t, self.eps);
        let mut offset = 0;
        let (m, v) = (&mut self.m, &mut self.v);
        net.visit_params(&mut |p, g| {
            let ms = &mut m[offset..offset + p.len()];
            let vs = &mut v[offset..offset + p.len()];
            offset += p.len();
            // four independent moment/parameter chains in flight per strip
            let mut pc = p.chunks_exact_mut(4);
            let mut gc = g.chunks_exact(4);
            let mut mc = ms.chunks_exact_mut(4);
            let mut vc = vs.chunks_exact_mut(4);
            for (((p4, g4), m4), v4) in pc
                .by_ref()
                .zip(gc.by_ref())
                .zip(mc.by_ref())
                .zip(vc.by_ref())
            {
                adam_update(&mut p4[0], g4[0], &mut m4[0], &mut v4[0], cfg);
                adam_update(&mut p4[1], g4[1], &mut m4[1], &mut v4[1], cfg);
                adam_update(&mut p4[2], g4[2], &mut m4[2], &mut v4[2], cfg);
                adam_update(&mut p4[3], g4[3], &mut m4[3], &mut v4[3], cfg);
            }
            for (((pv, &gv), mv), vv) in pc
                .into_remainder()
                .iter_mut()
                .zip(gc.remainder())
                .zip(mc.into_remainder())
                .zip(vc.into_remainder())
            {
                adam_update(pv, gv, mv, vv, cfg);
            }
        });
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// RMSprop — per-parameter adaptive step from a running second-moment
/// average (no first-moment momentum).
pub struct RmsProp {
    lr: f64,
    decay: f64,
    eps: f64,
    v: Vec<f64>,
}

impl RmsProp {
    /// Creates RMSprop with the conventional `decay = 0.9, ε = 1e-8`.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "RmsProp: learning rate must be positive");
        Self {
            lr,
            decay: 0.9,
            eps: 1e-8,
            v: Vec::new(),
        }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, net: &mut Mlp) {
        let n = net.num_params();
        if self.v.len() != n {
            self.v = vec![0.0; n];
        }
        let (lr, decay, eps) = (self.lr, self.decay, self.eps);
        let v = &mut self.v;
        let mut offset = 0;
        net.visit_params(&mut |p, g| {
            for (k, (pv, gv)) in p.iter_mut().zip(g.iter()).enumerate() {
                let i = offset + k;
                v[i] = decay * v[i] + (1.0 - decay) * gv * gv;
                *pv -= lr * gv / (v[i].sqrt() + eps);
            }
            offset += p.len();
        });
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Rescales the accumulated gradients of `net` so their global L2 norm is
/// at most `max_norm`; returns the pre-clip norm. A standard stabilizer for
/// adversarial training (apply between `backward` and `step`).
pub fn clip_grad_norm(net: &mut Mlp, max_norm: f64) -> f64 {
    assert!(max_norm > 0.0, "clip_grad_norm: max_norm must be positive");
    let mut sq = 0.0;
    net.visit_params(&mut |_, g| {
        for gv in g.iter() {
            sq += gv * gv;
        }
    });
    let norm = sq.sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        net.visit_params(&mut |_, g| {
            for gv in g.iter_mut() {
                *gv *= scale;
            }
        });
    }
    norm
}

/// Step-decay learning-rate schedule: `lr = base · factor^(epoch / every)`.
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    /// Initial learning rate.
    pub base_lr: f64,
    /// Multiplicative decay factor per period.
    pub factor: f64,
    /// Period length in epochs.
    pub every: usize,
}

impl StepDecay {
    /// Learning rate for the given epoch (0-based).
    pub fn at(&self, epoch: usize) -> f64 {
        self.base_lr * self.factor.powi((epoch / self.every.max(1)) as i32)
    }

    /// Applies the schedule to an optimizer for the given epoch.
    pub fn apply<O: Optimizer>(&self, opt: &mut O, epoch: usize) {
        opt.set_learning_rate(self.at(epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, Mode};
    use crate::loss::mse;
    use crate::mlp::Mlp;
    use scis_tensor::{Matrix, Rng64};

    fn quadratic_problem() -> (Mlp, Matrix, Matrix, Rng64) {
        let mut rng = Rng64::seed_from_u64(21);
        let net = Mlp::builder(2)
            .dense(1, Activation::Identity)
            .build(&mut rng);
        let x = Matrix::from_fn(32, 2, |i, j| ((i * 3 + j * 5) % 17) as f64 / 17.0 - 0.5);
        let target = Matrix::from_fn(32, 1, |i, _| x[(i, 0)] * 3.0 - x[(i, 1)] * 1.5 + 0.25);
        (net, x, target, rng)
    }

    fn train<O: Optimizer>(opt: &mut O, steps: usize) -> f64 {
        let (mut net, x, target, mut rng) = quadratic_problem();
        let mut loss = f64::INFINITY;
        for _ in 0..steps {
            let pred = net.forward(&x, Mode::Train, &mut rng);
            let (l, grad) = mse(&pred, &target);
            net.zero_grad();
            net.backward(&grad);
            opt.step(&mut net);
            loss = l;
        }
        loss
    }

    #[test]
    fn sgd_converges_on_linear_problem() {
        let loss = train(&mut Sgd::new(0.05), 500);
        assert!(loss < 1e-4, "loss {}", loss);
    }

    #[test]
    fn adam_converges_on_linear_problem() {
        let loss = train(&mut Adam::new(0.05), 500);
        assert!(loss < 1e-5, "loss {}", loss);
    }

    #[test]
    fn adam_faster_than_sgd_in_early_steps() {
        let sgd_loss = train(&mut Sgd::new(0.01), 50);
        let adam_loss = train(&mut Adam::new(0.01), 50);
        // not a deep claim — just that bias-corrected steps make progress
        assert!(adam_loss.is_finite() && sgd_loss.is_finite());
    }

    #[test]
    fn adam_reset_clears_state() {
        let mut adam = Adam::new(0.01);
        let (mut net, x, target, mut rng) = quadratic_problem();
        let pred = net.forward(&x, Mode::Train, &mut rng);
        let (_, grad) = mse(&pred, &target);
        net.backward(&grad);
        adam.step(&mut net);
        assert!(adam.t > 0);
        adam.reset();
        assert_eq!(adam.t, 0);
        assert!(adam.m.is_empty());
    }

    #[test]
    fn adam_state_roundtrip_continues_bit_exactly() {
        // Train two optimizers in lockstep; snapshot/restore one midway and
        // assert the parameter trajectories stay identical to the last bit.
        let (mut net_a, x, target, mut rng_a) = quadratic_problem();
        let (mut net_b, _, _, mut rng_b) = quadratic_problem();
        let mut adam_a = Adam::new(0.01);
        let mut adam_b = Adam::new(0.01);
        let step = |net: &mut Mlp, opt: &mut Adam, rng: &mut Rng64| {
            let pred = net.forward(&x, Mode::Train, rng);
            let (_, grad) = mse(&pred, &target);
            net.zero_grad();
            net.backward(&grad);
            opt.step(net);
        };
        for _ in 0..20 {
            step(&mut net_a, &mut adam_a, &mut rng_a);
            step(&mut net_b, &mut adam_b, &mut rng_b);
        }
        let snap = adam_b.state();
        assert_eq!(snap.t, 20);
        let mut adam_b = Adam::from_state(&snap);
        for _ in 0..20 {
            step(&mut net_a, &mut adam_a, &mut rng_a);
            step(&mut net_b, &mut adam_b, &mut rng_b);
        }
        let pa = net_a.param_vector();
        let pb = net_b.param_vector();
        assert_eq!(pa.len(), pb.len());
        for (a, b) in pa.iter().zip(pb.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn learning_rate_accessors() {
        let mut s = Sgd::new(0.1);
        s.set_learning_rate(0.2);
        assert_eq!(s.learning_rate(), 0.2);
        let mut a = Adam::new(0.001);
        a.set_learning_rate(0.01);
        assert_eq!(a.learning_rate(), 0.01);
        let mut r = RmsProp::new(0.005);
        r.set_learning_rate(0.002);
        assert_eq!(r.learning_rate(), 0.002);
    }

    #[test]
    fn rmsprop_converges_on_linear_problem() {
        let loss = train(&mut RmsProp::new(0.02), 500);
        assert!(loss < 1e-3, "loss {}", loss);
    }

    #[test]
    fn clip_grad_norm_bounds_the_gradient() {
        let (mut net, x, target, mut rng) = quadratic_problem();
        let pred = net.forward(&x, Mode::Train, &mut rng);
        let (_, grad) = mse(&pred, &target);
        net.zero_grad();
        net.backward(&grad);
        let pre = clip_grad_norm(&mut net, 1e-6);
        assert!(pre > 1e-6, "gradient unexpectedly tiny: {}", pre);
        let mut post_sq = 0.0;
        net.visit_params(&mut |_, g| post_sq += g.iter().map(|v| v * v).sum::<f64>());
        assert!((post_sq.sqrt() - 1e-6).abs() < 1e-9);
        // clipping below the threshold is a no-op
        net.zero_grad();
        let _ = net.forward(&x, Mode::Train, &mut rng);
        net.backward(&grad);
        let before = net.grad_vector();
        let norm = clip_grad_norm(&mut net, 1e12);
        assert_eq!(before, net.grad_vector());
        assert!(norm > 0.0);
    }

    #[test]
    fn step_decay_schedule() {
        let s = StepDecay {
            base_lr: 0.1,
            factor: 0.5,
            every: 10,
        };
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(9), 0.1);
        assert_eq!(s.at(10), 0.05);
        assert_eq!(s.at(25), 0.025);
        let mut opt = Sgd::new(0.1);
        s.apply(&mut opt, 20);
        assert_eq!(opt.learning_rate(), 0.025);
    }
}
