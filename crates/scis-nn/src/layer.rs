//! Layers: dense (fully connected), pointwise activations, inverted dropout.
//!
//! Every layer caches whatever its backward pass needs during `forward`, so
//! the calling convention is strict: one `backward` per `forward`, in reverse
//! order — exactly what [`crate::mlp::Mlp`] enforces.

use scis_tensor::par::{matmul_at_exec_p, matmul_bt_exec_p, matmul_exec_p};
use scis_tensor::{ExecPolicy, Matrix, Precision, Rng64};

/// Forward-pass mode: training enables dropout, evaluation disables it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Training mode — stochastic regularizers active.
    Train,
    /// Inference mode — deterministic forward.
    Eval,
}

/// A differentiable layer with cached state for backprop.
pub trait Layer: Send {
    /// Computes the layer output for a `batch x in_dim` input.
    fn forward(&mut self, x: &Matrix, mode: Mode, rng: &mut Rng64) -> Matrix;

    /// Backpropagates `grad_out` (`batch x out_dim`), accumulating parameter
    /// gradients and returning the gradient w.r.t. the layer input.
    fn backward(&mut self, grad_out: &Matrix) -> Matrix;

    /// Visits `(params, grads)` slice pairs. Order is stable across calls —
    /// the optimizers and the parameter flattener rely on that.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64]));

    /// Read-only counterpart of [`Layer::visit_params`]: visits parameter
    /// slices in the same stable order without requiring `&mut self`.
    /// Parameter-free layers keep the default no-op.
    fn visit_params_ref(&self, _f: &mut dyn FnMut(&[f64])) {}

    /// Total number of trainable parameters.
    fn num_params(&self) -> usize;

    /// Resets accumulated gradients to zero.
    fn zero_grad(&mut self);

    /// Sets the execution policy for this layer's kernels. Parallelism never
    /// changes results (the kernels are bit-identical to serial), so layers
    /// without heavy kernels ignore this; the default is a no-op.
    fn set_exec(&mut self, _policy: ExecPolicy) {}

    /// Sets the compute precision of this layer's kernels. The default
    /// [`Precision::F64`] is the bit-stable path; [`Precision::F32`] is the
    /// opt-in accelerated mode (f32 operand storage, f64 accumulation).
    /// Layers without GEMM kernels ignore this; the default is a no-op.
    fn set_precision(&mut self, _precision: Precision) {}

    /// Deep-copies the layer behind a fresh box (used to clone whole
    /// networks for the parallel SSE Monte-Carlo fan-out).
    fn clone_box(&self) -> Box<dyn Layer>;
}

/// Fully connected layer: `y = x · W + b` with `W: in x out`.
#[derive(Clone)]
pub struct Dense {
    weight: Matrix,
    bias: Vec<f64>,
    grad_w: Matrix,
    grad_b: Vec<f64>,
    cached_input: Option<Matrix>,
    exec: ExecPolicy,
    precision: Precision,
}

impl Dense {
    /// Creates a dense layer with Xavier-uniform weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng64) -> Self {
        let weight = crate::init::xavier_uniform(in_dim, out_dim, rng);
        Self {
            weight,
            bias: vec![0.0; out_dim],
            grad_w: Matrix::zeros(in_dim, out_dim),
            grad_b: vec![0.0; out_dim],
            cached_input: None,
            exec: ExecPolicy::default(),
            precision: Precision::default(),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Read-only view of the weight matrix (tests/diagnostics).
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Matrix, _mode: Mode, _rng: &mut Rng64) -> Matrix {
        assert_eq!(
            x.cols(),
            self.weight.rows(),
            "Dense::forward: input dim {} != layer in_dim {}",
            x.cols(),
            self.weight.rows()
        );
        self.cached_input = Some(x.clone());
        matmul_exec_p(x, &self.weight, self.exec, self.precision).add_row_broadcast(&self.bias)
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self
            .cached_input
            .as_ref()
            .expect("Dense::backward called before forward");
        // dW += xᵀ · grad_out ; db += column sums ; dx = grad_out · Wᵀ
        let gw = matmul_at_exec_p(x, grad_out, self.exec, self.precision);
        self.grad_w.axpy(1.0, &gw);
        for (b, s) in self.grad_b.iter_mut().zip(grad_out.col_sums()) {
            *b += s;
        }
        matmul_bt_exec_p(grad_out, &self.weight, self.exec, self.precision)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(self.weight.as_mut_slice(), self.grad_w.as_mut_slice());
        f(&mut self.bias, &mut self.grad_b);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&[f64])) {
        f(self.weight.as_slice());
        f(&self.bias);
    }

    fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn zero_grad(&mut self) {
        self.grad_w.as_mut_slice().fill(0.0);
        self.grad_b.fill(0.0);
    }

    fn set_exec(&mut self, policy: ExecPolicy) {
        self.exec = policy;
    }

    fn set_precision(&mut self, precision: Precision) {
        self.precision = precision;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Pointwise activation functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// x if x > 0 else 0.01·x
    LeakyRelu,
    /// 1/(1+e^{-x})
    Sigmoid,
    /// tanh(x)
    Tanh,
    /// identity (useful as a named no-op head)
    Identity,
}

impl Activation {
    #[inline]
    fn apply(self, v: f64) -> f64 {
        match self {
            Activation::Relu => v.max(0.0),
            Activation::LeakyRelu => {
                if v > 0.0 {
                    v
                } else {
                    0.01 * v
                }
            }
            Activation::Sigmoid => 1.0 / (1.0 + (-v).exp()),
            Activation::Tanh => v.tanh(),
            Activation::Identity => v,
        }
    }

    /// Derivative expressed through input `x` and output `y = f(x)`.
    #[inline]
    fn derivative(self, x: f64, y: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
            Activation::Identity => 1.0,
        }
    }
}

/// Stateless activation layer (caches input and output for backward).
#[derive(Clone)]
pub struct ActLayer {
    act: Activation,
    cached_in: Option<Matrix>,
    cached_out: Option<Matrix>,
}

impl ActLayer {
    /// Wraps an [`Activation`] as a layer.
    pub fn new(act: Activation) -> Self {
        Self {
            act,
            cached_in: None,
            cached_out: None,
        }
    }
}

impl Layer for ActLayer {
    fn forward(&mut self, x: &Matrix, _mode: Mode, _rng: &mut Rng64) -> Matrix {
        let out = x.map(|v| self.act.apply(v));
        self.cached_in = Some(x.clone());
        self.cached_out = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self
            .cached_in
            .as_ref()
            .expect("ActLayer::backward before forward");
        let y = self
            .cached_out
            .as_ref()
            .expect("ActLayer::backward before forward");
        let mut grad = grad_out.clone();
        let act = self.act;
        for ((g, &xv), &yv) in grad
            .as_mut_slice()
            .iter_mut()
            .zip(x.as_slice())
            .zip(y.as_slice())
        {
            *g *= act.derivative(xv, yv);
        }
        grad
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f64], &mut [f64])) {}

    fn num_params(&self) -> usize {
        0
    }

    fn zero_grad(&mut self) {}

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Inverted dropout: keeps each unit with probability `1 - p` during
/// training and scales by `1/(1-p)`, identity at evaluation time.
#[derive(Clone)]
pub struct Dropout {
    p: f64,
    mask: Option<Matrix>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p ∈ [0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "Dropout: p must be in [0,1)");
        Self { p, mask: None }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Matrix, mode: Mode, rng: &mut Rng64) -> Matrix {
        match mode {
            Mode::Eval => {
                self.mask = None;
                x.clone()
            }
            Mode::Train => {
                let keep = 1.0 - self.p;
                let scale = 1.0 / keep;
                let mask = Matrix::from_fn(x.rows(), x.cols(), |_, _| {
                    if rng.bernoulli(keep) {
                        scale
                    } else {
                        0.0
                    }
                });
                let out = x.hadamard(&mask);
                self.mask = Some(mask);
                out
            }
        }
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        match &self.mask {
            Some(mask) => grad_out.hadamard(mask),
            None => grad_out.clone(),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f64], &mut [f64])) {}

    fn num_params(&self) -> usize {
        0
    }

    fn zero_grad(&mut self) {}

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng64 {
        Rng64::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn dense_forward_known_values() {
        let mut r = rng();
        let mut d = Dense::new(2, 1, &mut r);
        // overwrite params deterministically
        d.visit_params(&mut |p, _| {
            for (i, v) in p.iter_mut().enumerate() {
                *v = (i + 1) as f64;
            }
        });
        // W = [[1],[2]], b = [1]
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 0.5]]);
        let y = d.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y.as_slice(), &[4.0, 4.0]);
    }

    #[test]
    fn dense_backward_shapes_and_accumulation() {
        let mut r = rng();
        let mut d = Dense::new(3, 2, &mut r);
        let x = Matrix::from_fn(4, 3, |i, j| (i + j) as f64);
        let _ = d.forward(&x, Mode::Train, &mut r);
        let g = Matrix::ones(4, 2);
        let gin = d.backward(&g);
        assert_eq!(gin.shape(), (4, 3));
        let mut total_grad_before = 0.0;
        d.visit_params(&mut |_, g| total_grad_before += g.iter().map(|v| v.abs()).sum::<f64>());
        assert!(total_grad_before > 0.0);
        // second backward accumulates
        let _ = d.forward(&x, Mode::Train, &mut r);
        let _ = d.backward(&g);
        let mut total_after = 0.0;
        d.visit_params(&mut |_, g| total_after += g.iter().map(|v| v.abs()).sum::<f64>());
        assert!((total_after - 2.0 * total_grad_before).abs() < 1e-9);
        d.zero_grad();
        let mut total_zero = 0.0;
        d.visit_params(&mut |_, g| total_zero += g.iter().map(|v| v.abs()).sum::<f64>());
        assert_eq!(total_zero, 0.0);
    }

    #[test]
    fn activation_values() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::LeakyRelu.apply(-1.0), -0.01);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-12);
        assert_eq!(Activation::Identity.apply(3.5), 3.5);
    }

    #[test]
    fn activation_derivatives_match_finite_difference() {
        let h = 1e-6;
        for act in [
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Identity,
        ] {
            for &x in &[-2.0, -0.5, 0.3, 1.7] {
                let y = act.apply(x);
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let analytic = act.derivative(x, y);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{:?} at {}: {} vs {}",
                    act,
                    x,
                    numeric,
                    analytic
                );
            }
        }
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut r = rng();
        let mut d = Dropout::new(0.5);
        let x = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let y = d.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y, x);
    }

    #[test]
    fn dropout_train_preserves_expectation() {
        let mut r = rng();
        let mut d = Dropout::new(0.3);
        let x = Matrix::ones(200, 50);
        let y = d.forward(&x, Mode::Train, &mut r);
        // inverted dropout: E[y] == x
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // some zeros actually happened
        assert!(y.as_slice().iter().filter(|&&v| v == 0.0).count() > 1000);
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut r = rng();
        let mut d = Dropout::new(0.5);
        let x = Matrix::ones(10, 10);
        let y = d.forward(&x, Mode::Train, &mut r);
        let g = d.backward(&Matrix::ones(10, 10));
        // gradient must be zero exactly where output was dropped
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }
}
