//! Model persistence: a small self-describing text format for MLPs.
//!
//! Format (line-oriented, versioned):
//!
//! ```text
//! scis-mlp v1
//! in <in_dim>
//! dense <out> <activation>
//! dropout <p>
//! …
//! params <count>
//! <one f64 per line, hex bits for lossless round-trip>
//! ```
//!
//! The architecture lines mirror the [`crate::mlp::MlpBuilder`] calls, so a
//! loaded model is reconstructed through the same code path that built the
//! original. Parameters are stored as hexadecimal IEEE-754 bit patterns —
//! bit-exact round-trips, no decimal parsing surprises.

use crate::layer::Activation;
use crate::mlp::{Mlp, MlpBuilder};
use scis_tensor::Rng64;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors from model load/save.
#[derive(Debug)]
pub enum ModelIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file.
    Format {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "io error: {}", e),
            ModelIoError::Format { line, message } => {
                write!(f, "line {}: {}", line, message)
            }
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<std::io::Error> for ModelIoError {
    fn from(e: std::io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

fn act_name(a: Activation) -> &'static str {
    match a {
        Activation::Relu => "relu",
        Activation::LeakyRelu => "leaky_relu",
        Activation::Sigmoid => "sigmoid",
        Activation::Tanh => "tanh",
        Activation::Identity => "identity",
    }
}

fn act_from(name: &str, line: usize) -> Result<Activation, ModelIoError> {
    Ok(match name {
        "relu" => Activation::Relu,
        "leaky_relu" => Activation::LeakyRelu,
        "sigmoid" => Activation::Sigmoid,
        "tanh" => Activation::Tanh,
        "identity" => Activation::Identity,
        other => {
            return Err(ModelIoError::Format {
                line,
                message: format!("unknown activation {:?}", other),
            })
        }
    })
}

/// Architecture descriptor recorded alongside the parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpSpec {
    /// Input feature count.
    pub in_dim: usize,
    /// Layer entries in builder order.
    pub layers: Vec<SpecLayer>,
}

/// One builder step.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecLayer {
    /// `dense(out, act)`.
    Dense {
        /// Output units.
        out: usize,
        /// Trailing activation.
        act: Activation,
    },
    /// `dropout(p)`.
    Dropout {
        /// Drop probability.
        p: f64,
    },
}

impl MlpSpec {
    /// Materializes the network described by this spec (fresh weights; use
    /// [`load_mlp`] to also restore parameters).
    pub fn build(&self, rng: &mut Rng64) -> Mlp {
        let mut b: MlpBuilder = Mlp::builder(self.in_dim);
        for l in &self.layers {
            b = match *l {
                SpecLayer::Dense { out, act } => b.dense(out, act),
                SpecLayer::Dropout { p } => b.dropout(p),
            };
        }
        b.build(rng)
    }
}

/// Saves an MLP (architecture + parameters) to `path`.
pub fn save_mlp(path: &Path, net: &mut Mlp, spec: &MlpSpec) -> Result<(), ModelIoError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "scis-mlp v1")?;
    writeln!(w, "in {}", spec.in_dim)?;
    for l in &spec.layers {
        match *l {
            SpecLayer::Dense { out, act } => writeln!(w, "dense {} {}", out, act_name(act))?,
            SpecLayer::Dropout { p } => writeln!(w, "dropout {}", p)?,
        }
    }
    let params = net.param_vector();
    writeln!(w, "params {}", params.len())?;
    for p in params {
        writeln!(w, "{:016x}", p.to_bits())?;
    }
    w.flush()?;
    Ok(())
}

/// Loads an MLP saved by [`save_mlp`]; weights restored bit-exactly.
pub fn load_mlp(path: &Path) -> Result<(Mlp, MlpSpec), ModelIoError> {
    let reader = BufReader::new(std::fs::File::open(path)?);
    let mut lines = reader.lines().enumerate();
    let mut next = |expect: &str| -> Result<(usize, String), ModelIoError> {
        match lines.next() {
            Some((i, Ok(l))) => Ok((i + 1, l)),
            Some((i, Err(e))) => Err(ModelIoError::Format {
                line: i + 1,
                message: format!("read error: {}", e),
            }),
            None => Err(ModelIoError::Format {
                line: 0,
                message: format!("unexpected end of file (expected {})", expect),
            }),
        }
    };

    let (l1, header) = next("header")?;
    if header.trim() != "scis-mlp v1" {
        return Err(ModelIoError::Format {
            line: l1,
            message: "bad header".into(),
        });
    }
    let (l2, in_line) = next("in <dim>")?;
    let in_dim: usize = in_line
        .strip_prefix("in ")
        .and_then(|v| v.trim().parse().ok())
        .ok_or(ModelIoError::Format {
            line: l2,
            message: "expected `in <dim>`".into(),
        })?;

    let mut layers = Vec::new();
    let n_params = loop {
        let (ln, line) = next("layer or params")?;
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["dense", out, act] => {
                let out: usize = out.parse().map_err(|_| ModelIoError::Format {
                    line: ln,
                    message: "bad dense width".into(),
                })?;
                layers.push(SpecLayer::Dense {
                    out,
                    act: act_from(act, ln)?,
                });
            }
            ["dropout", p] => {
                let p: f64 = p.parse().map_err(|_| ModelIoError::Format {
                    line: ln,
                    message: "bad dropout p".into(),
                })?;
                layers.push(SpecLayer::Dropout { p });
            }
            ["params", count] => {
                break count.parse::<usize>().map_err(|_| ModelIoError::Format {
                    line: ln,
                    message: "bad params count".into(),
                })?;
            }
            _ => {
                return Err(ModelIoError::Format {
                    line: ln,
                    message: format!("unrecognized line {:?}", line),
                })
            }
        }
    };
    let mut params = Vec::with_capacity(n_params);
    for _ in 0..n_params {
        let (ln, line) = next("parameter")?;
        let bits = u64::from_str_radix(line.trim(), 16).map_err(|_| ModelIoError::Format {
            line: ln,
            message: "bad parameter hex".into(),
        })?;
        params.push(f64::from_bits(bits));
    }

    let spec = MlpSpec { in_dim, layers };
    let mut rng = Rng64::seed_from_u64(0); // weights are overwritten below
    let mut net = spec.build(&mut rng);
    if net.num_params() != n_params {
        return Err(ModelIoError::Format {
            line: 0,
            message: format!(
                "parameter count {} does not match architecture ({} expected)",
                n_params,
                net.num_params()
            ),
        });
    }
    net.set_param_vector(&params);
    Ok((net, spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use scis_tensor::Matrix;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("scis_mlp_{}_{}", std::process::id(), name));
        p
    }

    fn spec() -> MlpSpec {
        MlpSpec {
            in_dim: 4,
            layers: vec![
                SpecLayer::Dense {
                    out: 8,
                    act: Activation::Relu,
                },
                SpecLayer::Dropout { p: 0.5 },
                SpecLayer::Dense {
                    out: 2,
                    act: Activation::Sigmoid,
                },
            ],
        }
    }

    #[test]
    fn save_load_roundtrip_is_bit_exact() {
        let mut rng = Rng64::seed_from_u64(1);
        let s = spec();
        let mut net = s.build(&mut rng);
        let path = tmp("roundtrip");
        save_mlp(&path, &mut net, &s).unwrap();
        let (mut loaded, loaded_spec) = load_mlp(&path).unwrap();
        assert_eq!(loaded_spec, s);
        assert_eq!(loaded.param_vector(), net.param_vector());
        // identical deterministic forward pass
        let x = Matrix::from_fn(3, 4, |i, j| (i as f64 - j as f64) * 0.3);
        let mut r = Rng64::seed_from_u64(0);
        assert_eq!(
            loaded.forward(&x, Mode::Eval, &mut r),
            net.forward(&x, Mode::Eval, &mut r)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn special_float_values_survive() {
        let mut rng = Rng64::seed_from_u64(2);
        let s = MlpSpec {
            in_dim: 1,
            layers: vec![SpecLayer::Dense {
                out: 2,
                act: Activation::Identity,
            }],
        };
        let mut net = s.build(&mut rng);
        // force awkward values: subnormal, negative zero, exact thirds
        net.set_param_vector(&[1.0 / 3.0, -0.0, 5e-324, 1e300]);
        let path = tmp("special");
        save_mlp(&path, &mut net, &s).unwrap();
        let (mut loaded, _) = load_mlp(&path).unwrap();
        let p = loaded.param_vector();
        assert_eq!(p[0].to_bits(), (1.0f64 / 3.0).to_bits());
        assert_eq!(p[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(p[2].to_bits(), 5e-324f64.to_bits());
        assert_eq!(p[3], 1e300);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_files_are_rejected() {
        let path = tmp("corrupt");
        std::fs::write(&path, "not a model\n").unwrap();
        assert!(matches!(load_mlp(&path), Err(ModelIoError::Format { .. })));
        std::fs::write(&path, "scis-mlp v1\nin 2\ndense 2 relu\nparams 99\n").unwrap();
        assert!(load_mlp(&path).is_err());
        std::fs::write(&path, "scis-mlp v1\nin 2\ndense 2 flux\nparams 6\n").unwrap();
        assert!(matches!(load_mlp(&path), Err(ModelIoError::Format { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn param_count_mismatch_is_detected() {
        let mut rng = Rng64::seed_from_u64(3);
        let s = spec();
        let mut net = s.build(&mut rng);
        let path = tmp("mismatch");
        save_mlp(&path, &mut net, &s).unwrap();
        // truncate one parameter line
        let content = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = content.lines().collect();
        lines.pop();
        std::fs::write(&path, lines.join("\n")).unwrap();
        assert!(load_mlp(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
