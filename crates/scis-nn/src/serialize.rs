//! Model persistence: a small self-describing text format for MLPs.
//!
//! Format (line-oriented, versioned):
//!
//! ```text
//! scis-mlp v2
//! in <in_dim>
//! dense <out> <activation>
//! dropout <p>
//! …
//! params <count>
//! <one f64 per line, hex bits for lossless round-trip>
//! checksum <fnv1a64 of everything above, hex>
//! ```
//!
//! The architecture lines mirror the [`crate::mlp::MlpBuilder`] calls, so a
//! loaded model is reconstructed through the same code path that built the
//! original. Parameters are stored as hexadecimal IEEE-754 bit patterns —
//! bit-exact round-trips, no decimal parsing surprises. The trailing
//! checksum line (v2) detects truncation and bit-rot; v1 files (no
//! checksum) still load. Writes go through [`write_atomic`]
//! (temp file → fsync → rename), so a crash mid-save never leaves a
//! half-written model at the target path.

use crate::layer::Activation;
use crate::mlp::{Mlp, MlpBuilder};
use scis_tensor::Rng64;
use std::io::Write;
use std::path::Path;

/// Errors from model load/save.
#[derive(Debug)]
pub enum ModelIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file.
    Format {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The recorded checksum does not match the file contents — the file
    /// was truncated or corrupted after writing.
    Checksum {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the contents as read.
        actual: u64,
    },
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "io error: {}", e),
            ModelIoError::Format { line, message } => {
                write!(f, "line {}: {}", line, message)
            }
            ModelIoError::Checksum { expected, actual } => write!(
                f,
                "checksum mismatch: file records {:016x}, contents hash to {:016x}",
                expected, actual
            ),
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<std::io::Error> for ModelIoError {
    fn from(e: std::io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

/// FNV-1a 64-bit hash — the dependency-free checksum used by the model and
/// checkpoint formats. Not cryptographic; detects truncation and bit-rot.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Crash-safe file write: writes `contents` to a sibling temp file, fsyncs
/// it, then atomically renames over `path`. Readers never observe a
/// half-written file.
pub fn write_atomic(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(format!(".tmp{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp_name);
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    // Best-effort directory fsync so the rename itself survives a crash.
    if result.is_ok() {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = std::fs::File::open(dir) {
                d.sync_all().ok();
            }
        }
    }
    result
}

fn act_name(a: Activation) -> &'static str {
    match a {
        Activation::Relu => "relu",
        Activation::LeakyRelu => "leaky_relu",
        Activation::Sigmoid => "sigmoid",
        Activation::Tanh => "tanh",
        Activation::Identity => "identity",
    }
}

fn act_from(name: &str, line: usize) -> Result<Activation, ModelIoError> {
    Ok(match name {
        "relu" => Activation::Relu,
        "leaky_relu" => Activation::LeakyRelu,
        "sigmoid" => Activation::Sigmoid,
        "tanh" => Activation::Tanh,
        "identity" => Activation::Identity,
        other => {
            return Err(ModelIoError::Format {
                line,
                message: format!("unknown activation {:?}", other),
            })
        }
    })
}

/// Architecture descriptor recorded alongside the parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpSpec {
    /// Input feature count.
    pub in_dim: usize,
    /// Layer entries in builder order.
    pub layers: Vec<SpecLayer>,
}

/// One builder step.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecLayer {
    /// `dense(out, act)`.
    Dense {
        /// Output units.
        out: usize,
        /// Trailing activation.
        act: Activation,
    },
    /// `dropout(p)`.
    Dropout {
        /// Drop probability.
        p: f64,
    },
}

impl MlpSpec {
    /// Materializes the network described by this spec (fresh weights; use
    /// [`load_mlp`] to also restore parameters).
    pub fn build(&self, rng: &mut Rng64) -> Mlp {
        let mut b: MlpBuilder = Mlp::builder(self.in_dim);
        for l in &self.layers {
            b = match *l {
                SpecLayer::Dense { out, act } => b.dense(out, act),
                SpecLayer::Dropout { p } => b.dropout(p),
            };
        }
        b.build(rng)
    }
}

/// Renders an MLP (architecture + parameters) to the v2 text format with a
/// trailing checksum line — the exact bytes [`save_mlp`] writes. Container
/// formats (model bundles, checkpoints) embed this string as their
/// generator section and parse it back with [`mlp_from_str`].
pub fn mlp_to_string(net: &Mlp, spec: &MlpSpec) -> String {
    use std::fmt::Write as _;
    let mut body = String::new();
    let _ = writeln!(body, "scis-mlp v2");
    let _ = writeln!(body, "in {}", spec.in_dim);
    for l in &spec.layers {
        match *l {
            SpecLayer::Dense { out, act } => {
                let _ = writeln!(body, "dense {} {}", out, act_name(act));
            }
            SpecLayer::Dropout { p } => {
                let _ = writeln!(body, "dropout {}", p);
            }
        }
    }
    let params = net.param_vector_ref();
    let _ = writeln!(body, "params {}", params.len());
    for p in params {
        let _ = writeln!(body, "{:016x}", p.to_bits());
    }
    let _ = writeln!(body, "checksum {:016x}", fnv1a64(body.as_bytes()));
    body
}

/// Saves an MLP (architecture + parameters) to `path` atomically, with a
/// trailing checksum line (format v2).
pub fn save_mlp(path: &Path, net: &Mlp, spec: &MlpSpec) -> Result<(), ModelIoError> {
    write_atomic(path, mlp_to_string(net, spec).as_bytes())?;
    Ok(())
}

/// Loads an MLP saved by [`save_mlp`]; weights restored bit-exactly.
/// Accepts v1 (no checksum) and v2 (checksum verified) files; any other
/// version is rejected with a typed error.
pub fn load_mlp(path: &Path) -> Result<(Mlp, MlpSpec), ModelIoError> {
    let content = std::fs::read_to_string(path)?;
    mlp_from_str(&content)
}

/// Parses the text produced by [`mlp_to_string`] (or read from a
/// [`save_mlp`] file); weights restored bit-exactly. Accepts v1 (no
/// checksum) and v2 (checksum verified) content.
pub fn mlp_from_str(content: &str) -> Result<(Mlp, MlpSpec), ModelIoError> {
    let mut lines = content.lines().enumerate();
    let mut next = |expect: &str| -> Result<(usize, String), ModelIoError> {
        match lines.next() {
            Some((i, l)) => Ok((i + 1, l.to_string())),
            None => Err(ModelIoError::Format {
                line: 0,
                message: format!("unexpected end of file (expected {})", expect),
            }),
        }
    };

    let (l1, header) = next("header")?;
    let version = match header.trim() {
        "scis-mlp v1" => 1,
        "scis-mlp v2" => 2,
        other if other.starts_with("scis-mlp ") => {
            return Err(ModelIoError::Format {
                line: l1,
                message: format!(
                    "unsupported format version {:?} (this build reads v1 and v2)",
                    other.trim_start_matches("scis-mlp ")
                ),
            });
        }
        _ => {
            return Err(ModelIoError::Format {
                line: l1,
                message: "bad header".into(),
            });
        }
    };
    let (l2, in_line) = next("in <dim>")?;
    let in_dim: usize = in_line
        .strip_prefix("in ")
        .and_then(|v| v.trim().parse().ok())
        .ok_or(ModelIoError::Format {
            line: l2,
            message: "expected `in <dim>`".into(),
        })?;

    let mut layers = Vec::new();
    let n_params = loop {
        let (ln, line) = next("layer or params")?;
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["dense", out, act] => {
                let out: usize = out.parse().map_err(|_| ModelIoError::Format {
                    line: ln,
                    message: "bad dense width".into(),
                })?;
                layers.push(SpecLayer::Dense {
                    out,
                    act: act_from(act, ln)?,
                });
            }
            ["dropout", p] => {
                let p: f64 = p.parse().map_err(|_| ModelIoError::Format {
                    line: ln,
                    message: "bad dropout p".into(),
                })?;
                layers.push(SpecLayer::Dropout { p });
            }
            ["params", count] => {
                break count.parse::<usize>().map_err(|_| ModelIoError::Format {
                    line: ln,
                    message: "bad params count".into(),
                })?;
            }
            _ => {
                return Err(ModelIoError::Format {
                    line: ln,
                    message: format!("unrecognized line {:?}", line),
                })
            }
        }
    };
    let mut params = Vec::with_capacity(n_params);
    for _ in 0..n_params {
        let (ln, line) = next("parameter")?;
        let bits = u64::from_str_radix(line.trim(), 16).map_err(|_| ModelIoError::Format {
            line: ln,
            message: "bad parameter hex".into(),
        })?;
        params.push(f64::from_bits(bits));
    }

    if version >= 2 {
        let (ln, line) = next("checksum")?;
        let expected = line
            .strip_prefix("checksum ")
            .and_then(|v| u64::from_str_radix(v.trim(), 16).ok())
            .ok_or(ModelIoError::Format {
                line: ln,
                message: "expected `checksum <hex>`".into(),
            })?;
        // Hash everything preceding the checksum line, exactly as written.
        let body: String = content
            .lines()
            .take(ln - 1)
            .map(|l| format!("{}\n", l))
            .collect();
        let actual = fnv1a64(body.as_bytes());
        if actual != expected {
            return Err(ModelIoError::Checksum { expected, actual });
        }
    }

    let spec = MlpSpec { in_dim, layers };
    let mut rng = Rng64::seed_from_u64(0); // weights are overwritten below
    let mut net = spec.build(&mut rng);
    if net.num_params() != n_params {
        return Err(ModelIoError::Format {
            line: 0,
            message: format!(
                "parameter count {} does not match architecture ({} expected)",
                n_params,
                net.num_params()
            ),
        });
    }
    net.set_param_vector(&params);
    Ok((net, spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use scis_tensor::Matrix;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("scis_mlp_{}_{}", std::process::id(), name));
        p
    }

    fn spec() -> MlpSpec {
        MlpSpec {
            in_dim: 4,
            layers: vec![
                SpecLayer::Dense {
                    out: 8,
                    act: Activation::Relu,
                },
                SpecLayer::Dropout { p: 0.5 },
                SpecLayer::Dense {
                    out: 2,
                    act: Activation::Sigmoid,
                },
            ],
        }
    }

    #[test]
    fn save_load_roundtrip_is_bit_exact() {
        let mut rng = Rng64::seed_from_u64(1);
        let s = spec();
        let mut net = s.build(&mut rng);
        let path = tmp("roundtrip");
        save_mlp(&path, &net, &s).unwrap();
        let (mut loaded, loaded_spec) = load_mlp(&path).unwrap();
        assert_eq!(loaded_spec, s);
        assert_eq!(loaded.param_vector(), net.param_vector());
        // identical deterministic forward pass
        let x = Matrix::from_fn(3, 4, |i, j| (i as f64 - j as f64) * 0.3);
        let mut r = Rng64::seed_from_u64(0);
        assert_eq!(
            loaded.forward(&x, Mode::Eval, &mut r),
            net.forward(&x, Mode::Eval, &mut r)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn special_float_values_survive() {
        let mut rng = Rng64::seed_from_u64(2);
        let s = MlpSpec {
            in_dim: 1,
            layers: vec![SpecLayer::Dense {
                out: 2,
                act: Activation::Identity,
            }],
        };
        let mut net = s.build(&mut rng);
        // force awkward values: subnormal, negative zero, exact thirds
        net.set_param_vector(&[1.0 / 3.0, -0.0, 5e-324, 1e300]);
        let path = tmp("special");
        save_mlp(&path, &net, &s).unwrap();
        let (mut loaded, _) = load_mlp(&path).unwrap();
        let p = loaded.param_vector();
        assert_eq!(p[0].to_bits(), (1.0f64 / 3.0).to_bits());
        assert_eq!(p[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(p[2].to_bits(), 5e-324f64.to_bits());
        assert_eq!(p[3], 1e300);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_files_are_rejected() {
        let path = tmp("corrupt");
        std::fs::write(&path, "not a model\n").unwrap();
        assert!(matches!(load_mlp(&path), Err(ModelIoError::Format { .. })));
        std::fs::write(&path, "scis-mlp v1\nin 2\ndense 2 relu\nparams 99\n").unwrap();
        assert!(load_mlp(&path).is_err());
        std::fs::write(&path, "scis-mlp v1\nin 2\ndense 2 flux\nparams 6\n").unwrap();
        assert!(matches!(load_mlp(&path), Err(ModelIoError::Format { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn param_count_mismatch_is_detected() {
        let mut rng = Rng64::seed_from_u64(3);
        let s = spec();
        let net = s.build(&mut rng);
        let path = tmp("mismatch");
        save_mlp(&path, &net, &s).unwrap();
        // truncate one parameter line (drops the checksum line too)
        let content = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = content.lines().collect();
        lines.pop();
        lines.pop();
        std::fs::write(&path, lines.join("\n")).unwrap();
        assert!(load_mlp(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_fails_cleanly() {
        let mut rng = Rng64::seed_from_u64(4);
        let s = spec();
        let net = s.build(&mut rng);
        let path = tmp("truncated");
        save_mlp(&path, &net, &s).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        // cut the file roughly in half, mid parameter block
        std::fs::write(&path, &content[..content.len() / 2]).unwrap();
        match load_mlp(&path) {
            Err(ModelIoError::Format { .. }) | Err(ModelIoError::Checksum { .. }) => {}
            other => panic!(
                "expected typed error on truncation, got {:?}",
                other.is_ok()
            ),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_mismatch_is_detected() {
        let mut rng = Rng64::seed_from_u64(5);
        let s = spec();
        let net = s.build(&mut rng);
        let path = tmp("bitrot");
        save_mlp(&path, &net, &s).unwrap();
        // flip one hex digit inside a parameter line — structure stays
        // valid, only the checksum can catch it
        let content = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = content.lines().map(String::from).collect();
        let param_line = lines.len() - 2; // last line is the checksum
        let mut flipped = lines[param_line].clone();
        let last = flipped.pop().unwrap();
        flipped.push(if last == '0' { '1' } else { '0' });
        assert_ne!(flipped, lines[param_line]);
        lines[param_line] = flipped;
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        assert!(matches!(
            load_mlp(&path),
            Err(ModelIoError::Checksum { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_skew_is_rejected_with_version_name() {
        let path = tmp("skew");
        std::fs::write(&path, "scis-mlp v9\nin 2\ndense 2 relu\nparams 6\n").unwrap();
        match load_mlp(&path) {
            Err(ModelIoError::Format { message, .. }) => {
                assert!(message.contains("v9"), "message {:?}", message);
            }
            other => panic!("expected Format error, got ok={}", other.is_ok()),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_v1_files_still_load() {
        // v1 has no checksum line; loader must accept it unchanged.
        let mut rng = Rng64::seed_from_u64(6);
        let s = MlpSpec {
            in_dim: 1,
            layers: vec![SpecLayer::Dense {
                out: 1,
                act: Activation::Identity,
            }],
        };
        let net = s.build(&mut rng);
        let params = net.param_vector_ref();
        let mut body = String::from("scis-mlp v1\nin 1\ndense 1 identity\nparams 2\n");
        for p in &params {
            body.push_str(&format!("{:016x}\n", p.to_bits()));
        }
        let path = tmp("v1legacy");
        std::fs::write(&path, body).unwrap();
        let (mut loaded, _) = load_mlp(&path).unwrap();
        assert_eq!(loaded.param_vector(), params);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_leaves_no_temp_file_behind() {
        let mut rng = Rng64::seed_from_u64(7);
        let s = spec();
        let net = s.build(&mut rng);
        let path = tmp("atomic");
        save_mlp(&path, &net, &s).unwrap();
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().to_string();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().to_string())
            .filter(|n| n.starts_with(&stem) && n.contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {:?}", leftovers);
        std::fs::remove_file(&path).ok();
    }
}
