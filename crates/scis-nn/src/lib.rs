#![warn(missing_docs)]

//! `scis-nn` — minimal neural-network substrate with manual backprop.
//!
//! The paper trains small fully connected networks (GAIN's generator and
//! discriminator are 2-layer MLPs; the autoencoder baselines use 1–2 hidden
//! layers). This crate implements exactly that surface: dense layers,
//! pointwise activations, inverted dropout, Adam/SGD, and the loss functions
//! the baselines need — all with hand-written, finite-difference-verified
//! backward passes ([`gradcheck`]).
//!
//! Parameters of a whole network can be flattened to a single `Vec<f64>` and
//! restored ([`Mlp::param_vector`] / [`Mlp::set_param_vector`]); the SSE
//! module of SCIS relies on this to sample perturbed generators from the
//! Theorem-1 posterior.

pub mod gradcheck;
pub mod init;
pub mod layer;
pub mod loss;
pub mod mlp;
pub mod optim;
pub mod serialize;

pub use layer::{Activation, Dense, Dropout, Layer, Mode};
pub use mlp::Mlp;
pub use optim::{clip_grad_norm, Adam, AdamState, Optimizer, RmsProp, Sgd, StepDecay};
pub use serialize::{
    fnv1a64, load_mlp, mlp_from_str, mlp_to_string, save_mlp, write_atomic, MlpSpec, SpecLayer,
};
