//! Finite-difference gradient verification.
//!
//! The backward passes in this crate are hand-written; this module is the
//! safety net. [`check_network_gradients`] perturbs each parameter of a
//! network, re-evaluates an arbitrary scalar loss, and compares the numeric
//! derivative against the analytic gradient accumulated by `backward`.
//!
//! Dropout and any other stochastic layer must be avoided (or run in
//! [`Mode::Eval`]) during checking, since the finite-difference probe
//! requires a deterministic forward map.

use crate::layer::Mode;
use crate::mlp::Mlp;
use scis_tensor::{Matrix, Rng64};

/// Result of a gradient check.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest absolute difference between numeric and analytic gradients.
    pub max_abs_err: f64,
    /// Largest relative difference (guarded against tiny denominators).
    pub max_rel_err: f64,
    /// Number of parameters probed.
    pub checked: usize,
}

impl GradCheckReport {
    /// Whether the check passed under the given relative tolerance.
    pub fn passes(&self, rel_tol: f64) -> bool {
        self.max_rel_err <= rel_tol
    }
}

/// Verifies `net`'s parameter gradients against central finite differences
/// for the scalar loss `loss(prediction)`.
///
/// `probe_limit` caps how many parameters are probed (probing is O(params ·
/// forward cost)); parameters are probed in a deterministic stride so
/// coverage spans all layers.
pub fn check_network_gradients(
    net: &mut Mlp,
    x: &Matrix,
    loss: impl Fn(&Matrix) -> (f64, Matrix),
    probe_limit: usize,
    rng: &mut Rng64,
) -> GradCheckReport {
    // analytic gradient
    let pred = net.forward(x, Mode::Eval, rng);
    let (_, dloss) = loss(&pred);
    net.zero_grad();
    net.backward(&dloss);
    let analytic = net.grad_vector();
    let theta = net.param_vector();

    let n = theta.len();
    let stride = (n / probe_limit.max(1)).max(1);
    let h = 1e-5;

    let mut max_abs: f64 = 0.0;
    let mut max_rel: f64 = 0.0;
    let mut checked = 0;
    let mut probe = theta.clone();
    for k in (0..n).step_by(stride) {
        probe[k] = theta[k] + h;
        net.set_param_vector(&probe);
        let (lp, _) = loss(&net.forward(x, Mode::Eval, rng));
        probe[k] = theta[k] - h;
        net.set_param_vector(&probe);
        let (lm, _) = loss(&net.forward(x, Mode::Eval, rng));
        probe[k] = theta[k];

        let numeric = (lp - lm) / (2.0 * h);
        let abs = (numeric - analytic[k]).abs();
        let rel = abs / numeric.abs().max(analytic[k].abs()).max(1e-6);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
        checked += 1;
    }
    net.set_param_vector(&theta);
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
        checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use crate::loss::{bce_prob, mse};

    #[test]
    fn dense_tanh_identity_network_gradients_check_out() {
        let mut rng = Rng64::seed_from_u64(5);
        let mut net = Mlp::builder(4)
            .dense(8, Activation::Tanh)
            .dense(3, Activation::Identity)
            .build(&mut rng);
        let x = Matrix::from_fn(6, 4, |i, j| ((i + 2 * j) as f64 * 0.37).sin());
        let target = Matrix::from_fn(6, 3, |i, j| ((i * j) as f64 * 0.11).cos());
        let report = check_network_gradients(&mut net, &x, |p| mse(p, &target), 200, &mut rng);
        assert!(report.checked > 10);
        assert!(report.passes(1e-4), "report {:?}", report);
    }

    #[test]
    fn sigmoid_bce_network_gradients_check_out() {
        let mut rng = Rng64::seed_from_u64(6);
        let mut net = Mlp::builder(3)
            .dense(6, Activation::LeakyRelu)
            .dense(1, Activation::Sigmoid)
            .build(&mut rng);
        let x = Matrix::from_fn(10, 3, |i, j| ((i * 7 + j) % 5) as f64 / 5.0 - 0.4);
        let target = Matrix::from_fn(10, 1, |i, _| (i % 2) as f64);
        let report = check_network_gradients(&mut net, &x, |p| bce_prob(p, &target), 200, &mut rng);
        assert!(report.passes(1e-3), "report {:?}", report);
    }

    #[test]
    fn relu_network_gradients_check_out_away_from_kinks() {
        let mut rng = Rng64::seed_from_u64(7);
        let mut net = Mlp::builder(2)
            .dense(5, Activation::Relu)
            .dense(2, Activation::Identity)
            .build(&mut rng);
        // inputs chosen to keep pre-activations away from 0 so the FD probe
        // doesn't straddle the ReLU kink
        let x = Matrix::from_fn(8, 2, |i, j| 1.0 + ((i + j) % 3) as f64);
        let target = Matrix::zeros(8, 2);
        let report = check_network_gradients(&mut net, &x, |p| mse(p, &target), 100, &mut rng);
        assert!(report.passes(1e-3), "report {:?}", report);
    }

    #[test]
    fn restores_parameters_after_check() {
        let mut rng = Rng64::seed_from_u64(8);
        let mut net = Mlp::builder(2).dense(2, Activation::Tanh).build(&mut rng);
        let before = net.param_vector();
        let x = Matrix::ones(3, 2);
        let target = Matrix::zeros(3, 2);
        let _ = check_network_gradients(&mut net, &x, |p| mse(p, &target), 50, &mut rng);
        assert_eq!(before, net.param_vector());
    }
}
