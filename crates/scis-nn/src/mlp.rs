//! Sequential multi-layer perceptron with a builder API.
//!
//! ```
//! use scis_nn::{Mlp, Activation};
//! use scis_tensor::{Matrix, Rng64};
//!
//! let mut rng = Rng64::seed_from_u64(7);
//! let mut net = Mlp::builder(4)
//!     .dense(8, Activation::Relu)
//!     .dense(1, Activation::Sigmoid)
//!     .build(&mut rng);
//! let x = Matrix::ones(2, 4);
//! let y = net.forward(&x, scis_nn::Mode::Eval, &mut rng);
//! assert_eq!(y.shape(), (2, 1));
//! ```

use crate::layer::{ActLayer, Activation, Dense, Dropout, Layer, Mode};
use scis_telemetry::{Counter, Telemetry};
use scis_tensor::{ExecPolicy, Matrix, Rng64};

/// A stack of layers applied in sequence.
pub struct Mlp {
    layers: Vec<Box<dyn Layer>>,
    in_dim: usize,
    out_dim: usize,
    telemetry: Telemetry,
}

impl Clone for Mlp {
    fn clone(&self) -> Self {
        Mlp {
            layers: self.layers.iter().map(|l| l.clone_box()).collect(),
            in_dim: self.in_dim,
            out_dim: self.out_dim,
            // clones share the collector, so counts from worker-thread
            // model copies (SSE fan-out) merge into one slab
            telemetry: self.telemetry.clone(),
        }
    }
}

/// Builder for [`Mlp`]; records the architecture, materializes weights on
/// [`MlpBuilder::build`].
pub struct MlpBuilder {
    in_dim: usize,
    specs: Vec<LayerSpec>,
}

enum LayerSpec {
    Dense { out: usize, act: Activation },
    Dropout { p: f64 },
}

impl Mlp {
    /// Starts building a network whose input has `in_dim` features.
    pub fn builder(in_dim: usize) -> MlpBuilder {
        MlpBuilder {
            in_dim,
            specs: Vec::new(),
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Full forward pass.
    pub fn forward(&mut self, x: &Matrix, mode: Mode, rng: &mut Rng64) -> Matrix {
        self.telemetry.incr(Counter::NnForwards);
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h, mode, rng);
        }
        h
    }

    /// Full backward pass from the loss gradient w.r.t. the network output;
    /// accumulates parameter gradients and returns the gradient w.r.t. the
    /// network input.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        self.telemetry.incr(Counter::NnBackwards);
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Attaches a telemetry collector; forward/backward passes are counted
    /// into it. Recording never touches the RNG or the numeric path, so
    /// outputs are unchanged. The default is [`Telemetry::off`].
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Visits all `(param, grad)` slice pairs in a stable order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Propagates an execution policy to every layer. Parallelism only
    /// affects wall-clock time — forward/backward results are bit-identical
    /// under any policy.
    pub fn set_exec(&mut self, policy: ExecPolicy) {
        for layer in &mut self.layers {
            layer.set_exec(policy);
        }
    }

    /// Propagates a compute precision to every layer. The default
    /// [`scis_tensor::Precision::F64`] is the bit-stable path;
    /// [`scis_tensor::Precision::F32`] is the opt-in accelerated mode
    /// (f32 operand storage, f64 accumulation — results stay bit-identical
    /// across thread counts *within* the mode).
    pub fn set_precision(&mut self, precision: scis_tensor::Precision) {
        for layer in &mut self.layers {
            layer.set_precision(precision);
        }
    }

    /// Read-only counterpart of [`Mlp::visit_params`]: visits parameter
    /// slices in the same stable order without requiring `&mut self`.
    pub fn visit_params_ref(&self, f: &mut dyn FnMut(&[f64])) {
        for layer in &self.layers {
            layer.visit_params_ref(f);
        }
    }

    /// Flattens all parameters into a single vector (stable order).
    pub fn param_vector(&mut self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        self.visit_params(&mut |p, _| out.extend_from_slice(p));
        out
    }

    /// Like [`Mlp::param_vector`] but without requiring `&mut self`.
    pub fn param_vector_ref(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        self.visit_params_ref(&mut |p| out.extend_from_slice(p));
        out
    }

    /// Flattens all accumulated gradients into a single vector (same order
    /// as [`Mlp::param_vector`]).
    pub fn grad_vector(&mut self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        self.visit_params(&mut |_, g| out.extend_from_slice(g));
        out
    }

    /// Restores parameters from a flat vector produced by
    /// [`Mlp::param_vector`].
    ///
    /// # Panics
    /// Panics if the vector length differs from [`Mlp::num_params`].
    pub fn set_param_vector(&mut self, flat: &[f64]) {
        assert_eq!(
            flat.len(),
            self.num_params(),
            "set_param_vector: expected {} values, got {}",
            self.num_params(),
            flat.len()
        );
        let mut offset = 0;
        self.visit_params(&mut |p, _| {
            p.copy_from_slice(&flat[offset..offset + p.len()]);
            offset += p.len();
        });
    }
}

impl MlpBuilder {
    /// Appends a dense layer of `out` units followed by `act`.
    pub fn dense(mut self, out: usize, act: Activation) -> Self {
        self.specs.push(LayerSpec::Dense { out, act });
        self
    }

    /// Appends a dropout layer with drop probability `p`.
    pub fn dropout(mut self, p: f64) -> Self {
        self.specs.push(LayerSpec::Dropout { p });
        self
    }

    /// Materializes the network, drawing initial weights from `rng`.
    ///
    /// # Panics
    /// Panics if no dense layer was added.
    pub fn build(self, rng: &mut Rng64) -> Mlp {
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        let mut cur = self.in_dim;
        let mut out_dim = self.in_dim;
        for spec in self.specs {
            match spec {
                LayerSpec::Dense { out, act } => {
                    layers.push(Box::new(Dense::new(cur, out, rng)));
                    if act != Activation::Identity {
                        layers.push(Box::new(ActLayer::new(act)));
                    }
                    cur = out;
                    out_dim = out;
                }
                LayerSpec::Dropout { p } => {
                    layers.push(Box::new(Dropout::new(p)));
                }
            }
        }
        assert!(!layers.is_empty(), "MlpBuilder::build: empty network");
        Mlp {
            layers,
            in_dim: self.in_dim,
            out_dim,
            telemetry: Telemetry::off(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng64 {
        Rng64::seed_from_u64(99)
    }

    fn small_net(rng: &mut Rng64) -> Mlp {
        Mlp::builder(3)
            .dense(5, Activation::Tanh)
            .dense(2, Activation::Sigmoid)
            .build(rng)
    }

    #[test]
    fn forward_shape_and_sigmoid_range() {
        let mut r = rng();
        let mut net = small_net(&mut r);
        let x = Matrix::from_fn(7, 3, |i, j| (i as f64 - j as f64) * 0.3);
        let y = net.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y.shape(), (7, 2));
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn param_vector_roundtrip() {
        let mut r = rng();
        let mut net = small_net(&mut r);
        let x = Matrix::ones(2, 3);
        let y0 = net.forward(&x, Mode::Eval, &mut r);
        let flat = net.param_vector();
        assert_eq!(flat.len(), net.num_params());
        assert_eq!(net.num_params(), 3 * 5 + 5 + 5 * 2 + 2);

        // perturb then restore
        let perturbed: Vec<f64> = flat.iter().map(|v| v + 1.0).collect();
        net.set_param_vector(&perturbed);
        let y1 = net.forward(&x, Mode::Eval, &mut r);
        assert_ne!(y0, y1);
        net.set_param_vector(&flat);
        let y2 = net.forward(&x, Mode::Eval, &mut r);
        for (a, b) in y0.as_slice().iter().zip(y2.as_slice()) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn param_vector_ref_matches_mut_flattener() {
        let mut r = rng();
        let mut net = Mlp::builder(3)
            .dense(5, Activation::Tanh)
            .dropout(0.25)
            .dense(2, Activation::Sigmoid)
            .build(&mut r);
        assert_eq!(net.param_vector_ref(), net.param_vector());
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn set_param_vector_rejects_wrong_len() {
        let mut r = rng();
        let mut net = small_net(&mut r);
        net.set_param_vector(&[0.0; 3]);
    }

    #[test]
    fn backward_produces_input_gradient_of_right_shape() {
        let mut r = rng();
        let mut net = small_net(&mut r);
        let x = Matrix::ones(4, 3);
        let y = net.forward(&x, Mode::Train, &mut r);
        let gin = net.backward(&Matrix::ones(y.rows(), y.cols()));
        assert_eq!(gin.shape(), (4, 3));
        assert!(net.grad_vector().iter().any(|&g| g != 0.0));
        net.zero_grad();
        assert!(net.grad_vector().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn identical_seeds_build_identical_networks() {
        let mut r1 = Rng64::seed_from_u64(31);
        let mut r2 = Rng64::seed_from_u64(31);
        let mut a = small_net(&mut r1);
        let mut b = small_net(&mut r2);
        assert_eq!(a.param_vector(), b.param_vector());
    }

    #[test]
    fn grad_vector_matches_visit_order() {
        let mut r = rng();
        let mut net = small_net(&mut r);
        let x = Matrix::ones(3, 3);
        let y = net.forward(&x, Mode::Train, &mut r);
        net.backward(&Matrix::ones(y.rows(), y.cols()));
        let flat = net.grad_vector();
        let mut concat = Vec::new();
        net.visit_params(&mut |_, g| concat.extend_from_slice(g));
        assert_eq!(flat, concat);
    }

    #[test]
    fn builder_with_dropout_has_no_extra_params() {
        let mut r = rng();
        let mut with = Mlp::builder(4)
            .dropout(0.5)
            .dense(3, Activation::Relu)
            .build(&mut r);
        let mut r2 = rng();
        let mut without = Mlp::builder(4).dense(3, Activation::Relu).build(&mut r2);
        assert_eq!(with.num_params(), without.num_params());
        assert_eq!(with.param_vector().len(), without.param_vector().len());
    }

    #[test]
    fn training_reduces_mse_on_toy_regression() {
        let mut r = rng();
        let mut net = Mlp::builder(1)
            .dense(16, Activation::Tanh)
            .dense(1, Activation::Identity)
            .build(&mut r);
        let x = Matrix::from_fn(64, 1, |i, _| i as f64 / 64.0 * 2.0 - 1.0);
        let target = x.map(|v| (v * 2.0).sin());
        let mut opt = crate::optim::Adam::new(0.01);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..300 {
            let pred = net.forward(&x, Mode::Train, &mut r);
            let (loss, grad) = crate::loss::mse(&pred, &target);
            net.zero_grad();
            net.backward(&grad);
            crate::optim::Optimizer::step(&mut opt, &mut net);
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(
            last < first.unwrap() * 0.1,
            "loss {} -> {}",
            first.unwrap(),
            last
        );
    }
}
