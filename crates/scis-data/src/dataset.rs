//! The incomplete dataset: values + mask + column metadata.

use crate::mask::MaskMatrix;
use scis_tensor::Matrix;

/// Column type metadata, used by the synthetic generator, the HIVAE
/// likelihood heads, and the post-imputation prediction tasks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ColumnKind {
    /// Real-valued feature.
    Continuous,
    /// Ordinal/categorical feature with the given number of levels, stored
    /// as `0.0 ..= (levels-1) as f64`.
    Categorical {
        /// Number of category levels.
        levels: usize,
    },
}

/// Per-column streaming state behind [`infer_kinds`]: feed observed values
/// in row order, then [`KindState::resolve`]. Tracking the running maximum
/// level inline (instead of `max()`-ing the distinct set afterwards) keeps
/// the empty-column case panic-free: a column with no observed values
/// resolves to [`ColumnKind::Continuous`] instead of tripping an `.expect`
/// on an empty set.
#[derive(Debug, Clone)]
struct KindState {
    distinct: Vec<i64>,
    max_level: i64,
    categorical: bool,
    any: bool,
}

impl KindState {
    fn new() -> Self {
        Self {
            distinct: Vec::new(),
            max_level: 0,
            categorical: true,
            any: false,
        }
    }

    fn observe(&mut self, v: f64, max_levels: usize) {
        if v.is_nan() || !self.categorical {
            return;
        }
        self.any = true;
        if v < 0.0 || v.fract() != 0.0 || v > 1e6 {
            self.categorical = false;
            return;
        }
        let iv = v as i64;
        if !self.distinct.contains(&iv) {
            self.distinct.push(iv);
            self.max_level = self.max_level.max(iv);
            if self.distinct.len() > max_levels {
                self.categorical = false;
            }
        }
    }

    fn resolve(&self) -> ColumnKind {
        if self.any && self.categorical && self.distinct.len() >= 2 {
            ColumnKind::Categorical {
                levels: (self.max_level as usize + 1).max(2),
            }
        } else {
            ColumnKind::Continuous
        }
    }
}

/// Infers per-column kinds from observed values: a column whose observed
/// values are all small non-negative integers with at most `max_levels`
/// distinct values is treated as categorical (ordinal-coded); everything
/// else is continuous. Used by the `scis-impute` CLI so heterogeneous
/// heads (HIVAE) work on raw CSVs. A column with no observed values is
/// continuous.
pub fn infer_kinds(values: &Matrix, max_levels: usize) -> Vec<ColumnKind> {
    let mut states: Vec<KindState> = (0..values.cols()).map(|_| KindState::new()).collect();
    for i in 0..values.rows() {
        for (j, s) in states.iter_mut().enumerate() {
            s.observe(values[(i, j)], max_levels);
        }
    }
    states.iter().map(KindState::resolve).collect()
}

/// Streaming [`infer_kinds`] over a sharded source: one pass in shard
/// order, identical results to materializing the source (the per-column
/// state consumes observed values in the same row order).
pub fn infer_kinds_source(
    src: &dyn crate::shard::RowSource,
    max_levels: usize,
) -> Result<Vec<ColumnKind>, crate::shard::ShardError> {
    let mut states: Vec<KindState> = (0..src.n_cols()).map(|_| KindState::new()).collect();
    for k in 0..src.n_shards() {
        let shard = src.load_shard(k)?;
        for i in 0..shard.n_samples() {
            for (j, s) in states.iter_mut().enumerate() {
                s.observe(shard.values[(i, j)], max_levels);
            }
        }
    }
    Ok(states.iter().map(KindState::resolve).collect())
}

/// An incomplete dataset: observed values (NaN at missing cells), the mask
/// matrix `M` (1 = observed), and per-column kinds.
///
/// ```
/// use scis_data::Dataset;
/// use scis_tensor::Matrix;
///
/// let ds = Dataset::from_values(Matrix::from_rows(&[&[1.0, f64::NAN], &[3.0, 4.0]]));
/// assert_eq!(ds.missing_rate(), 0.25);
/// // Eq. 1: observed cells pass through, missing cells take the reconstruction
/// let imputed = ds.merge_imputed(&Matrix::full(2, 2, 9.0));
/// assert_eq!(imputed[(0, 1)], 9.0);
/// assert_eq!(imputed[(1, 1)], 4.0);
/// ```
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Data matrix `X`; missing cells hold NaN.
    pub values: Matrix,
    /// Mask matrix `M`.
    pub mask: MaskMatrix,
    /// Per-column type metadata (len = `values.cols()`).
    pub kinds: Vec<ColumnKind>,
}

impl Dataset {
    /// Builds a dataset from a value matrix, deriving the mask from its NaN
    /// pattern; all columns marked continuous.
    pub fn from_values(values: Matrix) -> Self {
        let mask = MaskMatrix::from_nan_pattern(&values);
        let kinds = vec![ColumnKind::Continuous; values.cols()];
        Self {
            values,
            mask,
            kinds,
        }
    }

    /// Builds a dataset from a *complete* matrix and an explicit mask:
    /// masked-out cells are overwritten with NaN.
    pub fn from_complete(complete: &Matrix, mask: MaskMatrix, kinds: Vec<ColumnKind>) -> Self {
        assert_eq!(mask.rows(), complete.rows(), "from_complete: row mismatch");
        assert_eq!(mask.cols(), complete.cols(), "from_complete: col mismatch");
        assert_eq!(
            kinds.len(),
            complete.cols(),
            "from_complete: kinds len mismatch"
        );
        let values = Matrix::from_fn(complete.rows(), complete.cols(), |i, j| {
            if mask.get(i, j) {
                (*complete)[(i, j)]
            } else {
                f64::NAN
            }
        });
        Self {
            values,
            mask,
            kinds,
        }
    }

    /// Number of samples `N`.
    pub fn n_samples(&self) -> usize {
        self.values.rows()
    }

    /// Number of features `d`.
    pub fn n_features(&self) -> usize {
        self.values.cols()
    }

    /// Fraction of missing cells.
    pub fn missing_rate(&self) -> f64 {
        self.mask.missing_rate()
    }

    /// The paper's Eq. 1: `X̂ = M ⊙ X + (1 − M) ⊙ X̄`.
    ///
    /// Observed cells are passed through *exactly*; missing cells are filled
    /// from the reconstruction `xbar`.
    pub fn merge_imputed(&self, xbar: &Matrix) -> Matrix {
        assert_eq!(
            xbar.shape(),
            self.values.shape(),
            "merge_imputed: shape mismatch"
        );
        Matrix::from_fn(self.values.rows(), self.values.cols(), |i, j| {
            if self.mask.get(i, j) {
                self.values[(i, j)]
            } else {
                (*xbar)[(i, j)]
            }
        })
    }

    /// Values with NaN replaced by `fill` (the usual network input form;
    /// GAIN feeds `M ⊙ X + (1−M) ⊙ Z` with noise `Z`).
    pub fn values_filled(&self, fill: f64) -> Matrix {
        self.values.map(|v| if v.is_nan() { fill } else { v })
    }

    /// Row subset as a new dataset (indices may repeat).
    pub fn select_rows(&self, indices: &[usize]) -> Dataset {
        Dataset {
            values: self.values.select_rows(indices),
            mask: self.mask.select_rows(indices),
            kinds: self.kinds.clone(),
        }
    }

    /// Dense `f64` mask of the whole dataset.
    pub fn dense_mask(&self) -> Matrix {
        self.mask.to_dense()
    }

    /// Iterator over `(row, col, value)` of observed cells.
    pub fn observed_cells(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let cols = self.values.cols();
        (0..self.values.rows()).flat_map(move |i| {
            (0..cols).filter_map(move |j| {
                if self.mask.get(i, j) {
                    Some((i, j, self.values[(i, j)]))
                } else {
                    None
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let v = Matrix::from_rows(&[&[1.0, f64::NAN], &[f64::NAN, 4.0], &[5.0, 6.0]]);
        Dataset::from_values(v)
    }

    #[test]
    fn from_values_derives_mask() {
        let ds = toy();
        assert_eq!(ds.n_samples(), 3);
        assert_eq!(ds.n_features(), 2);
        assert!((ds.missing_rate() - 2.0 / 6.0).abs() < 1e-12);
        assert!(ds.mask.get(0, 0) && !ds.mask.get(0, 1));
    }

    #[test]
    fn from_complete_masks_out_cells() {
        let complete = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut mask = MaskMatrix::all_observed(2, 2);
        mask.set(0, 1, false);
        let ds = Dataset::from_complete(&complete, mask, vec![ColumnKind::Continuous; 2]);
        assert!(ds.values[(0, 1)].is_nan());
        assert_eq!(ds.values[(1, 1)], 4.0);
    }

    #[test]
    fn merge_imputed_preserves_observed_exactly() {
        let ds = toy();
        let xbar = Matrix::full(3, 2, 9.9);
        let merged = ds.merge_imputed(&xbar);
        assert_eq!(merged[(0, 0)], 1.0);
        assert_eq!(merged[(0, 1)], 9.9);
        assert_eq!(merged[(1, 0)], 9.9);
        assert_eq!(merged[(1, 1)], 4.0);
        assert_eq!(merged[(2, 0)], 5.0);
        assert!(!merged.has_nan());
    }

    #[test]
    fn values_filled_replaces_nan_only() {
        let ds = toy();
        let f = ds.values_filled(0.0);
        assert_eq!(f[(0, 1)], 0.0);
        assert_eq!(f[(2, 1)], 6.0);
    }

    #[test]
    fn select_rows_keeps_mask_alignment() {
        let ds = toy();
        let sub = ds.select_rows(&[2, 0]);
        assert_eq!(sub.n_samples(), 2);
        assert_eq!(sub.values[(0, 1)], 6.0);
        assert!(sub.values[(1, 1)].is_nan());
        assert!(sub.mask.get(0, 1) && !sub.mask.get(1, 1));
    }

    #[test]
    fn infer_kinds_detects_ordinals_and_continuous() {
        let v = Matrix::from_rows(&[
            &[0.0, 0.5, 1.0, 3.0],
            &[1.0, 0.7, 2.0, f64::NAN],
            &[2.0, 0.9, 1.0, 3.0],
            &[1.0, 0.1, 0.0, 3.0],
        ]);
        let kinds = infer_kinds(&v, 8);
        // col 0: integers {0,1,2} → categorical with 3 levels
        assert_eq!(kinds[0], ColumnKind::Categorical { levels: 3 });
        // col 1: fractional → continuous
        assert_eq!(kinds[1], ColumnKind::Continuous);
        // col 2: integers {0,1,2} → categorical
        assert_eq!(kinds[2], ColumnKind::Categorical { levels: 3 });
        // col 3: constant (single distinct value) → continuous
        assert_eq!(kinds[3], ColumnKind::Continuous);
    }

    #[test]
    fn infer_kinds_respects_level_cap() {
        let v = Matrix::from_fn(100, 1, |i, _| i as f64);
        assert_eq!(infer_kinds(&v, 8)[0], ColumnKind::Continuous);
        let w = Matrix::from_fn(100, 1, |i, _| (i % 4) as f64);
        assert_eq!(infer_kinds(&w, 8)[0], ColumnKind::Categorical { levels: 4 });
    }

    #[test]
    fn infer_kinds_handles_all_missing_column() {
        // regression: the old implementation max()-ed the distinct set with
        // an `.expect("non-empty")` — an all-missing column must resolve to
        // Continuous, not panic
        let v = Matrix::from_fn(5, 3, |i, j| match j {
            0 => f64::NAN,
            1 => (i % 2) as f64,
            _ => 0.25,
        });
        let kinds = infer_kinds(&v, 8);
        assert_eq!(kinds[0], ColumnKind::Continuous);
        assert_eq!(kinds[1], ColumnKind::Categorical { levels: 2 });
        assert_eq!(kinds[2], ColumnKind::Continuous);
    }

    #[test]
    fn infer_kinds_source_matches_in_memory() {
        let v = Matrix::from_fn(40, 4, |i, j| match j {
            0 => (i % 3) as f64,
            1 => i as f64 * 0.1,
            2 => {
                if i % 4 == 0 {
                    f64::NAN
                } else {
                    (i % 5) as f64
                }
            }
            _ => f64::NAN,
        });
        let ds = Dataset::from_values(v.clone());
        let chunked = crate::shard::ChunkedDataset::new(&ds, 7);
        assert_eq!(infer_kinds_source(&chunked, 8).unwrap(), infer_kinds(&v, 8));
    }

    #[test]
    fn observed_cells_iterator() {
        let ds = toy();
        let cells: Vec<_> = ds.observed_cells().collect();
        assert_eq!(
            cells,
            vec![(0, 0, 1.0), (1, 1, 4.0), (2, 0, 5.0), (2, 1, 6.0)]
        );
    }
}
