//! Out-of-core sharded datasets: fixed-size row shards behind [`RowSource`].
//!
//! The paper's headline datasets (Weather 4.9M×9, Surveil 22.5M×7) do not
//! fit the "one `Matrix` in RAM" model the rest of the workspace was built
//! on. This module introduces the abstraction that lets the SCIS pipeline
//! stream over them:
//!
//! * [`RowSource`] — anything that can hand out fixed-size row shards as
//!   in-memory [`Dataset`] blocks and gather arbitrary row-id subsets. The
//!   in-memory [`Dataset`] implements it (one shard), so every streamed
//!   consumer also accepts plain datasets.
//! * [`ShardedDataset`] — the out-of-core implementation with two backends:
//!   **recipe-backed** shards generated on demand from a deterministic
//!   latent-factor model (seed-salted per shard, so shard `k` is
//!   reproducible in isolation), and **spill-backed** shards read from
//!   checksummed binary blocks on disk.
//! * [`SpillWriter`] / [`ShardSink`] / [`MemorySink`] — incremental row
//!   emitters, used both to spill inputs to disk and to write the final
//!   imputation shard by shard.
//! * streaming folds ([`observed_column_means`], plus
//!   `Dataset::validate`-equivalent and `MinMaxScaler::fit`-equivalent
//!   folds in [`crate::validate`] / [`crate::normalize`]) that replicate
//!   the in-memory passes *operation for operation*, in row order, so
//!   their results are bit-identical to the whole-matrix versions.
//!
//! ## Determinism contract
//!
//! Shards are row-contiguous: shard `k` holds rows
//! `[k·shard_rows, min((k+1)·shard_rows, n))`. Every fold visits shards in
//! ascending order, which is exactly the row order of the materialized
//! matrix, so sequential reductions (sums, min/max, first/constant
//! tracking) consume values in the same order as their in-memory
//! counterparts and produce bit-identical results. Recipe-backed shards
//! derive their per-shard RNG from `seed`, the recipe salt, and the shard
//! index only — generating shard `k` alone yields the same rows as
//! materializing everything.
//!
//! ## Spill format
//!
//! One file per shard (`shard-NNNNNN.bin`): an 8-byte magic (`SCISSHD1`),
//! row and column counts as `u64` LE, the cell values as `f64` bit
//! patterns LE (NaN = missing), and a trailing FNV-1a 64 checksum over
//! everything before it. Truncated files surface as [`ShardError::Torn`],
//! checksum mismatches as [`ShardError::Corrupt`]. A human-readable
//! `manifest.txt` records the dataset shape, shard size, and column kinds.

use crate::dataset::{ColumnKind, Dataset};
use crate::synth::SynthConfig;
use crate::validate::DataError;
use scis_tensor::{Matrix, Rng64};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every spill-shard file.
pub const SPILL_MAGIC: &[u8; 8] = b"SCISSHD1";

/// First line of a spill directory's `manifest.txt`.
pub const MANIFEST_MAGIC: &str = "scis-spill v1";

/// Failures of the sharded-dataset layer.
#[derive(Debug)]
pub enum ShardError {
    /// An underlying file operation failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// A spill shard file is shorter than its header promises (torn write
    /// or truncation).
    Torn {
        /// Shard index.
        shard: usize,
        /// The shard file.
        path: PathBuf,
    },
    /// A spill shard's trailing checksum does not match its contents.
    Corrupt {
        /// Shard index.
        shard: usize,
        /// The shard file.
        path: PathBuf,
    },
    /// The spill directory's manifest is missing or malformed.
    BadManifest {
        /// The manifest file.
        path: PathBuf,
        /// What was wrong.
        reason: String,
    },
    /// A shard index past the end of the dataset was requested.
    ShardOutOfBounds {
        /// The requested shard.
        shard: usize,
        /// Number of shards available.
        n_shards: usize,
    },
    /// A row id past the end of the dataset was requested.
    RowOutOfBounds {
        /// The requested row id.
        row: usize,
        /// Number of rows available.
        n_rows: usize,
    },
    /// A streamed fold found a dataset defect (the shard-level equivalent
    /// of [`DataError`] from `Dataset::validate`).
    Data(DataError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io { path, source } => write!(f, "io error at {:?}: {}", path, source),
            ShardError::Torn { shard, path } => {
                write!(f, "shard {} at {:?} is torn (truncated)", shard, path)
            }
            ShardError::Corrupt { shard, path } => {
                write!(f, "shard {} at {:?} failed its checksum", shard, path)
            }
            ShardError::BadManifest { path, reason } => {
                write!(f, "bad spill manifest {:?}: {}", path, reason)
            }
            ShardError::ShardOutOfBounds { shard, n_shards } => {
                write!(f, "shard {} out of bounds ({} shards)", shard, n_shards)
            }
            ShardError::RowOutOfBounds { row, n_rows } => {
                write!(f, "row {} out of bounds ({} rows)", row, n_rows)
            }
            ShardError::Data(e) => write!(f, "invalid data: {}", e),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Io { source, .. } => Some(source),
            ShardError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for ShardError {
    fn from(e: DataError) -> Self {
        ShardError::Data(e)
    }
}

fn io_err(path: &Path, source: std::io::Error) -> ShardError {
    ShardError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// FNV-1a 64 over a byte stream — the spill-shard integrity check.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A dataset served as fixed-size row shards.
///
/// Shard `k` covers rows `[k·shard_rows, min((k+1)·shard_rows, n_rows))`;
/// all shards except possibly the last are full. Implementations must be
/// deterministic: loading the same shard twice yields bit-identical values.
pub trait RowSource {
    /// Total number of rows `N`.
    fn n_rows(&self) -> usize;

    /// Number of columns `d`.
    fn n_cols(&self) -> usize;

    /// Per-column kind metadata (len = `n_cols`).
    fn kinds(&self) -> &[ColumnKind];

    /// Rows per shard (the in-memory budget of every streamed pass).
    fn shard_rows(&self) -> usize;

    /// Loads shard `k` as an in-memory dataset of at most
    /// [`RowSource::shard_rows`] rows.
    fn load_shard(&self, k: usize) -> Result<Dataset, ShardError>;

    /// Number of shards.
    fn n_shards(&self) -> usize {
        let sr = self.shard_rows().max(1);
        self.n_rows().div_ceil(sr)
    }

    /// Row span `[start, end)` of shard `k`.
    fn shard_span(&self, k: usize) -> (usize, usize) {
        let sr = self.shard_rows().max(1);
        let start = k * sr;
        (start, (start + sr).min(self.n_rows()))
    }

    /// Maps a flat row id to its `(shard, offset)` address.
    fn locate(&self, row: usize) -> (usize, usize) {
        let sr = self.shard_rows().max(1);
        (row / sr, row % sr)
    }

    /// Gathers arbitrary row ids (repeats allowed) into one in-memory
    /// dataset, loading each referenced shard once. Output row `r` is
    /// source row `ids[r]` — the same contract as `Dataset::select_rows`,
    /// and bit-identical to it for any source whose missing cells are NaN.
    fn gather_rows(&self, ids: &[usize]) -> Result<Dataset, ShardError> {
        let n_rows = self.n_rows();
        let d = self.n_cols();
        let mut by_shard: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (pos, &id) in ids.iter().enumerate() {
            if id >= n_rows {
                return Err(ShardError::RowOutOfBounds { row: id, n_rows });
            }
            by_shard.entry(self.locate(id).0).or_default().push(pos);
        }
        let mut values = Matrix::full(ids.len(), d, f64::NAN);
        for (k, positions) in by_shard {
            let shard = self.load_shard(k)?;
            let (start, _) = self.shard_span(k);
            for pos in positions {
                values
                    .row_mut(pos)
                    .copy_from_slice(shard.values.row(ids[pos] - start));
            }
        }
        let mut ds = Dataset::from_values(values);
        ds.kinds = self.kinds().to_vec();
        Ok(ds)
    }

    /// Concatenates every shard into one in-memory dataset. Only sensible
    /// when `N × d` fits in RAM (tests, small runs).
    fn materialize(&self) -> Result<Dataset, ShardError> {
        let (n, d) = (self.n_rows(), self.n_cols());
        let mut values = Matrix::full(n, d, f64::NAN);
        for k in 0..self.n_shards() {
            let shard = self.load_shard(k)?;
            let (start, end) = self.shard_span(k);
            for (off, i) in (start..end).enumerate() {
                values.row_mut(i).copy_from_slice(shard.values.row(off));
            }
        }
        let mut ds = Dataset::from_values(values);
        ds.kinds = self.kinds().to_vec();
        Ok(ds)
    }
}

/// The in-memory dataset is a single-shard source, so every streamed
/// consumer also accepts plain datasets.
impl RowSource for Dataset {
    fn n_rows(&self) -> usize {
        self.n_samples()
    }

    fn n_cols(&self) -> usize {
        self.n_features()
    }

    fn kinds(&self) -> &[ColumnKind] {
        &self.kinds
    }

    fn shard_rows(&self) -> usize {
        self.n_samples().max(1)
    }

    fn load_shard(&self, k: usize) -> Result<Dataset, ShardError> {
        if k > 0 {
            return Err(ShardError::ShardOutOfBounds {
                shard: k,
                n_shards: 1,
            });
        }
        Ok(self.clone())
    }

    fn gather_rows(&self, ids: &[usize]) -> Result<Dataset, ShardError> {
        if let Some(&bad) = ids.iter().find(|&&id| id >= self.n_samples()) {
            return Err(ShardError::RowOutOfBounds {
                row: bad,
                n_rows: self.n_samples(),
            });
        }
        Ok(self.select_rows(ids))
    }

    fn materialize(&self) -> Result<Dataset, ShardError> {
        Ok(self.clone())
    }
}

/// A borrowed in-memory dataset re-chunked to an artificial shard size —
/// the bridge for spilling an existing `Dataset` to disk and for testing
/// streamed passes against their in-memory equivalents.
#[derive(Debug, Clone, Copy)]
pub struct ChunkedDataset<'a> {
    ds: &'a Dataset,
    shard_rows: usize,
}

impl<'a> ChunkedDataset<'a> {
    /// Views `ds` as shards of `shard_rows` rows.
    ///
    /// # Panics
    /// Panics if `shard_rows` is zero.
    pub fn new(ds: &'a Dataset, shard_rows: usize) -> Self {
        assert!(shard_rows > 0, "ChunkedDataset: shard_rows must be > 0");
        Self { ds, shard_rows }
    }
}

impl RowSource for ChunkedDataset<'_> {
    fn n_rows(&self) -> usize {
        self.ds.n_samples()
    }

    fn n_cols(&self) -> usize {
        self.ds.n_features()
    }

    fn kinds(&self) -> &[ColumnKind] {
        &self.ds.kinds
    }

    fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    fn load_shard(&self, k: usize) -> Result<Dataset, ShardError> {
        if k >= self.n_shards() {
            return Err(ShardError::ShardOutOfBounds {
                shard: k,
                n_shards: self.n_shards(),
            });
        }
        let (start, end) = self.shard_span(k);
        let idx: Vec<usize> = (start..end).collect();
        Ok(self.ds.select_rows(&idx))
    }
}

// ---------------------------------------------------------------------------
// recipe-backed shards
// ---------------------------------------------------------------------------

/// Stream salt separating the per-shard row RNG from the model RNG.
const SHARD_STREAM_SALT: u64 = 0x5348_4152_445f_524e; // "SHARD_RN"

/// Rows drawn from the model RNG to place the categorical quantile cuts.
/// The whole-matrix generator bins against *global* empirical quantiles,
/// which no shard can compute locally; the sharded generator instead fixes
/// the cuts from this calibration sample so every shard bins identically.
const CUT_CALIBRATION_ROWS: usize = 2048;

/// Deterministic out-of-core synthetic generator: the latent-factor model
/// of [`crate::synth`] restated so any row shard can be generated in
/// isolation. Model parameters (factor weights, categorical cuts) depend
/// only on the seed; per-shard latents, noise, and the MCAR mask depend on
/// the seed and the shard index.
#[derive(Debug, Clone)]
pub struct RecipeShards {
    cfg: SynthConfig,
    missing_rate: f64,
    seed: u64,
    w1: Matrix,
    w2: Matrix,
    cuts: Vec<Vec<f64>>,
    kinds: Vec<ColumnKind>,
    shard_rows: usize,
}

impl RecipeShards {
    /// Builds the shard generator: derives the factor weights and the
    /// categorical cut points from `seed`, leaving row generation to
    /// [`RowSource::load_shard`].
    ///
    /// # Panics
    /// Panics if `shard_rows` is zero, `cfg.latent_dim` is zero,
    /// `cfg.n_categorical > cfg.n_features`, or `missing_rate` is outside
    /// `[0, 1)`.
    pub fn new(cfg: SynthConfig, missing_rate: f64, seed: u64, shard_rows: usize) -> Self {
        assert!(shard_rows > 0, "RecipeShards: shard_rows must be > 0");
        assert!(cfg.latent_dim > 0, "RecipeShards: latent_dim must be > 0");
        assert!(
            cfg.n_categorical <= cfg.n_features,
            "RecipeShards: more categorical than features"
        );
        assert!(
            (0.0..1.0).contains(&missing_rate),
            "RecipeShards: missing_rate must be in [0,1)"
        );
        let (d, k) = (cfg.n_features, cfg.latent_dim);
        let hidden = (2 * k).max(4);
        let mut model_rng = Rng64::seed_from_u64(seed);
        let w1 = Matrix::from_fn(k, hidden, |_, _| {
            model_rng.normal_with(0.0, 1.0 / (k as f64).sqrt())
        });
        let w2 = Matrix::from_fn(hidden, d, |_, _| {
            model_rng.normal_with(0.0, 1.0 / (hidden as f64).sqrt())
        });
        let mut shards = Self {
            cuts: Vec::new(),
            kinds: vec![ColumnKind::Continuous; d],
            missing_rate,
            seed,
            w1,
            w2,
            shard_rows,
            cfg,
        };
        // shard-independent categorical cuts from a calibration sample
        let first_cat = d - shards.cfg.n_categorical;
        if shards.cfg.n_categorical > 0 {
            let calib = shards.raw_rows(CUT_CALIBRATION_ROWS, &mut model_rng);
            let levels = shards.cfg.categorical_levels.max(2);
            for j in first_cat..d {
                let col = calib.col(j);
                let cuts: Vec<f64> = (1..levels)
                    .map(|l| {
                        scis_tensor::stats::quantile(&col, l as f64 / levels as f64)
                            .expect("non-empty calibration column")
                    })
                    .collect();
                shards.cuts.push(cuts);
                shards.kinds[j] = ColumnKind::Categorical { levels };
            }
        }
        shards
    }

    /// Generates `n` warped (pre-binning) rows from `rng` — the shared row
    /// model of the calibration sample and every shard.
    fn raw_rows(&self, n: usize, rng: &mut Rng64) -> Matrix {
        let (d, k) = (self.cfg.n_features, self.cfg.latent_dim);
        let hidden = self.w1.cols();
        let mut x = Matrix::zeros(n, d);
        let mut z = vec![0.0; k];
        let mut h = vec![0.0; hidden];
        for i in 0..n {
            for zv in z.iter_mut() {
                *zv = rng.normal();
            }
            for (c, hv) in h.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (r, &zv) in z.iter().enumerate() {
                    acc += zv * self.w1[(r, c)];
                }
                *hv = acc.tanh();
            }
            for j in 0..d {
                let mut acc = 0.0;
                for (r, &hv) in h.iter().enumerate() {
                    acc += hv * self.w2[(r, j)];
                }
                if self.cfg.noise_std > 0.0 {
                    acc += rng.normal_with(0.0, self.cfg.noise_std);
                }
                // the per-column marginal warps of `synth::generate`
                x[(i, j)] = match j % 3 {
                    0 => acc,
                    1 => acc.signum() * acc.abs().sqrt(),
                    _ => (acc * 1.5).tanh(),
                };
            }
        }
        x
    }

    fn shard_seed(&self, k: usize) -> u64 {
        self.seed ^ SHARD_STREAM_SALT ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(k as u64 + 1)
    }
}

// ---------------------------------------------------------------------------
// spill-backed shards
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct SpillShards {
    dir: PathBuf,
    kinds: Vec<ColumnKind>,
    n_cols: usize,
    shard_rows: usize,
}

fn shard_file(dir: &Path, k: usize) -> PathBuf {
    dir.join(format!("shard-{:06}.bin", k))
}

fn encode_kinds(kinds: &[ColumnKind]) -> String {
    kinds
        .iter()
        .map(|k| match k {
            ColumnKind::Continuous => "c".to_string(),
            ColumnKind::Categorical { levels } => levels.to_string(),
        })
        .collect::<Vec<_>>()
        .join(",")
}

fn decode_kinds(text: &str, path: &Path) -> Result<Vec<ColumnKind>, ShardError> {
    text.split(',')
        .map(|t| match t.trim() {
            "c" => Ok(ColumnKind::Continuous),
            other => other
                .parse::<usize>()
                .map(|levels| ColumnKind::Categorical { levels })
                .map_err(|_| ShardError::BadManifest {
                    path: path.to_path_buf(),
                    reason: format!("bad kind {:?}", other),
                }),
        })
        .collect()
}

fn write_spill_shard(dir: &Path, k: usize, values: &Matrix) -> Result<(), ShardError> {
    let path = shard_file(dir, k);
    let mut bytes = Vec::with_capacity(SPILL_MAGIC.len() + 16 + values.len() * 8 + 8);
    bytes.extend_from_slice(SPILL_MAGIC);
    bytes.extend_from_slice(&(values.rows() as u64).to_le_bytes());
    bytes.extend_from_slice(&(values.cols() as u64).to_le_bytes());
    for &v in values.as_slice() {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    let checksum = fnv1a(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    let mut f = std::fs::File::create(&path).map_err(|e| io_err(&path, e))?;
    f.write_all(&bytes).map_err(|e| io_err(&path, e))?;
    Ok(())
}

fn read_spill_shard(dir: &Path, k: usize) -> Result<Matrix, ShardError> {
    let path = shard_file(dir, k);
    let mut bytes = Vec::new();
    std::fs::File::open(&path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err(&path, e))?;
    let header = SPILL_MAGIC.len() + 16;
    let torn = || ShardError::Torn {
        shard: k,
        path: path.clone(),
    };
    if bytes.len() < header + 8 || &bytes[..SPILL_MAGIC.len()] != SPILL_MAGIC {
        return Err(torn());
    }
    let rows = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let cols = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")) as usize;
    let body = rows
        .checked_mul(cols)
        .and_then(|cells| cells.checked_mul(8))
        .ok_or_else(torn)?;
    if bytes.len() != header + body + 8 {
        return Err(torn());
    }
    let stored = u64::from_le_bytes(bytes[header + body..].try_into().expect("8 bytes"));
    if fnv1a(&bytes[..header + body]) != stored {
        return Err(ShardError::Corrupt { shard: k, path });
    }
    let mut data = Vec::with_capacity(rows * cols);
    for chunk in bytes[header..header + body].chunks_exact(8) {
        data.push(f64::from_bits(u64::from_le_bytes(
            chunk.try_into().expect("8 bytes"),
        )));
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

/// Streams rows into a spill directory, cutting a checksummed shard file
/// every `shard_rows` rows. [`SpillWriter::finish`] flushes the tail shard,
/// writes the manifest, and returns the readable [`ShardedDataset`].
#[derive(Debug)]
pub struct SpillWriter {
    dir: PathBuf,
    kinds: Vec<ColumnKind>,
    n_cols: usize,
    shard_rows: usize,
    buf: Vec<f64>,
    buf_rows: usize,
    next_shard: usize,
    rows_written: usize,
}

impl SpillWriter {
    /// Creates the spill directory (and parents) and an empty writer.
    ///
    /// # Panics
    /// Panics if `shard_rows` or `n_cols` is zero.
    pub fn create(
        dir: &Path,
        n_cols: usize,
        kinds: Vec<ColumnKind>,
        shard_rows: usize,
    ) -> Result<Self, ShardError> {
        assert!(shard_rows > 0, "SpillWriter: shard_rows must be > 0");
        assert!(n_cols > 0, "SpillWriter: n_cols must be > 0");
        assert_eq!(kinds.len(), n_cols, "SpillWriter: kinds len mismatch");
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        Ok(Self {
            dir: dir.to_path_buf(),
            kinds,
            n_cols,
            shard_rows,
            buf: Vec::with_capacity(shard_rows * n_cols),
            buf_rows: 0,
            next_shard: 0,
            rows_written: 0,
        })
    }

    /// Appends one row (NaN = missing).
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the writer's column count.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), ShardError> {
        assert_eq!(row.len(), self.n_cols, "SpillWriter: row width mismatch");
        self.buf.extend_from_slice(row);
        self.buf_rows += 1;
        self.rows_written += 1;
        if self.buf_rows == self.shard_rows {
            self.flush_shard()?;
        }
        Ok(())
    }

    /// Rows appended so far.
    pub fn rows_written(&self) -> usize {
        self.rows_written
    }

    fn flush_shard(&mut self) -> Result<(), ShardError> {
        if self.buf_rows == 0 {
            return Ok(());
        }
        let values = Matrix::from_vec(self.buf_rows, self.n_cols, std::mem::take(&mut self.buf));
        write_spill_shard(&self.dir, self.next_shard, &values)?;
        self.next_shard += 1;
        self.buf_rows = 0;
        self.buf = Vec::with_capacity(self.shard_rows * self.n_cols);
        Ok(())
    }

    /// Flushes the tail shard, writes the manifest, and opens the result
    /// for reading.
    pub fn finish(mut self) -> Result<ShardedDataset, ShardError> {
        self.flush_shard()?;
        let manifest = self.dir.join("manifest.txt");
        let text = format!(
            "{}\nrows={}\ncols={}\nshard_rows={}\nkinds={}\n",
            MANIFEST_MAGIC,
            self.rows_written,
            self.n_cols,
            self.shard_rows,
            encode_kinds(&self.kinds),
        );
        std::fs::write(&manifest, text).map_err(|e| io_err(&manifest, e))?;
        ShardedDataset::open_spill(&self.dir)
    }
}

impl ShardSink for SpillWriter {
    fn push_rows(&mut self, rows: &Matrix) -> Result<(), ShardError> {
        for i in 0..rows.rows() {
            self.push_row(rows.row(i))?;
        }
        Ok(())
    }
}

/// Spills every shard of `src` to `dir` and reopens it as a spill-backed
/// [`ShardedDataset`] with the same shape, shard size, and kinds.
pub fn spill_source(src: &dyn RowSource, dir: &Path) -> Result<ShardedDataset, ShardError> {
    let mut w = SpillWriter::create(dir, src.n_cols(), src.kinds().to_vec(), src.shard_rows())?;
    for k in 0..src.n_shards() {
        let shard = src.load_shard(k)?;
        w.push_rows(&shard.values)?;
    }
    w.finish()
}

// ---------------------------------------------------------------------------
// ShardedDataset
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Backend {
    Recipe(RecipeShards),
    Spill(SpillShards),
}

/// An out-of-core dataset of fixed-size row shards: generated on demand
/// from a deterministic recipe, or read back from checksummed spill files.
/// See the module docs for the determinism contract and the spill format.
#[derive(Debug, Clone)]
pub struct ShardedDataset {
    backend: Backend,
    n_rows: usize,
}

impl ShardedDataset {
    /// Recipe-backed sharded dataset of `n_rows` rows: shard `k` is
    /// generated on demand (and reproducibly in isolation) from the
    /// latent-factor model seeded by `seed`, with MCAR missingness at
    /// `missing_rate`.
    pub fn from_recipe(cfg: SynthConfig, missing_rate: f64, seed: u64, shard_rows: usize) -> Self {
        let n_rows = cfg.n_samples;
        Self {
            backend: Backend::Recipe(RecipeShards::new(cfg, missing_rate, seed, shard_rows)),
            n_rows,
        }
    }

    /// Opens a spill directory written by [`SpillWriter`].
    pub fn open_spill(dir: &Path) -> Result<Self, ShardError> {
        let manifest = dir.join("manifest.txt");
        let text = std::fs::read_to_string(&manifest).map_err(|e| io_err(&manifest, e))?;
        let bad = |reason: &str| ShardError::BadManifest {
            path: manifest.clone(),
            reason: reason.to_string(),
        };
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_MAGIC) {
            return Err(bad("missing magic line"));
        }
        let mut rows = None;
        let mut cols = None;
        let mut shard_rows = None;
        let mut kinds = None;
        for line in lines {
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            match key {
                "rows" => rows = value.parse::<usize>().ok(),
                "cols" => cols = value.parse::<usize>().ok(),
                "shard_rows" => shard_rows = value.parse::<usize>().ok(),
                "kinds" => kinds = Some(decode_kinds(value, &manifest)?),
                _ => {}
            }
        }
        let n_rows = rows.ok_or_else(|| bad("missing rows"))?;
        let n_cols = cols.ok_or_else(|| bad("missing cols"))?;
        let shard_rows = shard_rows.ok_or_else(|| bad("missing shard_rows"))?;
        if n_cols == 0 || shard_rows == 0 {
            return Err(bad("zero cols or shard_rows"));
        }
        let kinds = kinds.ok_or_else(|| bad("missing kinds"))?;
        if kinds.len() != n_cols {
            return Err(bad("kinds length does not match cols"));
        }
        Ok(Self {
            backend: Backend::Spill(SpillShards {
                dir: dir.to_path_buf(),
                kinds,
                n_cols,
                shard_rows,
            }),
            n_rows,
        })
    }

    /// Replaces the per-column kind metadata (e.g. after a streamed
    /// `infer_kinds` pass over a spilled CSV).
    ///
    /// # Panics
    /// Panics if `kinds.len()` differs from the column count.
    pub fn set_kinds(&mut self, kinds: Vec<ColumnKind>) {
        assert_eq!(kinds.len(), self.n_cols(), "set_kinds: length mismatch");
        match &mut self.backend {
            Backend::Recipe(r) => r.kinds = kinds,
            Backend::Spill(s) => s.kinds = kinds,
        }
    }

    /// Fraction of missing cells, computed by one streaming pass.
    pub fn missing_rate(&self) -> Result<f64, ShardError> {
        let mut missing = 0usize;
        for k in 0..self.n_shards() {
            let shard = self.load_shard(k)?;
            missing += shard
                .values
                .as_slice()
                .iter()
                .filter(|v| v.is_nan())
                .count();
        }
        let cells = self.n_rows() * self.n_cols();
        Ok(if cells == 0 {
            0.0
        } else {
            missing as f64 / cells as f64
        })
    }
}

impl RowSource for ShardedDataset {
    fn n_rows(&self) -> usize {
        self.n_rows
    }

    fn n_cols(&self) -> usize {
        match &self.backend {
            Backend::Recipe(r) => r.cfg.n_features,
            Backend::Spill(s) => s.n_cols,
        }
    }

    fn kinds(&self) -> &[ColumnKind] {
        match &self.backend {
            Backend::Recipe(r) => &r.kinds,
            Backend::Spill(s) => &s.kinds,
        }
    }

    fn shard_rows(&self) -> usize {
        match &self.backend {
            Backend::Recipe(r) => r.shard_rows,
            Backend::Spill(s) => s.shard_rows,
        }
    }

    fn load_shard(&self, k: usize) -> Result<Dataset, ShardError> {
        if k >= self.n_shards() {
            return Err(ShardError::ShardOutOfBounds {
                shard: k,
                n_shards: self.n_shards(),
            });
        }
        let (start, end) = self.shard_span(k);
        match &self.backend {
            Backend::Recipe(r) => {
                let n = end - start;
                let mut rng = Rng64::seed_from_u64(r.shard_seed(k));
                let mut x = r.raw_rows(n, &mut rng);
                let d = r.cfg.n_features;
                let first_cat = d - r.cfg.n_categorical;
                for (c, j) in (first_cat..d).enumerate() {
                    let cuts = &r.cuts[c];
                    for i in 0..n {
                        let v = x[(i, j)];
                        let mut level = 0usize;
                        for &cut in cuts {
                            if v > cut {
                                level += 1;
                            }
                        }
                        x[(i, j)] = level as f64;
                    }
                }
                // MCAR in row-major order from the same per-shard stream
                for i in 0..n {
                    for j in 0..d {
                        if rng.bernoulli(r.missing_rate) {
                            x[(i, j)] = f64::NAN;
                        }
                    }
                }
                let mut ds = Dataset::from_values(x);
                ds.kinds = r.kinds.clone();
                Ok(ds)
            }
            Backend::Spill(s) => {
                let values = read_spill_shard(&s.dir, k)?;
                if values.rows() != end - start || values.cols() != s.n_cols {
                    return Err(ShardError::Torn {
                        shard: k,
                        path: shard_file(&s.dir, k),
                    });
                }
                let mut ds = Dataset::from_values(values);
                ds.kinds = s.kinds.clone();
                Ok(ds)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// sinks
// ---------------------------------------------------------------------------

/// Receives the streamed pipeline's output rows shard by shard, in row
/// order. Implementations decide where they go: RAM ([`MemorySink`]), spill
/// files ([`SpillWriter`]), or an incremental CSV writer.
pub trait ShardSink {
    /// Appends a block of finished rows.
    fn push_rows(&mut self, rows: &Matrix) -> Result<(), ShardError>;
}

/// Collects sink rows into one in-memory matrix (tests, small runs).
#[derive(Debug, Default)]
pub struct MemorySink {
    data: Vec<f64>,
    rows: usize,
    cols: Option<usize>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rows received so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The assembled matrix.
    ///
    /// # Panics
    /// Panics if no rows were ever pushed.
    pub fn into_matrix(self) -> Matrix {
        let cols = self.cols.expect("MemorySink: no rows pushed");
        Matrix::from_vec(self.rows, cols, self.data)
    }
}

impl ShardSink for MemorySink {
    fn push_rows(&mut self, rows: &Matrix) -> Result<(), ShardError> {
        match self.cols {
            None => self.cols = Some(rows.cols()),
            Some(c) => assert_eq!(c, rows.cols(), "MemorySink: column mismatch"),
        }
        self.data.extend_from_slice(rows.as_slice());
        self.rows += rows.rows();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// streaming folds
// ---------------------------------------------------------------------------

/// Observed column means with the mean-imputer fallback (`0.5` for columns
/// without observed cells), computed by one streaming pass.
///
/// Bit-identical to mapping `nan_mean` over the materialized columns: the
/// per-column sums accumulate shard by shard in ascending row order, the
/// same addition sequence as the in-memory fold.
pub fn observed_column_means(src: &dyn RowSource) -> Result<Vec<f64>, ShardError> {
    let d = src.n_cols();
    let mut sums = vec![0.0f64; d];
    let mut counts = vec![0usize; d];
    for k in 0..src.n_shards() {
        let shard = src.load_shard(k)?;
        for i in 0..shard.n_samples() {
            for (j, &v) in shard.values.row(i).iter().enumerate() {
                if !v.is_nan() {
                    sums[j] += v;
                    counts[j] += 1;
                }
            }
        }
    }
    Ok((0..d)
        .map(|j| {
            if counts[j] == 0 {
                0.5
            } else {
                sums[j] / counts[j] as f64
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scis_tensor::stats::nan_mean;

    /// NaN-tolerant bitwise matrix equality (plain `==` fails on the NaN
    /// missing cells).
    fn assert_bits_eq(a: &Matrix, b: &Matrix) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{} vs {}", x, y);
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("scis_shard_test_{}_{}", std::process::id(), name));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn recipe(n: usize, shard_rows: usize) -> ShardedDataset {
        let cfg = SynthConfig {
            n_samples: n,
            n_features: 6,
            latent_dim: 2,
            n_categorical: 2,
            categorical_levels: 3,
            noise_std: 0.05,
        };
        ShardedDataset::from_recipe(cfg, 0.25, 99, shard_rows)
    }

    #[test]
    fn shard_spans_tile_the_dataset() {
        let src = recipe(103, 16);
        assert_eq!(src.n_shards(), 7);
        let mut covered = 0;
        for k in 0..src.n_shards() {
            let (a, b) = src.shard_span(k);
            assert_eq!(a, covered);
            covered = b;
        }
        assert_eq!(covered, 103);
        assert_eq!(src.locate(35), (2, 3));
    }

    #[test]
    fn recipe_shards_are_reproducible_in_isolation() {
        let src = recipe(100, 16);
        let full = src.materialize().unwrap();
        for k in [0, 3, 6] {
            let shard = src.load_shard(k).unwrap();
            let again = src.load_shard(k).unwrap();
            assert_bits_eq(&shard.values, &again.values);
            let (start, end) = src.shard_span(k);
            for (off, i) in (start..end).enumerate() {
                for j in 0..src.n_cols() {
                    let a = shard.values[(off, j)];
                    let b = full.values[(i, j)];
                    assert!(
                        a.to_bits() == b.to_bits(),
                        "shard {} row {} col {}: {} vs {}",
                        k,
                        off,
                        j,
                        a,
                        b
                    );
                }
            }
        }
    }

    #[test]
    fn recipe_shard_size_does_not_change_kinds_or_shape() {
        let a = recipe(90, 7);
        let b = recipe(90, 64);
        assert_eq!(a.kinds(), b.kinds());
        assert_eq!(a.n_rows(), b.n_rows());
        // categorical columns take integer levels in every shard
        let shard = a.load_shard(2).unwrap();
        for i in 0..shard.n_samples() {
            for j in 4..6 {
                let v = shard.values[(i, j)];
                if !v.is_nan() {
                    assert_eq!(v.fract(), 0.0, "non-integer categorical {}", v);
                    assert!((0.0..3.0).contains(&v));
                }
            }
        }
    }

    #[test]
    fn gather_rows_matches_select_rows() {
        let src = recipe(80, 9);
        let full = src.materialize().unwrap();
        let ids = vec![79, 0, 13, 13, 42, 8, 77];
        let gathered = src.gather_rows(&ids).unwrap();
        let selected = full.select_rows(&ids);
        assert_bits_eq(&gathered.values, &selected.values);
        assert_eq!(gathered.mask, selected.mask);
        assert_eq!(gathered.kinds, selected.kinds);
    }

    #[test]
    fn gather_rows_rejects_out_of_bounds() {
        let src = recipe(50, 8);
        assert!(matches!(
            src.gather_rows(&[1, 50]),
            Err(ShardError::RowOutOfBounds {
                row: 50,
                n_rows: 50
            })
        ));
    }

    #[test]
    fn dataset_is_a_single_shard_source() {
        let src = recipe(40, 8);
        let ds = src.materialize().unwrap();
        assert_eq!(RowSource::n_rows(&ds), 40);
        assert_eq!(ds.n_shards(), 1);
        let gathered = ds.gather_rows(&[5, 2]).unwrap();
        assert_bits_eq(&gathered.values, &ds.select_rows(&[5, 2]).values);
        assert!(matches!(
            ds.load_shard(1),
            Err(ShardError::ShardOutOfBounds { .. })
        ));
    }

    #[test]
    fn chunked_dataset_streams_an_in_memory_dataset() {
        let src = recipe(61, 10);
        let ds = src.materialize().unwrap();
        let chunked = ChunkedDataset::new(&ds, 13);
        assert_eq!(chunked.n_shards(), 5);
        let back = chunked.materialize().unwrap();
        assert_bits_eq(&back.values, &ds.values);
        assert_eq!(back.kinds, ds.kinds);
    }

    #[test]
    fn spill_roundtrip_is_bit_exact() {
        let src = recipe(75, 11);
        let dir = tmp_dir("roundtrip");
        let spilled = spill_source(&src, &dir).unwrap();
        assert_eq!(spilled.n_rows(), 75);
        assert_eq!(spilled.shard_rows(), 11);
        assert_eq!(spilled.kinds(), src.kinds());
        let a = src.materialize().unwrap();
        let b = spilled.materialize().unwrap();
        assert_bits_eq(&a.values, &b.values);
        // reopening from the manifest alone works too
        let reopened = ShardedDataset::open_spill(&dir).unwrap();
        assert_bits_eq(&reopened.materialize().unwrap().values, &b.values);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_spill_shard_is_a_typed_error() {
        let src = recipe(40, 10);
        let dir = tmp_dir("torn");
        let spilled = spill_source(&src, &dir).unwrap();
        let path = shard_file(&dir, 2);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            spilled.load_shard(2),
            Err(ShardError::Torn { shard: 2, .. })
        ));
        // other shards stay readable
        assert!(spilled.load_shard(1).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_spill_shard_is_a_typed_error() {
        let src = recipe(40, 10);
        let dir = tmp_dir("corrupt");
        let spilled = spill_source(&src, &dir).unwrap();
        let path = shard_file(&dir, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            spilled.load_shard(1),
            Err(ShardError::Corrupt { shard: 1, .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_a_typed_error() {
        let dir = tmp_dir("nomanifest");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            ShardedDataset::open_spill(&dir),
            Err(ShardError::Io { .. })
        ));
        std::fs::write(dir.join("manifest.txt"), "not a manifest\n").unwrap();
        assert!(matches!(
            ShardedDataset::open_spill(&dir),
            Err(ShardError::BadManifest { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn column_means_match_in_memory_nan_mean_bitwise() {
        let src = recipe(120, 17);
        let full = src.materialize().unwrap();
        let streamed = observed_column_means(&src).unwrap();
        assert_eq!(streamed.len(), src.n_cols());
        for (j, mean) in streamed.iter().enumerate() {
            let reference = nan_mean(&full.values.col(j)).unwrap_or(0.5);
            assert_eq!(
                mean.to_bits(),
                reference.to_bits(),
                "column {} mean mismatch",
                j
            );
        }
    }

    #[test]
    fn memory_sink_reassembles_shards() {
        let src = recipe(45, 8);
        let mut sink = MemorySink::new();
        for k in 0..src.n_shards() {
            sink.push_rows(&src.load_shard(k).unwrap().values).unwrap();
        }
        assert_eq!(sink.rows(), 45);
        let out = sink.into_matrix();
        let full = src.materialize().unwrap();
        for (x, y) in out.as_slice().iter().zip(full.values.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn missing_rate_is_close_to_target() {
        let src = recipe(400, 64);
        let rate = src.missing_rate().unwrap();
        assert!((rate - 0.25).abs() < 0.03, "rate {}", rate);
    }
}
