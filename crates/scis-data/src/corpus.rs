//! Recipes reproducing the *shapes* of the paper's six COVID-19 datasets
//! (Table II). Each recipe fixes the sample count, feature count, missing
//! rate, and the paper's per-dataset initial sample size `n0`; a `scale`
//! knob shrinks the sample count proportionally (and `n0` with it) so the
//! full experiment grid runs in minutes instead of the paper's 10⁵-second
//! budget. See DESIGN.md §2 for why this substitution preserves the
//! claims under test.

use crate::dataset::Dataset;
use crate::missing::{inject, Mechanism};
use crate::synth::{generate, SynthConfig, SynthData};
use scis_tensor::{Matrix, Rng64};

/// One of the six dataset shapes from the paper's Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CovidRecipe {
    /// COVID-19 trials tracker: 6,433 × 9, 9.63% missing, n0 = 500.
    Trial,
    /// Emergency declarations: 8,364 × 22, 62.69% missing, n0 = 500.
    Emergency,
    /// Government response: 200,737 × 19, 5.66% missing, n0 = 2,000.
    Response,
    /// Symptom search trends: 948,762 × 424, 81.35% missing, n0 = 6,000.
    Search,
    /// Daily weather: 4,911,011 × 9, 21.56% missing, n0 = 20,000.
    Weather,
    /// Case surveillance: 22,507,139 × 7, 47.62% missing, n0 = 20,000.
    Surveil,
}

/// A generated recipe instance: the incomplete dataset plus its ground
/// truth (used only for evaluation, never by imputers).
#[derive(Debug, Clone)]
pub struct RecipeInstance {
    /// The incomplete dataset (normalized scale is up to the caller).
    pub dataset: Dataset,
    /// The complete ground-truth matrix.
    pub ground_truth: Matrix,
    /// The paper's initial sample size `n0`, scaled.
    pub n0: usize,
}

impl CovidRecipe {
    /// All six recipes in Table II order.
    pub const ALL: [CovidRecipe; 6] = [
        CovidRecipe::Trial,
        CovidRecipe::Emergency,
        CovidRecipe::Response,
        CovidRecipe::Search,
        CovidRecipe::Weather,
        CovidRecipe::Surveil,
    ];

    /// Dataset name as printed in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            CovidRecipe::Trial => "Trial",
            CovidRecipe::Emergency => "Emergency",
            CovidRecipe::Response => "Response",
            CovidRecipe::Search => "Search",
            CovidRecipe::Weather => "Weather",
            CovidRecipe::Surveil => "Surveil",
        }
    }

    /// Full sample count from Table II.
    pub fn full_samples(&self) -> usize {
        match self {
            CovidRecipe::Trial => 6_433,
            CovidRecipe::Emergency => 8_364,
            CovidRecipe::Response => 200_737,
            CovidRecipe::Search => 948_762,
            CovidRecipe::Weather => 4_911_011,
            CovidRecipe::Surveil => 22_507_139,
        }
    }

    /// Feature count from Table II.
    pub fn features(&self) -> usize {
        match self {
            CovidRecipe::Trial => 9,
            CovidRecipe::Emergency => 22,
            CovidRecipe::Response => 19,
            CovidRecipe::Search => 424,
            CovidRecipe::Weather => 9,
            CovidRecipe::Surveil => 7,
        }
    }

    /// Missing rate from Table II.
    pub fn missing_rate(&self) -> f64 {
        match self {
            CovidRecipe::Trial => 0.0963,
            CovidRecipe::Emergency => 0.6269,
            CovidRecipe::Response => 0.0566,
            CovidRecipe::Search => 0.8135,
            CovidRecipe::Weather => 0.2156,
            CovidRecipe::Surveil => 0.4762,
        }
    }

    /// The paper's per-dataset initial sample size `n0` (§VI
    /// "Implementation details" / Figure 4 optima).
    pub fn paper_n0(&self) -> usize {
        match self {
            CovidRecipe::Trial | CovidRecipe::Emergency => 500,
            CovidRecipe::Response => 2_000,
            CovidRecipe::Search => 6_000,
            CovidRecipe::Weather | CovidRecipe::Surveil => 20_000,
        }
    }

    /// Number of categorical columns in the synthetic stand-in (clinical /
    /// policy tables are categorical-heavy; search/weather are continuous).
    fn categorical_cols(&self) -> usize {
        match self {
            CovidRecipe::Trial => 4,
            CovidRecipe::Emergency => 12,
            CovidRecipe::Response => 6,
            CovidRecipe::Search => 0,
            CovidRecipe::Weather => 0,
            CovidRecipe::Surveil => 5,
        }
    }

    /// Generates the incomplete dataset (MCAR at Table II's rate) at
    /// `scale ∈ (0, 1]` of the full sample count.
    ///
    /// # Panics
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn generate(&self, scale: f64, seed: u64) -> RecipeInstance {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let n = ((self.full_samples() as f64 * scale).round() as usize).max(64);
        let n0 = ((self.paper_n0() as f64 * scale).round() as usize).clamp(32, n);
        let d = self.features();
        let cfg = SynthConfig {
            n_samples: n,
            n_features: d,
            latent_dim: (d / 3).clamp(2, 16),
            n_categorical: self.categorical_cols(),
            categorical_levels: 4,
            noise_std: 0.05,
        };
        let mut rng = Rng64::seed_from_u64(seed ^ self.seed_salt());
        let SynthData { complete, kinds } = generate(&cfg, &mut rng);
        let dataset = inject(
            &complete,
            kinds,
            Mechanism::Mcar {
                rate: self.missing_rate(),
            },
            &mut rng,
        );
        RecipeInstance {
            dataset,
            ground_truth: complete,
            n0,
        }
    }

    fn seed_salt(&self) -> u64 {
        match self {
            CovidRecipe::Trial => 0x7261_6900,
            CovidRecipe::Emergency => 0x656d_6500,
            CovidRecipe::Response => 0x7265_7300,
            CovidRecipe::Search => 0x7365_6100,
            CovidRecipe::Weather => 0x7765_6100,
            CovidRecipe::Surveil => 0x7375_7200,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shapes_are_faithful() {
        assert_eq!(CovidRecipe::Trial.full_samples(), 6_433);
        assert_eq!(CovidRecipe::Search.features(), 424);
        assert!((CovidRecipe::Surveil.missing_rate() - 0.4762).abs() < 1e-9);
        assert_eq!(CovidRecipe::Weather.paper_n0(), 20_000);
    }

    #[test]
    fn scaled_generation_matches_recipe() {
        let inst = CovidRecipe::Trial.generate(0.1, 42);
        assert_eq!(inst.dataset.n_samples(), 643);
        assert_eq!(inst.dataset.n_features(), 9);
        assert!((inst.dataset.missing_rate() - 0.0963).abs() < 0.02);
        assert_eq!(inst.n0, 50);
        assert_eq!(inst.ground_truth.shape(), (643, 9));
    }

    #[test]
    fn high_missing_rate_recipe() {
        let inst = CovidRecipe::Emergency.generate(0.05, 7);
        assert!((inst.dataset.missing_rate() - 0.6269).abs() < 0.03);
        assert_eq!(inst.dataset.n_features(), 22);
    }

    #[test]
    fn deterministic_per_seed_distinct_across_recipes() {
        let a = CovidRecipe::Trial.generate(0.02, 1);
        let b = CovidRecipe::Trial.generate(0.02, 1);
        assert_eq!(a.ground_truth, b.ground_truth);
        let c = CovidRecipe::Surveil.generate(0.0001, 1);
        assert_ne!(a.ground_truth.shape(), c.ground_truth.shape());
    }

    #[test]
    fn n0_is_clamped_into_sample_range() {
        // tiny scale: n0 would round below 32
        let inst = CovidRecipe::Trial.generate(0.01, 3);
        assert!(inst.n0 >= 32 && inst.n0 <= inst.dataset.n_samples());
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn rejects_zero_scale() {
        let _ = CovidRecipe::Trial.generate(0.0, 1);
    }
}
