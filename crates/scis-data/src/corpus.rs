//! Recipes reproducing the *shapes* of the paper's six COVID-19 datasets
//! (Table II). Each recipe fixes the sample count, feature count, missing
//! rate, and the paper's per-dataset initial sample size `n0`; a `scale`
//! knob shrinks the sample count proportionally (and `n0` with it) so the
//! full experiment grid runs in minutes instead of the paper's 10⁵-second
//! budget. See DESIGN.md §2 for why this substitution preserves the
//! claims under test.

use crate::dataset::Dataset;
use crate::missing::{inject, Mechanism};
use crate::shard::ShardedDataset;
use crate::synth::{generate, SynthConfig, SynthData};
use scis_tensor::{Matrix, Rng64};
use std::fmt;

/// Rejected recipe parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CorpusError {
    /// `scale` outside `(0, 1]` (or non-finite — NaN compares false against
    /// every bound, so it lands here too instead of wrapping a cast).
    BadScale(f64),
    /// The scaled sample count does not fit `usize` (only reachable on
    /// exotic targets; the checked conversion keeps the cast from silently
    /// saturating).
    Overflow(f64),
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::BadScale(s) => write!(f, "scale must be in (0, 1], got {s}"),
            CorpusError::Overflow(n) => write!(f, "scaled sample count {n} overflows usize"),
        }
    }
}

impl std::error::Error for CorpusError {}

/// `(samples × scale).round()` with the float→usize cast checked instead of
/// the silent saturate/wrap of `as usize` on non-finite or huge inputs.
fn scaled_samples(samples: usize, scale: f64) -> Result<usize, CorpusError> {
    if !scale.is_finite() || scale <= 0.0 || scale > 1.0 {
        return Err(CorpusError::BadScale(scale));
    }
    let exact = (samples as f64 * scale).round();
    if !exact.is_finite() || exact < 0.0 || exact >= usize::MAX as f64 {
        return Err(CorpusError::Overflow(exact));
    }
    Ok((exact as usize).max(64))
}

/// One of the six dataset shapes from the paper's Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CovidRecipe {
    /// COVID-19 trials tracker: 6,433 × 9, 9.63% missing, n0 = 500.
    Trial,
    /// Emergency declarations: 8,364 × 22, 62.69% missing, n0 = 500.
    Emergency,
    /// Government response: 200,737 × 19, 5.66% missing, n0 = 2,000.
    Response,
    /// Symptom search trends: 948,762 × 424, 81.35% missing, n0 = 6,000.
    Search,
    /// Daily weather: 4,911,011 × 9, 21.56% missing, n0 = 20,000.
    Weather,
    /// Case surveillance: 22,507,139 × 7, 47.62% missing, n0 = 20,000.
    Surveil,
}

/// A generated recipe instance: the incomplete dataset plus its ground
/// truth (used only for evaluation, never by imputers).
#[derive(Debug, Clone)]
pub struct RecipeInstance {
    /// The incomplete dataset (normalized scale is up to the caller).
    pub dataset: Dataset,
    /// The complete ground-truth matrix.
    pub ground_truth: Matrix,
    /// The paper's initial sample size `n0`, scaled.
    pub n0: usize,
}

impl CovidRecipe {
    /// All six recipes in Table II order.
    pub const ALL: [CovidRecipe; 6] = [
        CovidRecipe::Trial,
        CovidRecipe::Emergency,
        CovidRecipe::Response,
        CovidRecipe::Search,
        CovidRecipe::Weather,
        CovidRecipe::Surveil,
    ];

    /// Dataset name as printed in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            CovidRecipe::Trial => "Trial",
            CovidRecipe::Emergency => "Emergency",
            CovidRecipe::Response => "Response",
            CovidRecipe::Search => "Search",
            CovidRecipe::Weather => "Weather",
            CovidRecipe::Surveil => "Surveil",
        }
    }

    /// Full sample count from Table II.
    pub fn full_samples(&self) -> usize {
        match self {
            CovidRecipe::Trial => 6_433,
            CovidRecipe::Emergency => 8_364,
            CovidRecipe::Response => 200_737,
            CovidRecipe::Search => 948_762,
            CovidRecipe::Weather => 4_911_011,
            CovidRecipe::Surveil => 22_507_139,
        }
    }

    /// Feature count from Table II.
    pub fn features(&self) -> usize {
        match self {
            CovidRecipe::Trial => 9,
            CovidRecipe::Emergency => 22,
            CovidRecipe::Response => 19,
            CovidRecipe::Search => 424,
            CovidRecipe::Weather => 9,
            CovidRecipe::Surveil => 7,
        }
    }

    /// Missing rate from Table II.
    pub fn missing_rate(&self) -> f64 {
        match self {
            CovidRecipe::Trial => 0.0963,
            CovidRecipe::Emergency => 0.6269,
            CovidRecipe::Response => 0.0566,
            CovidRecipe::Search => 0.8135,
            CovidRecipe::Weather => 0.2156,
            CovidRecipe::Surveil => 0.4762,
        }
    }

    /// The paper's per-dataset initial sample size `n0` (§VI
    /// "Implementation details" / Figure 4 optima).
    pub fn paper_n0(&self) -> usize {
        match self {
            CovidRecipe::Trial | CovidRecipe::Emergency => 500,
            CovidRecipe::Response => 2_000,
            CovidRecipe::Search => 6_000,
            CovidRecipe::Weather | CovidRecipe::Surveil => 20_000,
        }
    }

    /// Number of categorical columns in the synthetic stand-in (clinical /
    /// policy tables are categorical-heavy; search/weather are continuous).
    fn categorical_cols(&self) -> usize {
        match self {
            CovidRecipe::Trial => 4,
            CovidRecipe::Emergency => 12,
            CovidRecipe::Response => 6,
            CovidRecipe::Search => 0,
            CovidRecipe::Weather => 0,
            CovidRecipe::Surveil => 5,
        }
    }

    /// The latent-factor generator configuration shared by the in-memory
    /// and sharded instantiations of this recipe at `n` samples.
    fn synth_config(&self, n: usize) -> SynthConfig {
        let d = self.features();
        SynthConfig {
            n_samples: n,
            n_features: d,
            latent_dim: (d / 3).clamp(2, 16),
            n_categorical: self.categorical_cols(),
            categorical_levels: 4,
            noise_std: 0.05,
        }
    }

    /// `n0` scaled with the sample count, clamped into `[32, n]`.
    fn scaled_n0(&self, scale: f64, n: usize) -> usize {
        ((self.paper_n0() as f64 * scale).round() as usize).clamp(32, n)
    }

    /// Generates the incomplete dataset (MCAR at Table II's rate) at
    /// `scale ∈ (0, 1]` of the full sample count. Fallible form of
    /// [`CovidRecipe::generate`]: rejects non-finite / out-of-range `scale`
    /// and checks the float→usize conversion instead of casting blindly.
    pub fn try_generate(&self, scale: f64, seed: u64) -> Result<RecipeInstance, CorpusError> {
        let n = scaled_samples(self.full_samples(), scale)?;
        let cfg = self.synth_config(n);
        let mut rng = Rng64::seed_from_u64(seed ^ self.seed_salt());
        let SynthData { complete, kinds } = generate(&cfg, &mut rng);
        let dataset = inject(
            &complete,
            kinds,
            Mechanism::Mcar {
                rate: self.missing_rate(),
            },
            &mut rng,
        );
        Ok(RecipeInstance {
            dataset,
            ground_truth: complete,
            n0: self.scaled_n0(scale, n),
        })
    }

    /// Generates the incomplete dataset (MCAR at Table II's rate) at
    /// `scale ∈ (0, 1]` of the full sample count.
    ///
    /// # Panics
    /// Panics if `scale` is not in `(0, 1]` (including NaN) or the scaled
    /// sample count overflows. See [`CovidRecipe::try_generate`] for the
    /// fallible form.
    pub fn generate(&self, scale: f64, seed: u64) -> RecipeInstance {
        match self.try_generate(scale, seed) {
            Ok(inst) => inst,
            Err(CorpusError::BadScale(s)) => panic!("scale must be in (0, 1], got {s}"),
            Err(e) => panic!("{e}"),
        }
    }

    /// Out-of-core form of this recipe: a seed-salted [`ShardedDataset`]
    /// whose shards are generated on demand, plus the scaled `n0`. The row
    /// *distribution* matches [`CovidRecipe::generate`] (same latent-factor
    /// model, marginal warps, categorical binning, MCAR rate), but the
    /// realized values differ: whole-matrix generation bins categoricals
    /// against global empirical quantiles, which no shard can compute
    /// locally, so the sharded generator fixes its cuts from a seed-derived
    /// calibration sample instead. Within a sharded instance, materializing
    /// and per-shard generation are bit-identical by construction.
    pub fn sharded(
        &self,
        scale: f64,
        seed: u64,
        shard_rows: usize,
    ) -> Result<(ShardedDataset, usize), CorpusError> {
        let n = scaled_samples(self.full_samples(), scale)?;
        let src = ShardedDataset::from_recipe(
            self.synth_config(n),
            self.missing_rate(),
            seed ^ self.seed_salt(),
            shard_rows,
        );
        Ok((src, self.scaled_n0(scale, n)))
    }

    fn seed_salt(&self) -> u64 {
        match self {
            CovidRecipe::Trial => 0x7261_6900,
            CovidRecipe::Emergency => 0x656d_6500,
            CovidRecipe::Response => 0x7265_7300,
            CovidRecipe::Search => 0x7365_6100,
            CovidRecipe::Weather => 0x7765_6100,
            CovidRecipe::Surveil => 0x7375_7200,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shapes_are_faithful() {
        assert_eq!(CovidRecipe::Trial.full_samples(), 6_433);
        assert_eq!(CovidRecipe::Search.features(), 424);
        assert!((CovidRecipe::Surveil.missing_rate() - 0.4762).abs() < 1e-9);
        assert_eq!(CovidRecipe::Weather.paper_n0(), 20_000);
    }

    #[test]
    fn scaled_generation_matches_recipe() {
        let inst = CovidRecipe::Trial.generate(0.1, 42);
        assert_eq!(inst.dataset.n_samples(), 643);
        assert_eq!(inst.dataset.n_features(), 9);
        assert!((inst.dataset.missing_rate() - 0.0963).abs() < 0.02);
        assert_eq!(inst.n0, 50);
        assert_eq!(inst.ground_truth.shape(), (643, 9));
    }

    #[test]
    fn high_missing_rate_recipe() {
        let inst = CovidRecipe::Emergency.generate(0.05, 7);
        assert!((inst.dataset.missing_rate() - 0.6269).abs() < 0.03);
        assert_eq!(inst.dataset.n_features(), 22);
    }

    #[test]
    fn deterministic_per_seed_distinct_across_recipes() {
        let a = CovidRecipe::Trial.generate(0.02, 1);
        let b = CovidRecipe::Trial.generate(0.02, 1);
        assert_eq!(a.ground_truth, b.ground_truth);
        let c = CovidRecipe::Surveil.generate(0.0001, 1);
        assert_ne!(a.ground_truth.shape(), c.ground_truth.shape());
    }

    #[test]
    fn n0_is_clamped_into_sample_range() {
        // tiny scale: n0 would round below 32
        let inst = CovidRecipe::Trial.generate(0.01, 3);
        assert!(inst.n0 >= 32 && inst.n0 <= inst.dataset.n_samples());
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn rejects_zero_scale() {
        let _ = CovidRecipe::Trial.generate(0.0, 1);
    }

    #[test]
    fn try_generate_rejects_bad_scales_as_typed_errors() {
        // regression for the unchecked `(full_samples * scale) as usize`
        // cast: non-finite and out-of-range scales must surface as typed
        // errors, never wrap or saturate
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.5, 1.5] {
            match CovidRecipe::Trial.try_generate(bad, 1) {
                Err(CorpusError::BadScale(s)) => {
                    assert!(s.is_nan() == bad.is_nan() && (s.is_nan() || s == bad))
                }
                other => panic!("scale {bad}: expected BadScale, got {other:?}"),
            }
        }
        assert!(CovidRecipe::Trial.try_generate(0.02, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn generate_panics_on_nan_scale() {
        let _ = CovidRecipe::Trial.generate(f64::NAN, 1);
    }

    #[test]
    fn sharded_recipe_matches_table_shape() {
        use crate::shard::RowSource;
        let (src, n0) = CovidRecipe::Weather.sharded(0.0001, 5, 128).unwrap();
        assert_eq!(src.n_rows(), 491); // round(4_911_011 * 1e-4)
        assert_eq!(src.n_cols(), 9);
        assert_eq!(n0, 32); // round(20_000 * 1e-4) = 2 → clamped to 32
        assert_eq!(src.n_shards(), 4);
        let rate = src.missing_rate().unwrap();
        assert!((rate - 0.2156).abs() < 0.03, "rate {rate}");
        assert!(matches!(
            CovidRecipe::Weather.sharded(f64::NAN, 5, 128),
            Err(CorpusError::BadScale(_))
        ));
    }
}
