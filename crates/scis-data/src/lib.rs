#![warn(missing_docs)]

//! `scis-data` — incomplete-dataset substrate for the SCIS reproduction.
//!
//! Provides everything the imputers and experiment harness consume:
//!
//! * [`mask`] — bit-packed mask matrices (`1` = observed), memory-efficient
//!   enough for the paper's 22.5M-row Surveil recipe;
//! * [`dataset`] — the `(values, mask)` pair with the paper's merge rule
//!   `X̂ = M ⊙ X + (1−M) ⊙ X̄` (Definition 1);
//! * [`missing`] — MCAR / MAR / MNAR missingness injectors;
//! * [`normalize`] — min–max scaling to `[0,1]` fitted on observed cells;
//! * [`synth`] — latent-factor mixed-type synthetic data generator;
//! * [`corpus`] — recipes reproducing the shapes of the six COVID-19
//!   datasets in the paper's Table II (sample count, feature count, missing
//!   rate), with a scale knob for laptop-sized runs;
//! * [`split`] — the validation / initial / minimum-sample sampling of
//!   Algorithm 1;
//! * [`metrics`] — held-out RMSE (the paper's evaluation protocol), MAE,
//!   AUC;
//! * [`csvio`] — minimal CSV round-trip with empty-cell missing values;
//! * [`validate`] — dataset defect checks (non-finite observed cells,
//!   all-missing / constant columns) feeding the fault-tolerant pipeline;
//! * [`shard`] — out-of-core sharded datasets ([`shard::RowSource`],
//!   recipe-backed and checksummed spill-backed shards, shard sinks) that
//!   let the pipeline stream at the paper's N without holding `N × d` in
//!   memory.

pub mod corpus;
pub mod csvio;
pub mod dataset;
pub mod mask;
pub mod metrics;
pub mod missing;
pub mod normalize;
pub mod shard;
pub mod split;
pub mod synth;
pub mod validate;

pub use corpus::{CorpusError, CovidRecipe};
pub use dataset::{ColumnKind, Dataset};
pub use mask::MaskMatrix;
pub use metrics::Holdout;
pub use missing::Mechanism;
pub use normalize::{MinMaxScaler, ScaledSource};
pub use shard::{
    ChunkedDataset, MemorySink, RowSource, ShardError, ShardSink, ShardedDataset, SpillWriter,
};
pub use validate::{DataError, DataReport};
