//! Synthetic complete-data generator.
//!
//! The paper evaluates on six real COVID-19 tables we cannot download here;
//! DESIGN.md documents the substitution: a latent-factor generator that
//! produces tables with (a) strong cross-feature dependence — so imputers
//! that model the joint distribution beat marginal fills, exactly the
//! regime the paper's comparisons live in — and (b) mixed
//! continuous/categorical marginals like the real tables.
//!
//! Model: `z_i ~ N(0, I_k)`, `h_i = tanh(z_i · W1)`, `x_i = h_i · W2 + ε`,
//! followed by per-column marginal warps; categorical columns are quantile-
//! binned into ordinal levels.

use crate::dataset::ColumnKind;
use scis_tensor::ops::matmul;
use scis_tensor::{Matrix, Rng64};

/// Configuration of the latent-factor generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of samples.
    pub n_samples: usize,
    /// Number of features.
    pub n_features: usize,
    /// Latent dimensionality `k` (controls how low-rank / learnable the
    /// table is; small `k` → strongly dependent features).
    pub latent_dim: usize,
    /// How many of the features are quantile-binned to categorical levels.
    pub n_categorical: usize,
    /// Levels per categorical column.
    pub categorical_levels: usize,
    /// Std of additive observation noise.
    pub noise_std: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            n_samples: 1000,
            n_features: 8,
            latent_dim: 3,
            n_categorical: 0,
            categorical_levels: 4,
            noise_std: 0.05,
        }
    }
}

/// Output of [`generate`]: the complete matrix and its column kinds.
#[derive(Debug, Clone)]
pub struct SynthData {
    /// Complete ground-truth matrix (`n_samples x n_features`).
    pub complete: Matrix,
    /// Column kinds (categoricals are the *last* `n_categorical` columns).
    pub kinds: Vec<ColumnKind>,
}

/// Generates a complete table per `cfg`, deterministically under `rng`.
///
/// # Panics
/// Panics if `n_categorical > n_features` or `latent_dim == 0`.
pub fn generate(cfg: &SynthConfig, rng: &mut Rng64) -> SynthData {
    assert!(
        cfg.n_categorical <= cfg.n_features,
        "more categorical than features"
    );
    assert!(cfg.latent_dim > 0, "latent_dim must be positive");
    let (n, d, k) = (cfg.n_samples, cfg.n_features, cfg.latent_dim);
    let hidden = (2 * k).max(4);

    let z = Matrix::from_fn(n, k, |_, _| rng.normal());
    let w1 = Matrix::from_fn(k, hidden, |_, _| {
        rng.normal_with(0.0, 1.0 / (k as f64).sqrt())
    });
    let w2 = Matrix::from_fn(hidden, d, |_, _| {
        rng.normal_with(0.0, 1.0 / (hidden as f64).sqrt())
    });
    let h = matmul(&z, &w1).map(f64::tanh);
    let mut x = matmul(&h, &w2);
    if cfg.noise_std > 0.0 {
        for v in x.as_mut_slice() {
            *v += rng.normal_with(0.0, cfg.noise_std);
        }
    }

    // per-column marginal warps so columns don't all look Gaussian
    for j in 0..d {
        match j % 3 {
            0 => {} // keep linear-ish
            1 => {
                for i in 0..n {
                    let v = x[(i, j)];
                    x[(i, j)] = v.signum() * v.abs().sqrt(); // heavy-ish center
                }
            }
            _ => {
                for i in 0..n {
                    x[(i, j)] = (x[(i, j)] * 1.5).tanh(); // saturating
                }
            }
        }
    }

    // quantile-bin the last n_categorical columns into ordinal levels
    let mut kinds = vec![ColumnKind::Continuous; d];
    let first_cat = d - cfg.n_categorical;
    for j in first_cat..d {
        let col = x.col(j);
        let levels = cfg.categorical_levels.max(2);
        let cuts: Vec<f64> = (1..levels)
            .map(|l| {
                scis_tensor::stats::quantile(&col, l as f64 / levels as f64)
                    .expect("non-empty column")
            })
            .collect();
        for i in 0..n {
            let v = x[(i, j)];
            let mut level = 0usize;
            for &c in &cuts {
                if v > c {
                    level += 1;
                }
            }
            x[(i, j)] = level as f64;
        }
        kinds[j] = ColumnKind::Categorical { levels };
    }

    SynthData { complete: x, kinds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scis_tensor::stats::nan_pearson;

    #[test]
    fn shapes_and_kinds() {
        let cfg = SynthConfig {
            n_samples: 100,
            n_features: 6,
            n_categorical: 2,
            ..Default::default()
        };
        let mut rng = Rng64::seed_from_u64(1);
        let data = generate(&cfg, &mut rng);
        assert_eq!(data.complete.shape(), (100, 6));
        assert_eq!(data.kinds.len(), 6);
        assert_eq!(data.kinds[3], ColumnKind::Continuous);
        assert!(matches!(data.kinds[4], ColumnKind::Categorical { .. }));
        assert!(!data.complete.has_nan());
    }

    #[test]
    fn features_are_cross_correlated() {
        // low-rank structure ⇒ some feature pair must correlate strongly;
        // this is the property that makes model-based imputation beat mean
        let cfg = SynthConfig {
            n_samples: 3000,
            n_features: 8,
            latent_dim: 2,
            ..Default::default()
        };
        let mut rng = Rng64::seed_from_u64(2);
        let data = generate(&cfg, &mut rng);
        let mut max_abs_corr = 0.0f64;
        for a in 0..8 {
            for b in (a + 1)..8 {
                if let Some(c) = nan_pearson(&data.complete.col(a), &data.complete.col(b)) {
                    max_abs_corr = max_abs_corr.max(c.abs());
                }
            }
        }
        assert!(max_abs_corr > 0.5, "max |corr| = {}", max_abs_corr);
    }

    #[test]
    fn categorical_columns_take_integer_levels() {
        let cfg = SynthConfig {
            n_samples: 500,
            n_features: 4,
            n_categorical: 4,
            categorical_levels: 3,
            ..Default::default()
        };
        let mut rng = Rng64::seed_from_u64(3);
        let data = generate(&cfg, &mut rng);
        for v in data.complete.as_slice() {
            assert!(*v == 0.0 || *v == 1.0 || *v == 2.0, "level {}", v);
        }
        // roughly balanced levels (quantile binning)
        let zeros = data
            .complete
            .as_slice()
            .iter()
            .filter(|&&v| v == 0.0)
            .count();
        let frac = zeros as f64 / data.complete.len() as f64;
        assert!((frac - 1.0 / 3.0).abs() < 0.1, "level-0 fraction {}", frac);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = SynthConfig::default();
        let a = generate(&cfg, &mut Rng64::seed_from_u64(7));
        let b = generate(&cfg, &mut Rng64::seed_from_u64(7));
        assert_eq!(a.complete, b.complete);
    }

    #[test]
    #[should_panic(expected = "more categorical than features")]
    fn rejects_too_many_categoricals() {
        let cfg = SynthConfig {
            n_features: 2,
            n_categorical: 3,
            ..Default::default()
        };
        let _ = generate(&cfg, &mut Rng64::seed_from_u64(1));
    }
}
