//! Bit-packed mask matrices.
//!
//! The paper's mask matrix `M` has `m_ij = 1` iff cell `(i,j)` is observed.
//! At the Surveil scale (22.5M × 7) a `Vec<f64>` mask costs 1.26 GB; this
//! bit-packed representation costs 20 MB. Dense `f64` views are
//! materialized per mini-batch only ([`MaskMatrix::to_dense_rows`]).

use scis_tensor::Matrix;

/// A `rows x cols` bitmap; bit set = cell observed.
#[derive(Clone, PartialEq, Eq)]
pub struct MaskMatrix {
    rows: usize,
    cols: usize,
    words: Vec<u64>,
}

impl MaskMatrix {
    /// All-observed mask.
    pub fn all_observed(rows: usize, cols: usize) -> Self {
        let bits = rows * cols;
        let mut words = vec![u64::MAX; bits.div_ceil(64)];
        // clear the slack bits in the last word so counts stay exact
        let slack = words.len() * 64 - bits;
        if slack > 0 {
            if let Some(last) = words.last_mut() {
                *last >>= slack;
            }
        }
        Self { rows, cols, words }
    }

    /// All-missing mask.
    pub fn all_missing(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            words: vec![0; (rows * cols).div_ceil(64)],
        }
    }

    /// Builds a mask from a dense 0/1 matrix (anything > 0.5 is observed).
    pub fn from_dense(m: &Matrix) -> Self {
        let mut out = Self::all_missing(m.rows(), m.cols());
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                if m[(i, j)] > 0.5 {
                    out.set(i, j, true);
                }
            }
        }
        out
    }

    /// Builds the mask implied by NaN cells in `values` (NaN = missing).
    pub fn from_nan_pattern(values: &Matrix) -> Self {
        let mut out = Self::all_missing(values.rows(), values.cols());
        for i in 0..values.rows() {
            for j in 0..values.cols() {
                if !values[(i, j)].is_nan() {
                    out.set(i, j, true);
                }
            }
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn bit_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.rows && j < self.cols, "mask index out of bounds");
        i * self.cols + j
    }

    /// Whether cell `(i, j)` is observed.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        let b = self.bit_index(i, j);
        (self.words[b / 64] >> (b % 64)) & 1 == 1
    }

    /// Sets the observed flag of cell `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, observed: bool) {
        let b = self.bit_index(i, j);
        if observed {
            self.words[b / 64] |= 1 << (b % 64);
        } else {
            self.words[b / 64] &= !(1 << (b % 64));
        }
    }

    /// Count of observed cells.
    pub fn count_observed(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of missing cells — the paper's "missing rate".
    pub fn missing_rate(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            0.0
        } else {
            1.0 - self.count_observed() as f64 / total as f64
        }
    }

    /// Count of observed cells in column `j`.
    pub fn col_observed_count(&self, j: usize) -> usize {
        (0..self.rows).filter(|&i| self.get(i, j)).count()
    }

    /// Count of observed cells in row `i`.
    pub fn row_observed_count(&self, i: usize) -> usize {
        (0..self.cols).filter(|&j| self.get(i, j)).count()
    }

    /// Dense `f64` (0/1) materialization of the whole mask.
    pub fn to_dense(&self) -> Matrix {
        Matrix::from_fn(
            self.rows,
            self.cols,
            |i, j| if self.get(i, j) { 1.0 } else { 0.0 },
        )
    }

    /// Dense `f64` materialization of the rows at `indices` (mini-batching).
    pub fn to_dense_rows(&self, indices: &[usize]) -> Matrix {
        Matrix::from_fn(indices.len(), self.cols, |k, j| {
            if self.get(indices[k], j) {
                1.0
            } else {
                0.0
            }
        })
    }

    /// Sub-mask of the rows at `indices` (indices may repeat).
    pub fn select_rows(&self, indices: &[usize]) -> MaskMatrix {
        let mut out = MaskMatrix::all_missing(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            for j in 0..self.cols {
                if self.get(i, j) {
                    out.set(k, j, true);
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for MaskMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MaskMatrix {}x{} ({} observed, missing rate {:.2}%)",
            self.rows,
            self.cols,
            self.count_observed(),
            self.missing_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_observed_counts() {
        let m = MaskMatrix::all_observed(10, 7);
        assert_eq!(m.count_observed(), 70);
        assert_eq!(m.missing_rate(), 0.0);
        assert!(m.get(9, 6));
    }

    #[test]
    fn all_observed_no_slack_bits() {
        // 3*5 = 15 bits, far from word boundary
        let m = MaskMatrix::all_observed(3, 5);
        assert_eq!(m.count_observed(), 15);
        // 8*8 = 64 bits, exactly one word
        let m = MaskMatrix::all_observed(8, 8);
        assert_eq!(m.count_observed(), 64);
        // 65 bits: second word has 1 valid bit
        let m = MaskMatrix::all_observed(13, 5);
        assert_eq!(m.count_observed(), 65);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = MaskMatrix::all_missing(4, 4);
        m.set(2, 3, true);
        assert!(m.get(2, 3));
        assert!(!m.get(3, 2));
        assert_eq!(m.count_observed(), 1);
        m.set(2, 3, false);
        assert_eq!(m.count_observed(), 0);
    }

    #[test]
    fn dense_roundtrip() {
        let d = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
        let m = MaskMatrix::from_dense(&d);
        assert_eq!(m.to_dense(), d);
        assert_eq!(m.count_observed(), 3);
    }

    #[test]
    fn nan_pattern() {
        let v = Matrix::from_rows(&[&[1.0, f64::NAN], &[f64::NAN, 4.0]]);
        let m = MaskMatrix::from_nan_pattern(&v);
        assert!(m.get(0, 0));
        assert!(!m.get(0, 1));
        assert!(!m.get(1, 0));
        assert!(m.get(1, 1));
        assert_eq!(m.missing_rate(), 0.5);
    }

    #[test]
    fn row_and_col_counts() {
        let d = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[0.0, 0.0]]);
        let m = MaskMatrix::from_dense(&d);
        assert_eq!(m.col_observed_count(0), 2);
        assert_eq!(m.col_observed_count(1), 1);
        assert_eq!(m.row_observed_count(0), 1);
        assert_eq!(m.row_observed_count(2), 0);
    }

    #[test]
    fn select_rows_with_repeats() {
        let d = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let m = MaskMatrix::from_dense(&d);
        let s = m.select_rows(&[1, 1, 0]);
        assert_eq!(s.rows(), 3);
        assert!(s.get(0, 1) && s.get(1, 1) && s.get(2, 0));
        assert!(!s.get(0, 0) && !s.get(2, 1));
    }

    #[test]
    fn to_dense_rows_batches() {
        let d = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let m = MaskMatrix::from_dense(&d);
        let batch = m.to_dense_rows(&[2, 0]);
        assert_eq!(batch, Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 0.0]]));
    }

    #[test]
    fn memory_is_bit_packed() {
        let m = MaskMatrix::all_missing(1000, 100);
        assert_eq!(m.words.len(), (1000 * 100usize).div_ceil(64));
    }
}
