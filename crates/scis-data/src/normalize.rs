//! Min–max normalization to `[0, 1]`, fitted on observed cells only.
//!
//! The paper normalizes inputs to `[0,1]^d` (its Theorem 1 uses `|X| = 1`
//! and Lipschitz constant 1 for the squared cost). The scaler must be fitted
//! on *observed* values only — missing cells are NaN — and must round-trip
//! exactly for the post-imputation denormalization step.

use crate::dataset::{ColumnKind, Dataset};
use crate::shard::{RowSource, ShardError};
use scis_tensor::stats::nan_min_max;
use scis_tensor::Matrix;

/// Per-column min–max scaler.
#[derive(Debug, Clone)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    spans: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits column ranges on the observed (non-NaN) cells of `values`.
    ///
    /// Degenerate columns fall back to the *identity map* (min 0, span 1),
    /// which round-trips losslessly:
    /// * no observed cells, or a constant value → zero range;
    /// * an infinite observed value → non-finite range (such data is
    ///   rejected upstream by `Dataset::validate`, but the scaler must not
    ///   emit NaN even when called directly).
    pub fn fit(values: &Matrix) -> Self {
        let mut mins = Vec::with_capacity(values.cols());
        let mut spans = Vec::with_capacity(values.cols());
        for j in 0..values.cols() {
            let (lo, hi) = nan_min_max(&values.col(j)).unwrap_or((0.0, 0.0));
            let span = hi - lo;
            if lo.is_finite() && span.is_finite() {
                mins.push(lo);
                spans.push(if span > 0.0 { span } else { 1.0 });
            } else {
                mins.push(0.0);
                spans.push(1.0);
            }
        }
        Self { mins, spans }
    }

    /// Applies the transform; NaN cells stay NaN.
    pub fn transform(&self, values: &Matrix) -> Matrix {
        assert_eq!(values.cols(), self.mins.len(), "transform: column mismatch");
        Matrix::from_fn(values.rows(), values.cols(), |i, j| {
            let v = (*values)[(i, j)];
            if v.is_nan() {
                f64::NAN
            } else {
                (v - self.mins[j]) / self.spans[j]
            }
        })
    }

    /// Inverse transform; NaN cells stay NaN.
    pub fn inverse_transform(&self, values: &Matrix) -> Matrix {
        assert_eq!(
            values.cols(),
            self.mins.len(),
            "inverse_transform: column mismatch"
        );
        Matrix::from_fn(values.rows(), values.cols(), |i, j| {
            let v = (*values)[(i, j)];
            if v.is_nan() {
                f64::NAN
            } else {
                v * self.spans[j] + self.mins[j]
            }
        })
    }

    /// Reconstructs a scaler from exported parameters (see
    /// [`MinMaxScaler::mins`]/[`MinMaxScaler::spans`]) — the model-bundle
    /// round-trip. `mins` and `spans` must have equal length; spans must be
    /// positive and finite so the inverse transform stays well-defined.
    pub fn from_params(mins: Vec<f64>, spans: Vec<f64>) -> Result<Self, String> {
        if mins.len() != spans.len() {
            return Err(format!(
                "scaler params: {} mins vs {} spans",
                mins.len(),
                spans.len()
            ));
        }
        for (j, (&m, &s)) in mins.iter().zip(&spans).enumerate() {
            if !m.is_finite() || !s.is_finite() || s <= 0.0 {
                return Err(format!(
                    "scaler params: column {} (min {}, span {})",
                    j, m, s
                ));
            }
        }
        Ok(Self { mins, spans })
    }

    /// Per-column minimum of the fitted range (identity-fallback columns
    /// report 0). Exported into model bundles.
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Per-column span of the fitted range (identity-fallback columns
    /// report 1). Exported into model bundles.
    pub fn spans(&self) -> &[f64] {
        &self.spans
    }

    /// Number of columns the scaler was fitted on.
    pub fn n_cols(&self) -> usize {
        self.mins.len()
    }

    /// Streaming [`MinMaxScaler::fit`] over a sharded source: one pass in
    /// shard order, holding only per-column `(lo, hi)` state.
    ///
    /// Bit-identical to fitting the materialized matrix — each column's
    /// running `min`/`max` consumes observed values in the same row order
    /// as `nan_min_max`, and the degenerate-column fallbacks are shared.
    pub fn fit_source(src: &dyn RowSource) -> Result<Self, ShardError> {
        let d = src.n_cols();
        let mut lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        let mut seen = vec![false; d];
        for k in 0..src.n_shards() {
            let shard = src.load_shard(k)?;
            for i in 0..shard.n_samples() {
                for (j, &v) in shard.values.row(i).iter().enumerate() {
                    if v.is_nan() {
                        continue;
                    }
                    seen[j] = true;
                    lo[j] = lo[j].min(v);
                    hi[j] = hi[j].max(v);
                }
            }
        }
        let mut mins = Vec::with_capacity(d);
        let mut spans = Vec::with_capacity(d);
        for j in 0..d {
            let (lo, hi) = if seen[j] { (lo[j], hi[j]) } else { (0.0, 0.0) };
            let span = hi - lo;
            if lo.is_finite() && span.is_finite() {
                mins.push(lo);
                spans.push(if span > 0.0 { span } else { 1.0 });
            } else {
                mins.push(0.0);
                spans.push(1.0);
            }
        }
        Ok(Self { mins, spans })
    }

    /// Fits on a dataset and returns the normalized dataset plus the scaler.
    pub fn fit_transform_dataset(ds: &Dataset) -> (Dataset, MinMaxScaler) {
        let scaler = MinMaxScaler::fit(&ds.values);
        let values = scaler.transform(&ds.values);
        (
            Dataset {
                values,
                mask: ds.mask.clone(),
                kinds: ds.kinds.clone(),
            },
            scaler,
        )
    }
}

/// A [`RowSource`] adapter applying a fitted scaler to every loaded shard.
/// Shard-wise transformation equals whole-matrix transformation because the
/// map is per-cell (NaN stays NaN, so masks are unchanged).
#[derive(Clone, Copy)]
pub struct ScaledSource<'a> {
    src: &'a dyn RowSource,
    scaler: &'a MinMaxScaler,
}

impl<'a> ScaledSource<'a> {
    /// Wraps `src` so every shard comes out normalized by `scaler`.
    ///
    /// # Panics
    /// Panics if the scaler's column count differs from the source's.
    pub fn new(src: &'a dyn RowSource, scaler: &'a MinMaxScaler) -> Self {
        assert_eq!(
            src.n_cols(),
            scaler.n_cols(),
            "ScaledSource: column mismatch"
        );
        Self { src, scaler }
    }
}

impl RowSource for ScaledSource<'_> {
    fn n_rows(&self) -> usize {
        self.src.n_rows()
    }

    fn n_cols(&self) -> usize {
        self.src.n_cols()
    }

    fn kinds(&self) -> &[ColumnKind] {
        self.src.kinds()
    }

    fn shard_rows(&self) -> usize {
        self.src.shard_rows()
    }

    fn load_shard(&self, k: usize) -> Result<Dataset, ShardError> {
        let shard = self.src.load_shard(k)?;
        Ok(Dataset {
            values: self.scaler.transform(&shard.values),
            mask: shard.mask,
            kinds: shard.kinds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scis_tensor::Rng64;

    #[test]
    fn normalizes_observed_to_unit_interval() {
        let v = Matrix::from_rows(&[&[0.0, 10.0], &[5.0, 20.0], &[10.0, 30.0]]);
        let s = MinMaxScaler::fit(&v);
        let t = s.transform(&v);
        assert_eq!(t[(0, 0)], 0.0);
        assert_eq!(t[(2, 0)], 1.0);
        assert_eq!(t[(1, 1)], 0.5);
        assert!(t.as_slice().iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn roundtrip_is_exact_within_fp() {
        let mut rng = Rng64::seed_from_u64(1);
        let v = Matrix::from_fn(50, 4, |_, _| rng.normal_with(100.0, 37.0));
        let s = MinMaxScaler::fit(&v);
        let back = s.inverse_transform(&s.transform(&v));
        for (a, b) in v.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
        }
    }

    #[test]
    fn nan_preserved_and_ignored_in_fit() {
        let v = Matrix::from_rows(&[&[f64::NAN, 2.0], &[1.0, f64::NAN], &[3.0, 6.0]]);
        let s = MinMaxScaler::fit(&v);
        let t = s.transform(&v);
        assert!(t[(0, 0)].is_nan());
        assert!(t[(1, 1)].is_nan());
        // observed min/max map to 0/1 (fit ignored the NaNs)
        assert_eq!(t[(1, 0)], 0.0);
        assert_eq!(t[(2, 0)], 1.0);
        assert_eq!(t[(0, 1)], 0.0);
        assert_eq!(t[(2, 1)], 1.0);
    }

    #[test]
    fn constant_column_does_not_divide_by_zero() {
        let v = Matrix::from_rows(&[&[7.0], &[7.0]]);
        let s = MinMaxScaler::fit(&v);
        let t = s.transform(&v);
        assert_eq!(t[(0, 0)], 0.0);
        let back = s.inverse_transform(&t);
        assert_eq!(back[(0, 0)], 7.0);
    }

    #[test]
    fn all_missing_column_is_tolerated() {
        let v = Matrix::from_rows(&[&[f64::NAN], &[f64::NAN]]);
        let s = MinMaxScaler::fit(&v);
        let t = s.transform(&v);
        assert!(t[(0, 0)].is_nan());
    }

    #[test]
    fn infinite_values_fall_back_to_identity() {
        // zero-range and non-finite-range columns both take the documented
        // identity fallback: finite output, exact round-trip of finite cells
        let v = Matrix::from_rows(&[&[1.0, 5.0], &[f64::INFINITY, 5.0], &[3.0, 5.0]]);
        let s = MinMaxScaler::fit(&v);
        let t = s.transform(&v);
        assert_eq!(t[(0, 0)], 1.0, "identity map leaves finite values alone");
        assert_eq!(t[(2, 0)], 3.0);
        assert_eq!(t[(0, 1)], 0.0, "constant column maps to 0");
        assert!(
            t[(1, 0)].is_infinite(),
            "the bad cell itself passes through"
        );
        let back = s.inverse_transform(&t);
        assert_eq!(back[(0, 0)], 1.0);
        assert_eq!(back[(2, 0)], 3.0);
        assert_eq!(back[(0, 1)], 5.0);
    }

    #[test]
    fn negative_infinity_min_falls_back_to_identity() {
        let v = Matrix::from_rows(&[&[f64::NEG_INFINITY], &[2.0]]);
        let s = MinMaxScaler::fit(&v);
        let t = s.transform(&v);
        assert_eq!(t[(1, 0)], 2.0);
        assert!(!t[(1, 0)].is_nan());
    }

    #[test]
    fn fit_source_matches_in_memory_fit_bitwise() {
        let mut rng = Rng64::seed_from_u64(5);
        let v = Matrix::from_fn(97, 5, |i, j| {
            if (i + j) % 7 == 0 {
                f64::NAN
            } else {
                rng.normal_with(3.0, 11.0)
            }
        });
        let ds = Dataset::from_values(v.clone());
        let in_memory = MinMaxScaler::fit(&v);
        for shard_rows in [1, 13, 97, 200] {
            let chunked = crate::shard::ChunkedDataset::new(&ds, shard_rows);
            let streamed = MinMaxScaler::fit_source(&chunked).unwrap();
            for j in 0..5 {
                assert_eq!(streamed.mins()[j].to_bits(), in_memory.mins()[j].to_bits());
                assert_eq!(
                    streamed.spans()[j].to_bits(),
                    in_memory.spans()[j].to_bits()
                );
            }
        }
    }

    #[test]
    fn fit_source_degenerate_columns_fall_back_like_fit() {
        // all-missing, constant, and infinite columns take the same
        // identity fallbacks as the in-memory fit
        let v = Matrix::from_rows(&[
            &[f64::NAN, 5.0, 1.0],
            &[f64::NAN, 5.0, f64::INFINITY],
            &[f64::NAN, 5.0, 3.0],
        ]);
        let ds = Dataset::from_values(v.clone());
        let chunked = crate::shard::ChunkedDataset::new(&ds, 2);
        let streamed = MinMaxScaler::fit_source(&chunked).unwrap();
        let in_memory = MinMaxScaler::fit(&v);
        assert_eq!(streamed.mins(), in_memory.mins());
        assert_eq!(streamed.spans(), in_memory.spans());
    }

    #[test]
    fn scaled_source_shards_match_whole_matrix_transform() {
        let v = Matrix::from_rows(&[&[0.0, 10.0], &[5.0, f64::NAN], &[10.0, 30.0]]);
        let ds = Dataset::from_values(v.clone());
        let s = MinMaxScaler::fit(&v);
        let chunked = crate::shard::ChunkedDataset::new(&ds, 2);
        let scaled = ScaledSource::new(&chunked, &s);
        let streamed = scaled.materialize().unwrap();
        let whole = s.transform(&v);
        for (a, b) in streamed.values.as_slice().iter().zip(whole.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(streamed.mask, ds.mask);
    }

    #[test]
    fn dataset_fit_transform_keeps_mask() {
        let v = Matrix::from_rows(&[&[10.0, f64::NAN], &[20.0, 5.0]]);
        let ds = Dataset::from_values(v);
        let (norm, _) = MinMaxScaler::fit_transform_dataset(&ds);
        assert_eq!(norm.mask, ds.mask);
        assert_eq!(norm.values[(0, 0)], 0.0);
        assert_eq!(norm.values[(1, 0)], 1.0);
    }
}
