//! Min–max normalization to `[0, 1]`, fitted on observed cells only.
//!
//! The paper normalizes inputs to `[0,1]^d` (its Theorem 1 uses `|X| = 1`
//! and Lipschitz constant 1 for the squared cost). The scaler must be fitted
//! on *observed* values only — missing cells are NaN — and must round-trip
//! exactly for the post-imputation denormalization step.

use crate::dataset::Dataset;
use scis_tensor::stats::nan_min_max;
use scis_tensor::Matrix;

/// Per-column min–max scaler.
#[derive(Debug, Clone)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    spans: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits column ranges on the observed (non-NaN) cells of `values`.
    ///
    /// Degenerate columns fall back to the *identity map* (min 0, span 1),
    /// which round-trips losslessly:
    /// * no observed cells, or a constant value → zero range;
    /// * an infinite observed value → non-finite range (such data is
    ///   rejected upstream by `Dataset::validate`, but the scaler must not
    ///   emit NaN even when called directly).
    pub fn fit(values: &Matrix) -> Self {
        let mut mins = Vec::with_capacity(values.cols());
        let mut spans = Vec::with_capacity(values.cols());
        for j in 0..values.cols() {
            let (lo, hi) = nan_min_max(&values.col(j)).unwrap_or((0.0, 0.0));
            let span = hi - lo;
            if lo.is_finite() && span.is_finite() {
                mins.push(lo);
                spans.push(if span > 0.0 { span } else { 1.0 });
            } else {
                mins.push(0.0);
                spans.push(1.0);
            }
        }
        Self { mins, spans }
    }

    /// Applies the transform; NaN cells stay NaN.
    pub fn transform(&self, values: &Matrix) -> Matrix {
        assert_eq!(values.cols(), self.mins.len(), "transform: column mismatch");
        Matrix::from_fn(values.rows(), values.cols(), |i, j| {
            let v = (*values)[(i, j)];
            if v.is_nan() {
                f64::NAN
            } else {
                (v - self.mins[j]) / self.spans[j]
            }
        })
    }

    /// Inverse transform; NaN cells stay NaN.
    pub fn inverse_transform(&self, values: &Matrix) -> Matrix {
        assert_eq!(
            values.cols(),
            self.mins.len(),
            "inverse_transform: column mismatch"
        );
        Matrix::from_fn(values.rows(), values.cols(), |i, j| {
            let v = (*values)[(i, j)];
            if v.is_nan() {
                f64::NAN
            } else {
                v * self.spans[j] + self.mins[j]
            }
        })
    }

    /// Reconstructs a scaler from exported parameters (see
    /// [`MinMaxScaler::mins`]/[`MinMaxScaler::spans`]) — the model-bundle
    /// round-trip. `mins` and `spans` must have equal length; spans must be
    /// positive and finite so the inverse transform stays well-defined.
    pub fn from_params(mins: Vec<f64>, spans: Vec<f64>) -> Result<Self, String> {
        if mins.len() != spans.len() {
            return Err(format!(
                "scaler params: {} mins vs {} spans",
                mins.len(),
                spans.len()
            ));
        }
        for (j, (&m, &s)) in mins.iter().zip(&spans).enumerate() {
            if !m.is_finite() || !s.is_finite() || s <= 0.0 {
                return Err(format!(
                    "scaler params: column {} (min {}, span {})",
                    j, m, s
                ));
            }
        }
        Ok(Self { mins, spans })
    }

    /// Per-column minimum of the fitted range (identity-fallback columns
    /// report 0). Exported into model bundles.
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Per-column span of the fitted range (identity-fallback columns
    /// report 1). Exported into model bundles.
    pub fn spans(&self) -> &[f64] {
        &self.spans
    }

    /// Number of columns the scaler was fitted on.
    pub fn n_cols(&self) -> usize {
        self.mins.len()
    }

    /// Fits on a dataset and returns the normalized dataset plus the scaler.
    pub fn fit_transform_dataset(ds: &Dataset) -> (Dataset, MinMaxScaler) {
        let scaler = MinMaxScaler::fit(&ds.values);
        let values = scaler.transform(&ds.values);
        (
            Dataset {
                values,
                mask: ds.mask.clone(),
                kinds: ds.kinds.clone(),
            },
            scaler,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scis_tensor::Rng64;

    #[test]
    fn normalizes_observed_to_unit_interval() {
        let v = Matrix::from_rows(&[&[0.0, 10.0], &[5.0, 20.0], &[10.0, 30.0]]);
        let s = MinMaxScaler::fit(&v);
        let t = s.transform(&v);
        assert_eq!(t[(0, 0)], 0.0);
        assert_eq!(t[(2, 0)], 1.0);
        assert_eq!(t[(1, 1)], 0.5);
        assert!(t.as_slice().iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn roundtrip_is_exact_within_fp() {
        let mut rng = Rng64::seed_from_u64(1);
        let v = Matrix::from_fn(50, 4, |_, _| rng.normal_with(100.0, 37.0));
        let s = MinMaxScaler::fit(&v);
        let back = s.inverse_transform(&s.transform(&v));
        for (a, b) in v.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
        }
    }

    #[test]
    fn nan_preserved_and_ignored_in_fit() {
        let v = Matrix::from_rows(&[&[f64::NAN, 2.0], &[1.0, f64::NAN], &[3.0, 6.0]]);
        let s = MinMaxScaler::fit(&v);
        let t = s.transform(&v);
        assert!(t[(0, 0)].is_nan());
        assert!(t[(1, 1)].is_nan());
        // observed min/max map to 0/1 (fit ignored the NaNs)
        assert_eq!(t[(1, 0)], 0.0);
        assert_eq!(t[(2, 0)], 1.0);
        assert_eq!(t[(0, 1)], 0.0);
        assert_eq!(t[(2, 1)], 1.0);
    }

    #[test]
    fn constant_column_does_not_divide_by_zero() {
        let v = Matrix::from_rows(&[&[7.0], &[7.0]]);
        let s = MinMaxScaler::fit(&v);
        let t = s.transform(&v);
        assert_eq!(t[(0, 0)], 0.0);
        let back = s.inverse_transform(&t);
        assert_eq!(back[(0, 0)], 7.0);
    }

    #[test]
    fn all_missing_column_is_tolerated() {
        let v = Matrix::from_rows(&[&[f64::NAN], &[f64::NAN]]);
        let s = MinMaxScaler::fit(&v);
        let t = s.transform(&v);
        assert!(t[(0, 0)].is_nan());
    }

    #[test]
    fn infinite_values_fall_back_to_identity() {
        // zero-range and non-finite-range columns both take the documented
        // identity fallback: finite output, exact round-trip of finite cells
        let v = Matrix::from_rows(&[&[1.0, 5.0], &[f64::INFINITY, 5.0], &[3.0, 5.0]]);
        let s = MinMaxScaler::fit(&v);
        let t = s.transform(&v);
        assert_eq!(t[(0, 0)], 1.0, "identity map leaves finite values alone");
        assert_eq!(t[(2, 0)], 3.0);
        assert_eq!(t[(0, 1)], 0.0, "constant column maps to 0");
        assert!(
            t[(1, 0)].is_infinite(),
            "the bad cell itself passes through"
        );
        let back = s.inverse_transform(&t);
        assert_eq!(back[(0, 0)], 1.0);
        assert_eq!(back[(2, 0)], 3.0);
        assert_eq!(back[(0, 1)], 5.0);
    }

    #[test]
    fn negative_infinity_min_falls_back_to_identity() {
        let v = Matrix::from_rows(&[&[f64::NEG_INFINITY], &[2.0]]);
        let s = MinMaxScaler::fit(&v);
        let t = s.transform(&v);
        assert_eq!(t[(1, 0)], 2.0);
        assert!(!t[(1, 0)].is_nan());
    }

    #[test]
    fn dataset_fit_transform_keeps_mask() {
        let v = Matrix::from_rows(&[&[10.0, f64::NAN], &[20.0, 5.0]]);
        let ds = Dataset::from_values(v);
        let (norm, _) = MinMaxScaler::fit_transform_dataset(&ds);
        assert_eq!(norm.mask, ds.mask);
        assert_eq!(norm.values[(0, 0)], 0.0);
        assert_eq!(norm.values[(1, 0)], 1.0);
    }
}
