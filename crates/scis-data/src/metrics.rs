//! Evaluation metrics and the paper's held-out protocol.
//!
//! The paper (§VI "Metrics"): *"we randomly remove 20% observed values
//! during training for imputation, and thus we use these observed values as
//! the ground-truth"*. [`make_holdout`] implements exactly that: it hides a
//! fraction of the observed cells and remembers their true values; RMSE is
//! then computed on those hidden cells only.

use crate::dataset::Dataset;
use scis_tensor::{Matrix, Rng64};

/// Errors surfaced by the fallible metric constructors.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricsError {
    /// `make_holdout` would hide zero cells: `frac` rounded `k` to 0 (or the
    /// dataset has no observed cells), and an empty [`Holdout`] only fails
    /// much later inside `rmse`/`mae`, far from the cause.
    EmptyHoldout {
        /// Number of observed cells in the source dataset.
        observed: usize,
        /// The requested holdout fraction.
        frac: f64,
    },
    /// The holdout fraction is outside `[0, 1)`.
    BadFraction(f64),
    /// An AUC score is NaN or infinite and cannot be ranked.
    NonFiniteScore {
        /// Index of the offending score.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// AUC needs at least one positive and one negative label.
    SingleClass,
}

impl std::fmt::Display for MetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricsError::EmptyHoldout { observed, frac } => write!(
                f,
                "holdout is empty: frac = {} of {} observed cells rounds to 0 hidden cells",
                frac, observed
            ),
            MetricsError::BadFraction(frac) => {
                write!(f, "holdout fraction {} outside [0, 1)", frac)
            }
            MetricsError::NonFiniteScore { index, value } => {
                write!(f, "non-finite score {} at index {}", value, index)
            }
            MetricsError::SingleClass => write!(f, "need both classes"),
        }
    }
}

impl std::error::Error for MetricsError {}

/// Hidden-cell ground truth produced by [`make_holdout`].
#[derive(Debug, Clone)]
pub struct Holdout {
    /// `(row, col)` positions of hidden cells.
    pub positions: Vec<(usize, usize)>,
    /// True values at those positions, same order.
    pub truth: Vec<f64>,
}

impl Holdout {
    /// RMSE of an imputed matrix at the hidden positions.
    pub fn rmse(&self, imputed: &Matrix) -> f64 {
        assert!(!self.positions.is_empty(), "Holdout::rmse: empty holdout");
        let mut acc = 0.0;
        for (&(i, j), &t) in self.positions.iter().zip(&self.truth) {
            let d = (*imputed)[(i, j)] - t;
            acc += d * d;
        }
        (acc / self.positions.len() as f64).sqrt()
    }

    /// MAE of an imputed matrix at the hidden positions.
    pub fn mae(&self, imputed: &Matrix) -> f64 {
        assert!(!self.positions.is_empty(), "Holdout::mae: empty holdout");
        let mut acc = 0.0;
        for (&(i, j), &t) in self.positions.iter().zip(&self.truth) {
            acc += ((*imputed)[(i, j)] - t).abs();
        }
        acc / self.positions.len() as f64
    }

    /// Number of hidden cells.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the holdout is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// Hides `frac` of the observed cells of `ds` (marking them missing) and
/// returns the reduced dataset plus the ground truth of the hidden cells.
///
/// Thin panicking wrapper over [`try_make_holdout`]; an empty holdout is
/// rejected *here*, at construction time, rather than surfacing much later
/// as an assertion inside [`Holdout::rmse`] / [`Holdout::mae`].
///
/// # Panics
/// Panics if `frac` is outside `[0, 1)` or if the holdout would be empty
/// (small datasets / small `frac` can round the hidden-cell count to 0).
pub fn make_holdout(ds: &Dataset, frac: f64, rng: &mut Rng64) -> (Dataset, Holdout) {
    try_make_holdout(ds, frac, rng).unwrap_or_else(|e| panic!("make_holdout: {}", e))
}

/// Fallible [`make_holdout`]: returns [`MetricsError::EmptyHoldout`] when
/// `frac` rounds the hidden-cell count to 0 and
/// [`MetricsError::BadFraction`] when `frac` is outside `[0, 1)`.
pub fn try_make_holdout(
    ds: &Dataset,
    frac: f64,
    rng: &mut Rng64,
) -> Result<(Dataset, Holdout), MetricsError> {
    if !(0.0..1.0).contains(&frac) {
        return Err(MetricsError::BadFraction(frac));
    }
    let observed: Vec<(usize, usize)> = ds.observed_cells().map(|(i, j, _)| (i, j)).collect();
    // clamp defensively: rounding can push k past observed.len() (frac just
    // below 1 on a large cell count), which would make sample_indices panic
    let k = (((observed.len() as f64) * frac).round() as usize).min(observed.len());
    if k == 0 {
        return Err(MetricsError::EmptyHoldout {
            observed: observed.len(),
            frac,
        });
    }
    let chosen = rng.sample_indices(observed.len(), k);
    let mut reduced = ds.clone();
    let mut positions = Vec::with_capacity(k);
    let mut truth = Vec::with_capacity(k);
    for &c in &chosen {
        let (i, j) = observed[c];
        positions.push((i, j));
        truth.push(ds.values[(i, j)]);
        reduced.values[(i, j)] = f64::NAN;
        reduced.mask.set(i, j, false);
    }
    Ok((reduced, Holdout { positions, truth }))
}

/// RMSE over all *originally missing* cells against a known complete ground
/// truth (available for synthetic data only).
pub fn rmse_vs_ground_truth(ds: &Dataset, ground_truth: &Matrix, imputed: &Matrix) -> f64 {
    assert_eq!(
        ground_truth.shape(),
        imputed.shape(),
        "rmse: shape mismatch"
    );
    let mut acc = 0.0;
    let mut n = 0usize;
    for i in 0..ds.n_samples() {
        for j in 0..ds.n_features() {
            if !ds.mask.get(i, j) {
                let d = (*imputed)[(i, j)] - (*ground_truth)[(i, j)];
                acc += d * d;
                n += 1;
            }
        }
    }
    if n == 0 {
        0.0
    } else {
        (acc / n as f64).sqrt()
    }
}

/// Area under the ROC curve via the rank statistic (ties get midranks).
/// `scores` are real-valued; `labels` are 0/1.
///
/// Thin panicking wrapper over [`try_auc`]. Scores are pre-validated, so a
/// NaN surfaces as a clear "non-finite score at index i" message instead of
/// a panic deep inside a sort comparator.
///
/// # Panics
/// Panics on length mismatch, a single-class label vector, or a non-finite
/// score.
pub fn auc(scores: &[f64], labels: &[u8]) -> f64 {
    try_auc(scores, labels).unwrap_or_else(|e| panic!("auc: {}", e))
}

/// Fallible [`auc`]: returns [`MetricsError::NonFiniteScore`] for NaN or
/// infinite scores and [`MetricsError::SingleClass`] when `labels` lacks a
/// positive or a negative example.
pub fn try_auc(scores: &[f64], labels: &[u8]) -> Result<f64, MetricsError> {
    assert_eq!(scores.len(), labels.len(), "auc: length mismatch");
    // validate up front: a NaN must not reach the sort comparator below
    for (index, &value) in scores.iter().enumerate() {
        if !value.is_finite() {
            return Err(MetricsError::NonFiniteScore { index, value });
        }
    }
    let n_pos = labels.iter().filter(|&&l| l == 1).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return Err(MetricsError::SingleClass);
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    // total order is safe: every score was validated finite above
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    // midranks
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let mid = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = mid;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = ranks
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l == 1)
        .map(|(&r, _)| r)
        .sum();
    Ok((rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut rng = Rng64::seed_from_u64(1);
        let v = Matrix::from_fn(50, 4, |_, _| rng.uniform());
        let mut ds = Dataset::from_values(v);
        // knock out some cells
        for i in (0..50).step_by(5) {
            ds.values[(i, 2)] = f64::NAN;
            ds.mask.set(i, 2, false);
        }
        ds
    }

    #[test]
    fn holdout_hides_requested_fraction() {
        let ds = toy();
        let observed_before = ds.mask.count_observed();
        let mut rng = Rng64::seed_from_u64(2);
        let (reduced, holdout) = make_holdout(&ds, 0.2, &mut rng);
        let expect = (observed_before as f64 * 0.2).round() as usize;
        assert_eq!(holdout.len(), expect);
        assert_eq!(reduced.mask.count_observed(), observed_before - expect);
        // hidden cells are NaN in the reduced set and remembered exactly
        for (&(i, j), &t) in holdout.positions.iter().zip(&holdout.truth) {
            assert!(reduced.values[(i, j)].is_nan());
            assert_eq!(ds.values[(i, j)], t);
        }
    }

    #[test]
    fn holdout_k_never_exceeds_observed_count() {
        // regression for the unclamped `(observed * frac).round() as usize`:
        // frac just below 1 rounds k up to observed.len(); the holdout must
        // take every observed cell rather than panic in sample_indices
        let ds = toy();
        let observed = ds.mask.count_observed();
        let frac = 1.0 - f64::EPSILON; // in [0,1), rounds to observed.len()
        let mut rng = Rng64::seed_from_u64(9);
        let (reduced, holdout) = try_make_holdout(&ds, frac, &mut rng).unwrap();
        assert_eq!(holdout.len(), observed);
        assert_eq!(reduced.mask.count_observed(), 0);
    }

    #[test]
    fn holdout_rejects_out_of_range_fractions() {
        let ds = toy();
        for bad in [-0.1, 1.0, 1.5, f64::NAN] {
            let mut rng = Rng64::seed_from_u64(9);
            assert!(matches!(
                try_make_holdout(&ds, bad, &mut rng),
                Err(MetricsError::BadFraction(_))
            ));
        }
    }

    #[test]
    fn rmse_zero_for_perfect_imputation() {
        let ds = toy();
        let mut rng = Rng64::seed_from_u64(3);
        let (_, holdout) = make_holdout(&ds, 0.25, &mut rng);
        // impute with the truth itself
        let mut imputed = ds.values.clone();
        imputed.map_inplace(|v| if v.is_nan() { 0.0 } else { v });
        assert_eq!(holdout.rmse(&imputed), 0.0);
        assert_eq!(holdout.mae(&imputed), 0.0);
    }

    #[test]
    fn rmse_of_constant_error() {
        let ds = toy();
        let mut rng = Rng64::seed_from_u64(4);
        let (_, holdout) = make_holdout(&ds, 0.25, &mut rng);
        let mut imputed = ds.values.clone();
        imputed.map_inplace(|v| if v.is_nan() { 0.0 } else { v });
        let shifted = imputed.map(|v| v + 0.5);
        assert!((holdout.rmse(&shifted) - 0.5).abs() < 1e-12);
        assert!((holdout.mae(&shifted) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ground_truth_rmse_counts_missing_cells_only() {
        let v = Matrix::from_rows(&[&[1.0, f64::NAN], &[f64::NAN, 4.0]]);
        let ds = Dataset::from_values(v);
        let gt = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let imputed = Matrix::from_rows(&[&[1.0, 3.0], &[3.0, 4.0]]); // off by 1 at (0,1)
        let r = rmse_vs_ground_truth(&ds, &gt, &imputed);
        assert!((r - (0.5f64).sqrt()).abs() < 1e-12, "rmse {}", r);
    }

    #[test]
    fn auc_perfect_and_random() {
        let labels = [0u8, 0, 1, 1];
        assert_eq!(auc(&[0.1, 0.2, 0.8, 0.9], &labels), 1.0);
        assert_eq!(auc(&[0.9, 0.8, 0.2, 0.1], &labels), 0.0);
        // all scores tied → 0.5 via midranks
        assert_eq!(auc(&[0.5, 0.5, 0.5, 0.5], &labels), 0.5);
    }

    #[test]
    fn auc_handles_partial_overlap() {
        let scores = [0.1, 0.4, 0.35, 0.8];
        let labels = [0u8, 0, 1, 1];
        // pairs: (0.35 vs 0.1 ✓), (0.35 vs 0.4 ✗), (0.8 vs both ✓✓) → 3/4
        assert!((auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "need both classes")]
    fn auc_rejects_single_class() {
        let _ = auc(&[0.1, 0.2], &[1, 1]);
    }

    #[test]
    fn try_auc_surfaces_nan_scores_as_error() {
        let labels = [0u8, 0, 1, 1];
        let err = try_auc(&[0.1, f64::NAN, 0.8, 0.9], &labels).unwrap_err();
        match err {
            MetricsError::NonFiniteScore { index, value } => {
                assert_eq!(index, 1);
                assert!(value.is_nan());
            }
            other => panic!("wrong error: {:?}", other),
        }
        assert!(try_auc(&[0.1, f64::INFINITY, 0.8, 0.9], &labels).is_err());
        // valid input still agrees with the panicking wrapper
        let scores = [0.1, 0.4, 0.35, 0.8];
        assert_eq!(try_auc(&scores, &labels).unwrap(), auc(&scores, &labels));
    }

    #[test]
    #[should_panic(expected = "non-finite score")]
    fn auc_panics_with_clear_message_on_nan() {
        let _ = auc(&[0.1, f64::NAN], &[0, 1]);
    }

    #[test]
    fn try_make_holdout_rejects_empty_holdout() {
        let ds = toy();
        let mut rng = Rng64::seed_from_u64(6);
        // frac small enough that k rounds to 0
        let err = try_make_holdout(&ds, 0.001, &mut rng).unwrap_err();
        match err {
            MetricsError::EmptyHoldout { observed, .. } => assert!(observed > 0),
            other => panic!("wrong error: {:?}", other),
        }
        assert_eq!(
            try_make_holdout(&ds, 1.5, &mut rng).unwrap_err(),
            MetricsError::BadFraction(1.5)
        );
        // a viable fraction still succeeds
        assert!(try_make_holdout(&ds, 0.2, &mut rng).is_ok());
    }

    #[test]
    #[should_panic(expected = "holdout is empty")]
    fn make_holdout_panics_at_construction_not_in_rmse() {
        let ds = toy();
        let mut rng = Rng64::seed_from_u64(7);
        let _ = make_holdout(&ds, 0.0, &mut rng);
    }
}
