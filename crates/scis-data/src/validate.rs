//! Input validation for incomplete datasets.
//!
//! The fault-tolerant pipeline ([`Scis::try_run`] in `scis-core`) refuses to
//! train on data that would poison the Sinkhorn solves: an observed cell
//! holding NaN or ±Inf enters the masked cost matrix directly and turns the
//! whole plan non-finite. Degenerate-but-harmless structure (all-missing or
//! constant columns) is *reported*, not rejected — the mean imputer and the
//! min–max scaler both have documented fallbacks for it.
//!
//! [`Scis::try_run`]: https://docs.rs/scis-core

use crate::dataset::Dataset;
use std::fmt;

/// A dataset defect that makes adversarial training unsafe.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// An *observed* cell (mask = 1) holds a NaN or infinite value.
    NonFiniteObserved {
        /// Row of the offending cell.
        row: usize,
        /// Column of the offending cell.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// The dataset has no rows or no columns.
    Empty,
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::NonFiniteObserved { row, col, value } => write!(
                f,
                "observed cell ({row}, {col}) holds non-finite value {value}"
            ),
            DataError::Empty => write!(f, "dataset has no rows or no columns"),
        }
    }
}

impl std::error::Error for DataError {}

/// Structural findings from [`Dataset::validate`]: degenerate columns that
/// are safe to train on but worth surfacing in the run's anomaly record.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataReport {
    /// Columns with zero observed cells (the imputer can only guess a
    /// constant for them; [`crate::normalize::MinMaxScaler`] maps them
    /// through the identity).
    pub all_missing_columns: Vec<usize>,
    /// Columns whose observed cells all hold one value (zero range; the
    /// scaler falls back to span 1 so they round-trip losslessly).
    pub constant_columns: Vec<usize>,
}

impl DataReport {
    /// True when no degenerate structure was found.
    pub fn is_clean(&self) -> bool {
        self.all_missing_columns.is_empty() && self.constant_columns.is_empty()
    }
}

impl Dataset {
    /// Checks the dataset for defects that would poison training.
    ///
    /// Returns `Err` on the first observed cell holding a non-finite value
    /// (missing cells are NaN *by design* and are skipped), and otherwise a
    /// [`DataReport`] flagging all-missing and constant columns.
    pub fn validate(&self) -> Result<DataReport, DataError> {
        if self.n_samples() == 0 || self.n_features() == 0 {
            return Err(DataError::Empty);
        }
        let mut report = DataReport::default();
        for j in 0..self.n_features() {
            let mut first: Option<f64> = None;
            let mut constant = true;
            for i in 0..self.n_samples() {
                if !self.mask.get(i, j) {
                    continue;
                }
                let v = self.values[(i, j)];
                if !v.is_finite() {
                    return Err(DataError::NonFiniteObserved {
                        row: i,
                        col: j,
                        value: v,
                    });
                }
                match first {
                    None => first = Some(v),
                    Some(f0) if f0 != v => constant = false,
                    Some(_) => {}
                }
            }
            match first {
                None => report.all_missing_columns.push(j),
                Some(_) if constant => report.constant_columns.push(j),
                Some(_) => {}
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scis_tensor::Matrix;

    #[test]
    fn clean_dataset_reports_clean() {
        let ds = Dataset::from_values(Matrix::from_rows(&[
            &[1.0, f64::NAN],
            &[2.0, 4.0],
            &[3.0, 5.0],
        ]));
        let report = ds.validate().unwrap();
        assert!(report.is_clean());
    }

    #[test]
    fn observed_nan_is_rejected() {
        // a NaN value whose mask bit claims "observed" — inconsistent input
        let complete = Matrix::from_rows(&[&[1.0, f64::NAN], &[2.0, 3.0]]);
        let mask = crate::mask::MaskMatrix::all_observed(2, 2);
        let ds = Dataset {
            values: complete,
            mask,
            kinds: vec![crate::ColumnKind::Continuous; 2],
        };
        match ds.validate() {
            Err(DataError::NonFiniteObserved { row: 0, col: 1, .. }) => {}
            other => panic!("expected NonFiniteObserved, got {other:?}"),
        }
    }

    #[test]
    fn observed_infinity_is_rejected() {
        let ds = Dataset::from_values(Matrix::from_rows(&[&[1.0], &[f64::INFINITY]]));
        assert!(matches!(
            ds.validate(),
            Err(DataError::NonFiniteObserved { row: 1, col: 0, .. })
        ));
    }

    #[test]
    fn degenerate_columns_are_flagged_not_rejected() {
        let ds = Dataset::from_values(Matrix::from_rows(&[
            &[1.0, f64::NAN, 7.0],
            &[2.0, f64::NAN, 7.0],
            &[3.0, f64::NAN, 7.0],
        ]));
        let report = ds.validate().unwrap();
        assert_eq!(report.all_missing_columns, vec![1]);
        assert_eq!(report.constant_columns, vec![2]);
        assert!(!report.is_clean());
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let ds = Dataset::from_values(Matrix::zeros(0, 3));
        assert_eq!(ds.validate(), Err(DataError::Empty));
    }

    #[test]
    fn error_messages_name_the_cell() {
        let e = DataError::NonFiniteObserved {
            row: 3,
            col: 1,
            value: f64::INFINITY,
        };
        assert_eq!(
            e.to_string(),
            "observed cell (3, 1) holds non-finite value inf"
        );
    }
}
