//! Input validation for incomplete datasets.
//!
//! The fault-tolerant pipeline ([`Scis::try_run`] in `scis-core`) refuses to
//! train on data that would poison the Sinkhorn solves: an observed cell
//! holding NaN or ±Inf enters the masked cost matrix directly and turns the
//! whole plan non-finite. Degenerate-but-harmless structure (all-missing or
//! constant columns) is *reported*, not rejected — the mean imputer and the
//! min–max scaler both have documented fallbacks for it.
//!
//! [`Scis::try_run`]: https://docs.rs/scis-core

use crate::dataset::{ColumnKind, Dataset};
use crate::shard::{RowSource, ShardError};
use std::fmt;

/// A dataset defect that makes adversarial training unsafe.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// An *observed* cell (mask = 1) holds a NaN or infinite value.
    NonFiniteObserved {
        /// Row of the offending cell.
        row: usize,
        /// Column of the offending cell.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// The dataset has no rows or no columns.
    Empty,
    /// A column *declared* categorical has no observed cells, so its level
    /// structure cannot be established (level inference on it used to
    /// panic). All-missing *continuous* columns stay report-only.
    AllMissingCategorical {
        /// The offending column.
        col: usize,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::NonFiniteObserved { row, col, value } => write!(
                f,
                "observed cell ({row}, {col}) holds non-finite value {value}"
            ),
            DataError::Empty => write!(f, "dataset has no rows or no columns"),
            DataError::AllMissingCategorical { col } => write!(
                f,
                "categorical column {col} has no observed cells; its levels cannot be established"
            ),
        }
    }
}

impl std::error::Error for DataError {}

/// Structural findings from [`Dataset::validate`]: degenerate columns that
/// are safe to train on but worth surfacing in the run's anomaly record.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataReport {
    /// Columns with zero observed cells (the imputer can only guess a
    /// constant for them; [`crate::normalize::MinMaxScaler`] maps them
    /// through the identity).
    pub all_missing_columns: Vec<usize>,
    /// Columns whose observed cells all hold one value (zero range; the
    /// scaler falls back to span 1 so they round-trip losslessly).
    pub constant_columns: Vec<usize>,
}

impl DataReport {
    /// True when no degenerate structure was found.
    pub fn is_clean(&self) -> bool {
        self.all_missing_columns.is_empty() && self.constant_columns.is_empty()
    }
}

impl Dataset {
    /// Checks the dataset for defects that would poison training.
    ///
    /// Returns `Err` on the first observed cell holding a non-finite value
    /// (missing cells are NaN *by design* and are skipped), and otherwise a
    /// [`DataReport`] flagging all-missing and constant columns.
    pub fn validate(&self) -> Result<DataReport, DataError> {
        if self.n_samples() == 0 || self.n_features() == 0 {
            return Err(DataError::Empty);
        }
        let mut report = DataReport::default();
        for j in 0..self.n_features() {
            let mut first: Option<f64> = None;
            let mut constant = true;
            for i in 0..self.n_samples() {
                if !self.mask.get(i, j) {
                    continue;
                }
                let v = self.values[(i, j)];
                if !v.is_finite() {
                    return Err(DataError::NonFiniteObserved {
                        row: i,
                        col: j,
                        value: v,
                    });
                }
                match first {
                    None => first = Some(v),
                    Some(f0) if f0 != v => constant = false,
                    Some(_) => {}
                }
            }
            match first {
                None => {
                    if matches!(self.kinds[j], ColumnKind::Categorical { .. }) {
                        return Err(DataError::AllMissingCategorical { col: j });
                    }
                    report.all_missing_columns.push(j);
                }
                Some(_) if constant => report.constant_columns.push(j),
                Some(_) => {}
            }
        }
        Ok(report)
    }
}

/// Streaming [`Dataset::validate`] over a sharded source: one pass in shard
/// order, holding only per-column fold state.
///
/// For valid data the resulting [`DataReport`] is identical to validating
/// the materialized dataset — each column's first/constant state depends
/// only on that column's observed values in row order, which shards
/// preserve. On *invalid* data the reported defect cell can differ: the
/// in-memory scan walks column-major and stops at its first bad cell, the
/// streamed scan walks row-major; both return the same error type.
pub fn validate_source(src: &dyn RowSource) -> Result<DataReport, ShardError> {
    if src.n_rows() == 0 || src.n_cols() == 0 {
        return Err(ShardError::Data(DataError::Empty));
    }
    let d = src.n_cols();
    let mut first: Vec<Option<f64>> = vec![None; d];
    let mut constant = vec![true; d];
    for k in 0..src.n_shards() {
        let shard = src.load_shard(k)?;
        let (start, _) = src.shard_span(k);
        for i in 0..shard.n_samples() {
            for (j, &v) in shard.values.row(i).iter().enumerate() {
                if !shard.mask.get(i, j) {
                    continue;
                }
                if !v.is_finite() {
                    return Err(ShardError::Data(DataError::NonFiniteObserved {
                        row: start + i,
                        col: j,
                        value: v,
                    }));
                }
                match first[j] {
                    None => first[j] = Some(v),
                    Some(f0) if f0 != v => constant[j] = false,
                    Some(_) => {}
                }
            }
        }
    }
    let mut report = DataReport::default();
    for j in 0..d {
        match first[j] {
            None => {
                if matches!(src.kinds()[j], ColumnKind::Categorical { .. }) {
                    return Err(ShardError::Data(DataError::AllMissingCategorical {
                        col: j,
                    }));
                }
                report.all_missing_columns.push(j);
            }
            Some(_) if constant[j] => report.constant_columns.push(j),
            Some(_) => {}
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scis_tensor::Matrix;

    #[test]
    fn clean_dataset_reports_clean() {
        let ds = Dataset::from_values(Matrix::from_rows(&[
            &[1.0, f64::NAN],
            &[2.0, 4.0],
            &[3.0, 5.0],
        ]));
        let report = ds.validate().unwrap();
        assert!(report.is_clean());
    }

    #[test]
    fn observed_nan_is_rejected() {
        // a NaN value whose mask bit claims "observed" — inconsistent input
        let complete = Matrix::from_rows(&[&[1.0, f64::NAN], &[2.0, 3.0]]);
        let mask = crate::mask::MaskMatrix::all_observed(2, 2);
        let ds = Dataset {
            values: complete,
            mask,
            kinds: vec![crate::ColumnKind::Continuous; 2],
        };
        match ds.validate() {
            Err(DataError::NonFiniteObserved { row: 0, col: 1, .. }) => {}
            other => panic!("expected NonFiniteObserved, got {other:?}"),
        }
    }

    #[test]
    fn observed_infinity_is_rejected() {
        let ds = Dataset::from_values(Matrix::from_rows(&[&[1.0], &[f64::INFINITY]]));
        assert!(matches!(
            ds.validate(),
            Err(DataError::NonFiniteObserved { row: 1, col: 0, .. })
        ));
    }

    #[test]
    fn degenerate_columns_are_flagged_not_rejected() {
        let ds = Dataset::from_values(Matrix::from_rows(&[
            &[1.0, f64::NAN, 7.0],
            &[2.0, f64::NAN, 7.0],
            &[3.0, f64::NAN, 7.0],
        ]));
        let report = ds.validate().unwrap();
        assert_eq!(report.all_missing_columns, vec![1]);
        assert_eq!(report.constant_columns, vec![2]);
        assert!(!report.is_clean());
    }

    #[test]
    fn all_missing_categorical_column_is_a_typed_error() {
        // regression for the categorical-level-inference panic path: a
        // column declared categorical with zero observed cells must surface
        // as a typed validate error, not a downstream panic
        let mut ds = Dataset::from_values(Matrix::from_rows(&[&[1.0, f64::NAN], &[2.0, f64::NAN]]));
        ds.kinds[1] = crate::ColumnKind::Categorical { levels: 3 };
        assert_eq!(
            ds.validate(),
            Err(DataError::AllMissingCategorical { col: 1 })
        );
        // the streamed fold agrees
        let chunked = crate::shard::ChunkedDataset::new(&ds, 1);
        assert!(matches!(
            validate_source(&chunked),
            Err(ShardError::Data(DataError::AllMissingCategorical {
                col: 1
            }))
        ));
    }

    #[test]
    fn validate_source_matches_in_memory_report() {
        let ds = Dataset::from_values(Matrix::from_rows(&[
            &[1.0, f64::NAN, 7.0, 0.3],
            &[2.0, f64::NAN, 7.0, f64::NAN],
            &[3.0, f64::NAN, 7.0, 0.9],
        ]));
        let in_memory = ds.validate().unwrap();
        let chunked = crate::shard::ChunkedDataset::new(&ds, 2);
        assert_eq!(validate_source(&chunked).unwrap(), in_memory);
        assert_eq!(in_memory.all_missing_columns, vec![1]);
        assert_eq!(in_memory.constant_columns, vec![2]);
    }

    #[test]
    fn validate_source_rejects_observed_non_finite() {
        let complete = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, f64::INFINITY]]);
        let mask = crate::mask::MaskMatrix::all_observed(2, 2);
        let ds = Dataset {
            values: complete,
            mask,
            kinds: vec![crate::ColumnKind::Continuous; 2],
        };
        let chunked = crate::shard::ChunkedDataset::new(&ds, 1);
        assert!(matches!(
            validate_source(&chunked),
            Err(ShardError::Data(DataError::NonFiniteObserved {
                row: 1,
                col: 1,
                ..
            }))
        ));
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let ds = Dataset::from_values(Matrix::zeros(0, 3));
        assert_eq!(ds.validate(), Err(DataError::Empty));
    }

    #[test]
    fn error_messages_name_the_cell() {
        let e = DataError::NonFiniteObserved {
            row: 3,
            col: 1,
            value: f64::INFINITY,
        };
        assert_eq!(
            e.to_string(),
            "observed cell (3, 1) holds non-finite value inf"
        );
    }
}
