//! Missingness mechanisms.
//!
//! The paper's experiments assume MCAR (its Example 1 and SSE analysis are
//! stated under MCAR), but its conclusion names MAR/MNAR as future work —
//! we implement all three so the benches can probe robustness beyond the
//! paper's setting.

use crate::dataset::{ColumnKind, Dataset};
use crate::mask::MaskMatrix;
use scis_tensor::{Matrix, Rng64};

/// How cells are removed from a complete matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Mechanism {
    /// Missing Completely At Random: each cell dropped independently with
    /// probability `rate`.
    Mcar {
        /// Per-cell drop probability.
        rate: f64,
    },
    /// Missing At Random: the drop probability of a cell depends on the
    /// value of the row's *first* feature (which always stays observed):
    /// rows whose driver is above its column median get `2·rate`, others
    /// approach `0` such that the overall rate is ≈ `rate`.
    Mar {
        /// Target overall drop rate.
        rate: f64,
    },
    /// Missing Not At Random: the drop probability of a cell depends on the
    /// cell's *own* value — values above the column median are dropped with
    /// `2·rate`, values below with ~0, overall ≈ `rate`.
    Mnar {
        /// Target overall drop rate.
        rate: f64,
    },
}

impl Mechanism {
    fn rate(&self) -> f64 {
        match *self {
            Mechanism::Mcar { rate } | Mechanism::Mar { rate } | Mechanism::Mnar { rate } => rate,
        }
    }
}

fn col_medians(complete: &Matrix) -> Vec<f64> {
    (0..complete.cols())
        .map(|j| scis_tensor::stats::nan_median(&complete.col(j)).unwrap_or(0.0))
        .collect()
}

/// Drops cells from a complete matrix according to `mechanism`, producing an
/// incomplete [`Dataset`] whose ground truth is the input.
///
/// # Panics
/// Panics if the rate is outside `[0, 1)`.
pub fn inject(
    complete: &Matrix,
    kinds: Vec<ColumnKind>,
    mechanism: Mechanism,
    rng: &mut Rng64,
) -> Dataset {
    let rate = mechanism.rate();
    assert!((0.0..1.0).contains(&rate), "inject: rate must be in [0,1)");
    let (n, d) = complete.shape();
    let mut mask = MaskMatrix::all_observed(n, d);
    match mechanism {
        Mechanism::Mcar { rate } => {
            for i in 0..n {
                for j in 0..d {
                    if rng.bernoulli(rate) {
                        mask.set(i, j, false);
                    }
                }
            }
        }
        Mechanism::Mar { rate } => {
            let medians = col_medians(complete);
            for i in 0..n {
                let driver_high = complete[(i, 0)] > medians[0];
                let p = if driver_high {
                    (2.0 * rate).min(0.95)
                } else {
                    0.0
                };
                for j in 1..d {
                    if rng.bernoulli(p) {
                        mask.set(i, j, false);
                    }
                }
            }
        }
        Mechanism::Mnar { rate } => {
            let medians = col_medians(complete);
            for i in 0..n {
                for j in 0..d {
                    let p = if complete[(i, j)] > medians[j] {
                        (2.0 * rate).min(0.95)
                    } else {
                        0.0
                    };
                    if rng.bernoulli(p) {
                        mask.set(i, j, false);
                    }
                }
            }
        }
    }
    Dataset::from_complete(complete, mask, kinds)
}

/// MCAR convenience wrapper with all-continuous columns.
pub fn inject_mcar(complete: &Matrix, rate: f64, rng: &mut Rng64) -> Dataset {
    inject(
        complete,
        vec![ColumnKind::Continuous; complete.cols()],
        Mechanism::Mcar { rate },
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Rng64::seed_from_u64(seed);
        Matrix::from_fn(n, d, |_, _| rng.uniform())
    }

    #[test]
    fn mcar_hits_target_rate() {
        let c = complete(2000, 5, 1);
        let mut rng = Rng64::seed_from_u64(2);
        let ds = inject_mcar(&c, 0.3, &mut rng);
        assert!(
            (ds.missing_rate() - 0.3).abs() < 0.02,
            "rate {}",
            ds.missing_rate()
        );
    }

    #[test]
    fn mcar_zero_rate_keeps_everything() {
        let c = complete(50, 3, 3);
        let mut rng = Rng64::seed_from_u64(4);
        let ds = inject_mcar(&c, 0.0, &mut rng);
        assert_eq!(ds.missing_rate(), 0.0);
    }

    #[test]
    fn mar_driver_column_stays_observed() {
        let c = complete(500, 4, 5);
        let mut rng = Rng64::seed_from_u64(6);
        let ds = inject(
            &c,
            vec![ColumnKind::Continuous; 4],
            Mechanism::Mar { rate: 0.4 },
            &mut rng,
        );
        assert_eq!(ds.mask.col_observed_count(0), 500);
        assert!(ds.missing_rate() > 0.1);
    }

    #[test]
    fn mar_missingness_depends_on_driver() {
        let c = complete(2000, 3, 7);
        let mut rng = Rng64::seed_from_u64(8);
        let ds = inject(
            &c,
            vec![ColumnKind::Continuous; 3],
            Mechanism::Mar { rate: 0.3 },
            &mut rng,
        );
        let median = scis_tensor::stats::nan_median(&c.col(0)).unwrap();
        let (mut miss_high, mut n_high, mut miss_low, mut n_low) = (0, 0, 0, 0);
        for i in 0..2000 {
            let high = c[(i, 0)] > median;
            for j in 1..3 {
                if high {
                    n_high += 1;
                    if !ds.mask.get(i, j) {
                        miss_high += 1;
                    }
                } else {
                    n_low += 1;
                    if !ds.mask.get(i, j) {
                        miss_low += 1;
                    }
                }
            }
        }
        let rate_high = miss_high as f64 / n_high as f64;
        let rate_low = miss_low as f64 / n_low as f64;
        assert!(rate_high > 0.5, "high-driver rate {}", rate_high);
        assert_eq!(rate_low, 0.0, "low-driver rate {}", rate_low);
    }

    #[test]
    fn mnar_drops_high_values_preferentially() {
        let c = complete(2000, 2, 9);
        let mut rng = Rng64::seed_from_u64(10);
        let ds = inject(
            &c,
            vec![ColumnKind::Continuous; 2],
            Mechanism::Mnar { rate: 0.3 },
            &mut rng,
        );
        // every dropped cell had a value above its column median
        let medians = super::col_medians(&c);
        for i in 0..2000 {
            for j in 0..2 {
                if !ds.mask.get(i, j) {
                    assert!(c[(i, j)] > medians[j]);
                }
            }
        }
        assert!((ds.missing_rate() - 0.3).abs() < 0.03);
    }

    #[test]
    fn injection_is_deterministic_under_seed() {
        let c = complete(100, 4, 11);
        let mut r1 = Rng64::seed_from_u64(42);
        let mut r2 = Rng64::seed_from_u64(42);
        let d1 = inject_mcar(&c, 0.25, &mut r1);
        let d2 = inject_mcar(&c, 0.25, &mut r2);
        assert_eq!(d1.mask, d2.mask);
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn rejects_invalid_rate() {
        let c = complete(5, 2, 12);
        let mut rng = Rng64::seed_from_u64(13);
        let _ = inject_mcar(&c, 1.5, &mut rng);
    }
}
