//! Minimal CSV I/O for numeric incomplete tables.
//!
//! Format: one header row (`c0,c1,…` on write; any header accepted on
//! read), numeric cells, *empty* cells mean missing. This is enough to
//! round-trip every dataset in the reproduction and to export imputed
//! matrices for external analysis.

use crate::dataset::Dataset;
use scis_tensor::Matrix;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data row had a different number of fields than the header.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        got: usize,
        /// Fields expected.
        expected: usize,
    },
    /// A non-empty cell failed to parse as a float.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// 0-based column.
        col: usize,
        /// Offending text.
        text: String,
    },
    /// The file had no data rows.
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {}", e),
            CsvError::RaggedRow {
                line,
                got,
                expected,
            } => {
                write!(f, "line {}: {} fields, expected {}", line, got, expected)
            }
            CsvError::BadNumber { line, col, text } => {
                write!(f, "line {}, col {}: cannot parse {:?}", line, col, text)
            }
            CsvError::Empty => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes a dataset as CSV: missing cells become empty fields.
pub fn write_dataset(path: &Path, ds: &Dataset) -> Result<(), CsvError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    let d = ds.n_features();
    for j in 0..d {
        if j > 0 {
            write!(w, ",")?;
        }
        write!(w, "c{}", j)?;
    }
    writeln!(w)?;
    for i in 0..ds.n_samples() {
        for j in 0..d {
            if j > 0 {
                write!(w, ",")?;
            }
            let v = ds.values[(i, j)];
            if !v.is_nan() {
                write!(w, "{}", v)?;
            }
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Streaming row reader over a CSV file with a header line: yields one
/// parsed row at a time (empty cells → NaN), so large inputs can be spilled
/// out of core without ever materializing the full `N × d` matrix.
///
/// [`read_dataset`] is built on this reader; the parsing rules (trimmed
/// cells, empty → missing, ragged/bad-number errors with 1-based line
/// numbers) are identical by construction.
pub struct CsvRows {
    lines: std::io::Lines<BufReader<std::fs::File>>,
    n_cols: usize,
    /// 1-based file line of the most recently read line (header = 1).
    lineno: usize,
}

impl CsvRows {
    /// Opens `path` and consumes the header line.
    pub fn open(path: &Path) -> Result<Self, CsvError> {
        let reader = BufReader::new(std::fs::File::open(path)?);
        let mut lines = reader.lines();
        let header = match lines.next() {
            Some(h) => h?,
            None => return Err(CsvError::Empty),
        };
        Ok(Self {
            lines,
            n_cols: header.split(',').count(),
            lineno: 1,
        })
    }

    /// Number of columns declared by the header.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }
}

impl Iterator for CsvRows {
    type Item = Result<Vec<f64>, CsvError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.lines.next()? {
                Ok(l) => l,
                Err(e) => return Some(Err(e.into())),
            };
            self.lineno += 1;
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != self.n_cols {
                return Some(Err(CsvError::RaggedRow {
                    line: self.lineno,
                    got: fields.len(),
                    expected: self.n_cols,
                }));
            }
            let mut row = Vec::with_capacity(self.n_cols);
            for (col, f) in fields.iter().enumerate() {
                let t = f.trim();
                if t.is_empty() {
                    row.push(f64::NAN);
                } else {
                    match t.parse::<f64>() {
                        Ok(v) => row.push(v),
                        Err(_) => {
                            return Some(Err(CsvError::BadNumber {
                                line: self.lineno,
                                col,
                                text: t.to_string(),
                            }))
                        }
                    }
                }
            }
            return Some(Ok(row));
        }
    }
}

/// Reads a CSV with a header row into a [`Dataset`]; empty cells → missing.
pub fn read_dataset(path: &Path) -> Result<Dataset, CsvError> {
    let mut reader = CsvRows::open(path)?;
    let d = reader.n_cols();
    let mut data: Vec<f64> = Vec::new();
    let mut rows = 0usize;
    for row in &mut reader {
        data.extend(row?);
        rows += 1;
    }
    if rows == 0 {
        return Err(CsvError::Empty);
    }
    Ok(Dataset::from_values(Matrix::from_vec(rows, d, data)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("scis_csv_test_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn roundtrip_preserves_values_and_missingness() {
        let v = Matrix::from_rows(&[&[1.5, f64::NAN, 3.0], &[f64::NAN, -2.25, 0.0]]);
        let ds = Dataset::from_values(v);
        let path = tmp("roundtrip.csv");
        write_dataset(&path, &ds).unwrap();
        let back = read_dataset(&path).unwrap();
        assert_eq!(back.n_samples(), 2);
        assert_eq!(back.n_features(), 3);
        assert_eq!(back.values[(0, 0)], 1.5);
        assert!(back.values[(0, 1)].is_nan());
        assert_eq!(back.values[(1, 1)], -2.25);
        assert_eq!(back.mask, ds.mask);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ragged_row_is_an_error() {
        let path = tmp("ragged.csv");
        std::fs::write(&path, "a,b\n1,2\n3\n").unwrap();
        match read_dataset(&path) {
            Err(CsvError::RaggedRow {
                line: 3,
                got: 1,
                expected: 2,
            }) => {}
            other => panic!("unexpected {:?}", other.map(|_| ())),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_number_is_an_error() {
        let path = tmp("badnum.csv");
        std::fs::write(&path, "a\nxyz\n").unwrap();
        assert!(matches!(
            read_dataset(&path),
            Err(CsvError::BadNumber { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_rows_streams_the_same_values_as_read_dataset() {
        let path = tmp("stream.csv");
        std::fs::write(&path, "a,b,c\n1,,3\n\n4,5,\n").unwrap();
        let ds = read_dataset(&path).unwrap();
        let mut reader = CsvRows::open(&path).unwrap();
        assert_eq!(reader.n_cols(), 3);
        let mut i = 0;
        for row in &mut reader {
            let row = row.unwrap();
            for (j, v) in row.iter().enumerate() {
                assert_eq!(v.to_bits(), ds.values[(i, j)].to_bits());
            }
            i += 1;
        }
        assert_eq!(i, ds.n_samples());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_rows_reports_errors_with_line_numbers() {
        let path = tmp("stream_err.csv");
        std::fs::write(&path, "a,b\n1,2\n3\n").unwrap();
        let rows: Vec<_> = CsvRows::open(&path).unwrap().collect();
        assert!(rows[0].is_ok());
        assert!(matches!(
            rows[1],
            Err(CsvError::RaggedRow {
                line: 3,
                got: 1,
                expected: 2
            })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_an_error() {
        let path = tmp("empty.csv");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(read_dataset(&path), Err(CsvError::Empty)));
        std::fs::write(&path, "a,b\n").unwrap();
        assert!(matches!(read_dataset(&path), Err(CsvError::Empty)));
        std::fs::remove_file(&path).ok();
    }
}
