//! Sampling steps of Algorithm 1 (line 1 and line 5).
//!
//! SCIS first draws a size-`Nv` validation set and a size-`n0` initial set
//! from disjoint rows of `X`; later, when SSE returns `n* > n0`, it draws a
//! size-`n*` training set from the full dataset.

use crate::dataset::Dataset;
use crate::shard::{RowSource, ShardError};
use scis_tensor::Rng64;

/// Result of the Algorithm 1 line-1 sampling.
#[derive(Debug, Clone)]
pub struct InitialSplit {
    /// The validation dataset `Xv` (size `Nv`).
    pub validation: Dataset,
    /// The initial training dataset `X0` (size `n0`), disjoint from `Xv`.
    pub initial: Dataset,
    /// Row indices of `Xv` in the source dataset.
    pub validation_indices: Vec<usize>,
    /// Row indices of `X0` in the source dataset.
    pub initial_indices: Vec<usize>,
}

/// Samples the validation and initial sets from disjoint rows.
///
/// # Panics
/// Panics if `n_v + n_0` exceeds the number of samples.
pub fn sample_initial_split(ds: &Dataset, n_v: usize, n_0: usize, rng: &mut Rng64) -> InitialSplit {
    let n = ds.n_samples();
    assert!(
        n_v + n_0 <= n,
        "sample_initial_split: Nv + n0 = {} exceeds N = {}",
        n_v + n_0,
        n
    );
    let mut idx = rng.sample_indices(n, n_v + n_0);
    let initial_indices = idx.split_off(n_v);
    let validation_indices = idx;
    InitialSplit {
        validation: ds.select_rows(&validation_indices),
        initial: ds.select_rows(&initial_indices),
        validation_indices,
        initial_indices,
    }
}

/// Samples a size-`n` training set `X*` from the full dataset (Algorithm 1
/// line 5). Distinct rows, uniformly at random.
pub fn sample_training_set(ds: &Dataset, n: usize, rng: &mut Rng64) -> Dataset {
    assert!(n <= ds.n_samples(), "sample_training_set: n exceeds N");
    let idx = rng.sample_indices(ds.n_samples(), n);
    ds.select_rows(&idx)
}

/// [`sample_initial_split`] over a sharded source. Draws the *same* index
/// sequence from `rng` as the in-memory version (one `sample_indices` call,
/// split at `n_v`), then gathers the rows shard by shard — so for the same
/// seed the split is identical whether the data is in memory or sharded.
///
/// # Panics
/// Panics if `n_v + n_0` exceeds the number of rows (same message as
/// [`sample_initial_split`]).
pub fn sample_initial_split_source(
    src: &dyn RowSource,
    n_v: usize,
    n_0: usize,
    rng: &mut Rng64,
) -> Result<InitialSplit, ShardError> {
    let n = src.n_rows();
    assert!(
        n_v + n_0 <= n,
        "sample_initial_split: Nv + n0 = {} exceeds N = {}",
        n_v + n_0,
        n
    );
    let mut idx = rng.sample_indices(n, n_v + n_0);
    let initial_indices = idx.split_off(n_v);
    let validation_indices = idx;
    Ok(InitialSplit {
        validation: src.gather_rows(&validation_indices)?,
        initial: src.gather_rows(&initial_indices)?,
        validation_indices,
        initial_indices,
    })
}

/// [`sample_training_set`] over a sharded source: same `rng` consumption,
/// rows gathered shard by shard.
///
/// # Panics
/// Panics if `n` exceeds the number of rows.
pub fn sample_training_set_source(
    src: &dyn RowSource,
    n: usize,
    rng: &mut Rng64,
) -> Result<Dataset, ShardError> {
    assert!(n <= src.n_rows(), "sample_training_set: n exceeds N");
    let idx = rng.sample_indices(src.n_rows(), n);
    src.gather_rows(&idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scis_tensor::Matrix;

    fn toy(n: usize) -> Dataset {
        Dataset::from_values(Matrix::from_fn(n, 3, |i, j| (i * 3 + j) as f64))
    }

    #[test]
    fn split_sizes_and_disjointness() {
        let ds = toy(100);
        let mut rng = Rng64::seed_from_u64(1);
        let split = sample_initial_split(&ds, 20, 30, &mut rng);
        assert_eq!(split.validation.n_samples(), 20);
        assert_eq!(split.initial.n_samples(), 30);
        let vset: std::collections::HashSet<_> = split.validation_indices.iter().collect();
        assert!(split.initial_indices.iter().all(|i| !vset.contains(i)));
    }

    #[test]
    fn split_rows_carry_correct_values() {
        let ds = toy(50);
        let mut rng = Rng64::seed_from_u64(2);
        let split = sample_initial_split(&ds, 5, 5, &mut rng);
        for (k, &i) in split.validation_indices.iter().enumerate() {
            assert_eq!(split.validation.values[(k, 0)], (i * 3) as f64);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds N")]
    fn split_rejects_oversubscription() {
        let ds = toy(10);
        let mut rng = Rng64::seed_from_u64(3);
        let _ = sample_initial_split(&ds, 6, 5, &mut rng);
    }

    #[test]
    fn source_split_matches_in_memory_split_for_same_seed() {
        let ds = toy(100);
        let chunked = crate::shard::ChunkedDataset::new(&ds, 9);
        let mut rng_a = Rng64::seed_from_u64(11);
        let mut rng_b = Rng64::seed_from_u64(11);
        let a = sample_initial_split(&ds, 20, 30, &mut rng_a);
        let b = sample_initial_split_source(&chunked, 20, 30, &mut rng_b).unwrap();
        assert_eq!(a.validation_indices, b.validation_indices);
        assert_eq!(a.initial_indices, b.initial_indices);
        assert_eq!(a.validation.values, b.validation.values);
        assert_eq!(a.initial.values, b.initial.values);
        assert_eq!(a.initial.mask, b.initial.mask);
        // the rng streams stay in lockstep afterwards too
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    fn source_training_set_matches_in_memory_for_same_seed() {
        let ds = toy(60);
        let chunked = crate::shard::ChunkedDataset::new(&ds, 7);
        let mut rng_a = Rng64::seed_from_u64(12);
        let mut rng_b = Rng64::seed_from_u64(12);
        let a = sample_training_set(&ds, 25, &mut rng_a);
        let b = sample_training_set_source(&chunked, 25, &mut rng_b).unwrap();
        assert_eq!(a.values, b.values);
        assert_eq!(a.mask, b.mask);
    }

    #[test]
    fn training_set_sampling() {
        let ds = toy(40);
        let mut rng = Rng64::seed_from_u64(4);
        let t = sample_training_set(&ds, 15, &mut rng);
        assert_eq!(t.n_samples(), 15);
        // rows are distinct (values col 0 encodes original index ×3)
        let set: std::collections::HashSet<u64> =
            (0..15).map(|k| t.values[(k, 0)] as u64).collect();
        assert_eq!(set.len(), 15);
    }
}
