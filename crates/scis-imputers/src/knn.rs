//! k-nearest-neighbour imputation.
//!
//! For each row with missing cells, distances to all other rows are computed
//! over the *commonly observed* dimensions (normalized by overlap size so
//! sparse overlaps don't look artificially close); each missing cell is
//! filled with the distance-weighted average of the k nearest rows that
//! observe that cell, falling back to the column mean.

use crate::traits::Imputer;
use scis_data::Dataset;
use scis_tensor::stats::nan_mean;
use scis_tensor::{Matrix, Rng64};

/// kNN imputer.
#[derive(Debug, Clone)]
pub struct KnnImputer {
    /// Number of neighbours.
    pub k: usize,
    /// Cap on candidate rows scanned per query (keeps the method usable on
    /// medium tables; the paper's tables show this family timing out on the
    /// million-row datasets, which the harness reproduces via budgets).
    pub max_candidates: usize,
}

impl Default for KnnImputer {
    fn default() -> Self {
        Self {
            k: 5,
            max_candidates: 5_000,
        }
    }
}

/// Mean squared distance over commonly observed dims; `None` if no overlap.
fn overlap_distance(a: &[f64], b: &[f64]) -> Option<f64> {
    let mut acc = 0.0;
    let mut n = 0usize;
    for (&x, &y) in a.iter().zip(b) {
        if !x.is_nan() && !y.is_nan() {
            let d = x - y;
            acc += d * d;
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(acc / n as f64)
    }
}

impl Imputer for KnnImputer {
    fn name(&self) -> &'static str {
        "kNN"
    }

    fn impute(&mut self, ds: &Dataset, rng: &mut Rng64) -> Matrix {
        assert!(self.k > 0, "KnnImputer: k must be positive");
        let n = ds.n_samples();
        let d = ds.n_features();
        let col_means: Vec<f64> = (0..d)
            .map(|j| nan_mean(&ds.values.col(j)).unwrap_or(0.5))
            .collect();

        // candidate pool (subsampled for large n)
        let pool: Vec<usize> = if n > self.max_candidates {
            rng.sample_indices(n, self.max_candidates)
        } else {
            (0..n).collect()
        };

        let mut out = ds.values.clone();
        for i in 0..n {
            if ds.mask.row_observed_count(i) == d {
                continue; // complete row
            }
            let qrow = ds.values.row(i).to_vec();
            // collect (distance, row) over pool
            let mut neigh: Vec<(f64, usize)> = Vec::with_capacity(pool.len());
            for &p in &pool {
                if p == i {
                    continue;
                }
                if let Some(dist) = overlap_distance(&qrow, ds.values.row(p)) {
                    // a NaN distance (inf − inf in the overlap) carries no
                    // ordering information — and x86 yields *negative* NaN
                    // here, which total_cmp would sort ahead of every
                    // finite neighbour, so pre-filter instead
                    if dist.is_finite() {
                        neigh.push((dist, p));
                    }
                }
            }
            neigh.sort_by(|a, b| a.0.total_cmp(&b.0));
            for j in 0..d {
                if !ds.mask.get(i, j) {
                    // distance-weighted mean of nearest k rows observing j
                    let mut wsum = 0.0;
                    let mut acc = 0.0;
                    let mut taken = 0;
                    for &(dist, p) in &neigh {
                        if taken == self.k {
                            break;
                        }
                        let v = ds.values[(p, j)];
                        if v.is_nan() {
                            continue;
                        }
                        let w = 1.0 / (dist + 1e-6);
                        wsum += w;
                        acc += w * v;
                        taken += 1;
                    }
                    out[(i, j)] = if taken > 0 { acc / wsum } else { col_means[j] };
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copies_identical_neighbour() {
        // two identical groups of rows; missing cell should be recovered
        let v = Matrix::from_rows(&[
            &[0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0],
            &[1.0, 1.0, 1.0],
            &[1.0, 1.0, f64::NAN],
        ]);
        let ds = Dataset::from_values(v);
        let mut rng = Rng64::seed_from_u64(1);
        let out = KnnImputer {
            k: 1,
            ..Default::default()
        }
        .impute(&ds, &mut rng);
        assert!((out[(3, 2)] - 1.0).abs() < 1e-9, "got {}", out[(3, 2)]);
    }

    #[test]
    fn nan_distance_neighbour_sorts_last_instead_of_panicking() {
        // regression: the query and a pool row both observing +inf in the
        // same column produce a NaN overlap distance (inf − inf); the old
        // partial_cmp().expect() comparator panicked here. The NaN (which
        // x86 makes *negative*, so it would even sort first under
        // total_cmp) is now filtered out and the finite zero-distance
        // neighbour is chosen.
        let v = Matrix::from_rows(&[
            &[f64::NAN, 1.0, 7.0],
            &[f64::INFINITY, 1.0, f64::NAN],
            &[f64::INFINITY, 1.0, 0.5],
        ]);
        let ds = Dataset::from_values(v);
        let mut rng = Rng64::seed_from_u64(5);
        let out = KnnImputer {
            k: 1,
            ..Default::default()
        }
        .impute(&ds, &mut rng);
        assert!((out[(1, 2)] - 7.0).abs() < 1e-9, "got {}", out[(1, 2)]);
    }

    #[test]
    fn beats_mean_on_clustered_data() {
        // two clusters at 0.2 and 0.8; mean imputation would give 0.5
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut rng = Rng64::seed_from_u64(2);
        for i in 0..60 {
            let c = if i % 2 == 0 { 0.2 } else { 0.8 };
            rows.push((0..4).map(|_| c + rng.normal_with(0.0, 0.02)).collect());
        }
        let complete = Matrix::from_vec(60, 4, rows.concat());
        let ds = scis_data::missing::inject_mcar(&complete, 0.2, &mut rng);
        let knn_out = KnnImputer::default().impute(&ds, &mut rng);
        let mean_out = crate::mean::MeanImputer.impute(&ds, &mut rng);
        let knn_err = scis_data::metrics::rmse_vs_ground_truth(&ds, &complete, &knn_out);
        let mean_err = scis_data::metrics::rmse_vs_ground_truth(&ds, &complete, &mean_out);
        assert!(
            knn_err < mean_err * 0.5,
            "knn {} vs mean {}",
            knn_err,
            mean_err
        );
    }

    #[test]
    fn row_with_nothing_observed_gets_column_means() {
        let v = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[f64::NAN, f64::NAN]]);
        let ds = Dataset::from_values(v);
        let mut rng = Rng64::seed_from_u64(3);
        let out = KnnImputer::default().impute(&ds, &mut rng);
        assert_eq!(out[(2, 0)], 2.0);
        assert_eq!(out[(2, 1)], 3.0);
    }

    #[test]
    fn observed_cells_untouched() {
        let v = Matrix::from_rows(&[&[1.0, f64::NAN], &[0.9, 7.0], &[1.1, 7.5]]);
        let ds = Dataset::from_values(v);
        let mut rng = Rng64::seed_from_u64(4);
        let out = KnnImputer::default().impute(&ds, &mut rng);
        assert_eq!(out[(0, 0)], 1.0);
        assert_eq!(out[(1, 1)], 7.0);
        assert!(!out.has_nan());
    }
}
