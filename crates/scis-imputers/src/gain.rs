//! GAIN — Generative Adversarial Imputation Nets (Yoon, Jordon & van der
//! Schaar, ICML'18). The paper's primary GAN baseline and the default model
//! SCIS wraps.
//!
//! Faithful ingredients:
//! * generator `G([x̃, m]) → x̄` and discriminator `D([x̂, h]) → per-cell
//!   real/fake probability`, both 2-layer fully connected nets (paper §VI);
//! * noise `z ~ U(0, 0.01)` filling missing cells of `x̃`;
//! * the hint mechanism `h = b ⊙ m + ½(1 − b)`, `b ~ Ber(hint_rate)`;
//! * discriminator BCE toward the true mask; generator adversarial loss on
//!   missing cells plus `α ·` observed-cell reconstruction MSE.

use crate::traits::{impute_with_generator, AdversarialImputer, Imputer, TrainConfig};
use scis_data::Dataset;
use scis_nn::loss::{masked_bce_prob, weighted_mse};
use scis_nn::{Activation, Adam, Mlp, Mode, Optimizer};
use scis_telemetry::Telemetry;
use scis_tensor::{Matrix, Rng64};

/// GAIN hyper-parameters and state.
#[derive(Clone)]
pub struct GainImputer {
    /// Shared deep-learning hyper-parameters.
    pub config: TrainConfig,
    /// Hint rate (original GAIN default 0.9).
    pub hint_rate: f64,
    /// Reconstruction weight α (original GAIN default 10).
    pub alpha: f64,
    generator: Option<Mlp>,
    discriminator: Option<Mlp>,
    n_features: usize,
    telemetry: Telemetry,
}

impl GainImputer {
    /// Creates an untrained GAIN with the given schedule.
    pub fn new(config: TrainConfig) -> Self {
        Self {
            config,
            hint_rate: 0.9,
            alpha: 10.0,
            generator: None,
            discriminator: None,
            n_features: 0,
            telemetry: Telemetry::off(),
        }
    }

    /// Noise value used for deterministic reconstruction (mean of U(0,0.01)).
    /// Public so online serving can reproduce [`GainImputer::reconstruct`]
    /// bit-for-bit from a bare generator network.
    pub const DET_NOISE: f64 = 0.005;

    /// Architecture descriptor of the generator (for model persistence).
    pub fn generator_spec(&self) -> scis_nn::MlpSpec {
        let d = self.n_features;
        scis_nn::MlpSpec {
            in_dim: 2 * d,
            layers: vec![
                scis_nn::SpecLayer::Dense {
                    out: d,
                    act: Activation::Relu,
                },
                scis_nn::SpecLayer::Dense {
                    out: d,
                    act: Activation::Sigmoid,
                },
            ],
        }
    }

    /// Saves the trained generator to `path` (see [`scis_nn::save_mlp`]).
    pub fn save_generator(
        &self,
        path: &std::path::Path,
    ) -> Result<(), scis_nn::serialize::ModelIoError> {
        let spec = self.generator_spec();
        let net = self
            .generator
            .as_ref()
            .expect("GainImputer: generator not initialized");
        scis_nn::save_mlp(path, net, &spec)
    }

    /// Loads a generator saved by [`GainImputer::save_generator`]; the
    /// imputer becomes ready to `reconstruct` without retraining.
    pub fn load_generator(
        &mut self,
        path: &std::path::Path,
    ) -> Result<(), scis_nn::serialize::ModelIoError> {
        let (net, spec) = scis_nn::load_mlp(path)?;
        self.install_generator(net, &spec)
    }

    /// Installs an already-deserialized generator (e.g. from a model
    /// bundle); the imputer becomes ready to `reconstruct` without
    /// retraining. Rejects networks whose input width is not the `2·d`
    /// GAIN encoding with a typed error instead of panicking.
    pub fn install_generator(
        &mut self,
        net: scis_nn::Mlp,
        spec: &scis_nn::MlpSpec,
    ) -> Result<(), scis_nn::serialize::ModelIoError> {
        if !spec.in_dim.is_multiple_of(2) {
            return Err(scis_nn::serialize::ModelIoError::Format {
                line: 0,
                message: format!(
                    "generator input width {} is not the 2·d GAIN encoding",
                    spec.in_dim
                ),
            });
        }
        let d = spec.in_dim / 2;
        if !self.is_initialized(d) {
            // discriminator gets fresh weights; only reconstruction needs
            // the generator
            let mut rng = Rng64::seed_from_u64(0);
            self.init_networks(d, &mut rng);
        }
        let mut net = net;
        net.set_telemetry(self.telemetry.clone());
        self.generator = Some(net);
        self.n_features = d;
        Ok(())
    }

    fn hint(&self, mask: &Matrix, rng: &mut Rng64) -> Matrix {
        Matrix::from_fn(mask.rows(), mask.cols(), |i, j| {
            if rng.bernoulli(self.hint_rate) {
                (*mask)[(i, j)]
            } else {
                0.5
            }
        })
    }

    /// One adversarial step on a batch: D update then G update.
    /// Returns `(d_loss, g_loss)`.
    pub fn train_batch(
        &mut self,
        x: &Matrix,
        mask: &Matrix,
        opt_g: &mut Adam,
        opt_d: &mut Adam,
        rng: &mut Rng64,
    ) -> (f64, f64) {
        let d_feats = x.cols();
        assert!(
            self.is_initialized(d_feats),
            "GainImputer: networks not initialized"
        );

        // x̃ = m⊙x + (1−m)⊙z
        let z = Matrix::from_fn(x.rows(), d_feats, |_, _| rng.uniform_range(0.0, 0.01));
        let x_tilde = mask.hadamard(x).add(&mask.map(|m| 1.0 - m).hadamard(&z));
        let g_in = x_tilde.hcat(mask);

        // --- discriminator step ---
        let (d_loss, xbar_detached) = {
            let generator = self.generator.as_mut().expect("init");
            let xbar = generator.forward(&g_in, Mode::Train, rng);
            let x_hat = mask.hadamard(x).add(&mask.map(|m| 1.0 - m).hadamard(&xbar));
            let h = self.hint(mask, rng);
            let d_in = x_hat.hcat(&h);
            let discriminator = self.discriminator.as_mut().expect("init");
            let d_out = discriminator.forward(&d_in, Mode::Train, rng);
            let all = Matrix::ones(d_out.rows(), d_out.cols());
            let (d_loss, grad) = masked_bce_prob(&d_out, mask, &all);
            discriminator.zero_grad();
            discriminator.backward(&grad);
            opt_d.step(discriminator);
            (d_loss, xbar)
        };
        let _ = xbar_detached;

        // --- generator step (fresh forward through updated D) ---
        let h = self.hint(mask, rng);
        let generator = self.generator.as_mut().expect("init");
        let xbar = generator.forward(&g_in, Mode::Train, rng);
        let x_hat = mask.hadamard(x).add(&mask.map(|m| 1.0 - m).hadamard(&xbar));
        let d_in = x_hat.hcat(&h);
        let discriminator = self.discriminator.as_mut().expect("init");
        let d_out = discriminator.forward(&d_in, Mode::Train, rng);

        // adversarial: make D say "observed" (1) on the missing cells
        let inv_mask = mask.map(|m| 1.0 - m);
        let target_ones = Matrix::ones(d_out.rows(), d_out.cols());
        let (adv_loss, adv_grad_dout) = masked_bce_prob(&d_out, &target_ones, &inv_mask);
        discriminator.zero_grad();
        let grad_d_in = discriminator.backward(&adv_grad_dout);
        discriminator.zero_grad(); // D params must not move on the G step
                                   // slice x̂ part, route through x̂ = … + (1−m)⊙x̄
        let grad_xhat = grad_d_in.select_cols(&(0..d_feats).collect::<Vec<_>>());
        let mut grad_xbar = grad_xhat.hadamard(&inv_mask);

        // reconstruction: α · MSE(m⊙x, m⊙x̄)
        let (rec_loss, rec_grad) = weighted_mse(&xbar, x, mask);
        grad_xbar.axpy(self.alpha, &rec_grad);

        generator.zero_grad();
        generator.backward(&grad_xbar);
        opt_g.step(generator);

        (d_loss, adv_loss + self.alpha * rec_loss)
    }
}

impl Imputer for GainImputer {
    fn name(&self) -> &'static str {
        "GAIN"
    }

    fn impute(&mut self, ds: &Dataset, rng: &mut Rng64) -> Matrix {
        self.train_native(ds, rng);
        impute_with_generator(self, ds, rng)
    }
}

impl AdversarialImputer for GainImputer {
    fn clone_boxed(&self) -> Option<Box<dyn AdversarialImputer + Send>> {
        Some(Box::new(self.clone()))
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        if let Some(g) = &mut self.generator {
            g.set_telemetry(telemetry.clone());
        }
        if let Some(d) = &mut self.discriminator {
            d.set_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    fn init_networks(&mut self, n_features: usize, rng: &mut Rng64) {
        let d = n_features;
        // paper §VI: both G and D are 2-layer fully connected nets
        let mut generator = Mlp::builder(2 * d)
            .dense(d, Activation::Relu)
            .dense(d, Activation::Sigmoid)
            .build(rng);
        generator.set_telemetry(self.telemetry.clone());
        let mut discriminator = Mlp::builder(2 * d)
            .dense(d, Activation::Relu)
            .dense(d, Activation::Sigmoid)
            .build(rng);
        discriminator.set_telemetry(self.telemetry.clone());
        self.generator = Some(generator);
        self.discriminator = Some(discriminator);
        self.n_features = d;
    }

    fn is_initialized(&self, n_features: usize) -> bool {
        self.generator.is_some() && self.n_features == n_features
    }

    fn generator_mut(&mut self) -> &mut Mlp {
        self.generator
            .as_mut()
            .expect("GainImputer: generator not initialized")
    }

    fn discriminator_mut(&mut self) -> Option<&mut Mlp> {
        self.discriminator.as_mut()
    }

    fn reconstruct(&mut self, values: &Matrix, mask: &Matrix) -> Matrix {
        assert!(
            self.is_initialized(values.cols()),
            "GainImputer: not initialized"
        );
        let noise = Matrix::full(values.rows(), values.cols(), Self::DET_NOISE);
        let x_tilde = mask
            .hadamard(values)
            .add(&mask.map(|m| 1.0 - m).hadamard(&noise));
        let g_in = x_tilde.hcat(mask);
        // eval mode: deterministic
        let mut throwaway = Rng64::seed_from_u64(0);
        self.generator
            .as_mut()
            .expect("init")
            .forward(&g_in, Mode::Eval, &mut throwaway)
    }

    fn generator_input(&self, values: &Matrix, mask: &Matrix, rng: &mut Rng64) -> Matrix {
        let z = Matrix::from_fn(values.rows(), values.cols(), |_, _| {
            rng.uniform_range(0.0, 0.01)
        });
        let x_tilde = mask
            .hadamard(values)
            .add(&mask.map(|m| 1.0 - m).hadamard(&z));
        x_tilde.hcat(mask)
    }

    fn train_native(&mut self, ds: &Dataset, rng: &mut Rng64) {
        let d = ds.n_features();
        if !self.is_initialized(d) {
            self.init_networks(d, rng);
        }
        let n = ds.n_samples();
        let x = ds.values_filled(0.0);
        let mask = ds.dense_mask();
        let mut opt_g = Adam::new(self.config.learning_rate);
        let mut opt_d = Adam::new(self.config.learning_rate);
        let bs = self.config.batch_size.min(n);
        for _epoch in 0..self.config.epochs {
            let order = rng.permutation(n);
            for chunk in order.chunks(bs) {
                let xb = x.select_rows(chunk);
                let mb = mask.select_rows(chunk);
                self.train_batch(&xb, &mb, &mut opt_g, &mut opt_d, rng);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::correlated_table;
    use scis_data::metrics::rmse_vs_ground_truth;
    use scis_data::missing::inject_mcar;

    fn fast() -> GainImputer {
        GainImputer::new(TrainConfig {
            epochs: 120,
            batch_size: 64,
            learning_rate: 0.005,
            dropout: 0.0,
        })
    }

    #[test]
    fn gain_beats_mean_on_correlated_data() {
        let complete = correlated_table(400, 41);
        let mut rng = Rng64::seed_from_u64(42);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let out = fast().impute(&ds, &mut rng);
        let e = rmse_vs_ground_truth(&ds, &complete, &out);
        let e_mean = rmse_vs_ground_truth(
            &ds,
            &complete,
            &crate::mean::MeanImputer.impute(&ds, &mut rng),
        );
        assert!(e < e_mean, "gain {} vs mean {}", e, e_mean);
    }

    #[test]
    fn observed_cells_pass_through() {
        let complete = correlated_table(150, 43);
        let mut rng = Rng64::seed_from_u64(44);
        let ds = inject_mcar(&complete, 0.3, &mut rng);
        let out = fast().impute(&ds, &mut rng);
        for (i, j, v) in ds.observed_cells() {
            assert_eq!(out[(i, j)], v);
        }
        assert!(!out.has_nan());
    }

    #[test]
    fn reconstruct_is_deterministic() {
        let complete = correlated_table(60, 45);
        let mut rng = Rng64::seed_from_u64(46);
        let ds = inject_mcar(&complete, 0.2, &mut rng);
        let mut g = fast();
        g.init_networks(ds.n_features(), &mut rng);
        let x = ds.values_filled(0.0);
        let m = ds.dense_mask();
        let a = g.reconstruct(&x, &m);
        let b = g.reconstruct(&x, &m);
        assert_eq!(a, b);
    }

    #[test]
    fn generator_params_roundtrip_through_flat_vector() {
        let mut rng = Rng64::seed_from_u64(47);
        let mut g = fast();
        g.init_networks(4, &mut rng);
        let flat = g.generator_mut().param_vector();
        assert_eq!(flat.len(), g.generator_mut().num_params());
        // 2-layer net on d=4: (8·4+4) + (4·4+4) = 56
        assert_eq!(flat.len(), 56);
    }

    #[test]
    fn generator_save_load_roundtrip_preserves_imputation() {
        let complete = correlated_table(150, 52);
        let mut rng = Rng64::seed_from_u64(53);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let mut g = fast();
        g.train_native(&ds, &mut rng);
        let before = impute_with_generator(&mut g, &ds, &mut rng);
        let mut path = std::env::temp_dir();
        path.push(format!("scis_gain_{}.model", std::process::id()));
        g.save_generator(&path).unwrap();
        let mut g2 = fast();
        g2.load_generator(&path).unwrap();
        let after = impute_with_generator(&mut g2, &ds, &mut rng);
        assert_eq!(before, after);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn discriminator_learns_to_spot_fakes_early() {
        let complete = correlated_table(200, 48);
        let mut rng = Rng64::seed_from_u64(49);
        let ds = inject_mcar(&complete, 0.3, &mut rng);
        let mut g = fast();
        g.init_networks(ds.n_features(), &mut rng);
        let x = ds.values_filled(0.0);
        let m = ds.dense_mask();
        let mut opt_g = Adam::new(0.005);
        let mut opt_d = Adam::new(0.005);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let (d_loss, _) = g.train_batch(&x, &m, &mut opt_g, &mut opt_d, &mut rng);
            first.get_or_insert(d_loss);
            last = d_loss;
        }
        assert!(
            last < first.unwrap(),
            "D loss {} -> {}",
            first.unwrap(),
            last
        );
    }

    #[test]
    fn untrained_generator_imputes_poorly_vs_trained() {
        let complete = correlated_table(300, 50);
        let mut rng = Rng64::seed_from_u64(51);
        let ds = inject_mcar(&complete, 0.3, &mut rng);
        let mut fresh = fast();
        fresh.init_networks(ds.n_features(), &mut rng);
        let untrained = impute_with_generator(&mut fresh, &ds, &mut rng);
        let trained = fast().impute(&ds, &mut rng);
        let e_untrained = rmse_vs_ground_truth(&ds, &complete, &untrained);
        let e_trained = rmse_vs_ground_truth(&ds, &complete, &trained);
        assert!(e_trained < e_untrained, "{} vs {}", e_trained, e_untrained);
    }
}
