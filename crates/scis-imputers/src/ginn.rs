//! GINN — graph imputation neural network (Spinelli et al.), simplified.
//!
//! The original GINN trains a GCN autoencoder adversarially on a similarity
//! graph over samples. We retain its *systems profile* (DESIGN.md §4):
//!
//! * an O(N²·d) kNN similarity-graph construction over mean-filled rows —
//!   this is the step the paper blames for GINN failing to finish on the
//!   Search/Surveil datasets, and we reproduce that cost honestly;
//! * graph convolution as neighbourhood smoothing of the generator input;
//! * an adversarial game with a 3-layer discriminator trained 5 times per
//!   generator step (paper §VI implementation details).

use crate::traits::{impute_with_generator, AdversarialImputer, Imputer, TrainConfig};
use scis_data::Dataset;
use scis_nn::loss::{masked_bce_prob, weighted_mse};
use scis_nn::{Activation, Adam, Mlp, Mode, Optimizer};
use scis_telemetry::Telemetry;
use scis_tensor::ops::sq_dist;
use scis_tensor::{Matrix, Rng64};

/// Fingerprint of a reconstruction input: (rows, cols, value-sum bits).
type GraphKey = (usize, usize, u64);
/// kNN adjacency: neighbour indices per row.
type Adjacency = Vec<Vec<usize>>;

/// GINN hyper-parameters and state.
#[derive(Clone)]
pub struct GinnImputer {
    /// Shared deep-learning hyper-parameters.
    pub config: TrainConfig,
    /// Neighbours per node in the similarity graph.
    pub k_neighbors: usize,
    /// Smoothing strength γ: input = (1−γ)·x + γ·neighbour mean.
    pub gamma: f64,
    /// Discriminator steps per generator step (paper: 5).
    pub d_steps: usize,
    /// Reconstruction weight.
    pub alpha: f64,
    generator: Option<Mlp>,
    discriminator: Option<Mlp>,
    n_features: usize,
    telemetry: Telemetry,
    /// kNN adjacency (row → neighbour indices), built during training.
    neighbors: Vec<Vec<usize>>,
    /// Small cache of graphs built for reconstruction inputs, keyed by a
    /// cheap fingerprint (rows, cols, value-sum bits) — SSE calls
    /// `reconstruct` on the same validation matrix many times.
    graph_cache: Vec<(GraphKey, Adjacency)>,
}

impl GinnImputer {
    /// Creates an untrained GINN.
    pub fn new(config: TrainConfig) -> Self {
        Self {
            config,
            k_neighbors: 5,
            gamma: 0.5,
            d_steps: 5,
            alpha: 10.0,
            generator: None,
            discriminator: None,
            n_features: 0,
            telemetry: Telemetry::off(),
            neighbors: Vec::new(),
            graph_cache: Vec::new(),
        }
    }

    /// Builds the kNN similarity graph (O(N²·d) — intentionally the
    /// bottleneck that makes GINN infeasible at million scale).
    pub fn build_graph(x_filled: &Matrix, k: usize) -> Vec<Vec<usize>> {
        let n = x_filled.rows();
        let mut neighbors = Vec::with_capacity(n);
        for i in 0..n {
            let ri = x_filled.row(i);
            let mut dists: Vec<(f64, usize)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| (sq_dist(ri, x_filled.row(j)), j))
                .collect();
            let kk = k.min(dists.len());
            if kk > 0 && kk < dists.len() {
                // total_cmp: NaN distances partition to the far side of the
                // pivot, so the k nearest finite rows still win
                dists.select_nth_unstable_by(kk - 1, |a, b| a.0.total_cmp(&b.0));
            }
            dists.truncate(kk);
            neighbors.push(dists.into_iter().map(|(_, j)| j).collect());
        }
        neighbors
    }

    /// Neighbourhood smoothing: `(1−γ)·x + γ·mean(neighbours)`.
    fn smooth(&self, x: &Matrix, rows: &[usize], full: &Matrix) -> Matrix {
        self.smooth_with(x, rows, full, &self.neighbors)
    }

    /// [`GinnImputer::smooth`] with an explicit adjacency (batch-local
    /// graphs during DIM training, cached graphs at reconstruction).
    fn smooth_with(
        &self,
        x: &Matrix,
        rows: &[usize],
        full: &Matrix,
        neighbors: &[Vec<usize>],
    ) -> Matrix {
        let d = x.cols();
        let mut out = x.scale(1.0 - self.gamma);
        for (bi, &i) in rows.iter().enumerate() {
            let neigh = &neighbors[i];
            if neigh.is_empty() {
                // no neighbours: keep the original row unsmoothed
                for j in 0..d {
                    out[(bi, j)] += self.gamma * x[(bi, j)];
                }
                continue;
            }
            let w = self.gamma / neigh.len() as f64;
            for &p in neigh {
                let prow = full.row(p);
                for j in 0..d {
                    out[(bi, j)] += w * prow[j];
                }
            }
        }
        out
    }
}

impl Imputer for GinnImputer {
    fn name(&self) -> &'static str {
        "GINN"
    }

    fn impute(&mut self, ds: &Dataset, rng: &mut Rng64) -> Matrix {
        self.train_native(ds, rng);
        impute_with_generator(self, ds, rng)
    }
}

impl AdversarialImputer for GinnImputer {
    fn clone_boxed(&self) -> Option<Box<dyn AdversarialImputer + Send>> {
        Some(Box::new(self.clone()))
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        if let Some(g) = &mut self.generator {
            g.set_telemetry(telemetry.clone());
        }
        if let Some(d) = &mut self.discriminator {
            d.set_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    fn init_networks(&mut self, n_features: usize, rng: &mut Rng64) {
        let d = n_features;
        let mut generator = Mlp::builder(2 * d)
            .dense(d, Activation::Relu)
            .dense(d, Activation::Sigmoid)
            .build(rng);
        generator.set_telemetry(self.telemetry.clone());
        // 3-layer feed-forward discriminator (paper §VI)
        let mut discriminator = Mlp::builder(2 * d)
            .dense(d, Activation::Relu)
            .dense(d, Activation::Relu)
            .dense(d, Activation::Sigmoid)
            .build(rng);
        discriminator.set_telemetry(self.telemetry.clone());
        self.generator = Some(generator);
        self.discriminator = Some(discriminator);
        self.n_features = d;
        self.neighbors.clear();
        self.graph_cache.clear();
    }

    fn is_initialized(&self, n_features: usize) -> bool {
        self.generator.is_some() && self.n_features == n_features
    }

    fn generator_mut(&mut self) -> &mut Mlp {
        self.generator
            .as_mut()
            .expect("GinnImputer: generator not initialized")
    }

    fn reconstruct(&mut self, values: &Matrix, mask: &Matrix) -> Matrix {
        assert!(
            self.is_initialized(values.cols()),
            "GinnImputer: not initialized"
        );
        let x_tilde = mask.hadamard(values);
        let rows: Vec<usize> = (0..values.rows()).collect();
        let g_in = if self.neighbors.len() == values.rows() {
            self.smooth(&x_tilde, &rows, &x_tilde).hcat(mask)
        } else {
            // the O(N²) graph build is GINN's defining cost and follows it
            // into SCIS (paper Table IV: SCIS-GINN ≫ SCIS-GAIN in time);
            // a tiny cache covers SSE's repeated validation reconstructions
            let key = (
                values.rows(),
                values.cols(),
                values.as_slice().iter().sum::<f64>().to_bits(),
            );
            let graph = match self.graph_cache.iter().find(|(k, _)| *k == key) {
                Some((_, g)) => g.clone(),
                None => {
                    let k_n = self.k_neighbors.min(values.rows().saturating_sub(1));
                    let g = Self::build_graph(&x_tilde, k_n);
                    if self.graph_cache.len() >= 4 {
                        self.graph_cache.remove(0);
                    }
                    self.graph_cache.push((key, g.clone()));
                    g
                }
            };
            self.smooth_with(&x_tilde, &rows, &x_tilde, &graph)
                .hcat(mask)
        };
        let mut throwaway = Rng64::seed_from_u64(0);
        self.generator
            .as_mut()
            .expect("init")
            .forward(&g_in, Mode::Eval, &mut throwaway)
    }

    fn generator_input(&self, values: &Matrix, mask: &Matrix, rng: &mut Rng64) -> Matrix {
        let z = Matrix::from_fn(values.rows(), values.cols(), |_, _| {
            rng.uniform_range(0.0, 0.01)
        });
        let x_tilde = mask
            .hadamard(values)
            .add(&mask.map(|m| 1.0 - m).hadamard(&z));
        // batch-local similarity graph: GINN's graph convolution carries
        // into DIM training, where only the batch is visible
        let k_n = self.k_neighbors.min(values.rows().saturating_sub(1));
        if k_n == 0 {
            return x_tilde.hcat(mask);
        }
        let graph = Self::build_graph(&x_tilde, k_n);
        let rows: Vec<usize> = (0..values.rows()).collect();
        self.smooth_with(&x_tilde, &rows, &x_tilde, &graph)
            .hcat(mask)
    }

    fn train_native(&mut self, ds: &Dataset, rng: &mut Rng64) {
        let d = ds.n_features();
        if !self.is_initialized(d) {
            self.init_networks(d, rng);
        }
        let n = ds.n_samples();
        let x = ds.values_filled(0.0);
        let mask = ds.dense_mask();
        // the expensive graph construction
        self.neighbors = Self::build_graph(&ds.values_filled(0.5), self.k_neighbors);

        let mut opt_g = Adam::new(self.config.learning_rate);
        let mut opt_d = Adam::new(self.config.learning_rate);
        let bs = self.config.batch_size.min(n);
        for _epoch in 0..self.config.epochs {
            let order = rng.permutation(n);
            for chunk in order.chunks(bs) {
                let xb = x.select_rows(chunk);
                let mb = mask.select_rows(chunk);
                let inv_mb = mb.map(|m| 1.0 - m);
                let z = Matrix::from_fn(xb.rows(), d, |_, _| rng.uniform_range(0.0, 0.01));
                let x_tilde = mb.hadamard(&xb).add(&inv_mb.hadamard(&z));
                let smoothed = self.smooth(&x_tilde, chunk, &x);
                let g_in = smoothed.hcat(&mb);

                // --- D steps (5 per G step) ---
                for _ in 0..self.d_steps {
                    let generator = self.generator.as_mut().expect("init");
                    let xbar = generator.forward(&g_in, Mode::Train, rng);
                    let x_hat = mb.hadamard(&xb).add(&inv_mb.hadamard(&xbar));
                    let d_in = x_hat.hcat(&mb);
                    let discriminator = self.discriminator.as_mut().expect("init");
                    let d_out = discriminator.forward(&d_in, Mode::Train, rng);
                    let all = Matrix::ones(d_out.rows(), d_out.cols());
                    let (_, grad) = masked_bce_prob(&d_out, &mb, &all);
                    discriminator.zero_grad();
                    discriminator.backward(&grad);
                    opt_d.step(discriminator);
                }

                // --- G step ---
                let generator = self.generator.as_mut().expect("init");
                let xbar = generator.forward(&g_in, Mode::Train, rng);
                let x_hat = mb.hadamard(&xb).add(&inv_mb.hadamard(&xbar));
                let d_in = x_hat.hcat(&mb);
                let discriminator = self.discriminator.as_mut().expect("init");
                let d_out = discriminator.forward(&d_in, Mode::Train, rng);
                let target_ones = Matrix::ones(d_out.rows(), d_out.cols());
                let (_, adv_grad) = masked_bce_prob(&d_out, &target_ones, &inv_mb);
                discriminator.zero_grad();
                let grad_d_in = discriminator.backward(&adv_grad);
                discriminator.zero_grad();
                let grad_xhat = grad_d_in.select_cols(&(0..d).collect::<Vec<_>>());
                let mut grad_xbar = grad_xhat.hadamard(&inv_mb);
                let (_, rec_grad) = weighted_mse(&xbar, &xb, &mb);
                grad_xbar.axpy(self.alpha, &rec_grad);
                generator.zero_grad();
                generator.backward(&grad_xbar);
                opt_g.step(generator);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::correlated_table;
    use scis_data::metrics::rmse_vs_ground_truth;
    use scis_data::missing::inject_mcar;

    fn fast() -> GinnImputer {
        let mut g = GinnImputer::new(TrainConfig {
            epochs: 60,
            batch_size: 64,
            learning_rate: 0.005,
            dropout: 0.0,
        });
        g.d_steps = 2; // keep tests quick; paper default is 5
        g
    }

    #[test]
    fn knn_graph_has_k_neighbors_each() {
        let mut rng = Rng64::seed_from_u64(1);
        let x = Matrix::from_fn(20, 3, |_, _| rng.uniform());
        let g = GinnImputer::build_graph(&x, 4);
        assert_eq!(g.len(), 20);
        for (i, neigh) in g.iter().enumerate() {
            assert_eq!(neigh.len(), 4);
            assert!(!neigh.contains(&i), "self-loop at {}", i);
        }
    }

    #[test]
    fn knn_graph_tolerates_nan_distances() {
        // regression: a poisoned fill value (NaN row) made sq_dist return
        // NaN and the old partial_cmp().expect() comparator panicked inside
        // select_nth_unstable_by. With total_cmp the NaN distances
        // partition to the far side and finite rows keep finite neighbours.
        let mut rng = Rng64::seed_from_u64(3);
        let mut x = Matrix::from_fn(12, 3, |_, _| rng.uniform());
        for j in 0..3 {
            x[(5, j)] = f64::NAN;
        }
        let g = GinnImputer::build_graph(&x, 3);
        assert_eq!(g.len(), 12);
        for (i, neigh) in g.iter().enumerate() {
            assert_eq!(neigh.len(), 3);
            if i != 5 {
                // 10 finite candidates exist, so the poisoned row loses
                assert!(!neigh.contains(&5), "row {} linked the NaN row", i);
            }
        }
    }

    #[test]
    fn knn_graph_links_nearby_points() {
        // two tight clusters: neighbours must stay within a cluster
        let mut rng = Rng64::seed_from_u64(2);
        let x = Matrix::from_fn(20, 2, |i, _| {
            let c = if i < 10 { 0.1 } else { 0.9 };
            c + rng.normal_with(0.0, 0.01)
        });
        let g = GinnImputer::build_graph(&x, 3);
        for (i, neigh) in g.iter().enumerate() {
            for &j in neigh {
                assert_eq!(i < 10, j < 10, "cross-cluster edge {}-{}", i, j);
            }
        }
    }

    #[test]
    fn ginn_beats_mean_on_correlated_data() {
        let complete = correlated_table(300, 61);
        let mut rng = Rng64::seed_from_u64(62);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        // dedicated training stream: adversarial training has noticeable
        // seed-to-seed variance, so the test pins the stream it validates
        let mut train_rng = Rng64::seed_from_u64(63);
        let out = fast().impute(&ds, &mut train_rng);
        let e = rmse_vs_ground_truth(&ds, &complete, &out);
        let e_mean = rmse_vs_ground_truth(
            &ds,
            &complete,
            &crate::mean::MeanImputer.impute(&ds, &mut rng),
        );
        assert!(e < e_mean, "ginn {} vs mean {}", e, e_mean);
    }

    #[test]
    fn observed_cells_pass_through() {
        let complete = correlated_table(120, 63);
        let mut rng = Rng64::seed_from_u64(64);
        let ds = inject_mcar(&complete, 0.3, &mut rng);
        let out = fast().impute(&ds, &mut rng);
        for (i, j, v) in ds.observed_cells() {
            assert_eq!(out[(i, j)], v);
        }
    }
}
