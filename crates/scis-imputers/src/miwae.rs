//! MIWAE — missing-data importance-weighted autoencoder (Mattei &
//! Frellsen, ICML'19), simplified.
//!
//! Training uses the observed-cell ELBO of the shared [`VaeCore`] (the full
//! K-sample IWAE gradient is replaced by the ELBO — DESIGN.md §4); the
//! *imputation* step is MIWAE's defining ingredient and is kept faithful:
//! self-normalized importance sampling over `K` latent draws,
//!
//! ```text
//! x̄ = Σ_k w̃_k · dec(z_k),   w̃_k ∝ p(x_obs | z_k) p(z_k) / q(z_k | x)
//! ```
//!
//! with a Gaussian observation model on the observed cells.

use crate::traits::{Imputer, TrainConfig};
use crate::vaei::VaeCore;
use scis_data::Dataset;
use scis_nn::{Adam, Mode};
use scis_tensor::{Matrix, Rng64};

/// Importance-weighted autoencoder imputer (MIWAE row).
pub struct MiwaeImputer {
    /// Shared deep-learning hyper-parameters.
    pub config: TrainConfig,
    /// Latent dimensionality.
    pub latent: usize,
    /// Hidden width.
    pub hidden: usize,
    /// KL weight β during (ELBO) training.
    pub beta: f64,
    /// Importance samples K at imputation time.
    pub n_importance: usize,
    /// Observation noise σ of the Gaussian likelihood.
    pub obs_sigma: f64,
}

impl Default for MiwaeImputer {
    fn default() -> Self {
        Self {
            config: TrainConfig::default(),
            latent: 10,
            hidden: 32,
            beta: 1e-3,
            n_importance: 20,
            obs_sigma: 0.1,
        }
    }
}

impl Imputer for MiwaeImputer {
    fn name(&self) -> &'static str {
        "MIWAE"
    }

    fn impute(&mut self, ds: &Dataset, rng: &mut Rng64) -> Matrix {
        let (n, d) = ds.values.shape();
        let x_zero = ds.values_filled(0.0);
        let mask = ds.dense_mask();
        let enc_input = x_zero.hadamard(&mask).hcat(&mask);
        let latent = self.latent.min((2 * d).max(2));

        let hidden = [self.hidden];
        let mut core = VaeCore::new(2 * d, latent, &hidden, &hidden, d, rng);
        let mut opt_e = Adam::new(self.config.learning_rate);
        let mut opt_d = Adam::new(self.config.learning_rate);
        let bs = self.config.batch_size.min(n);
        for _epoch in 0..self.config.epochs {
            let order = rng.permutation(n);
            for chunk in order.chunks(bs) {
                let ib = enc_input.select_rows(chunk);
                let xb = x_zero.select_rows(chunk);
                let mb = mask.select_rows(chunk);
                core.train_step(&ib, &xb, &mb, self.beta, &mut opt_e, &mut opt_d, rng);
            }
        }

        // --- importance-weighted imputation ---
        let k = self.n_importance.max(1);
        let enc_out = core.encoder.forward(&enc_input, Mode::Eval, rng);
        let mu = enc_out.select_cols(&(0..latent).collect::<Vec<_>>());
        let logvar = enc_out.select_cols(&(latent..2 * latent).collect::<Vec<_>>());
        let std = logvar.map(|v| (0.5 * v).exp());

        let mut acc = Matrix::zeros(n, d);
        let mut weight_acc = vec![0.0f64; n];
        // accumulate with streaming log-sum-exp–free normalization: collect
        // log-weights per draw, shift by each row's running max
        let mut draws: Vec<(Matrix, Vec<f64>)> = Vec::with_capacity(k);
        let inv_two_sigma2 = 1.0 / (2.0 * self.obs_sigma * self.obs_sigma);
        for _ in 0..k {
            let eps = Matrix::from_fn(n, latent, |_, _| rng.normal());
            let z = mu.add(&eps.hadamard(&std));
            let recon = core.decoder.forward(&z, Mode::Eval, rng);
            // log w = log p(x_obs|z) + log p(z) − log q(z|x), constants drop
            let mut log_w = vec![0.0f64; n];
            for i in 0..n {
                let mut lw = 0.0;
                for j in 0..d {
                    if mask[(i, j)] > 0.5 {
                        let diff = recon[(i, j)] - x_zero[(i, j)];
                        lw -= diff * diff * inv_two_sigma2;
                    }
                }
                for l in 0..latent {
                    let zv = z[(i, l)];
                    let e = eps[(i, l)];
                    // log p(z) − log q(z|x) = −z²/2 + (ε²/2 + logσ_q)
                    lw += -0.5 * zv * zv + 0.5 * e * e + 0.5 * logvar[(i, l)];
                }
                log_w[i] = lw;
            }
            draws.push((recon, log_w));
        }
        // per-row max for stability
        let mut row_max = vec![f64::NEG_INFINITY; n];
        for (_, lw) in &draws {
            for (m, &v) in row_max.iter_mut().zip(lw) {
                *m = m.max(v);
            }
        }
        for (recon, lw) in &draws {
            for i in 0..n {
                let w = (lw[i] - row_max[i]).exp();
                weight_acc[i] += w;
                for j in 0..d {
                    acc[(i, j)] += w * recon[(i, j)];
                }
            }
        }
        for i in 0..n {
            let w = weight_acc[i].max(1e-300);
            for j in 0..d {
                acc[(i, j)] /= w;
            }
        }
        ds.merge_imputed(&acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::correlated_table;
    use scis_data::metrics::rmse_vs_ground_truth;
    use scis_data::missing::inject_mcar;

    fn fast() -> MiwaeImputer {
        MiwaeImputer {
            config: TrainConfig {
                epochs: 80,
                batch_size: 64,
                learning_rate: 0.005,
                dropout: 0.0,
            },
            latent: 4,
            hidden: 24,
            beta: 1e-4,
            n_importance: 10,
            obs_sigma: 0.1,
        }
    }

    #[test]
    fn beats_mean_on_correlated_data() {
        let complete = correlated_table(400, 71);
        let mut rng = Rng64::seed_from_u64(72);
        let ds = inject_mcar(&complete, 0.3, &mut rng);
        let out = fast().impute(&ds, &mut rng);
        let e = rmse_vs_ground_truth(&ds, &complete, &out);
        let e_mean = rmse_vs_ground_truth(
            &ds,
            &complete,
            &crate::mean::MeanImputer.impute(&ds, &mut rng),
        );
        assert!(e < e_mean, "miwae {} vs mean {}", e, e_mean);
    }

    #[test]
    fn importance_weights_are_finite_and_normalized() {
        let complete = correlated_table(100, 73);
        let mut rng = Rng64::seed_from_u64(74);
        let ds = inject_mcar(&complete, 0.3, &mut rng);
        let out = fast().impute(&ds, &mut rng);
        assert!(!out.has_nan());
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn observed_cells_pass_through() {
        let complete = correlated_table(120, 75);
        let mut rng = Rng64::seed_from_u64(76);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let out = fast().impute(&ds, &mut rng);
        for (i, j, v) in ds.observed_cells() {
            assert_eq!(out[(i, j)], v);
        }
    }

    #[test]
    fn more_importance_samples_does_not_break() {
        let complete = correlated_table(80, 77);
        let mut rng = Rng64::seed_from_u64(78);
        let ds = inject_mcar(&complete, 0.3, &mut rng);
        let mut m = fast();
        m.n_importance = 50;
        let out = m.impute(&ds, &mut rng);
        assert!(!out.has_nan());
    }
}
