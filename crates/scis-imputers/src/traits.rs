//! Imputer interfaces and shared training configuration.

use scis_data::Dataset;
use scis_nn::Mlp;
use scis_tensor::{Matrix, Rng64};

/// Shared deep-learning hyper-parameters (§VI "Implementation details":
/// learning rate 0.001, dropout 0.5, 100 epochs, batch size 128, Adam).
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Dropout probability for methods that use it.
    pub dropout: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            batch_size: 128,
            learning_rate: 0.001,
            dropout: 0.5,
        }
    }
}

impl TrainConfig {
    /// A fast configuration for unit tests.
    pub fn fast_test() -> Self {
        Self {
            epochs: 15,
            batch_size: 64,
            learning_rate: 0.01,
            dropout: 0.3,
        }
    }

    /// Fluent setter for [`TrainConfig::epochs`].
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Fluent setter for [`TrainConfig::batch_size`].
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Fluent setter for [`TrainConfig::learning_rate`].
    pub fn learning_rate(mut self, learning_rate: f64) -> Self {
        self.learning_rate = learning_rate;
        self
    }

    /// Fluent setter for [`TrainConfig::dropout`].
    pub fn dropout(mut self, dropout: f64) -> Self {
        self.dropout = dropout;
        self
    }
}

/// A data imputation method (paper Definition 1).
///
/// `impute` receives a `[0,1]`-normalized incomplete dataset and returns the
/// merged matrix `X̂ = M ⊙ X + (1−M) ⊙ X̄`: observed cells must pass through
/// exactly, missing cells carry the method's reconstruction.
pub trait Imputer {
    /// Method name as printed in the paper's tables.
    fn name(&self) -> &'static str;

    /// Fits on `ds` and returns the imputed matrix.
    fn impute(&mut self, ds: &Dataset, rng: &mut Rng64) -> Matrix;
}

/// Extension interface for GAN-based imputers (GAIN, GINN) that SCIS can
/// wrap: the DIM module retrains the *generator* under the MS-divergence
/// loss, and the SSE module samples perturbed generator parameter vectors.
pub trait AdversarialImputer: Imputer {
    /// Initializes (or re-initializes) generator and discriminator for a
    /// dataset with `n_features` columns.
    fn init_networks(&mut self, n_features: usize, rng: &mut Rng64);

    /// Whether networks are initialized for `n_features`.
    fn is_initialized(&self, n_features: usize) -> bool;

    /// Mutable access to the generator network (parameter flattening for
    /// SSE, optimizer steps for DIM).
    fn generator_mut(&mut self) -> &mut Mlp;

    /// Mutable access to the discriminator network, if the method keeps one
    /// (checkpointing captures its weights so a resumed adversarial run
    /// continues from identical state). Defaults to `None` for methods
    /// without a persistent discriminator.
    fn discriminator_mut(&mut self) -> Option<&mut Mlp> {
        None
    }

    /// Deterministic reconstruction `X̄` for a batch: runs the generator in
    /// eval mode on `(values, mask)` with the method's canonical input
    /// encoding (noise replaced by its mean for determinism).
    fn reconstruct(&mut self, values: &Matrix, mask: &Matrix) -> Matrix;

    /// Builds a training-time generator input for a batch (with noise).
    /// Returns the input matrix fed to the generator.
    fn generator_input(&self, values: &Matrix, mask: &Matrix, rng: &mut Rng64) -> Matrix;

    /// Runs the method's *native* adversarial training (JS/BCE loss) on the
    /// given dataset. This is the baseline the paper calls "GAIN"/"GINN".
    fn train_native(&mut self, ds: &Dataset, rng: &mut Rng64);

    /// Deep-copies the imputer for the parallel SSE Monte-Carlo fan-out:
    /// each worker thread evaluates [`AdversarialImputer::reconstruct`]
    /// (deterministic, RNG-free) on its own clone, so results are identical
    /// to the serial evaluation. Returns `None` (the default) when the
    /// imputer is not cloneable — callers then stay on the serial path.
    fn clone_boxed(&self) -> Option<Box<dyn AdversarialImputer + Send>> {
        None
    }

    /// Attaches a telemetry collector; implementations forward it to their
    /// networks so forward/backward passes are counted. Recording never
    /// perturbs outputs or RNG streams. The default is a no-op for imputers
    /// without instrumented internals.
    fn set_telemetry(&mut self, _telemetry: scis_telemetry::Telemetry) {}
}

/// Helper: run a generator forward pass and merge per Eq. 1.
pub fn impute_with_generator<A: AdversarialImputer + ?Sized>(
    imp: &mut A,
    ds: &Dataset,
    _rng: &mut Rng64,
) -> Matrix {
    let values = ds.values_filled(0.0);
    let mask = ds.dense_mask();
    let xbar = imp.reconstruct(&values, &mask);
    ds.merge_imputed(&xbar)
}

/// Memory-bounded variant of [`impute_with_generator`]: reconstructs in row
/// chunks so the generator-input temporaries stay `O(chunk · d)` instead of
/// `O(N · d)` — relevant at the paper's Surveil scale (22.5M rows).
///
/// Note: chunked reconstruction is exact for GAIN (row-wise generator) and
/// an approximation for GINN (its graph smoothing then only sees
/// within-chunk neighbours).
pub fn impute_with_generator_chunked<A: AdversarialImputer + ?Sized>(
    imp: &mut A,
    ds: &Dataset,
    chunk_rows: usize,
) -> Matrix {
    assert!(chunk_rows > 0, "impute_with_generator_chunked: zero chunk");
    let n = ds.n_samples();
    let d = ds.n_features();
    let mut out = Matrix::zeros(n, d);
    let mut row = 0;
    while row < n {
        let hi = (row + chunk_rows).min(n);
        let idx: Vec<usize> = (row..hi).collect();
        let sub = ds.select_rows(&idx);
        let values = sub.values_filled(0.0);
        let mask = sub.dense_mask();
        let xbar = imp.reconstruct(&values, &mask);
        let merged = sub.merge_imputed(&xbar);
        for (k, i) in (row..hi).enumerate() {
            out.row_mut(i).copy_from_slice(merged.row(k));
        }
        row = hi;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_imputation_matches_full_for_gain() {
        use crate::GainImputer;
        let mut rng = scis_tensor::Rng64::seed_from_u64(5);
        let complete = Matrix::from_fn(137, 4, |_, _| rng.uniform());
        let ds = scis_data::missing::inject_mcar(&complete, 0.3, &mut rng);
        let mut gain = GainImputer::new(TrainConfig::fast_test());
        gain.init_networks(4, &mut rng);
        let full = impute_with_generator(&mut gain, &ds, &mut rng);
        for chunk in [1usize, 10, 64, 137, 500] {
            let chunked = impute_with_generator_chunked(&mut gain, &ds, chunk);
            assert_eq!(chunked, full, "chunk = {}", chunk);
        }
    }

    #[test]
    fn default_config_matches_paper() {
        let c = TrainConfig::default();
        assert_eq!(c.epochs, 100);
        assert_eq!(c.batch_size, 128);
        assert_eq!(c.learning_rate, 0.001);
        assert_eq!(c.dropout, 0.5);
    }
}
