//! MIDAE — multiple imputation with denoising autoencoders (Gondara &
//! Wang). Paper architecture: 2 hidden layers of 128 units; corruption via
//! dropout on the input; multiple imputation by averaging several
//! stochastic (dropout-active) forward passes.

use crate::traits::{Imputer, TrainConfig};
use scis_data::Dataset;
use scis_nn::loss::weighted_mse;
use scis_nn::{Activation, Adam, Mlp, Mode, Optimizer};
use scis_tensor::stats::nan_mean;
use scis_tensor::{Matrix, Rng64};

/// Denoising-autoencoder imputer.
pub struct MidaeImputer {
    /// Shared deep-learning hyper-parameters (dropout doubles as the
    /// denoising corruption).
    pub config: TrainConfig,
    /// Hidden width (paper: 128).
    pub hidden: usize,
    /// Number of stochastic passes averaged at imputation time.
    pub n_imputations: usize,
}

impl Default for MidaeImputer {
    fn default() -> Self {
        Self {
            config: TrainConfig::default(),
            hidden: 128,
            n_imputations: 5,
        }
    }
}

impl MidaeImputer {
    fn build(&self, d: usize, rng: &mut Rng64) -> Mlp {
        Mlp::builder(d)
            .dropout(self.config.dropout) // input corruption
            .dense(self.hidden, Activation::Relu)
            .dense(self.hidden, Activation::Relu)
            .dense(d, Activation::Sigmoid)
            .build(rng)
    }
}

impl Imputer for MidaeImputer {
    fn name(&self) -> &'static str {
        "MIDAE"
    }

    fn impute(&mut self, ds: &Dataset, rng: &mut Rng64) -> Matrix {
        let (n, d) = ds.values.shape();
        let means: Vec<f64> = (0..d)
            .map(|j| nan_mean(&ds.values.col(j)).unwrap_or(0.5))
            .collect();
        let x_filled = Matrix::from_fn(n, d, |i, j| {
            let v = ds.values[(i, j)];
            if v.is_nan() {
                means[j]
            } else {
                v
            }
        });
        let mask = ds.dense_mask();

        let mut net = self.build(d, rng);
        let mut opt = Adam::new(self.config.learning_rate);
        let bs = self.config.batch_size.min(n);
        for _epoch in 0..self.config.epochs {
            let order = rng.permutation(n);
            for chunk in order.chunks(bs) {
                let xb = x_filled.select_rows(chunk);
                let mb = mask.select_rows(chunk);
                let pred = net.forward(&xb, Mode::Train, rng);
                let (_, grad) = weighted_mse(&pred, &xb, &mb);
                net.zero_grad();
                net.backward(&grad);
                opt.step(&mut net);
            }
        }

        // multiple imputation: average stochastic passes (dropout active)
        let mut acc = Matrix::zeros(n, d);
        for _ in 0..self.n_imputations.max(1) {
            acc.axpy(1.0, &net.forward(&x_filled, Mode::Train, rng));
        }
        let recon = acc.scale(1.0 / self.n_imputations.max(1) as f64);
        ds.merge_imputed(&recon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::correlated_table;
    use scis_data::metrics::rmse_vs_ground_truth;
    use scis_data::missing::inject_mcar;

    fn fast() -> MidaeImputer {
        MidaeImputer {
            config: TrainConfig {
                epochs: 60,
                batch_size: 64,
                learning_rate: 0.005,
                dropout: 0.2,
            },
            hidden: 32,
            n_imputations: 5,
        }
    }

    #[test]
    fn beats_mean_on_correlated_data() {
        let complete = correlated_table(400, 11);
        let mut rng = Rng64::seed_from_u64(12);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let out = fast().impute(&ds, &mut rng);
        let e = rmse_vs_ground_truth(&ds, &complete, &out);
        let e_mean = rmse_vs_ground_truth(
            &ds,
            &complete,
            &crate::mean::MeanImputer.impute(&ds, &mut rng),
        );
        assert!(e < e_mean, "midae {} vs mean {}", e, e_mean);
    }

    #[test]
    fn observed_cells_pass_through_and_no_nan() {
        let complete = correlated_table(150, 13);
        let mut rng = Rng64::seed_from_u64(14);
        let ds = inject_mcar(&complete, 0.35, &mut rng);
        let out = fast().impute(&ds, &mut rng);
        for (i, j, v) in ds.observed_cells() {
            assert_eq!(out[(i, j)], v);
        }
        assert!(!out.has_nan());
    }

    #[test]
    fn averaging_more_passes_stays_in_unit_interval() {
        let complete = correlated_table(100, 15);
        let mut rng = Rng64::seed_from_u64(16);
        let ds = inject_mcar(&complete, 0.3, &mut rng);
        let mut m = fast();
        m.n_imputations = 10;
        let out = m.impute(&ds, &mut rng);
        for i in 0..ds.n_samples() {
            for j in 0..ds.n_features() {
                if !ds.mask.get(i, j) {
                    assert!((0.0..=1.0).contains(&out[(i, j)]));
                }
            }
        }
    }
}
