//! Gradient-boosted-stump imputer — the "Baran" table row.
//!
//! The real Baran (Mahdavi & Abedjan) is an error-correction system with
//! transfer learning over external corpora, which cannot be reproduced
//! offline; DESIGN.md §4 documents this stand-in: per incomplete column, an
//! L2 gradient-boosting ensemble of depth-1 regression trees (stumps) over
//! the remaining columns, playing the same "slow, accurate ML baseline"
//! role in Table III (Baran uses AdaBoost as its prediction model).

use crate::traits::Imputer;
use crate::tree::{RegressionTree, TreeConfig};
use scis_data::Dataset;
use scis_tensor::stats::nan_mean;
use scis_tensor::{Matrix, Rng64};

/// Boosted-stump imputer (Baran stand-in).
#[derive(Debug, Clone)]
pub struct BoostImputer {
    /// Boosting rounds per column (paper's ML settings use 100 iterations).
    pub n_rounds: usize,
    /// Shrinkage / learning rate (paper's ML settings use 0.3).
    pub learning_rate: f64,
    /// Depth of each weak learner.
    pub depth: usize,
}

impl Default for BoostImputer {
    fn default() -> Self {
        Self {
            n_rounds: 100,
            learning_rate: 0.3,
            depth: 1,
        }
    }
}

struct BoostedModel {
    base: f64,
    trees: Vec<RegressionTree>,
    lr: f64,
}

impl BoostedModel {
    fn fit(x: &Matrix, y: &[f64], rounds: usize, lr: f64, depth: usize, rng: &mut Rng64) -> Self {
        let base = y.iter().sum::<f64>() / y.len().max(1) as f64;
        let mut residual: Vec<f64> = y.iter().map(|&v| v - base).collect();
        let cfg = TreeConfig {
            max_depth: depth,
            min_leaf: 2,
            ..Default::default()
        };
        let mut trees = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let tree = RegressionTree::fit(x, &residual, &cfg, rng);
            let preds = tree.predict(x);
            for (r, p) in residual.iter_mut().zip(&preds) {
                *r -= lr * p;
            }
            trees.push(tree);
        }
        Self { base, trees, lr }
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        self.base + self.lr * self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>()
    }
}

impl Imputer for BoostImputer {
    fn name(&self) -> &'static str {
        "Baran"
    }

    fn impute(&mut self, ds: &Dataset, rng: &mut Rng64) -> Matrix {
        let (n, d) = ds.values.shape();
        let means: Vec<f64> = (0..d)
            .map(|j| nan_mean(&ds.values.col(j)).unwrap_or(0.5))
            .collect();
        let x_filled = Matrix::from_fn(n, d, |i, j| {
            let v = ds.values[(i, j)];
            if v.is_nan() {
                means[j]
            } else {
                v
            }
        });
        let mut out = x_filled.clone();
        for j in 0..d {
            let obs_rows: Vec<usize> = (0..n).filter(|&i| ds.mask.get(i, j)).collect();
            let mis_rows: Vec<usize> = (0..n).filter(|&i| !ds.mask.get(i, j)).collect();
            if mis_rows.is_empty() || obs_rows.len() < 4 {
                continue;
            }
            let other: Vec<usize> = (0..d).filter(|&c| c != j).collect();
            let x_obs = x_filled.select_cols(&other).select_rows(&obs_rows);
            let y_obs: Vec<f64> = obs_rows.iter().map(|&i| ds.values[(i, j)]).collect();
            let model = BoostedModel::fit(
                &x_obs,
                &y_obs,
                self.n_rounds,
                self.learning_rate,
                self.depth,
                rng,
            );
            let x_mis = x_filled.select_cols(&other).select_rows(&mis_rows);
            for (&i, row) in mis_rows.iter().zip(x_mis.rows_iter()) {
                out[(i, j)] = model.predict_row(row);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scis_data::metrics::rmse_vs_ground_truth;
    use scis_data::missing::inject_mcar;

    fn table(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut m = Matrix::zeros(n, 3);
        for i in 0..n {
            let x = rng.uniform();
            m[(i, 0)] = x;
            m[(i, 1)] = 0.3 * x + 0.4;
            m[(i, 2)] = if x > 0.6 { 0.8 } else { 0.2 };
        }
        m
    }

    #[test]
    fn boosting_recovers_structure() {
        let complete = table(300, 1);
        let mut rng = Rng64::seed_from_u64(2);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let out = BoostImputer {
            n_rounds: 50,
            ..Default::default()
        }
        .impute(&ds, &mut rng);
        let err = rmse_vs_ground_truth(&ds, &complete, &out);
        let mean_err = rmse_vs_ground_truth(
            &ds,
            &complete,
            &crate::mean::MeanImputer.impute(&ds, &mut rng),
        );
        assert!(err < mean_err * 0.5, "boost {} vs mean {}", err, mean_err);
    }

    #[test]
    fn more_rounds_fit_tighter_on_train_relationships() {
        let complete = table(300, 3);
        let mut rng = Rng64::seed_from_u64(4);
        let ds = inject_mcar(&complete, 0.2, &mut rng);
        let weak = BoostImputer {
            n_rounds: 2,
            ..Default::default()
        }
        .impute(&ds, &mut rng);
        let strong = BoostImputer {
            n_rounds: 80,
            ..Default::default()
        }
        .impute(&ds, &mut rng);
        let e_weak = rmse_vs_ground_truth(&ds, &complete, &weak);
        let e_strong = rmse_vs_ground_truth(&ds, &complete, &strong);
        assert!(e_strong < e_weak, "strong {} vs weak {}", e_strong, e_weak);
    }

    #[test]
    fn observed_cells_pass_through() {
        let complete = table(100, 5);
        let mut rng = Rng64::seed_from_u64(6);
        let ds = inject_mcar(&complete, 0.3, &mut rng);
        let out = BoostImputer::default().impute(&ds, &mut rng);
        for (i, j, v) in ds.observed_cells() {
            assert_eq!(out[(i, j)], v);
        }
    }
}
