//! DataWig-style imputation (Bießmann et al.): one MLP regressor per
//! incomplete column, trained to predict the column from all other
//! (mean-filled) columns over the rows where it is observed.

use crate::traits::{Imputer, TrainConfig};
use scis_data::Dataset;
use scis_nn::loss::mse;
use scis_nn::{Activation, Mlp, Mode, Optimizer};
use scis_tensor::stats::nan_mean;
use scis_tensor::{Matrix, Rng64};

/// Per-column MLP imputer.
#[derive(Debug, Clone)]
pub struct DataWigImputer {
    /// Shared deep-learning hyper-parameters.
    pub config: TrainConfig,
    /// Hidden width of each per-column regressor.
    pub hidden: usize,
}

impl Default for DataWigImputer {
    fn default() -> Self {
        Self {
            config: TrainConfig::default(),
            hidden: 32,
        }
    }
}

impl Imputer for DataWigImputer {
    fn name(&self) -> &'static str {
        "DataWig"
    }

    fn impute(&mut self, ds: &Dataset, rng: &mut Rng64) -> Matrix {
        let (n, d) = ds.values.shape();
        let means: Vec<f64> = (0..d)
            .map(|j| nan_mean(&ds.values.col(j)).unwrap_or(0.5))
            .collect();
        let x_filled = Matrix::from_fn(n, d, |i, j| {
            let v = ds.values[(i, j)];
            if v.is_nan() {
                means[j]
            } else {
                v
            }
        });
        let mut out = x_filled.clone();

        for j in 0..d {
            let obs_rows: Vec<usize> = (0..n).filter(|&i| ds.mask.get(i, j)).collect();
            let mis_rows: Vec<usize> = (0..n).filter(|&i| !ds.mask.get(i, j)).collect();
            if mis_rows.is_empty() || obs_rows.len() < self.config.batch_size.min(8) {
                continue;
            }
            let other: Vec<usize> = (0..d).filter(|&c| c != j).collect();
            let x_train = x_filled.select_cols(&other).select_rows(&obs_rows);
            let y_train = Matrix::from_vec(
                obs_rows.len(),
                1,
                obs_rows.iter().map(|&i| ds.values[(i, j)]).collect(),
            );
            let mut net = Mlp::builder(other.len())
                .dense(self.hidden, Activation::Relu)
                .dropout(self.config.dropout)
                .dense(1, Activation::Sigmoid)
                .build(rng);
            let mut opt = scis_nn::Adam::new(self.config.learning_rate);
            let bs = self.config.batch_size.min(obs_rows.len());
            for _epoch in 0..self.config.epochs {
                let order = rng.permutation(obs_rows.len());
                for chunk in order.chunks(bs) {
                    let xb = x_train.select_rows(chunk);
                    let yb = y_train.select_rows(chunk);
                    let pred = net.forward(&xb, Mode::Train, rng);
                    let (_, grad) = mse(&pred, &yb);
                    net.zero_grad();
                    net.backward(&grad);
                    opt.step(&mut net);
                }
            }
            let x_mis = x_filled.select_cols(&other).select_rows(&mis_rows);
            let preds = net.forward(&x_mis, Mode::Eval, rng);
            for (k, &i) in mis_rows.iter().enumerate() {
                out[(i, j)] = preds[(k, 0)];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scis_data::metrics::rmse_vs_ground_truth;
    use scis_data::missing::inject_mcar;

    fn linear_table(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut m = Matrix::zeros(n, 3);
        for i in 0..n {
            let x = rng.uniform();
            m[(i, 0)] = x;
            m[(i, 1)] = 0.8 * x + 0.1;
            m[(i, 2)] = 0.9 - 0.7 * x;
        }
        m
    }

    #[test]
    fn learns_linear_links_better_than_mean() {
        let complete = linear_table(400, 1);
        let mut rng = Rng64::seed_from_u64(2);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let mut dw = DataWigImputer {
            config: TrainConfig {
                epochs: 60,
                ..TrainConfig::fast_test()
            },
            hidden: 16,
        };
        let out = dw.impute(&ds, &mut rng);
        let err = rmse_vs_ground_truth(&ds, &complete, &out);
        let mean_err = rmse_vs_ground_truth(
            &ds,
            &complete,
            &crate::mean::MeanImputer.impute(&ds, &mut rng),
        );
        assert!(err < mean_err * 0.7, "datawig {} vs mean {}", err, mean_err);
    }

    #[test]
    fn observed_cells_pass_through() {
        let complete = linear_table(150, 3);
        let mut rng = Rng64::seed_from_u64(4);
        let ds = inject_mcar(&complete, 0.3, &mut rng);
        let mut dw = DataWigImputer {
            config: TrainConfig::fast_test(),
            hidden: 8,
        };
        let out = dw.impute(&ds, &mut rng);
        for (i, j, v) in ds.observed_cells() {
            assert_eq!(out[(i, j)], v);
        }
        assert!(!out.has_nan());
    }

    #[test]
    fn predictions_stay_in_unit_interval() {
        let complete = linear_table(150, 5);
        let mut rng = Rng64::seed_from_u64(6);
        let ds = inject_mcar(&complete, 0.4, &mut rng);
        let mut dw = DataWigImputer {
            config: TrainConfig::fast_test(),
            hidden: 8,
        };
        let out = dw.impute(&ds, &mut rng);
        // sigmoid head guarantees [0,1] for imputed cells
        for i in 0..ds.n_samples() {
            for j in 0..ds.n_features() {
                if !ds.mask.get(i, j) {
                    assert!((0.0..=1.0).contains(&out[(i, j)]));
                }
            }
        }
    }
}
