//! EDDI — partial-VAE imputation (Ma et al.), simplified.
//!
//! The original EDDI encodes the *set* of observed dimensions with a
//! permutation-invariant PointNet encoder. We keep the partial-VAE essence
//! — the encoder sees exactly which dimensions are observed — through the
//! standard mask-concatenation encoding `[x ⊙ m, m]` (DESIGN.md §4
//! documents this simplification). Decoder reconstructs all dimensions;
//! the ELBO scores observed cells only.

use crate::traits::{Imputer, TrainConfig};
use crate::vaei::VaeCore;
use scis_data::Dataset;
use scis_nn::Adam;
use scis_tensor::{Matrix, Rng64};

/// Partial-VAE imputer (EDDI row).
pub struct EddiImputer {
    /// Shared deep-learning hyper-parameters.
    pub config: TrainConfig,
    /// Latent dimensionality.
    pub latent: usize,
    /// Hidden width of encoder/decoder.
    pub hidden: usize,
    /// KL weight β.
    pub beta: f64,
}

impl Default for EddiImputer {
    fn default() -> Self {
        Self {
            config: TrainConfig::default(),
            latent: 10,
            hidden: 32,
            beta: 1e-3,
        }
    }
}

impl Imputer for EddiImputer {
    fn name(&self) -> &'static str {
        "EDDI"
    }

    fn impute(&mut self, ds: &Dataset, rng: &mut Rng64) -> Matrix {
        let (n, d) = ds.values.shape();
        let x_zero = ds.values_filled(0.0);
        let mask = ds.dense_mask();
        // partial encoding: [x⊙m, m] — zeros where missing plus the mask
        let enc_input = x_zero.hadamard(&mask).hcat(&mask);

        let hidden = [self.hidden];
        let mut core = VaeCore::new(
            2 * d,
            self.latent.min((2 * d).max(2)),
            &hidden,
            &hidden,
            d,
            rng,
        );
        let mut opt_e = Adam::new(self.config.learning_rate);
        let mut opt_d = Adam::new(self.config.learning_rate);
        let bs = self.config.batch_size.min(n);
        for _epoch in 0..self.config.epochs {
            let order = rng.permutation(n);
            for chunk in order.chunks(bs) {
                let ib = enc_input.select_rows(chunk);
                let xb = x_zero.select_rows(chunk);
                let mb = mask.select_rows(chunk);
                core.train_step(&ib, &xb, &mb, self.beta, &mut opt_e, &mut opt_d, rng);
            }
        }
        let recon = core.reconstruct_mean(&enc_input, rng);
        ds.merge_imputed(&recon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::correlated_table;
    use scis_data::metrics::rmse_vs_ground_truth;
    use scis_data::missing::inject_mcar;

    fn fast() -> EddiImputer {
        EddiImputer {
            config: TrainConfig {
                epochs: 80,
                batch_size: 64,
                learning_rate: 0.005,
                dropout: 0.0,
            },
            latent: 4,
            hidden: 24,
            beta: 1e-4,
        }
    }

    #[test]
    fn beats_mean_on_correlated_data() {
        let complete = correlated_table(400, 21);
        let mut rng = Rng64::seed_from_u64(22);
        let ds = inject_mcar(&complete, 0.3, &mut rng);
        let out = fast().impute(&ds, &mut rng);
        let e = rmse_vs_ground_truth(&ds, &complete, &out);
        let e_mean = rmse_vs_ground_truth(
            &ds,
            &complete,
            &crate::mean::MeanImputer.impute(&ds, &mut rng),
        );
        assert!(e < e_mean, "eddi {} vs mean {}", e, e_mean);
    }

    #[test]
    fn mask_aware_encoding_distinguishes_missingness_patterns() {
        // same filled values, different masks → different reconstructions
        let complete = correlated_table(200, 23);
        let mut rng = Rng64::seed_from_u64(24);
        let ds = inject_mcar(&complete, 0.3, &mut rng);
        let mut imp = fast();
        let out = imp.impute(&ds, &mut rng);
        assert_eq!(out.shape(), complete.shape());
        assert!(!out.has_nan());
    }

    #[test]
    fn observed_cells_pass_through() {
        let complete = correlated_table(120, 25);
        let mut rng = Rng64::seed_from_u64(26);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let out = fast().impute(&ds, &mut rng);
        for (i, j, v) in ds.observed_cells() {
            assert_eq!(out[(i, j)], v);
        }
    }
}
