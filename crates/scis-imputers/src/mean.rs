//! Statistical imputers: column mean and column median.
//!
//! The weakest baselines — they ignore cross-feature structure entirely.
//! Every model-based imputer in the suite is expected to beat them on
//! correlated data (an invariant the integration tests enforce).

use crate::traits::Imputer;
use scis_data::Dataset;
use scis_tensor::stats::{nan_mean, nan_median};
use scis_tensor::{Matrix, Rng64};

/// Fills each missing cell with its column's observed mean.
#[derive(Debug, Default, Clone)]
pub struct MeanImputer;

/// Fills each missing cell with its column's observed median.
#[derive(Debug, Default, Clone)]
pub struct MedianImputer;

fn fill_with(ds: &Dataset, stat: impl Fn(&[f64]) -> Option<f64>) -> Matrix {
    let fills: Vec<f64> = (0..ds.n_features())
        .map(|j| stat(&ds.values.col(j)).unwrap_or(0.5))
        .collect();
    Matrix::from_fn(ds.n_samples(), ds.n_features(), |i, j| {
        let v = ds.values[(i, j)];
        if v.is_nan() {
            fills[j]
        } else {
            v
        }
    })
}

impl Imputer for MeanImputer {
    fn name(&self) -> &'static str {
        "Mean"
    }

    fn impute(&mut self, ds: &Dataset, _rng: &mut Rng64) -> Matrix {
        fill_with(ds, nan_mean)
    }
}

impl Imputer for MedianImputer {
    fn name(&self) -> &'static str {
        "Median"
    }

    fn impute(&mut self, ds: &Dataset, _rng: &mut Rng64) -> Matrix {
        fill_with(ds, nan_median)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let v = Matrix::from_rows(&[
            &[1.0, 10.0],
            &[3.0, f64::NAN],
            &[f64::NAN, 40.0],
            &[5.0, 100.0],
        ]);
        Dataset::from_values(v)
    }

    #[test]
    fn mean_fills_column_mean() {
        let ds = toy();
        let mut rng = Rng64::seed_from_u64(0);
        let out = MeanImputer.impute(&ds, &mut rng);
        assert_eq!(out[(2, 0)], 3.0); // mean of 1,3,5
        assert_eq!(out[(1, 1)], 50.0); // mean of 10,40,100
                                       // observed pass through
        assert_eq!(out[(0, 0)], 1.0);
        assert!(!out.has_nan());
    }

    #[test]
    fn median_fills_column_median() {
        let ds = toy();
        let mut rng = Rng64::seed_from_u64(0);
        let out = MedianImputer.impute(&ds, &mut rng);
        assert_eq!(out[(2, 0)], 3.0);
        assert_eq!(out[(1, 1)], 40.0); // median of 10,40,100
    }

    #[test]
    fn all_missing_column_gets_fallback() {
        let v = Matrix::from_rows(&[&[f64::NAN], &[f64::NAN]]);
        let ds = Dataset::from_values(v);
        let mut rng = Rng64::seed_from_u64(0);
        let out = MeanImputer.impute(&ds, &mut rng);
        assert_eq!(out[(0, 0)], 0.5);
    }
}
