//! MICE — Multivariate Imputation by Chained Equations (Royston & White).
//!
//! Each incomplete column is regressed (ridge) on all other columns over the
//! rows where it is observed; missing entries are replaced by predictions
//! (plus residual noise for the stochastic draws of multiple imputation).
//! The cycle repeats `n_cycles` times; `n_imputations` independent chains
//! are averaged — the paper's setting uses 20 imputations.

use crate::traits::Imputer;
use scis_data::Dataset;
use scis_tensor::linalg::ridge_fit;
use scis_tensor::stats::nan_mean;
use scis_tensor::{Matrix, Rng64};

/// MICE imputer with ridge-regression conditional models.
#[derive(Debug, Clone)]
pub struct MiceImputer {
    /// Gibbs-style cycles per chain.
    pub n_cycles: usize,
    /// Independent chains averaged ("imputation times" in the paper: 20).
    pub n_imputations: usize,
    /// Ridge penalty for the per-column regressions.
    pub ridge: f64,
    /// Std of residual noise added to each draw (0 = deterministic
    /// regression imputation).
    pub noise: f64,
}

impl Default for MiceImputer {
    fn default() -> Self {
        Self {
            n_cycles: 5,
            n_imputations: 20,
            ridge: 1e-3,
            noise: 0.02,
        }
    }
}

impl MiceImputer {
    fn run_chain(&self, ds: &Dataset, rng: &mut Rng64) -> Matrix {
        let (n, d) = ds.values.shape();
        // init: column means
        let means: Vec<f64> = (0..d)
            .map(|j| nan_mean(&ds.values.col(j)).unwrap_or(0.5))
            .collect();
        let mut x = Matrix::from_fn(n, d, |i, j| {
            let v = ds.values[(i, j)];
            if v.is_nan() {
                means[j]
            } else {
                v
            }
        });

        let incomplete_cols: Vec<usize> = (0..d)
            .filter(|&j| ds.mask.col_observed_count(j) < n)
            .collect();

        for _cycle in 0..self.n_cycles {
            for &j in &incomplete_cols {
                let obs_rows: Vec<usize> = (0..n).filter(|&i| ds.mask.get(i, j)).collect();
                if obs_rows.len() < 2 {
                    continue; // keep mean fill
                }
                // design: other columns + intercept, over observed rows
                let other: Vec<usize> = (0..d).filter(|&c| c != j).collect();
                let mut xt = x.select_cols(&other).select_rows(&obs_rows);
                xt = xt.hcat(&Matrix::ones(obs_rows.len(), 1));
                let y: Vec<f64> = obs_rows.iter().map(|&i| ds.values[(i, j)]).collect();
                let Ok(w) = ridge_fit(&xt, &y, self.ridge) else {
                    continue;
                };
                // predict missing rows
                for i in 0..n {
                    if !ds.mask.get(i, j) {
                        let mut pred = w[other.len()]; // intercept
                        for (k, &c) in other.iter().enumerate() {
                            pred += w[k] * x[(i, c)];
                        }
                        if self.noise > 0.0 {
                            pred += rng.normal_with(0.0, self.noise);
                        }
                        x[(i, j)] = pred;
                    }
                }
            }
        }
        x
    }
}

impl Imputer for MiceImputer {
    fn name(&self) -> &'static str {
        "MICE"
    }

    fn impute(&mut self, ds: &Dataset, rng: &mut Rng64) -> Matrix {
        assert!(
            self.n_imputations > 0,
            "MiceImputer: need at least one imputation"
        );
        let (n, d) = ds.values.shape();
        let mut acc = Matrix::zeros(n, d);
        for _ in 0..self.n_imputations {
            acc.axpy(1.0, &self.run_chain(ds, rng));
        }
        let avg = acc.scale(1.0 / self.n_imputations as f64);
        ds.merge_imputed(&avg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scis_data::metrics::rmse_vs_ground_truth;
    use scis_data::missing::inject_mcar;

    /// Linearly dependent columns: y = 2x + 0.1, z = -x + 0.9.
    fn linear_table(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut m = Matrix::zeros(n, 3);
        for i in 0..n {
            let x = rng.uniform();
            m[(i, 0)] = x;
            m[(i, 1)] = 2.0 * x + 0.1 + rng.normal_with(0.0, 0.01);
            m[(i, 2)] = -x + 0.9 + rng.normal_with(0.0, 0.01);
        }
        m
    }

    /// Hide exactly one random cell in `frac` of the rows, so every missing
    /// cell is recoverable from the rest of its row.
    fn one_cell_per_row_missing(complete: &Matrix, frac: f64, rng: &mut Rng64) -> Dataset {
        let mut ds = Dataset::from_values(complete.clone());
        for i in 0..complete.rows() {
            if rng.bernoulli(frac) {
                let j = rng.gen_range(complete.cols());
                ds.values[(i, j)] = f64::NAN;
                ds.mask.set(i, j, false);
            }
        }
        ds
    }

    #[test]
    fn recovers_linear_relationships() {
        let complete = linear_table(300, 1);
        let mut rng = Rng64::seed_from_u64(2);
        let ds = one_cell_per_row_missing(&complete, 0.5, &mut rng);
        let out = MiceImputer {
            noise: 0.0,
            ..Default::default()
        }
        .impute(&ds, &mut rng);
        let err = rmse_vs_ground_truth(&ds, &complete, &out);
        assert!(err < 0.05, "rmse {}", err);
    }

    #[test]
    fn beats_mean_imputation_substantially() {
        let complete = linear_table(300, 3);
        let mut rng = Rng64::seed_from_u64(4);
        let ds = inject_mcar(&complete, 0.3, &mut rng);
        let mice_out = MiceImputer::default().impute(&ds, &mut rng);
        let mean_out = crate::mean::MeanImputer.impute(&ds, &mut rng);
        let e_mice = rmse_vs_ground_truth(&ds, &complete, &mice_out);
        let e_mean = rmse_vs_ground_truth(&ds, &complete, &mean_out);
        assert!(e_mice < e_mean * 0.3, "mice {} vs mean {}", e_mice, e_mean);
    }

    #[test]
    fn averaging_reduces_noise_of_multiple_imputations() {
        let complete = linear_table(200, 5);
        let mut rng = Rng64::seed_from_u64(6);
        let ds = inject_mcar(&complete, 0.3, &mut rng);
        let single = MiceImputer {
            n_imputations: 1,
            noise: 0.1,
            ..Default::default()
        }
        .impute(&ds, &mut rng);
        let multi = MiceImputer {
            n_imputations: 20,
            noise: 0.1,
            ..Default::default()
        }
        .impute(&ds, &mut rng);
        let e1 = rmse_vs_ground_truth(&ds, &complete, &single);
        let e20 = rmse_vs_ground_truth(&ds, &complete, &multi);
        assert!(e20 < e1, "single {} vs averaged {}", e1, e20);
    }

    #[test]
    fn observed_cells_pass_through() {
        let complete = linear_table(100, 7);
        let mut rng = Rng64::seed_from_u64(8);
        let ds = inject_mcar(&complete, 0.2, &mut rng);
        let out = MiceImputer::default().impute(&ds, &mut rng);
        for (i, j, v) in ds.observed_cells() {
            assert_eq!(out[(i, j)], v);
        }
    }

    #[test]
    fn handles_fully_observed_dataset() {
        let complete = linear_table(50, 9);
        let ds = Dataset::from_values(complete.clone());
        let mut rng = Rng64::seed_from_u64(10);
        let out = MiceImputer::default().impute(&ds, &mut rng);
        assert_eq!(out, complete);
    }
}
