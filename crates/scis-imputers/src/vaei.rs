//! VAEI — variational-autoencoder imputation (McCoy et al.), plus the
//! reusable VAE machinery shared by the EDDI and HIVAE baselines.
//!
//! Paper's architecture: encoder and decoder are fully connected with two
//! hidden layers of 20 neurons; the latent space is 10-dimensional. Training
//! maximizes the observed-cell ELBO: masked reconstruction MSE + β·KL, with
//! the reparameterization trick plumbed manually through our backprop nets.

use crate::traits::{Imputer, TrainConfig};
use scis_data::Dataset;
use scis_nn::loss::weighted_mse;
use scis_nn::{Activation, Adam, Mlp, Mode, Optimizer};
use scis_tensor::stats::nan_mean;
use scis_tensor::{Matrix, Rng64};

/// Encoder–decoder pair with reparameterized latent, usable by any of the
/// VAE-family imputers.
pub(crate) struct VaeCore {
    pub encoder: Mlp,
    pub decoder: Mlp,
    pub latent: usize,
}

impl VaeCore {
    /// Builds encoder `input_dim → hidden… → 2·latent` and decoder
    /// `latent → hidden… → out_dim (sigmoid)`.
    pub fn new(
        input_dim: usize,
        latent: usize,
        enc_hidden: &[usize],
        dec_hidden: &[usize],
        out_dim: usize,
        rng: &mut Rng64,
    ) -> Self {
        Self::with_head(
            input_dim,
            latent,
            enc_hidden,
            dec_hidden,
            out_dim,
            Activation::Sigmoid,
            rng,
        )
    }

    /// Like [`VaeCore::new`] but with an explicit decoder head activation
    /// (HIVAE uses `Identity` so per-type likelihood heads can be applied
    /// to raw outputs).
    pub fn with_head(
        input_dim: usize,
        latent: usize,
        enc_hidden: &[usize],
        dec_hidden: &[usize],
        out_dim: usize,
        head: Activation,
        rng: &mut Rng64,
    ) -> Self {
        let mut eb = Mlp::builder(input_dim);
        for &h in enc_hidden {
            eb = eb.dense(h, Activation::Relu);
        }
        let encoder = eb.dense(2 * latent, Activation::Identity).build(rng);
        let mut db = Mlp::builder(latent);
        for &h in dec_hidden {
            db = db.dense(h, Activation::Relu);
        }
        let decoder = db.dense(out_dim, head).build(rng);
        Self {
            encoder,
            decoder,
            latent,
        }
    }

    /// One ELBO gradient step on a batch. `target`/`weight` define the
    /// masked reconstruction term; returns the batch loss.
    #[allow(clippy::too_many_arguments)]
    pub fn train_step(
        &mut self,
        input: &Matrix,
        target: &Matrix,
        weight: &Matrix,
        beta: f64,
        opt_enc: &mut Adam,
        opt_dec: &mut Adam,
        rng: &mut Rng64,
    ) -> f64 {
        self.train_step_custom(input, beta, opt_enc, opt_dec, rng, |recon| {
            weighted_mse(recon, target, weight)
        })
    }

    /// ELBO step with an arbitrary reconstruction loss on the decoder
    /// output: `recon_loss(decoder_out) -> (loss, d loss / d decoder_out)`.
    /// This is how HIVAE plugs in heterogeneous per-type likelihoods.
    pub fn train_step_custom(
        &mut self,
        input: &Matrix,
        beta: f64,
        opt_enc: &mut Adam,
        opt_dec: &mut Adam,
        rng: &mut Rng64,
        recon_fn: impl FnOnce(&Matrix) -> (f64, Matrix),
    ) -> f64 {
        let b = input.rows();
        let l = self.latent;
        let enc_out = self.encoder.forward(input, Mode::Train, rng);
        debug_assert_eq!(enc_out.cols(), 2 * l);
        let mu = enc_out.select_cols(&(0..l).collect::<Vec<_>>());
        let logvar = enc_out.select_cols(&(l..2 * l).collect::<Vec<_>>());
        let eps = Matrix::from_fn(b, l, |_, _| rng.normal());
        // z = mu + eps ⊙ exp(logvar/2)
        let std = logvar.map(|v| (0.5 * v).exp());
        let z = mu.add(&eps.hadamard(&std));

        let recon = self.decoder.forward(&z, Mode::Train, rng);
        let (recon_loss, grad_recon) = recon_fn(&recon);

        // KL(q‖N(0,I)) = −½ Σ (1 + logvar − mu² − e^{logvar}) / batch
        let mut kl = 0.0;
        for (m, v) in mu.as_slice().iter().zip(logvar.as_slice()) {
            kl += -(0.5) * (1.0 + v - m * m - v.exp());
        }
        kl /= b as f64;

        self.decoder.zero_grad();
        let grad_z = self.decoder.backward(&grad_recon);

        // route grad_z into mu and logvar, add the KL gradients
        let kl_scale = beta / b as f64;
        let grad_mu = grad_z.add(&mu.scale(kl_scale));
        let mut grad_logvar = grad_z.hadamard(&eps).hadamard(&std).scale(0.5);
        grad_logvar.zip_inplace(&logvar, |g, v| g + kl_scale * 0.5 * (v.exp() - 1.0));
        let grad_enc_out = grad_mu.hcat(&grad_logvar);
        self.encoder.zero_grad();
        self.encoder.backward(&grad_enc_out);

        opt_dec.step(&mut self.decoder);
        opt_enc.step(&mut self.encoder);
        recon_loss + beta * kl
    }

    /// Deterministic reconstruction through the latent mean (`z = μ`).
    pub fn reconstruct_mean(&mut self, input: &Matrix, rng: &mut Rng64) -> Matrix {
        let l = self.latent;
        let enc_out = self.encoder.forward(input, Mode::Eval, rng);
        let mu = enc_out.select_cols(&(0..l).collect::<Vec<_>>());
        self.decoder.forward(&mu, Mode::Eval, rng)
    }
}

/// VAE imputer (paper row "VAEI").
pub struct VaeImputer {
    /// Shared deep-learning hyper-parameters.
    pub config: TrainConfig,
    /// Latent dimensionality (paper: 10).
    pub latent: usize,
    /// Hidden width (paper: two hidden layers of 20).
    pub hidden: usize,
    /// KL weight β.
    pub beta: f64,
}

impl Default for VaeImputer {
    fn default() -> Self {
        Self {
            config: TrainConfig::default(),
            latent: 10,
            hidden: 20,
            beta: 1e-3,
        }
    }
}

impl Imputer for VaeImputer {
    fn name(&self) -> &'static str {
        "VAEI"
    }

    fn impute(&mut self, ds: &Dataset, rng: &mut Rng64) -> Matrix {
        let (n, d) = ds.values.shape();
        let means: Vec<f64> = (0..d)
            .map(|j| nan_mean(&ds.values.col(j)).unwrap_or(0.5))
            .collect();
        let x_filled = Matrix::from_fn(n, d, |i, j| {
            let v = ds.values[(i, j)];
            if v.is_nan() {
                means[j]
            } else {
                v
            }
        });
        let mask = ds.dense_mask();

        let hidden = [self.hidden, self.hidden];
        let mut core = VaeCore::new(d, self.latent.min(d.max(2)), &hidden, &hidden, d, rng);
        let mut opt_e = Adam::new(self.config.learning_rate);
        let mut opt_d = Adam::new(self.config.learning_rate);
        let bs = self.config.batch_size.min(n);
        for _epoch in 0..self.config.epochs {
            let order = rng.permutation(n);
            for chunk in order.chunks(bs) {
                let xb = x_filled.select_rows(chunk);
                let mb = mask.select_rows(chunk);
                core.train_step(&xb, &xb, &mb, self.beta, &mut opt_e, &mut opt_d, rng);
            }
        }
        let recon = core.reconstruct_mean(&x_filled, rng);
        ds.merge_imputed(&recon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scis_data::metrics::rmse_vs_ground_truth;
    use scis_data::missing::inject_mcar;

    use crate::testutil::correlated_table;

    fn fast_vae() -> VaeImputer {
        VaeImputer {
            config: TrainConfig {
                epochs: 80,
                batch_size: 64,
                learning_rate: 0.005,
                dropout: 0.0,
            },
            latent: 4,
            hidden: 16,
            beta: 1e-4,
        }
    }

    #[test]
    fn vae_beats_mean_on_correlated_data() {
        let complete = correlated_table(400, 1);
        let mut rng = Rng64::seed_from_u64(2);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let out = fast_vae().impute(&ds, &mut rng);
        let e = rmse_vs_ground_truth(&ds, &complete, &out);
        let e_mean = rmse_vs_ground_truth(
            &ds,
            &complete,
            &crate::mean::MeanImputer.impute(&ds, &mut rng),
        );
        assert!(e < e_mean, "vae {} vs mean {}", e, e_mean);
    }

    #[test]
    fn elbo_decreases_during_training() {
        let complete = correlated_table(200, 3);
        let ds = Dataset::from_values(complete);
        let mut rng = Rng64::seed_from_u64(4);
        let x = ds.values_filled(0.5);
        let mask = ds.dense_mask();
        let mut core = VaeCore::new(4, 3, &[16], &[16], 4, &mut rng);
        let mut oe = Adam::new(0.005);
        let mut od = Adam::new(0.005);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            let l = core.train_step(&x, &x, &mask, 1e-4, &mut oe, &mut od, &mut rng);
            first.get_or_insert(l);
            last = l;
        }
        assert!(
            last < first.unwrap() * 0.8,
            "{} -> {}",
            first.unwrap(),
            last
        );
    }

    #[test]
    fn reconstruction_is_deterministic_in_eval() {
        let complete = correlated_table(50, 5);
        let ds = Dataset::from_values(complete);
        let mut rng = Rng64::seed_from_u64(6);
        let x = ds.values_filled(0.5);
        let mut core = VaeCore::new(4, 3, &[8], &[8], 4, &mut rng);
        let a = core.reconstruct_mean(&x, &mut rng);
        let b = core.reconstruct_mean(&x, &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn observed_cells_pass_through() {
        let complete = correlated_table(150, 7);
        let mut rng = Rng64::seed_from_u64(8);
        let ds = inject_mcar(&complete, 0.3, &mut rng);
        let out = fast_vae().impute(&ds, &mut rng);
        for (i, j, v) in ds.observed_cells() {
            assert_eq!(out[(i, j)], v);
        }
    }
}
