//! HIVAE — heterogeneous incomplete VAE (Nazábal et al.).
//!
//! Paper architecture: *one* dense layer of 10 neurons for all encoder and
//! decoder parameters. The defining ingredient is heterogeneity: the
//! decoder has a **per-type likelihood head** per column —
//!
//! * continuous column → 1 sigmoid unit scored by masked Gaussian (MSE)
//!   likelihood;
//! * categorical column with `L` levels → `L` logits scored by softmax
//!   cross-entropy over the observed rows; imputation takes the argmax
//!   level (mapped back to its normalized ordinal value `level/(L−1)`).
//!
//! The encoder follows the partial-VAE mask-concatenation convention
//! `[x ⊙ m, m]` (DESIGN.md §4 — the original's hierarchical `s`-code is
//! the remaining simplification).

use crate::traits::{Imputer, TrainConfig};
use crate::vaei::VaeCore;
use scis_data::{ColumnKind, Dataset};
use scis_nn::loss::{softmax_cross_entropy, softmax_rows};
use scis_nn::{Activation, Adam, Mode};
use scis_tensor::{Matrix, Rng64};

/// Layout of the heterogeneous decoder output: each column owns a slice of
/// decoder units.
struct HeadLayout {
    /// `(offset, width)` per data column; width 1 = continuous head,
    /// width L = categorical head with L logits.
    spans: Vec<(usize, usize)>,
    total: usize,
}

impl HeadLayout {
    fn new(kinds: &[ColumnKind]) -> Self {
        let mut spans = Vec::with_capacity(kinds.len());
        let mut off = 0;
        for k in kinds {
            let w = match k {
                ColumnKind::Continuous => 1,
                ColumnKind::Categorical { levels } => (*levels).max(2),
            };
            spans.push((off, w));
            off += w;
        }
        Self { spans, total: off }
    }
}

/// Heterogeneous-data VAE imputer (HIVAE row).
pub struct HivaeImputer {
    /// Shared deep-learning hyper-parameters.
    pub config: TrainConfig,
    /// Latent dimensionality.
    pub latent: usize,
    /// Single dense layer width (paper: 10).
    pub hidden: usize,
    /// KL weight β.
    pub beta: f64,
    /// Weight of the categorical cross-entropy relative to the Gaussian
    /// term (both are means; CE is naturally larger).
    pub categorical_weight: f64,
    /// Decode categorical columns by argmax (exact levels) instead of the
    /// RMSE-minimizing expected level. Default false.
    pub argmax_categorical: bool,
}

impl Default for HivaeImputer {
    fn default() -> Self {
        Self {
            config: TrainConfig::default(),
            latent: 5,
            hidden: 10,
            beta: 1e-3,
            categorical_weight: 0.2,
            argmax_categorical: false,
        }
    }
}

impl HivaeImputer {
    /// Heterogeneous reconstruction loss on the raw decoder output.
    /// Returns `(loss, d loss / d decoder_out)`.
    fn hetero_loss(
        &self,
        raw: &Matrix,
        xb: &Matrix,
        mb: &Matrix,
        layout: &HeadLayout,
        kinds: &[ColumnKind],
    ) -> (f64, Matrix) {
        let b = raw.rows();
        let mut grad = Matrix::zeros(b, layout.total);
        let mut loss = 0.0;
        for (j, kind) in kinds.iter().enumerate() {
            let (off, w) = layout.spans[j];
            match kind {
                ColumnKind::Continuous => {
                    // Gaussian head through a sigmoid squashing
                    let mut denom = 0.0f64;
                    for i in 0..b {
                        if mb[(i, j)] > 0.5 {
                            denom += 1.0;
                        }
                    }
                    let denom = denom.max(1.0);
                    for i in 0..b {
                        if mb[(i, j)] <= 0.5 {
                            continue;
                        }
                        let z = raw[(i, off)];
                        let p = 1.0 / (1.0 + (-z).exp());
                        let diff = p - xb[(i, j)];
                        loss += diff * diff / denom;
                        grad[(i, off)] += 2.0 * diff * p * (1.0 - p) / denom;
                    }
                }
                ColumnKind::Categorical { levels } => {
                    let l = (*levels).max(2);
                    // gather observed rows and their target classes
                    let rows: Vec<usize> = (0..b).filter(|&i| mb[(i, j)] > 0.5).collect();
                    if rows.is_empty() {
                        continue;
                    }
                    let logits = Matrix::from_fn(rows.len(), w, |k, c| raw[(rows[k], off + c)]);
                    let targets: Vec<usize> = rows
                        .iter()
                        .map(|&i| {
                            // normalized ordinal value → class index
                            ((xb[(i, j)] * (l - 1) as f64).round() as isize)
                                .clamp(0, l as isize - 1) as usize
                        })
                        .collect();
                    let (ce, ce_grad) = softmax_cross_entropy(&logits, &targets);
                    loss += self.categorical_weight * ce;
                    for (k, &i) in rows.iter().enumerate() {
                        for c in 0..w {
                            grad[(i, off + c)] += self.categorical_weight * ce_grad[(k, c)];
                        }
                    }
                }
            }
        }
        (loss, grad)
    }

    /// Maps raw decoder output back to normalized data space.
    fn decode_values(&self, raw: &Matrix, layout: &HeadLayout, kinds: &[ColumnKind]) -> Matrix {
        let b = raw.rows();
        let mut out = Matrix::zeros(b, kinds.len());
        for (j, kind) in kinds.iter().enumerate() {
            let (off, w) = layout.spans[j];
            match kind {
                ColumnKind::Continuous => {
                    for i in 0..b {
                        out[(i, j)] = 1.0 / (1.0 + (-raw[(i, off)]).exp());
                    }
                }
                ColumnKind::Categorical { levels } => {
                    let l = (*levels).max(2);
                    let logits = Matrix::from_fn(b, w, |i, c| raw[(i, off + c)]);
                    let probs = softmax_rows(&logits);
                    for i in 0..b {
                        if self.argmax_categorical {
                            let mut best = 0usize;
                            let mut best_p = f64::NEG_INFINITY;
                            for c in 0..w {
                                if probs[(i, c)] > best_p {
                                    best_p = probs[(i, c)];
                                    best = c;
                                }
                            }
                            out[(i, j)] = best as f64 / (l - 1) as f64;
                        } else {
                            // expected ordinal level under the softmax —
                            // hedges when uncertain, minimizing RMSE
                            let mut ev = 0.0;
                            for c in 0..w {
                                ev += probs[(i, c)] * c as f64;
                            }
                            out[(i, j)] = (ev / (l - 1) as f64).clamp(0.0, 1.0);
                        }
                    }
                }
            }
        }
        out
    }
}

impl Imputer for HivaeImputer {
    fn name(&self) -> &'static str {
        "HIVAE"
    }

    fn impute(&mut self, ds: &Dataset, rng: &mut Rng64) -> Matrix {
        let (n, d) = ds.values.shape();
        let x_zero = ds.values_filled(0.0);
        let mask = ds.dense_mask();
        let enc_input = x_zero.hadamard(&mask).hcat(&mask);
        let layout = HeadLayout::new(&ds.kinds);

        let hidden = [self.hidden];
        let mut core = VaeCore::with_head(
            2 * d,
            self.latent.min((2 * d).max(2)),
            &hidden,
            &hidden,
            layout.total,
            Activation::Identity,
            rng,
        );
        let mut opt_e = Adam::new(self.config.learning_rate);
        let mut opt_d = Adam::new(self.config.learning_rate);
        let bs = self.config.batch_size.min(n);
        for _epoch in 0..self.config.epochs {
            let order = rng.permutation(n);
            for chunk in order.chunks(bs) {
                let ib = enc_input.select_rows(chunk);
                let xb = x_zero.select_rows(chunk);
                let mb = mask.select_rows(chunk);
                core.train_step_custom(&ib, self.beta, &mut opt_e, &mut opt_d, rng, |raw| {
                    self.hetero_loss(raw, &xb, &mb, &layout, &ds.kinds)
                });
            }
        }
        let raw = core.reconstruct_mean(&enc_input, rng);
        let recon = self.decode_values(&raw, &layout, &ds.kinds);
        let _ = Mode::Eval; // (reconstruct_mean already runs in eval mode)
        ds.merge_imputed(&recon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::correlated_table;
    use scis_data::metrics::rmse_vs_ground_truth;
    use scis_data::missing::inject_mcar;
    use scis_data::MaskMatrix;

    fn fast() -> HivaeImputer {
        HivaeImputer {
            config: TrainConfig {
                epochs: 80,
                batch_size: 64,
                learning_rate: 0.005,
                dropout: 0.0,
            },
            latent: 4,
            hidden: 16,
            beta: 1e-4,
            categorical_weight: 0.2,
            argmax_categorical: false,
        }
    }

    #[test]
    fn head_layout_allocates_units_per_type() {
        let kinds = vec![
            ColumnKind::Continuous,
            ColumnKind::Categorical { levels: 4 },
            ColumnKind::Continuous,
            ColumnKind::Categorical { levels: 2 },
        ];
        let layout = HeadLayout::new(&kinds);
        assert_eq!(layout.total, 1 + 4 + 1 + 2);
        assert_eq!(layout.spans, vec![(0, 1), (1, 4), (5, 1), (6, 2)]);
    }

    #[test]
    fn beats_mean_on_correlated_data() {
        let complete = correlated_table(400, 31);
        let mut rng = Rng64::seed_from_u64(32);
        let ds = inject_mcar(&complete, 0.3, &mut rng);
        let out = fast().impute(&ds, &mut rng);
        let e = rmse_vs_ground_truth(&ds, &complete, &out);
        let e_mean = rmse_vs_ground_truth(
            &ds,
            &complete,
            &crate::mean::MeanImputer.impute(&ds, &mut rng),
        );
        assert!(e < e_mean, "hivae {} vs mean {}", e, e_mean);
    }

    #[test]
    fn categorical_head_predicts_exact_levels() {
        let mut rng = Rng64::seed_from_u64(33);
        // categorical column perfectly determined by the continuous one
        let complete = Matrix::from_fn(400, 2, |_, j| {
            let _ = j;
            0.0
        });
        let mut complete = complete;
        for i in 0..400 {
            let t = rng.uniform();
            complete[(i, 0)] = t;
            let level = if t < 0.33 {
                0.0
            } else if t < 0.66 {
                1.0
            } else {
                2.0
            };
            complete[(i, 1)] = level / 2.0; // normalized ordinal
        }
        let mut mask = MaskMatrix::all_observed(400, 2);
        for i in (0..400).step_by(4) {
            mask.set(i, 1, false);
        }
        let ds = Dataset {
            values: Matrix::from_fn(400, 2, |i, j| {
                if mask.get(i, j) {
                    complete[(i, j)]
                } else {
                    f64::NAN
                }
            }),
            mask,
            kinds: vec![
                ColumnKind::Continuous,
                ColumnKind::Categorical { levels: 3 },
            ],
        };
        let mut imp = fast();
        imp.argmax_categorical = true;
        let out = imp.impute(&ds, &mut rng);
        let mut correct = 0;
        let mut total = 0;
        for i in (0..400).step_by(4) {
            let v = out[(i, 1)];
            assert!(
                (v - 0.0).abs() < 1e-9 || (v - 0.5).abs() < 1e-9 || (v - 1.0).abs() < 1e-9,
                "not an exact level: {}",
                v
            );
            total += 1;
            if (v - complete[(i, 1)]).abs() < 1e-9 {
                correct += 1;
            }
        }
        // the level is perfectly predictable from the observed feature
        assert!(
            correct as f64 / total as f64 > 0.7,
            "level accuracy {}/{}",
            correct,
            total
        );
    }

    #[test]
    fn observed_cells_pass_through() {
        let complete = correlated_table(100, 35);
        let mut rng = Rng64::seed_from_u64(36);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let out = fast().impute(&ds, &mut rng);
        for (i, j, v) in ds.observed_cells() {
            assert_eq!(out[(i, j)], v);
        }
    }
}
