//! RRSI — Sinkhorn-divergence batch imputation (Muzellec et al., "Missing
//! data imputation using optimal transport", the paper's RRSI row).
//!
//! The imputed values themselves are the free parameters: the method
//! repeatedly samples two batches of the current imputed matrix and takes a
//! gradient step on the missing entries to *reduce the Sinkhorn divergence
//! between the two batches*. As the paper's §IV.A discussion points out,
//! this objective drags the imputations toward a mixture of the observed
//! and initially-imputed distributions rather than the true underlying one
//! — the contrast that motivates the MS divergence. We keep the method
//! faithful to that behaviour.

use crate::traits::{Imputer, TrainConfig};
use scis_data::Dataset;
use scis_ot::{ms_loss_grad, SinkhornOptions};
use scis_tensor::stats::nan_mean;
use scis_tensor::{Matrix, Rng64};

/// Sinkhorn batch imputer.
#[derive(Debug, Clone)]
pub struct RrsiImputer {
    /// Training schedule (epochs ≈ gradient rounds).
    pub config: TrainConfig,
    /// Sinkhorn solver options. λ must sit *below* the within-cluster
    /// squared distances of the data or the divergence's debiasing term
    /// cancels the imputation signal.
    pub sinkhorn: SinkhornOptions,
    /// Std of the noise added to the mean initialization.
    pub init_noise: f64,
    /// SGD step size on the imputed cells (the loss is already scaled by
    /// 1/(2n), hence the large default).
    pub step_size: f64,
}

impl Default for RrsiImputer {
    fn default() -> Self {
        Self {
            config: TrainConfig::default(),
            sinkhorn: SinkhornOptions {
                lambda: 0.002,
                max_iters: 500,
                tol: 1e-7,
                ..Default::default()
            },
            init_noise: 0.1,
            step_size: 100.0,
        }
    }
}

/// Plain SGD on the free (missing) cells. Adam is deliberately *not* used
/// here: its magnitude normalization turns the small, noisy batch gradients
/// into constant-size steps — a random walk that degrades the imputation
/// (observed empirically; see the hyper-parameter notes in DESIGN.md).
struct CellSgd {
    lr: f64,
}

impl CellSgd {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        for (p, &g) in params.iter_mut().zip(grads) {
            *p -= self.lr * g;
        }
    }
}

impl Imputer for RrsiImputer {
    fn name(&self) -> &'static str {
        "RRSI"
    }

    fn impute(&mut self, ds: &Dataset, rng: &mut Rng64) -> Matrix {
        let (n, d) = ds.values.shape();
        let means: Vec<f64> = (0..d)
            .map(|j| nan_mean(&ds.values.col(j)).unwrap_or(0.5))
            .collect();
        // free parameters: one slot per missing cell
        let missing: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| {
                (0..d).filter_map(move |j| {
                    if ds.mask.get(i, j) {
                        None
                    } else {
                        Some((i, j))
                    }
                })
            })
            .collect();
        let mut x = Matrix::from_fn(n, d, |i, j| {
            let v = ds.values[(i, j)];
            if v.is_nan() {
                (means[j] + rng.normal_with(0.0, self.init_noise)).clamp(0.0, 1.0)
            } else {
                v
            }
        });
        if missing.is_empty() {
            return x;
        }

        let bs = self.config.batch_size.min(n / 2).max(2);
        let rounds = self.config.epochs * (n / (2 * bs)).max(1);
        let mut opt = CellSgd { lr: self.step_size };
        // cell -> parameter index lookup
        let mut param_of = std::collections::HashMap::with_capacity(missing.len());
        for (k, &(i, j)) in missing.iter().enumerate() {
            param_of.insert((i, j), k);
        }
        let ones = Matrix::ones(bs, d);

        for _round in 0..rounds {
            let idx = rng.sample_indices(n, 2 * bs);
            let (ia, ib) = idx.split_at(bs);
            let a = x.select_rows(ia);
            let b = x.select_rows(ib);
            // S(A,B) gradients w.r.t. both batches (divergence is symmetric)
            let (_, ga) = ms_loss_grad(&a, &b, &ones, &self.sinkhorn);
            let (_, gb) = ms_loss_grad(&b, &a, &ones, &self.sinkhorn);

            let mut grads = vec![0.0; missing.len()];
            let mut any = false;
            for (bi, &row) in ia.iter().enumerate() {
                for j in 0..d {
                    if let Some(&k) = param_of.get(&(row, j)) {
                        grads[k] += ga[(bi, j)];
                        any = true;
                    }
                }
            }
            for (bi, &row) in ib.iter().enumerate() {
                for j in 0..d {
                    if let Some(&k) = param_of.get(&(row, j)) {
                        grads[k] += gb[(bi, j)];
                        any = true;
                    }
                }
            }
            if !any {
                continue;
            }
            // gather, step, scatter
            let mut params: Vec<f64> = missing.iter().map(|&(i, j)| x[(i, j)]).collect();
            opt.step(&mut params, &grads);
            for (&(i, j), p) in missing.iter().zip(&params) {
                x[(i, j)] = p.clamp(0.0, 1.0);
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scis_data::metrics::rmse_vs_ground_truth;
    use scis_data::missing::inject_mcar;

    fn clustered(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut m = Matrix::zeros(n, 3);
        for i in 0..n {
            let c = if rng.bernoulli(0.5) { 0.2 } else { 0.8 };
            for j in 0..3 {
                m[(i, j)] = (c + rng.normal_with(0.0, 0.03)).clamp(0.0, 1.0);
            }
        }
        m
    }

    fn fast() -> RrsiImputer {
        RrsiImputer {
            config: TrainConfig {
                epochs: 60,
                batch_size: 32,
                ..TrainConfig::fast_test()
            },
            sinkhorn: SinkhornOptions {
                lambda: 0.002,
                max_iters: 300,
                tol: 1e-6,
                ..Default::default()
            },
            init_noise: 0.1,
            step_size: 100.0,
        }
    }

    #[test]
    fn improves_over_its_own_initialization_on_clustered_data() {
        let complete = clustered(200, 1);
        let mut rng = Rng64::seed_from_u64(2);
        let ds = inject_mcar(&complete, 0.2, &mut rng);
        let out = fast().impute(&ds, &mut rng);
        let mean_out = crate::mean::MeanImputer.impute(&ds, &mut rng);
        let e = rmse_vs_ground_truth(&ds, &complete, &out);
        let e_mean = rmse_vs_ground_truth(&ds, &complete, &mean_out);
        assert!(e < e_mean, "rrsi {} vs mean {}", e, e_mean);
    }

    #[test]
    fn observed_cells_pass_through() {
        let complete = clustered(100, 3);
        let mut rng = Rng64::seed_from_u64(4);
        let ds = inject_mcar(&complete, 0.3, &mut rng);
        let out = fast().impute(&ds, &mut rng);
        for (i, j, v) in ds.observed_cells() {
            assert_eq!(out[(i, j)], v);
        }
        assert!(!out.has_nan());
    }

    #[test]
    fn complete_dataset_returns_immediately() {
        let complete = clustered(50, 5);
        let ds = Dataset::from_values(complete.clone());
        let mut rng = Rng64::seed_from_u64(6);
        let out = fast().impute(&ds, &mut rng);
        assert_eq!(out, complete);
    }

    #[test]
    fn imputed_values_respect_unit_interval() {
        let complete = clustered(120, 7);
        let mut rng = Rng64::seed_from_u64(8);
        let ds = inject_mcar(&complete, 0.4, &mut rng);
        let out = fast().impute(&ds, &mut rng);
        for v in out.as_slice() {
            assert!((-1e-9..=1.0 + 1e-9).contains(v));
        }
    }
}
