#![warn(missing_docs)]

//! `scis-imputers` — the thirteen imputation methods compared in the paper.
//!
//! | Family | Methods | Paper row |
//! |---|---|---|
//! | statistical | [`mean::MeanImputer`], [`mean::MedianImputer`] | (reference) |
//! | machine learning | [`knn::KnnImputer`], [`mice::MiceImputer`], [`missforest::MissForestImputer`], [`boost::BoostImputer`] (Baran stand-in, see DESIGN.md) | MissF / Baran / MICE |
//! | MLP-based | [`datawig::DataWigImputer`], [`rrsi::RrsiImputer`] | DataWig / RRSI |
//! | AE-based | [`midae::MidaeImputer`], [`vaei::VaeImputer`], [`miwae::MiwaeImputer`], [`eddi::EddiImputer`], [`hivae::HivaeImputer`] | MIDAE / VAEI / MIWAE / EDDI / HIVAE |
//! | GAN-based | [`gain::GainImputer`], [`ginn::GinnImputer`] | GAIN / GINN |
//!
//! All methods implement [`traits::Imputer`]; the two adversarial methods
//! also implement [`traits::AdversarialImputer`], the interface SCIS's DIM
//! module needs to retrain them under the masking Sinkhorn loss.
//!
//! Inputs are assumed min–max normalized to `[0,1]` (the paper's protocol);
//! every `impute` returns the *merged* matrix of Definition 1's Eq. 1 —
//! observed cells pass through bit-exactly.

pub mod boost;
pub mod datawig;
pub mod eddi;
pub mod gain;
pub mod ginn;
pub mod hivae;
pub mod knn;
pub mod mean;
pub mod mice;
pub mod midae;
pub mod missforest;
pub mod miwae;
pub mod rrsi;
pub mod traits;
pub mod tree;
pub mod vaei;

pub use gain::GainImputer;
pub use ginn::GinnImputer;
pub use traits::{AdversarialImputer, Imputer, TrainConfig};

#[cfg(test)]
pub(crate) mod testutil {
    use scis_tensor::{Matrix, Rng64};

    /// Four strongly correlated [0,1] columns driven by one latent factor —
    /// the regime where every model-based imputer should beat mean fill.
    pub(crate) fn correlated_table(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut m = Matrix::zeros(n, 4);
        for i in 0..n {
            let t = rng.uniform();
            m[(i, 0)] = t;
            m[(i, 1)] = (0.8 * t + 0.1 + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
            m[(i, 2)] = (1.0 - t + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
            m[(i, 3)] = (0.5 * t + 0.25 + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
        }
        m
    }
}
