//! CART regression trees and random forests — the substrate for the
//! MissForest baseline (Stekhoven & Bühlmann), built from scratch.
//!
//! Trees use variance-reduction splits over a random feature subset
//! (`mtry`), with candidate thresholds at feature quantiles for O(n·mtry·q)
//! split search per node. Forests bag rows with replacement.

use scis_tensor::{Matrix, Rng64};

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// index of the left child in `nodes`; right child is `left + 1`… no:
        /// children are stored explicitly to keep construction simple.
        left: usize,
        right: usize,
    },
}

/// Tree growth hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_leaf: usize,
    /// Number of candidate features per split (`None` = all).
    pub mtry: Option<usize>,
    /// Candidate thresholds per feature (quantile grid).
    pub n_thresholds: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 8,
            min_leaf: 3,
            mtry: None,
            n_thresholds: 10,
        }
    }
}

fn mean_of(idx: &[usize], y: &[f64]) -> f64 {
    idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len().max(1) as f64
}

fn sse_of(idx: &[usize], y: &[f64]) -> f64 {
    let m = mean_of(idx, y);
    idx.iter().map(|&i| (y[i] - m) * (y[i] - m)).sum()
}

impl RegressionTree {
    /// Fits a tree on rows `x` (features) and targets `y`.
    ///
    /// # Panics
    /// Panics if `x` and `y` disagree in length or are empty.
    pub fn fit(x: &Matrix, y: &[f64], cfg: &TreeConfig, rng: &mut Rng64) -> Self {
        assert_eq!(x.rows(), y.len(), "RegressionTree::fit: length mismatch");
        assert!(!y.is_empty(), "RegressionTree::fit: empty training set");
        let mut nodes = Vec::new();
        let all: Vec<usize> = (0..x.rows()).collect();
        Self::grow(&mut nodes, x, y, all, 0, cfg, rng);
        Self { nodes }
    }

    fn grow(
        nodes: &mut Vec<Node>,
        x: &Matrix,
        y: &[f64],
        idx: Vec<usize>,
        depth: usize,
        cfg: &TreeConfig,
        rng: &mut Rng64,
    ) -> usize {
        let node_id = nodes.len();
        nodes.push(Node::Leaf {
            value: mean_of(&idx, y),
        });
        if depth >= cfg.max_depth || idx.len() < 2 * cfg.min_leaf {
            return node_id;
        }
        let parent_sse = sse_of(&idx, y);
        if parent_sse < 1e-12 {
            return node_id;
        }

        let d = x.cols();
        let mtry = cfg.mtry.unwrap_or(d).min(d);
        let features = if mtry < d {
            rng.sample_indices(d, mtry)
        } else {
            (0..d).collect()
        };

        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        for &f in &features {
            let mut vals: Vec<f64> = idx.iter().map(|&i| x[(i, f)]).collect();
            // total_cmp: a NaN feature value sorts last; the threshold sweep
            // below only produces NaN thresholds from the NaN tail, and
            // those splits lose on gain instead of crashing the grower
            vals.sort_unstable_by(f64::total_cmp);
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            let step = (vals.len() as f64 / (cfg.n_thresholds + 1) as f64).max(1.0);
            let mut t = step;
            while (t as usize) < vals.len() {
                let lo = vals[t as usize - 1];
                let hi = vals[t as usize];
                let threshold = (lo + hi) / 2.0;
                let (mut nl, mut sl, mut ql) = (0usize, 0.0, 0.0);
                let (mut nr, mut sr, mut qr) = (0usize, 0.0, 0.0);
                for &i in &idx {
                    if x[(i, f)] <= threshold {
                        nl += 1;
                        sl += y[i];
                        ql += y[i] * y[i];
                    } else {
                        nr += 1;
                        sr += y[i];
                        qr += y[i] * y[i];
                    }
                }
                if nl >= cfg.min_leaf && nr >= cfg.min_leaf {
                    let sse = (ql - sl * sl / nl as f64) + (qr - sr * sr / nr as f64);
                    let gain = parent_sse - sse;
                    if best.map(|b| gain > b.0).unwrap_or(gain > 1e-12) {
                        best = Some((gain, f, threshold));
                    }
                }
                t += step;
            }
        }

        if let Some((_, feature, threshold)) = best {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| x[(i, feature)] <= threshold);
            let left = Self::grow(nodes, x, y, left_idx, depth + 1, cfg, rng);
            let right = Self::grow(nodes, x, y, right_idx, depth + 1, cfg, rng);
            nodes[node_id] = Node::Split {
                feature,
                threshold,
                left,
                right,
            };
        }
        node_id
    }

    /// Predicts the target for one feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicts for every row of `x`.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        x.rows_iter().map(|r| self.predict_row(r)).collect()
    }

    /// Node count (diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// Bagged random forest of regression trees.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fits `n_trees` trees on bootstrap samples, each with
    /// `mtry = ceil(sqrt(d))` features per split (MissForest's default).
    pub fn fit(x: &Matrix, y: &[f64], n_trees: usize, cfg: &TreeConfig, rng: &mut Rng64) -> Self {
        assert!(n_trees > 0, "RandomForest::fit: need at least one tree");
        let n = x.rows();
        let d = x.cols();
        let cfg = TreeConfig {
            mtry: cfg
                .mtry
                .or(Some(((d as f64).sqrt().ceil() as usize).max(1))),
            ..*cfg
        };
        let trees = (0..n_trees)
            .map(|_| {
                let boot: Vec<usize> = (0..n).map(|_| rng.gen_range(n)).collect();
                let xb = x.select_rows(&boot);
                let yb: Vec<f64> = boot.iter().map(|&i| y[i]).collect();
                RegressionTree::fit(&xb, &yb, &cfg, rng)
            })
            .collect();
        Self { trees }
    }

    /// Mean of the per-tree predictions for one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>() / self.trees.len() as f64
    }

    /// Predicts for every row of `x`.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        x.rows_iter().map(|r| self.predict_row(r)).collect()
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = Rng64::seed_from_u64(seed);
        let x = Matrix::from_fn(n, 2, |_, _| rng.uniform());
        let y: Vec<f64> = (0..n)
            .map(|i| if x[(i, 0)] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        (x, y)
    }

    #[test]
    fn tree_learns_a_step_function() {
        let (x, y) = step_data(400, 1);
        let mut rng = Rng64::seed_from_u64(2);
        let tree = RegressionTree::fit(&x, &y, &TreeConfig::default(), &mut rng);
        let preds = tree.predict(&x);
        let err: f64 = preds
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64;
        assert!(err < 0.01, "mse {}", err);
        assert!(tree.n_nodes() >= 3);
    }

    #[test]
    fn nan_feature_values_do_not_panic_the_grower() {
        // regression: a NaN feature cell reached the threshold sweep's sort
        // (partial_cmp().expect("NaN feature")) and panicked. total_cmp
        // sorts the NaN to the tail; candidate splits built from it lose on
        // gain (NaN comparisons are false) and the tree still fits the
        // clean structure of the other feature.
        let (mut x, y) = step_data(200, 7);
        x[(3, 1)] = f64::NAN;
        x[(17, 1)] = f64::NAN;
        let mut rng = Rng64::seed_from_u64(8);
        let tree = RegressionTree::fit(&x, &y, &TreeConfig::default(), &mut rng);
        let preds = tree.predict(&x);
        assert!(preds.iter().all(|p| p.is_finite()));
        let err: f64 = preds
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64;
        assert!(err < 0.05, "mse {}", err);
    }

    #[test]
    fn depth_zero_tree_is_the_mean() {
        let (x, y) = step_data(100, 3);
        let mut rng = Rng64::seed_from_u64(4);
        let cfg = TreeConfig {
            max_depth: 0,
            ..Default::default()
        };
        let tree = RegressionTree::fit(&x, &y, &cfg, &mut rng);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert_eq!(tree.n_nodes(), 1);
        assert!((tree.predict_row(x.row(0)) - mean).abs() < 1e-12);
    }

    #[test]
    fn min_leaf_is_respected() {
        let (x, y) = step_data(20, 5);
        let mut rng = Rng64::seed_from_u64(6);
        let cfg = TreeConfig {
            min_leaf: 15,
            ..Default::default()
        };
        let tree = RegressionTree::fit(&x, &y, &cfg, &mut rng);
        // cannot split 20 rows into two leaves of ≥15
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn predictions_bounded_by_training_targets() {
        let mut rng = Rng64::seed_from_u64(7);
        let x = Matrix::from_fn(200, 3, |_, _| rng.uniform());
        let y: Vec<f64> = (0..200).map(|_| rng.uniform_range(2.0, 5.0)).collect();
        let tree = RegressionTree::fit(&x, &y, &TreeConfig::default(), &mut rng);
        let probe = Matrix::from_fn(50, 3, |_, _| rng.uniform_range(-10.0, 10.0));
        for p in tree.predict(&probe) {
            assert!(
                (2.0..=5.0).contains(&p),
                "prediction {} out of target range",
                p
            );
        }
    }

    #[test]
    fn forest_smoother_than_single_tree_on_noise() {
        let mut rng = Rng64::seed_from_u64(8);
        let n = 300;
        let x = Matrix::from_fn(n, 2, |_, _| rng.uniform());
        let y: Vec<f64> = (0..n)
            .map(|i| (x[(i, 0)] * 6.0).sin() * 0.5 + 0.5 + rng.normal_with(0.0, 0.15))
            .collect();
        let truth = |r: &[f64]| (r[0] * 6.0).sin() * 0.5 + 0.5;
        let cfg = TreeConfig {
            max_depth: 10,
            min_leaf: 2,
            ..Default::default()
        };
        let tree = RegressionTree::fit(&x, &y, &cfg, &mut rng);
        let forest = RandomForest::fit(&x, &y, 30, &cfg, &mut rng);
        let probe = Matrix::from_fn(200, 2, |_, _| rng.uniform());
        let (mut e_tree, mut e_forest) = (0.0, 0.0);
        for r in probe.rows_iter() {
            let t = truth(r);
            e_tree += (tree.predict_row(r) - t).powi(2);
            e_forest += (forest.predict_row(r) - t).powi(2);
        }
        assert!(e_forest < e_tree, "forest {} vs tree {}", e_forest, e_tree);
        assert_eq!(forest.n_trees(), 30);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fit_rejects_mismatched_lengths() {
        let mut rng = Rng64::seed_from_u64(9);
        let _ = RegressionTree::fit(
            &Matrix::zeros(3, 2),
            &[1.0, 2.0],
            &TreeConfig::default(),
            &mut rng,
        );
    }
}
